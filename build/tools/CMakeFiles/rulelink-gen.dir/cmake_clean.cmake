file(REMOVE_RECURSE
  "CMakeFiles/rulelink-gen.dir/gen_dataset.cc.o"
  "CMakeFiles/rulelink-gen.dir/gen_dataset.cc.o.d"
  "rulelink-gen"
  "rulelink-gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rulelink-gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
