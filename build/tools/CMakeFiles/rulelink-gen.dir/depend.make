# Empty dependencies file for rulelink-gen.
# This may be replaced when dependencies are built.
