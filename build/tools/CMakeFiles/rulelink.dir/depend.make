# Empty dependencies file for rulelink.
# This may be replaced when dependencies are built.
