file(REMOVE_RECURSE
  "CMakeFiles/rulelink.dir/rulelink_cli.cc.o"
  "CMakeFiles/rulelink.dir/rulelink_cli.cc.o.d"
  "rulelink"
  "rulelink.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rulelink.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
