file(REMOVE_RECURSE
  "CMakeFiles/bench_rule_stats.dir/bench_rule_stats.cc.o"
  "CMakeFiles/bench_rule_stats.dir/bench_rule_stats.cc.o.d"
  "bench_rule_stats"
  "bench_rule_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rule_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
