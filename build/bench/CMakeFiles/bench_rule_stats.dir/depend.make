# Empty dependencies file for bench_rule_stats.
# This may be replaced when dependencies are built.
