# Empty dependencies file for bench_linking_space.
# This may be replaced when dependencies are built.
