
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_linking_space.cc" "bench/CMakeFiles/bench_linking_space.dir/bench_linking_space.cc.o" "gcc" "bench/CMakeFiles/bench_linking_space.dir/bench_linking_space.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/rulelink_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/rulelink_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/linking/CMakeFiles/rulelink_linking.dir/DependInfo.cmake"
  "/root/repo/build/src/blocking/CMakeFiles/rulelink_blocking.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/rulelink_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ontology/CMakeFiles/rulelink_ontology.dir/DependInfo.cmake"
  "/root/repo/build/src/rdf/CMakeFiles/rulelink_rdf.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/rulelink_text.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rulelink_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
