file(REMOVE_RECURSE
  "CMakeFiles/bench_linking_space.dir/bench_linking_space.cc.o"
  "CMakeFiles/bench_linking_space.dir/bench_linking_space.cc.o.d"
  "bench_linking_space"
  "bench_linking_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_linking_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
