# Empty compiler generated dependencies file for holdout_test.
# This may be replaced when dependencies are built.
