file(REMOVE_RECURSE
  "CMakeFiles/holdout_test.dir/holdout_test.cc.o"
  "CMakeFiles/holdout_test.dir/holdout_test.cc.o.d"
  "holdout_test"
  "holdout_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/holdout_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
