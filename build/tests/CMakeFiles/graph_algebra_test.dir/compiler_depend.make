# Empty compiler generated dependencies file for graph_algebra_test.
# This may be replaced when dependencies are built.
