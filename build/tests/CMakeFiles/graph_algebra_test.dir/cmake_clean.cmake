file(REMOVE_RECURSE
  "CMakeFiles/graph_algebra_test.dir/graph_algebra_test.cc.o"
  "CMakeFiles/graph_algebra_test.dir/graph_algebra_test.cc.o.d"
  "graph_algebra_test"
  "graph_algebra_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_algebra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
