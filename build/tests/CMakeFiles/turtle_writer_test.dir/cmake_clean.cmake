file(REMOVE_RECURSE
  "CMakeFiles/turtle_writer_test.dir/turtle_writer_test.cc.o"
  "CMakeFiles/turtle_writer_test.dir/turtle_writer_test.cc.o.d"
  "turtle_writer_test"
  "turtle_writer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turtle_writer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
