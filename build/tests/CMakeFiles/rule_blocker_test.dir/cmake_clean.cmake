file(REMOVE_RECURSE
  "CMakeFiles/rule_blocker_test.dir/rule_blocker_test.cc.o"
  "CMakeFiles/rule_blocker_test.dir/rule_blocker_test.cc.o.d"
  "rule_blocker_test"
  "rule_blocker_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rule_blocker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
