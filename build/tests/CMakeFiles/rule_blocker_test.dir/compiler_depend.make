# Empty compiler generated dependencies file for rule_blocker_test.
# This may be replaced when dependencies are built.
