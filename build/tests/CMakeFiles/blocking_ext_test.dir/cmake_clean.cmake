file(REMOVE_RECURSE
  "CMakeFiles/blocking_ext_test.dir/blocking_ext_test.cc.o"
  "CMakeFiles/blocking_ext_test.dir/blocking_ext_test.cc.o.d"
  "blocking_ext_test"
  "blocking_ext_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blocking_ext_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
