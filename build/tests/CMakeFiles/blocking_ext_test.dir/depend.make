# Empty dependencies file for blocking_ext_test.
# This may be replaced when dependencies are built.
