# Empty dependencies file for instance_index_test.
# This may be replaced when dependencies are built.
