file(REMOVE_RECURSE
  "CMakeFiles/instance_index_test.dir/instance_index_test.cc.o"
  "CMakeFiles/instance_index_test.dir/instance_index_test.cc.o.d"
  "instance_index_test"
  "instance_index_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/instance_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
