# Empty compiler generated dependencies file for linking_space_test.
# This may be replaced when dependencies are built.
