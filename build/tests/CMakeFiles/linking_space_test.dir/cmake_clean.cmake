file(REMOVE_RECURSE
  "CMakeFiles/linking_space_test.dir/linking_space_test.cc.o"
  "CMakeFiles/linking_space_test.dir/linking_space_test.cc.o.d"
  "linking_space_test"
  "linking_space_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linking_space_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
