file(REMOVE_RECURSE
  "CMakeFiles/learner_test.dir/learner_test.cc.o"
  "CMakeFiles/learner_test.dir/learner_test.cc.o.d"
  "learner_test"
  "learner_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/learner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
