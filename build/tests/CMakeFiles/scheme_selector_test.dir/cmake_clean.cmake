file(REMOVE_RECURSE
  "CMakeFiles/scheme_selector_test.dir/scheme_selector_test.cc.o"
  "CMakeFiles/scheme_selector_test.dir/scheme_selector_test.cc.o.d"
  "scheme_selector_test"
  "scheme_selector_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scheme_selector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
