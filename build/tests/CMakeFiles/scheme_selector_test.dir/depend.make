# Empty dependencies file for scheme_selector_test.
# This may be replaced when dependencies are built.
