file(REMOVE_RECURSE
  "CMakeFiles/generalizer_test.dir/generalizer_test.cc.o"
  "CMakeFiles/generalizer_test.dir/generalizer_test.cc.o.d"
  "generalizer_test"
  "generalizer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generalizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
