file(REMOVE_RECURSE
  "CMakeFiles/rule_io_test.dir/rule_io_test.cc.o"
  "CMakeFiles/rule_io_test.dir/rule_io_test.cc.o.d"
  "rule_io_test"
  "rule_io_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rule_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
