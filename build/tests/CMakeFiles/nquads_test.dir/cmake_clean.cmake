file(REMOVE_RECURSE
  "CMakeFiles/nquads_test.dir/nquads_test.cc.o"
  "CMakeFiles/nquads_test.dir/nquads_test.cc.o.d"
  "nquads_test"
  "nquads_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nquads_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
