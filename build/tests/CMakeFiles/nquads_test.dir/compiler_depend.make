# Empty compiler generated dependencies file for nquads_test.
# This may be replaced when dependencies are built.
