file(REMOVE_RECURSE
  "CMakeFiles/auto_configuration.dir/auto_configuration.cpp.o"
  "CMakeFiles/auto_configuration.dir/auto_configuration.cpp.o.d"
  "auto_configuration"
  "auto_configuration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auto_configuration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
