# Empty compiler generated dependencies file for auto_configuration.
# This may be replaced when dependencies are built.
