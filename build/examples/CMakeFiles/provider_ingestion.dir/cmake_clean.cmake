file(REMOVE_RECURSE
  "CMakeFiles/provider_ingestion.dir/provider_ingestion.cpp.o"
  "CMakeFiles/provider_ingestion.dir/provider_ingestion.cpp.o.d"
  "provider_ingestion"
  "provider_ingestion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/provider_ingestion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
