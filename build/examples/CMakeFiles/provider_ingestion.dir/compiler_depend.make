# Empty compiler generated dependencies file for provider_ingestion.
# This may be replaced when dependencies are built.
