# Empty dependencies file for electronic_catalog.
# This may be replaced when dependencies are built.
