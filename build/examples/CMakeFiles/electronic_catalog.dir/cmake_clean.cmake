file(REMOVE_RECURSE
  "CMakeFiles/electronic_catalog.dir/electronic_catalog.cpp.o"
  "CMakeFiles/electronic_catalog.dir/electronic_catalog.cpp.o.d"
  "electronic_catalog"
  "electronic_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/electronic_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
