file(REMOVE_RECURSE
  "CMakeFiles/geo_toponyms.dir/geo_toponyms.cpp.o"
  "CMakeFiles/geo_toponyms.dir/geo_toponyms.cpp.o.d"
  "geo_toponyms"
  "geo_toponyms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geo_toponyms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
