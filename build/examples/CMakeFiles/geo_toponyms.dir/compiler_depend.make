# Empty compiler generated dependencies file for geo_toponyms.
# This may be replaced when dependencies are built.
