# Empty dependencies file for rulelink_core.
# This may be replaced when dependencies are built.
