file(REMOVE_RECURSE
  "CMakeFiles/rulelink_core.dir/classifier.cc.o"
  "CMakeFiles/rulelink_core.dir/classifier.cc.o.d"
  "CMakeFiles/rulelink_core.dir/conjunctive.cc.o"
  "CMakeFiles/rulelink_core.dir/conjunctive.cc.o.d"
  "CMakeFiles/rulelink_core.dir/generalizer.cc.o"
  "CMakeFiles/rulelink_core.dir/generalizer.cc.o.d"
  "CMakeFiles/rulelink_core.dir/incremental.cc.o"
  "CMakeFiles/rulelink_core.dir/incremental.cc.o.d"
  "CMakeFiles/rulelink_core.dir/learner.cc.o"
  "CMakeFiles/rulelink_core.dir/learner.cc.o.d"
  "CMakeFiles/rulelink_core.dir/linking_space.cc.o"
  "CMakeFiles/rulelink_core.dir/linking_space.cc.o.d"
  "CMakeFiles/rulelink_core.dir/measures.cc.o"
  "CMakeFiles/rulelink_core.dir/measures.cc.o.d"
  "CMakeFiles/rulelink_core.dir/rule.cc.o"
  "CMakeFiles/rulelink_core.dir/rule.cc.o.d"
  "CMakeFiles/rulelink_core.dir/rule_io.cc.o"
  "CMakeFiles/rulelink_core.dir/rule_io.cc.o.d"
  "CMakeFiles/rulelink_core.dir/training_set.cc.o"
  "CMakeFiles/rulelink_core.dir/training_set.cc.o.d"
  "librulelink_core.a"
  "librulelink_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rulelink_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
