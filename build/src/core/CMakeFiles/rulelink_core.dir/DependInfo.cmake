
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/classifier.cc" "src/core/CMakeFiles/rulelink_core.dir/classifier.cc.o" "gcc" "src/core/CMakeFiles/rulelink_core.dir/classifier.cc.o.d"
  "/root/repo/src/core/conjunctive.cc" "src/core/CMakeFiles/rulelink_core.dir/conjunctive.cc.o" "gcc" "src/core/CMakeFiles/rulelink_core.dir/conjunctive.cc.o.d"
  "/root/repo/src/core/generalizer.cc" "src/core/CMakeFiles/rulelink_core.dir/generalizer.cc.o" "gcc" "src/core/CMakeFiles/rulelink_core.dir/generalizer.cc.o.d"
  "/root/repo/src/core/incremental.cc" "src/core/CMakeFiles/rulelink_core.dir/incremental.cc.o" "gcc" "src/core/CMakeFiles/rulelink_core.dir/incremental.cc.o.d"
  "/root/repo/src/core/learner.cc" "src/core/CMakeFiles/rulelink_core.dir/learner.cc.o" "gcc" "src/core/CMakeFiles/rulelink_core.dir/learner.cc.o.d"
  "/root/repo/src/core/linking_space.cc" "src/core/CMakeFiles/rulelink_core.dir/linking_space.cc.o" "gcc" "src/core/CMakeFiles/rulelink_core.dir/linking_space.cc.o.d"
  "/root/repo/src/core/measures.cc" "src/core/CMakeFiles/rulelink_core.dir/measures.cc.o" "gcc" "src/core/CMakeFiles/rulelink_core.dir/measures.cc.o.d"
  "/root/repo/src/core/rule.cc" "src/core/CMakeFiles/rulelink_core.dir/rule.cc.o" "gcc" "src/core/CMakeFiles/rulelink_core.dir/rule.cc.o.d"
  "/root/repo/src/core/rule_io.cc" "src/core/CMakeFiles/rulelink_core.dir/rule_io.cc.o" "gcc" "src/core/CMakeFiles/rulelink_core.dir/rule_io.cc.o.d"
  "/root/repo/src/core/training_set.cc" "src/core/CMakeFiles/rulelink_core.dir/training_set.cc.o" "gcc" "src/core/CMakeFiles/rulelink_core.dir/training_set.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ontology/CMakeFiles/rulelink_ontology.dir/DependInfo.cmake"
  "/root/repo/build/src/rdf/CMakeFiles/rulelink_rdf.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/rulelink_text.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rulelink_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
