file(REMOVE_RECURSE
  "librulelink_core.a"
)
