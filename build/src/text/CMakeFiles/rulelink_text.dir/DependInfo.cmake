
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/text/normalize.cc" "src/text/CMakeFiles/rulelink_text.dir/normalize.cc.o" "gcc" "src/text/CMakeFiles/rulelink_text.dir/normalize.cc.o.d"
  "/root/repo/src/text/phonetic.cc" "src/text/CMakeFiles/rulelink_text.dir/phonetic.cc.o" "gcc" "src/text/CMakeFiles/rulelink_text.dir/phonetic.cc.o.d"
  "/root/repo/src/text/segmenter.cc" "src/text/CMakeFiles/rulelink_text.dir/segmenter.cc.o" "gcc" "src/text/CMakeFiles/rulelink_text.dir/segmenter.cc.o.d"
  "/root/repo/src/text/similarity.cc" "src/text/CMakeFiles/rulelink_text.dir/similarity.cc.o" "gcc" "src/text/CMakeFiles/rulelink_text.dir/similarity.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rulelink_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
