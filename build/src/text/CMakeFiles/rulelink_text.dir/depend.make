# Empty dependencies file for rulelink_text.
# This may be replaced when dependencies are built.
