file(REMOVE_RECURSE
  "CMakeFiles/rulelink_text.dir/normalize.cc.o"
  "CMakeFiles/rulelink_text.dir/normalize.cc.o.d"
  "CMakeFiles/rulelink_text.dir/phonetic.cc.o"
  "CMakeFiles/rulelink_text.dir/phonetic.cc.o.d"
  "CMakeFiles/rulelink_text.dir/segmenter.cc.o"
  "CMakeFiles/rulelink_text.dir/segmenter.cc.o.d"
  "CMakeFiles/rulelink_text.dir/similarity.cc.o"
  "CMakeFiles/rulelink_text.dir/similarity.cc.o.d"
  "librulelink_text.a"
  "librulelink_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rulelink_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
