file(REMOVE_RECURSE
  "librulelink_text.a"
)
