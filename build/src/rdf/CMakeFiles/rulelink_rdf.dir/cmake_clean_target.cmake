file(REMOVE_RECURSE
  "librulelink_rdf.a"
)
