file(REMOVE_RECURSE
  "CMakeFiles/rulelink_rdf.dir/dictionary.cc.o"
  "CMakeFiles/rulelink_rdf.dir/dictionary.cc.o.d"
  "CMakeFiles/rulelink_rdf.dir/graph.cc.o"
  "CMakeFiles/rulelink_rdf.dir/graph.cc.o.d"
  "CMakeFiles/rulelink_rdf.dir/graph_algebra.cc.o"
  "CMakeFiles/rulelink_rdf.dir/graph_algebra.cc.o.d"
  "CMakeFiles/rulelink_rdf.dir/nquads.cc.o"
  "CMakeFiles/rulelink_rdf.dir/nquads.cc.o.d"
  "CMakeFiles/rulelink_rdf.dir/ntriples.cc.o"
  "CMakeFiles/rulelink_rdf.dir/ntriples.cc.o.d"
  "CMakeFiles/rulelink_rdf.dir/query.cc.o"
  "CMakeFiles/rulelink_rdf.dir/query.cc.o.d"
  "CMakeFiles/rulelink_rdf.dir/sparql.cc.o"
  "CMakeFiles/rulelink_rdf.dir/sparql.cc.o.d"
  "CMakeFiles/rulelink_rdf.dir/term.cc.o"
  "CMakeFiles/rulelink_rdf.dir/term.cc.o.d"
  "CMakeFiles/rulelink_rdf.dir/turtle.cc.o"
  "CMakeFiles/rulelink_rdf.dir/turtle.cc.o.d"
  "CMakeFiles/rulelink_rdf.dir/turtle_writer.cc.o"
  "CMakeFiles/rulelink_rdf.dir/turtle_writer.cc.o.d"
  "librulelink_rdf.a"
  "librulelink_rdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rulelink_rdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
