# Empty compiler generated dependencies file for rulelink_rdf.
# This may be replaced when dependencies are built.
