
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rdf/dictionary.cc" "src/rdf/CMakeFiles/rulelink_rdf.dir/dictionary.cc.o" "gcc" "src/rdf/CMakeFiles/rulelink_rdf.dir/dictionary.cc.o.d"
  "/root/repo/src/rdf/graph.cc" "src/rdf/CMakeFiles/rulelink_rdf.dir/graph.cc.o" "gcc" "src/rdf/CMakeFiles/rulelink_rdf.dir/graph.cc.o.d"
  "/root/repo/src/rdf/graph_algebra.cc" "src/rdf/CMakeFiles/rulelink_rdf.dir/graph_algebra.cc.o" "gcc" "src/rdf/CMakeFiles/rulelink_rdf.dir/graph_algebra.cc.o.d"
  "/root/repo/src/rdf/nquads.cc" "src/rdf/CMakeFiles/rulelink_rdf.dir/nquads.cc.o" "gcc" "src/rdf/CMakeFiles/rulelink_rdf.dir/nquads.cc.o.d"
  "/root/repo/src/rdf/ntriples.cc" "src/rdf/CMakeFiles/rulelink_rdf.dir/ntriples.cc.o" "gcc" "src/rdf/CMakeFiles/rulelink_rdf.dir/ntriples.cc.o.d"
  "/root/repo/src/rdf/query.cc" "src/rdf/CMakeFiles/rulelink_rdf.dir/query.cc.o" "gcc" "src/rdf/CMakeFiles/rulelink_rdf.dir/query.cc.o.d"
  "/root/repo/src/rdf/sparql.cc" "src/rdf/CMakeFiles/rulelink_rdf.dir/sparql.cc.o" "gcc" "src/rdf/CMakeFiles/rulelink_rdf.dir/sparql.cc.o.d"
  "/root/repo/src/rdf/term.cc" "src/rdf/CMakeFiles/rulelink_rdf.dir/term.cc.o" "gcc" "src/rdf/CMakeFiles/rulelink_rdf.dir/term.cc.o.d"
  "/root/repo/src/rdf/turtle.cc" "src/rdf/CMakeFiles/rulelink_rdf.dir/turtle.cc.o" "gcc" "src/rdf/CMakeFiles/rulelink_rdf.dir/turtle.cc.o.d"
  "/root/repo/src/rdf/turtle_writer.cc" "src/rdf/CMakeFiles/rulelink_rdf.dir/turtle_writer.cc.o" "gcc" "src/rdf/CMakeFiles/rulelink_rdf.dir/turtle_writer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rulelink_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
