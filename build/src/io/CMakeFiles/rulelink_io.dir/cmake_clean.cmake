file(REMOVE_RECURSE
  "CMakeFiles/rulelink_io.dir/csv.cc.o"
  "CMakeFiles/rulelink_io.dir/csv.cc.o.d"
  "CMakeFiles/rulelink_io.dir/item_loader.cc.o"
  "CMakeFiles/rulelink_io.dir/item_loader.cc.o.d"
  "librulelink_io.a"
  "librulelink_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rulelink_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
