# Empty dependencies file for rulelink_io.
# This may be replaced when dependencies are built.
