file(REMOVE_RECURSE
  "librulelink_io.a"
)
