# Empty compiler generated dependencies file for rulelink_blocking.
# This may be replaced when dependencies are built.
