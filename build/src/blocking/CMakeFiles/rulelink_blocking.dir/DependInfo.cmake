
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/blocking/adaptive_sn.cc" "src/blocking/CMakeFiles/rulelink_blocking.dir/adaptive_sn.cc.o" "gcc" "src/blocking/CMakeFiles/rulelink_blocking.dir/adaptive_sn.cc.o.d"
  "/root/repo/src/blocking/bigram_indexing.cc" "src/blocking/CMakeFiles/rulelink_blocking.dir/bigram_indexing.cc.o" "gcc" "src/blocking/CMakeFiles/rulelink_blocking.dir/bigram_indexing.cc.o.d"
  "/root/repo/src/blocking/blocker.cc" "src/blocking/CMakeFiles/rulelink_blocking.dir/blocker.cc.o" "gcc" "src/blocking/CMakeFiles/rulelink_blocking.dir/blocker.cc.o.d"
  "/root/repo/src/blocking/canopy.cc" "src/blocking/CMakeFiles/rulelink_blocking.dir/canopy.cc.o" "gcc" "src/blocking/CMakeFiles/rulelink_blocking.dir/canopy.cc.o.d"
  "/root/repo/src/blocking/key_discovery.cc" "src/blocking/CMakeFiles/rulelink_blocking.dir/key_discovery.cc.o" "gcc" "src/blocking/CMakeFiles/rulelink_blocking.dir/key_discovery.cc.o.d"
  "/root/repo/src/blocking/metrics.cc" "src/blocking/CMakeFiles/rulelink_blocking.dir/metrics.cc.o" "gcc" "src/blocking/CMakeFiles/rulelink_blocking.dir/metrics.cc.o.d"
  "/root/repo/src/blocking/rule_blocker.cc" "src/blocking/CMakeFiles/rulelink_blocking.dir/rule_blocker.cc.o" "gcc" "src/blocking/CMakeFiles/rulelink_blocking.dir/rule_blocker.cc.o.d"
  "/root/repo/src/blocking/scheme_selector.cc" "src/blocking/CMakeFiles/rulelink_blocking.dir/scheme_selector.cc.o" "gcc" "src/blocking/CMakeFiles/rulelink_blocking.dir/scheme_selector.cc.o.d"
  "/root/repo/src/blocking/sorted_neighbourhood.cc" "src/blocking/CMakeFiles/rulelink_blocking.dir/sorted_neighbourhood.cc.o" "gcc" "src/blocking/CMakeFiles/rulelink_blocking.dir/sorted_neighbourhood.cc.o.d"
  "/root/repo/src/blocking/standard_blocking.cc" "src/blocking/CMakeFiles/rulelink_blocking.dir/standard_blocking.cc.o" "gcc" "src/blocking/CMakeFiles/rulelink_blocking.dir/standard_blocking.cc.o.d"
  "/root/repo/src/blocking/suffix_blocking.cc" "src/blocking/CMakeFiles/rulelink_blocking.dir/suffix_blocking.cc.o" "gcc" "src/blocking/CMakeFiles/rulelink_blocking.dir/suffix_blocking.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rulelink_core.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/rulelink_text.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rulelink_util.dir/DependInfo.cmake"
  "/root/repo/build/src/ontology/CMakeFiles/rulelink_ontology.dir/DependInfo.cmake"
  "/root/repo/build/src/rdf/CMakeFiles/rulelink_rdf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
