file(REMOVE_RECURSE
  "CMakeFiles/rulelink_blocking.dir/adaptive_sn.cc.o"
  "CMakeFiles/rulelink_blocking.dir/adaptive_sn.cc.o.d"
  "CMakeFiles/rulelink_blocking.dir/bigram_indexing.cc.o"
  "CMakeFiles/rulelink_blocking.dir/bigram_indexing.cc.o.d"
  "CMakeFiles/rulelink_blocking.dir/blocker.cc.o"
  "CMakeFiles/rulelink_blocking.dir/blocker.cc.o.d"
  "CMakeFiles/rulelink_blocking.dir/canopy.cc.o"
  "CMakeFiles/rulelink_blocking.dir/canopy.cc.o.d"
  "CMakeFiles/rulelink_blocking.dir/key_discovery.cc.o"
  "CMakeFiles/rulelink_blocking.dir/key_discovery.cc.o.d"
  "CMakeFiles/rulelink_blocking.dir/metrics.cc.o"
  "CMakeFiles/rulelink_blocking.dir/metrics.cc.o.d"
  "CMakeFiles/rulelink_blocking.dir/rule_blocker.cc.o"
  "CMakeFiles/rulelink_blocking.dir/rule_blocker.cc.o.d"
  "CMakeFiles/rulelink_blocking.dir/scheme_selector.cc.o"
  "CMakeFiles/rulelink_blocking.dir/scheme_selector.cc.o.d"
  "CMakeFiles/rulelink_blocking.dir/sorted_neighbourhood.cc.o"
  "CMakeFiles/rulelink_blocking.dir/sorted_neighbourhood.cc.o.d"
  "CMakeFiles/rulelink_blocking.dir/standard_blocking.cc.o"
  "CMakeFiles/rulelink_blocking.dir/standard_blocking.cc.o.d"
  "CMakeFiles/rulelink_blocking.dir/suffix_blocking.cc.o"
  "CMakeFiles/rulelink_blocking.dir/suffix_blocking.cc.o.d"
  "librulelink_blocking.a"
  "librulelink_blocking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rulelink_blocking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
