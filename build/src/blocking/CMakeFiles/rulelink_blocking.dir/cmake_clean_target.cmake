file(REMOVE_RECURSE
  "librulelink_blocking.a"
)
