file(REMOVE_RECURSE
  "librulelink_linking.a"
)
