file(REMOVE_RECURSE
  "CMakeFiles/rulelink_linking.dir/dedup.cc.o"
  "CMakeFiles/rulelink_linking.dir/dedup.cc.o.d"
  "CMakeFiles/rulelink_linking.dir/evaluation.cc.o"
  "CMakeFiles/rulelink_linking.dir/evaluation.cc.o.d"
  "CMakeFiles/rulelink_linking.dir/fellegi_sunter.cc.o"
  "CMakeFiles/rulelink_linking.dir/fellegi_sunter.cc.o.d"
  "CMakeFiles/rulelink_linking.dir/fusion.cc.o"
  "CMakeFiles/rulelink_linking.dir/fusion.cc.o.d"
  "CMakeFiles/rulelink_linking.dir/linker.cc.o"
  "CMakeFiles/rulelink_linking.dir/linker.cc.o.d"
  "CMakeFiles/rulelink_linking.dir/matcher.cc.o"
  "CMakeFiles/rulelink_linking.dir/matcher.cc.o.d"
  "CMakeFiles/rulelink_linking.dir/schema_matcher.cc.o"
  "CMakeFiles/rulelink_linking.dir/schema_matcher.cc.o.d"
  "librulelink_linking.a"
  "librulelink_linking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rulelink_linking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
