# Empty dependencies file for rulelink_linking.
# This may be replaced when dependencies are built.
