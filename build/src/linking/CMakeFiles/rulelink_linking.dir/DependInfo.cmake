
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linking/dedup.cc" "src/linking/CMakeFiles/rulelink_linking.dir/dedup.cc.o" "gcc" "src/linking/CMakeFiles/rulelink_linking.dir/dedup.cc.o.d"
  "/root/repo/src/linking/evaluation.cc" "src/linking/CMakeFiles/rulelink_linking.dir/evaluation.cc.o" "gcc" "src/linking/CMakeFiles/rulelink_linking.dir/evaluation.cc.o.d"
  "/root/repo/src/linking/fellegi_sunter.cc" "src/linking/CMakeFiles/rulelink_linking.dir/fellegi_sunter.cc.o" "gcc" "src/linking/CMakeFiles/rulelink_linking.dir/fellegi_sunter.cc.o.d"
  "/root/repo/src/linking/fusion.cc" "src/linking/CMakeFiles/rulelink_linking.dir/fusion.cc.o" "gcc" "src/linking/CMakeFiles/rulelink_linking.dir/fusion.cc.o.d"
  "/root/repo/src/linking/linker.cc" "src/linking/CMakeFiles/rulelink_linking.dir/linker.cc.o" "gcc" "src/linking/CMakeFiles/rulelink_linking.dir/linker.cc.o.d"
  "/root/repo/src/linking/matcher.cc" "src/linking/CMakeFiles/rulelink_linking.dir/matcher.cc.o" "gcc" "src/linking/CMakeFiles/rulelink_linking.dir/matcher.cc.o.d"
  "/root/repo/src/linking/schema_matcher.cc" "src/linking/CMakeFiles/rulelink_linking.dir/schema_matcher.cc.o" "gcc" "src/linking/CMakeFiles/rulelink_linking.dir/schema_matcher.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/blocking/CMakeFiles/rulelink_blocking.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/rulelink_core.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/rulelink_text.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rulelink_util.dir/DependInfo.cmake"
  "/root/repo/build/src/ontology/CMakeFiles/rulelink_ontology.dir/DependInfo.cmake"
  "/root/repo/build/src/rdf/CMakeFiles/rulelink_rdf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
