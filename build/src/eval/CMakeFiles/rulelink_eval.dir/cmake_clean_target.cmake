file(REMOVE_RECURSE
  "librulelink_eval.a"
)
