# Empty dependencies file for rulelink_eval.
# This may be replaced when dependencies are built.
