file(REMOVE_RECURSE
  "CMakeFiles/rulelink_eval.dir/holdout.cc.o"
  "CMakeFiles/rulelink_eval.dir/holdout.cc.o.d"
  "CMakeFiles/rulelink_eval.dir/report.cc.o"
  "CMakeFiles/rulelink_eval.dir/report.cc.o.d"
  "CMakeFiles/rulelink_eval.dir/table1.cc.o"
  "CMakeFiles/rulelink_eval.dir/table1.cc.o.d"
  "CMakeFiles/rulelink_eval.dir/tuner.cc.o"
  "CMakeFiles/rulelink_eval.dir/tuner.cc.o.d"
  "librulelink_eval.a"
  "librulelink_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rulelink_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
