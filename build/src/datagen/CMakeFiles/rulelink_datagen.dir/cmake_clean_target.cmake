file(REMOVE_RECURSE
  "librulelink_datagen.a"
)
