file(REMOVE_RECURSE
  "CMakeFiles/rulelink_datagen.dir/dataset.cc.o"
  "CMakeFiles/rulelink_datagen.dir/dataset.cc.o.d"
  "CMakeFiles/rulelink_datagen.dir/generator.cc.o"
  "CMakeFiles/rulelink_datagen.dir/generator.cc.o.d"
  "CMakeFiles/rulelink_datagen.dir/ontology_gen.cc.o"
  "CMakeFiles/rulelink_datagen.dir/ontology_gen.cc.o.d"
  "CMakeFiles/rulelink_datagen.dir/typo.cc.o"
  "CMakeFiles/rulelink_datagen.dir/typo.cc.o.d"
  "librulelink_datagen.a"
  "librulelink_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rulelink_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
