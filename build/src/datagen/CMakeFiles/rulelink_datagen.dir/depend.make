# Empty dependencies file for rulelink_datagen.
# This may be replaced when dependencies are built.
