file(REMOVE_RECURSE
  "CMakeFiles/rulelink_util.dir/logging.cc.o"
  "CMakeFiles/rulelink_util.dir/logging.cc.o.d"
  "CMakeFiles/rulelink_util.dir/rng.cc.o"
  "CMakeFiles/rulelink_util.dir/rng.cc.o.d"
  "CMakeFiles/rulelink_util.dir/status.cc.o"
  "CMakeFiles/rulelink_util.dir/status.cc.o.d"
  "CMakeFiles/rulelink_util.dir/string_util.cc.o"
  "CMakeFiles/rulelink_util.dir/string_util.cc.o.d"
  "CMakeFiles/rulelink_util.dir/table.cc.o"
  "CMakeFiles/rulelink_util.dir/table.cc.o.d"
  "CMakeFiles/rulelink_util.dir/union_find.cc.o"
  "CMakeFiles/rulelink_util.dir/union_find.cc.o.d"
  "librulelink_util.a"
  "librulelink_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rulelink_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
