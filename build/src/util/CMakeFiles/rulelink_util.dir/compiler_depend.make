# Empty compiler generated dependencies file for rulelink_util.
# This may be replaced when dependencies are built.
