file(REMOVE_RECURSE
  "librulelink_util.a"
)
