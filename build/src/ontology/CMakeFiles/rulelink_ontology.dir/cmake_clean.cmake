file(REMOVE_RECURSE
  "CMakeFiles/rulelink_ontology.dir/instance_index.cc.o"
  "CMakeFiles/rulelink_ontology.dir/instance_index.cc.o.d"
  "CMakeFiles/rulelink_ontology.dir/materialize.cc.o"
  "CMakeFiles/rulelink_ontology.dir/materialize.cc.o.d"
  "CMakeFiles/rulelink_ontology.dir/ontology.cc.o"
  "CMakeFiles/rulelink_ontology.dir/ontology.cc.o.d"
  "librulelink_ontology.a"
  "librulelink_ontology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rulelink_ontology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
