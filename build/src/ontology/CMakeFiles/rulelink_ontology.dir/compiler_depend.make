# Empty compiler generated dependencies file for rulelink_ontology.
# This may be replaced when dependencies are built.
