file(REMOVE_RECURSE
  "librulelink_ontology.a"
)
