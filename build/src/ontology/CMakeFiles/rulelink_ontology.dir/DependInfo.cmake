
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ontology/instance_index.cc" "src/ontology/CMakeFiles/rulelink_ontology.dir/instance_index.cc.o" "gcc" "src/ontology/CMakeFiles/rulelink_ontology.dir/instance_index.cc.o.d"
  "/root/repo/src/ontology/materialize.cc" "src/ontology/CMakeFiles/rulelink_ontology.dir/materialize.cc.o" "gcc" "src/ontology/CMakeFiles/rulelink_ontology.dir/materialize.cc.o.d"
  "/root/repo/src/ontology/ontology.cc" "src/ontology/CMakeFiles/rulelink_ontology.dir/ontology.cc.o" "gcc" "src/ontology/CMakeFiles/rulelink_ontology.dir/ontology.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rdf/CMakeFiles/rulelink_rdf.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rulelink_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
