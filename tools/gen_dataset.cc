// rulelink-gen — writes the synthetic electronic-components corpus to RDF
// files so the rulelink CLI (and any external tool) can consume it:
//
//   rulelink-gen --out-dir /tmp/corpus [--seed 42] [--catalog 30000]
//                [--links 10265]
//
// Produces <out-dir>/local.nt (ontology + typed catalog),
// <out-dir>/external.nt (provider documents) and <out-dir>/links.nt
// (owl:sameAs expert links).
#include <fstream>
#include <iostream>
#include <string>

#include "datagen/generator.h"
#include "rdf/ntriples.h"

int main(int argc, char** argv) {
  using namespace rulelink;

  std::string out_dir = ".";
  datagen::DatasetConfig config;
  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string flag = argv[i];
    const std::string value = argv[i + 1];
    if (flag == "--out-dir") {
      out_dir = value;
    } else if (flag == "--seed") {
      config.seed = std::stoull(value);
    } else if (flag == "--catalog") {
      config.catalog_size = std::stoull(value);
    } else if (flag == "--links") {
      config.num_links = std::stoull(value);
    } else {
      std::cerr << "unknown flag " << flag << "\n";
      return 2;
    }
  }

  auto dataset = datagen::DatasetGenerator(config).Generate();
  if (!dataset.ok()) {
    std::cerr << dataset.status() << "\n";
    return 1;
  }
  const auto write = [&](const std::string& name, const rdf::Graph& graph) {
    const std::string path = out_dir + "/" + name;
    std::ofstream out(path, std::ios::binary);
    if (!out) {
      std::cerr << "cannot write " << path << "\n";
      return false;
    }
    rdf::WriteNTriples(graph, out);
    std::cerr << "wrote " << path << " (" << graph.size() << " triples)\n";
    return true;
  };
  if (!write("local.nt", datagen::BuildLocalGraph(*dataset))) return 1;
  if (!write("external.nt", datagen::BuildExternalGraph(*dataset))) return 1;
  if (!write("links.nt", datagen::BuildLinksGraph(*dataset))) return 1;
  return 0;
}
