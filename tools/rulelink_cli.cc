// rulelink — command-line front end for the library.
//
//   rulelink learn    --local cat.ttl --external prov.nt --links ts.nt
//                     [--threshold 0.002] [--property IRI]... --out rules.tsv
//   rulelink classify --local cat.ttl --rules rules.tsv
//                     (--external prov.nt | --external-csv prov.csv
//                      --id-column sku [--property-prefix P])
//                     [--min-confidence 0.4] [--candidates]
//   rulelink evaluate --local cat.ttl --external prov.nt --links ts.nt
//                     [--threshold 0.002] [--property IRI]...
//   rulelink serve    --local cat.nt (--external prov.nt |
//                      --external-csv prov.csv --id-column sku)
//                     [--key-property IRI] [--key-prefix 5]
//                     [--property IRI]... [--threshold 0.75] [--all]
//                     [--clients N] [--delta more.nt]...
//                     [--links ts.nt [--rules-out rules.tsv]
//                      [--rule-threshold 0.002]]
//
// serve keeps the local catalog resident in a linking::ServeEngine
// snapshot and answers each external item as a point query over it —
// lock-free reads under epoch reclamation, same links as a batch run.
// Each --delta file appends its items through an incremental
// PublishDelta (dictionary, feature cache and candidate index extend the
// predecessor generation in place of a rebuild); --links ingests
// validated same-as links into the IncrementalRuleLearner and hot-swaps
// the learned classification rules onto a fresh generation atomically.
//
// Local files ending in .ttl are parsed as Turtle, everything else as
// N-Triples. The local file must contain the ontology (owl:Class /
// rdfs:subClassOf) and the typed catalog instances.
#include <atomic>
#include <cstdlib>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/classifier.h"
#include "core/incremental.h"
#include "core/learner.h"
#include "core/linking_space.h"
#include "blocking/key_discovery.h"
#include "blocking/standard_blocking.h"
#include "core/rule_io.h"
#include "core/training_set.h"
#include "eval/report.h"
#include "eval/table1.h"
#include "io/item_loader.h"
#include "linking/dedup.h"
#include "linking/serve_engine.h"
#include "obs/metrics.h"
#include "ontology/instance_index.h"
#include "rdf/ntriples.h"
#include "rdf/sparql.h"
#include "rdf/turtle.h"
#include "text/segmenter.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace {

using rulelink::util::Status;

struct Args {
  std::string command;
  std::map<std::string, std::string> options;
  std::vector<std::string> properties;  // repeatable --property
  std::vector<std::string> deltas;      // repeatable --delta (serve)
};

void PrintUsage() {
  std::cerr <<
      "usage: rulelink <learn|classify|evaluate|query|dedup|serve>"
      " [options]\n"
      "  learn     --local F --external F --links F --out F\n"
      "            [--threshold 0.002] [--property IRI]... [--threads N]\n"
      "  classify  --local F --rules F (--external F | --external-csv F\n"
      "            --id-column NAME [--property-prefix P])\n"
      "            [--min-confidence X] [--candidates] [--threads N]\n"
      "  evaluate  --local F --external F --links F [--threshold 0.002]\n"
      "            [--property IRI]... [--threads N]\n"
      "  query     --data F --sparql 'SELECT ... WHERE { ... }'\n"
      "  dedup     (--external F | --external-csv F --id-column NAME)\n"
      "            [--key-property IRI] [--similarity 0.95]\n"
      "  serve     --local F (--external F | --external-csv F\n"
      "            --id-column NAME) [--key-property IRI] [--key-prefix 5]\n"
      "            [--property IRI]... [--threshold 0.75] [--all]\n"
      "            [--clients N] [--delta F]...\n"
      "            [--links F [--rules-out F] [--rule-threshold 0.002]]\n"
      "--delta F (serve, repeatable) appends F's items as an incremental\n"
      "generation; --links F learns classification rules from validated\n"
      "links (needs RDF --external) and hot-swaps them atomically.\n"
      "--threads N uses N workers (0 = hardware concurrency, 1 = serial);\n"
      "results are identical at every thread count.\n"
      "--pin-threads (any command; or RULELINK_PIN_THREADS=1) pins pool\n"
      "workers to cores — a scheduling hint only, results are unchanged.\n"
      "--metrics-out F (any command) writes a metrics snapshot — stage\n"
      "timings, pipeline trace, counters and histograms — as JSON to F.\n";
}

bool ParseArgs(int argc, char** argv, Args* args) {
  if (argc < 2) return false;
  args->command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string flag = argv[i];
    if (flag.rfind("--", 0) != 0) return false;
    flag = flag.substr(2);
    if (flag == "candidates" || flag == "pin-threads" || flag == "all") {
      args->options[flag] = "true";
      continue;
    }
    if (i + 1 >= argc) return false;
    const std::string value = argv[++i];
    if (flag == "property") {
      args->properties.push_back(value);
    } else if (flag == "delta") {
      args->deltas.push_back(value);
    } else {
      args->options[flag] = value;
    }
  }
  return true;
}

std::string Opt(const Args& args, const std::string& key,
                const std::string& fallback = "") {
  auto it = args.options.find(key);
  return it == args.options.end() ? fallback : it->second;
}

// The worker count shared by every parallel phase: 1 = serial (the
// default), 0 = hardware concurrency.
std::size_t Threads(const Args& args) {
  return static_cast<std::size_t>(std::stoul(Opt(args, "threads", "1")));
}

Status LoadExternalItems(const Args& args,
                         std::vector<rulelink::core::Item>* items);

Status LoadRdf(const std::string& path, rulelink::rdf::Graph* graph) {
  if (rulelink::util::EndsWith(path, ".ttl")) {
    return rulelink::rdf::ParseTurtleFile(path, graph);
  }
  return rulelink::rdf::ParseNTriplesFile(path, graph);
}

// Extracts items (with literal facts) from an RDF graph.
std::vector<rulelink::core::Item> ItemsFromGraph(
    const rulelink::rdf::Graph& graph) {
  std::vector<rulelink::core::Item> items;
  const auto& dict = graph.dict();
  for (rulelink::rdf::TermId subject : graph.DistinctSubjects()) {
    rulelink::core::Item item;
    item.iri = dict.term(subject).lexical();
    graph.ForEachMatch(
        rulelink::rdf::TriplePattern{subject, rulelink::rdf::kInvalidTermId,
                                     rulelink::rdf::kInvalidTermId},
        [&](const rulelink::rdf::Triple& t) {
          const auto& object = dict.term(t.object);
          if (object.is_literal()) {
            item.facts.push_back(rulelink::core::PropertyValue{
                dict.term(t.predicate).lexical(), object.lexical()});
          }
          return true;
        });
    if (!item.facts.empty()) items.push_back(std::move(item));
  }
  return items;
}

int RunLearn(const Args& args, rulelink::obs::MetricsRegistry* metrics) {
  rulelink::rdf::Graph local, external, links;
  for (const auto& [key, graph] :
       std::initializer_list<std::pair<const char*, rulelink::rdf::Graph*>>{
           {"local", &local}, {"external", &external}, {"links", &links}}) {
    const std::string path = Opt(args, key);
    if (path.empty()) {
      std::cerr << "missing --" << key << "\n";
      return 2;
    }
    if (auto s = LoadRdf(path, graph); !s.ok()) {
      std::cerr << path << ": " << s << "\n";
      return 1;
    }
  }
  auto onto = rulelink::ontology::Ontology::FromGraph(local);
  if (!onto.ok()) {
    std::cerr << "ontology: " << onto.status() << "\n";
    return 1;
  }
  const auto index =
      rulelink::ontology::InstanceIndex::Build(local, *onto);
  std::size_t skipped = 0;
  auto ts = rulelink::core::TrainingSet::FromGraphs(external, links, index,
                                                    &skipped);
  if (!ts.ok()) {
    std::cerr << "training set: " << ts.status() << "\n";
    return 1;
  }
  std::cerr << "training set: " << ts->size() << " links (" << skipped
            << " skipped)\n";

  const rulelink::text::SeparatorSegmenter segmenter;
  rulelink::core::LearnerOptions options;
  options.support_threshold =
      std::stod(Opt(args, "threshold", "0.002"));
  options.segmenter = &segmenter;
  options.properties = args.properties;
  options.num_threads = Threads(args);
  rulelink::core::LearnStats stats;
  auto rules =
      rulelink::core::RuleLearner(options).Learn(*ts, &stats, metrics);
  if (!rules.ok()) {
    std::cerr << "learner: " << rules.status() << "\n";
    return 1;
  }
  std::cerr << rulelink::eval::FormatLearnStats(stats, false);

  const std::string out = Opt(args, "out");
  if (out.empty()) {
    std::cout << rulelink::core::WriteRules(*rules, *onto);
  } else if (auto s = rulelink::core::WriteRulesToFile(*rules, *onto, out);
             !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  } else {
    std::cerr << "wrote " << rules->size() << " rules to " << out << "\n";
  }
  return 0;
}

int RunClassify(const Args& args, rulelink::obs::MetricsRegistry* metrics) {
  rulelink::rdf::Graph local;
  if (auto s = LoadRdf(Opt(args, "local"), &local); !s.ok()) {
    std::cerr << "local: " << s << "\n";
    return 1;
  }
  auto onto = rulelink::ontology::Ontology::FromGraph(local);
  if (!onto.ok()) {
    std::cerr << "ontology: " << onto.status() << "\n";
    return 1;
  }
  auto rules =
      rulelink::core::ReadRulesFromFile(Opt(args, "rules"), *onto);
  if (!rules.ok()) {
    std::cerr << "rules: " << rules.status() << "\n";
    return 1;
  }

  std::vector<rulelink::core::Item> items;
  if (auto s = LoadExternalItems(args, &items); !s.ok()) {
    std::cerr << "external: " << s << "\n";
    return 1;
  }

  const double min_confidence =
      std::stod(Opt(args, "min-confidence", "0"));
  const bool with_candidates = Opt(args, "candidates") == "true";
  const rulelink::text::SeparatorSegmenter segmenter;
  const rulelink::core::RuleClassifier classifier(&*rules, &segmenter);
  const auto index = rulelink::ontology::InstanceIndex::Build(local, *onto);
  const rulelink::core::LinkingSpaceAnalyzer analyzer(&classifier, &index);

  // Classification runs as one parallel batch; output order stays the
  // input item order regardless of the thread count.
  std::vector<std::vector<rulelink::core::ClassPrediction>> batch;
  {
    const rulelink::obs::MetricsRegistry::StageScope stage(metrics,
                                                           "cli/classify");
    batch = classifier.ClassifyBatch(items, min_confidence, Threads(args));
  }
  if (metrics != nullptr) {
    std::size_t unclassified = 0;
    for (const auto& predictions : batch) {
      if (predictions.empty()) ++unclassified;
    }
    metrics->AddCounter("classify/items", items.size());
    metrics->AddCounter("classify/unclassified", unclassified);
  }
  for (std::size_t item_index = 0; item_index < items.size(); ++item_index) {
    const auto& item = items[item_index];
    const auto& predictions = batch[item_index];
    std::cout << item.iri << "\t";
    if (predictions.empty()) {
      std::cout << "(unclassified)\n";
      continue;
    }
    for (std::size_t i = 0; i < predictions.size(); ++i) {
      if (i) std::cout << " ";
      std::cout << onto->iri(predictions[i].cls) << "@"
                << rulelink::util::FormatDouble(predictions[i].confidence, 3);
    }
    if (with_candidates) {
      std::cout << "\tcandidates="
                << analyzer.SubspaceSize(
                       item, min_confidence,
                       rulelink::core::UnclassifiedPolicy::kSkip);
    }
    std::cout << "\n";
  }
  return 0;
}

int RunEvaluate(const Args& args, rulelink::obs::MetricsRegistry* metrics) {
  rulelink::rdf::Graph local, external, links;
  for (const auto& [key, graph] :
       std::initializer_list<std::pair<const char*, rulelink::rdf::Graph*>>{
           {"local", &local}, {"external", &external}, {"links", &links}}) {
    if (auto s = LoadRdf(Opt(args, key), graph); !s.ok()) {
      std::cerr << key << ": " << s << "\n";
      return 1;
    }
  }
  auto onto = rulelink::ontology::Ontology::FromGraph(local);
  if (!onto.ok()) {
    std::cerr << onto.status() << "\n";
    return 1;
  }
  const auto index = rulelink::ontology::InstanceIndex::Build(local, *onto);
  auto ts = rulelink::core::TrainingSet::FromGraphs(external, links, index,
                                                    nullptr);
  if (!ts.ok()) {
    std::cerr << ts.status() << "\n";
    return 1;
  }
  const double threshold = std::stod(Opt(args, "threshold", "0.002"));
  const std::size_t num_threads = Threads(args);
  const rulelink::text::SeparatorSegmenter segmenter;
  rulelink::core::LearnerOptions options;
  options.support_threshold = threshold;
  options.segmenter = &segmenter;
  options.properties = args.properties;
  options.num_threads = num_threads;
  rulelink::core::LearnStats stats;
  auto rules =
      rulelink::core::RuleLearner(options).Learn(*ts, &stats, metrics);
  if (!rules.ok()) {
    std::cerr << rules.status() << "\n";
    return 1;
  }
  std::cout << rulelink::eval::FormatLearnStats(stats, true) << "\n";
  const rulelink::eval::Table1Evaluator evaluator(&*rules, &segmenter,
                                                  threshold);
  std::cout << rulelink::eval::FormatTable1(
      evaluator.Evaluate(*ts, {1.0, 0.8, 0.6, 0.4}, num_threads, metrics),
      true);
  return 0;
}

Status LoadExternalItems(const Args& args,
                         std::vector<rulelink::core::Item>* items) {
  if (!Opt(args, "external-csv").empty()) {
    rulelink::io::ItemCsvMapping mapping;
    mapping.id_column = Opt(args, "id-column", "id");
    mapping.iri_prefix = "urn:csv:";
    mapping.property_prefix = Opt(args, "property-prefix", "");
    auto table = rulelink::io::ParseCsvFile(Opt(args, "external-csv"));
    if (!table.ok()) return table.status();
    auto loaded = rulelink::io::ItemsFromCsv(*table, mapping);
    if (!loaded.ok()) return loaded.status();
    *items = std::move(loaded).value();
    return rulelink::util::OkStatus();
  }
  rulelink::rdf::Graph external;
  RL_RETURN_IF_ERROR(LoadRdf(Opt(args, "external"), &external));
  *items = ItemsFromGraph(external);
  return rulelink::util::OkStatus();
}

int RunDedup(const Args& args, rulelink::obs::MetricsRegistry* metrics) {
  std::vector<rulelink::core::Item> items;
  if (auto s = LoadExternalItems(args, &items); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  std::string key = Opt(args, "key-property");
  if (key.empty()) {
    key = rulelink::blocking::BestKeyProperty(items);
    if (key.empty()) {
      std::cerr << "no property to dedup on\n";
      return 1;
    }
    std::cerr << "using discovered key property: " << key << "\n";
  }
  const double threshold = std::stod(Opt(args, "similarity", "0.95"));
  const rulelink::blocking::StandardBlocker blocker(key, 5);
  const rulelink::linking::ItemMatcher matcher(
      {{key, key, rulelink::linking::SimilarityMeasure::kJaroWinkler, 1.0}});
  rulelink::linking::DedupResult result;
  {
    const rulelink::obs::MetricsRegistry::StageScope stage(metrics,
                                                           "cli/dedup");
    result = rulelink::linking::Deduplicate(items, blocker, matcher,
                                            threshold);
  }
  if (metrics != nullptr) {
    metrics->AddCounter("dedup/items", items.size());
    metrics->AddCounter("dedup/duplicate_clusters",
                        result.duplicate_clusters.size());
    metrics->AddCounter("dedup/survivors", result.survivors.size());
    metrics->AddCounter("dedup/comparisons", result.comparisons);
  }
  for (const auto& cluster : result.duplicate_clusters) {
    for (std::size_t i = 0; i < cluster.size(); ++i) {
      if (i) std::cout << "\t";
      std::cout << items[cluster[i]].iri;
    }
    std::cout << "\n";
  }
  std::cerr << result.duplicate_clusters.size() << " duplicate cluster(s), "
            << result.survivors.size() << " of " << items.size()
            << " items survive (" << result.comparisons
            << " comparisons)\n";
  return 0;
}

int RunServe(const Args& args, rulelink::obs::MetricsRegistry* metrics) {
  namespace linking = rulelink::linking;
  rulelink::rdf::Graph local_graph;
  if (auto s = LoadRdf(Opt(args, "local"), &local_graph); !s.ok()) {
    std::cerr << "local: " << s << "\n";
    return 1;
  }
  std::vector<rulelink::core::Item> locals = ItemsFromGraph(local_graph);
  std::vector<rulelink::core::Item> queries;
  if (auto s = LoadExternalItems(args, &queries); !s.ok()) {
    std::cerr << "external: " << s << "\n";
    return 1;
  }

  std::string key = Opt(args, "key-property");
  if (key.empty()) {
    key = rulelink::blocking::BestKeyProperty(locals);
    if (key.empty()) {
      std::cerr << "no property to block on\n";
      return 1;
    }
    std::cerr << "using discovered key property: " << key << "\n";
  }
  const std::size_t key_prefix =
      static_cast<std::size_t>(std::stoul(Opt(args, "key-prefix", "5")));
  std::vector<linking::AttributeRule> rules;
  for (const std::string& property :
       args.properties.empty() ? std::vector<std::string>{key}
                               : args.properties) {
    rules.push_back({property, property,
                     linking::SimilarityMeasure::kJaroWinkler, 1.0});
  }
  const double threshold = std::stod(Opt(args, "threshold", "0.75"));
  const linking::Linker::Strategy strategy =
      Opt(args, "all") == "true"
          ? linking::Linker::Strategy::kAllAboveThreshold
          : linking::Linker::Strategy::kBestPerExternal;
  const rulelink::blocking::StandardBlocker blocker(key, key_prefix);

  // The snapshot takes the catalog; keep the IRIs for printing links.
  std::vector<std::string> local_iris;
  local_iris.reserve(locals.size());
  for (const auto& item : locals) local_iris.push_back(item.iri);

  linking::ServeEngine engine;
  {
    const rulelink::obs::MetricsRegistry::StageScope stage(metrics,
                                                           "serve/publish");
    engine.Publish(std::make_unique<linking::ServeSnapshot>(
        std::move(locals), linking::ItemMatcher(rules), threshold, strategy,
        blocker, Threads(args), metrics));
  }

  // Each --delta file becomes one incremental generation: its items are
  // appended through PublishDelta (dictionary/feature-cache/index extend
  // the predecessor) and serve alongside the base catalog below.
  for (const std::string& path : args.deltas) {
    rulelink::rdf::Graph delta_graph;
    if (auto s = LoadRdf(path, &delta_graph); !s.ok()) {
      std::cerr << "delta " << path << ": " << s << "\n";
      return 1;
    }
    linking::CatalogDelta delta;
    delta.appended = ItemsFromGraph(delta_graph);
    for (const auto& item : delta.appended) local_iris.push_back(item.iri);
    const std::uint64_t generation =
        engine.PublishDelta(std::move(delta), blocker, nullptr, metrics);
    std::cerr << "delta " << path << ": generation " << generation << ", "
              << local_iris.size() << " items resident\n";
  }

  // Validated links feed the incremental learner; the learned rule set
  // rides a fresh generation via a catalog-free delta publish, so rules
  // and snapshot swap atomically under the one generation stamp.
  if (const std::string links_path = Opt(args, "links");
      !links_path.empty()) {
    const std::string external_path = Opt(args, "external");
    if (external_path.empty()) {
      std::cerr << "--links needs an RDF --external describing the linked "
                   "items\n";
      return 2;
    }
    rulelink::rdf::Graph external_graph, links_graph;
    if (auto s = LoadRdf(external_path, &external_graph); !s.ok()) {
      std::cerr << "external: " << s << "\n";
      return 1;
    }
    if (auto s = LoadRdf(links_path, &links_graph); !s.ok()) {
      std::cerr << "links: " << s << "\n";
      return 1;
    }
    auto onto = rulelink::ontology::Ontology::FromGraph(local_graph);
    if (!onto.ok()) {
      std::cerr << "ontology: " << onto.status() << "\n";
      return 1;
    }
    const auto index =
        rulelink::ontology::InstanceIndex::Build(local_graph, *onto);
    std::size_t skipped = 0;
    auto ts = rulelink::core::TrainingSet::FromGraphs(
        external_graph, links_graph, index, &skipped);
    if (!ts.ok()) {
      std::cerr << "training set: " << ts.status() << "\n";
      return 1;
    }
    const rulelink::text::SeparatorSegmenter segmenter;
    rulelink::core::IncrementalRuleLearner learner(&*onto, &segmenter,
                                                   args.properties);
    for (const auto& example : ts->examples()) {
      rulelink::core::Item item;
      item.iri = example.external_iri;
      for (const auto& [property, value] : example.facts) {
        item.facts.push_back(rulelink::core::PropertyValue{
            ts->properties().name(property), value});
      }
      learner.AddExample(item, example.classes);
    }
    auto learned = learner.BuildRules(
        std::stod(Opt(args, "rule-threshold", "0.002")));
    if (!learned.ok()) {
      std::cerr << "incremental learner: " << learned.status() << "\n";
      return 1;
    }
    std::cerr << "incremental learner: " << ts->size() << " links ("
              << skipped << " skipped) -> " << learned->size()
              << " rules\n";
    if (const std::string rules_out = Opt(args, "rules-out");
        !rules_out.empty()) {
      if (auto s =
              rulelink::core::WriteRulesToFile(*learned, *onto, rules_out);
          !s.ok()) {
        std::cerr << s << "\n";
        return 1;
      }
      std::cerr << "wrote rules to " << rules_out << "\n";
    }
    linking::ServePolicy policy;
    policy.threshold = threshold;
    policy.strategy = strategy;
    policy.rules = std::make_shared<const rulelink::core::RuleSet>(
        std::move(*learned));
    const std::uint64_t generation =
        engine.PublishDelta({}, blocker, &policy, metrics);
    std::cerr << "rule hot-swap: generation " << generation << " carries "
              << policy.rules->size() << " classification rules\n";
  }

  const std::size_t clients = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::stoul(Opt(args, "clients", "1"))));
  std::vector<std::vector<linking::Link>> answers(queries.size());
  std::size_t pairs_scored = 0;
  {
    const rulelink::obs::MetricsRegistry::StageScope stage(metrics,
                                                           "serve/queries");
    std::atomic<std::size_t> ticket{0};
    std::atomic<std::size_t> total_pairs{0};
    auto client = [&] {
      linking::ServeEngine::Session session(&engine);
      std::size_t q;
      while ((q = ticket.fetch_add(1, std::memory_order_relaxed)) <
             queries.size()) {
        session.Query(queries[q], &answers[q], q);
      }
      total_pairs.fetch_add(session.pairs_scored(),
                            std::memory_order_relaxed);
    };
    if (clients == 1) {
      client();
    } else {
      std::vector<std::thread> workers;
      for (std::size_t c = 0; c < clients; ++c) workers.emplace_back(client);
      for (std::thread& worker : workers) worker.join();
    }
    pairs_scored = total_pairs.load(std::memory_order_relaxed);
  }

  // Answers print in query order whatever the client count — sessions
  // only ever fill their own tickets' slots.
  std::size_t num_links = 0;
  for (std::size_t q = 0; q < queries.size(); ++q) {
    for (const linking::Link& link : answers[q]) {
      ++num_links;
      std::cout << queries[q].iri << "\t" << local_iris[link.local_index]
                << "\t" << rulelink::util::FormatDouble(link.score, 4)
                << "\n";
    }
  }
  const rulelink::util::EpochStats epochs = engine.epoch_stats();
  if (metrics != nullptr) {
    metrics->AddCounter("serve/queries", queries.size());
    metrics->AddCounter("serve/links", num_links);
    metrics->AddCounter("serve/pairs_scored", pairs_scored);
    metrics->AddCounter("serve/epoch_pins", epochs.pins);
    metrics->AddCounter("serve/epoch_pin_retries", epochs.pin_retries);
  }
  std::cerr << queries.size() << " queries -> " << num_links << " links ("
            << pairs_scored << " pairs scored, " << clients << " client(s), "
            << "epoch pins " << epochs.pins << ", retries "
            << epochs.pin_retries << ", reader blocks "
            << epochs.reader_blocks << ")\n";
  return 0;
}

int RunQuery(const Args& args, rulelink::obs::MetricsRegistry* metrics) {
  rulelink::rdf::Graph data;
  if (auto s = LoadRdf(Opt(args, "data"), &data); !s.ok()) {
    std::cerr << "data: " << s << "\n";
    return 1;
  }
  const rulelink::obs::MetricsRegistry::StageScope stage(metrics,
                                                         "cli/query");
  auto rows = rulelink::rdf::RunSparql(data, Opt(args, "sparql"));
  if (!rows.ok()) {
    std::cerr << rows.status() << "\n";
    return 1;
  }
  if (metrics != nullptr) metrics->AddCounter("query/rows", rows->size());
  for (const auto& row : *rows) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) std::cout << "\t";
      std::cout << row[i];
    }
    std::cout << "\n";
  }
  std::cerr << rows->size() << " rows\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    PrintUsage();
    return 2;
  }
  // Pinning must be decided before the first parallel region spawns pool
  // workers; it only affects where workers run, never what they compute.
  if (Opt(args, "pin-threads") == "true" ||
      [] {
        const char* env = std::getenv("RULELINK_PIN_THREADS");
        return env != nullptr && env[0] == '1' && env[1] == '\0';
      }()) {
    rulelink::util::SetThreadPinning(true);
  }
  // Instrumentation is armed only when a snapshot was requested; a null
  // registry keeps every command on the uninstrumented path.
  const std::string metrics_out = Opt(args, "metrics-out");
  rulelink::obs::MetricsRegistry registry;
  rulelink::obs::MetricsRegistry* metrics =
      metrics_out.empty() ? nullptr : &registry;

  int exit_code = 2;
  bool known = true;
  {
    const rulelink::obs::MetricsRegistry::StageScope stage(
        metrics, "cli/" + args.command);
    if (args.command == "learn") {
      exit_code = RunLearn(args, metrics);
    } else if (args.command == "classify") {
      exit_code = RunClassify(args, metrics);
    } else if (args.command == "evaluate") {
      exit_code = RunEvaluate(args, metrics);
    } else if (args.command == "query") {
      exit_code = RunQuery(args, metrics);
    } else if (args.command == "dedup") {
      exit_code = RunDedup(args, metrics);
    } else if (args.command == "serve") {
      exit_code = RunServe(args, metrics);
    } else {
      known = false;
    }
  }
  if (!known) {
    PrintUsage();
    return 2;
  }
  if (metrics != nullptr) {
    if (auto s = registry.Snapshot().WriteJsonFile(metrics_out); !s.ok()) {
      std::cerr << "metrics: " << s << "\n";
      if (exit_code == 0) exit_code = 1;
    } else {
      std::cerr << "wrote metrics snapshot to " << metrics_out << "\n";
    }
  }
  return exit_code;
}
