#!/usr/bin/env bash
# Builds and runs the test suite under AddressSanitizer and ThreadSanitizer,
# the configurations that lock down the parallel execution layer. Each
# sanitizer gets its own build tree (build-asan/, build-tsan/) so the plain
# build/ is never polluted with instrumented objects.
#
# Usage:
#   tools/ci_check.sh               # both sanitizers, full test suite
#   tools/ci_check.sh address       # ASan only
#   tools/ci_check.sh thread        # TSan only
#
# Environment:
#   CI_CHECK_TEST_FILTER  optional ctest -R regex (default: all tests)
#   CI_CHECK_JOBS         parallel build jobs (default: nproc)
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="${CI_CHECK_JOBS:-$(nproc)}"
FILTER="${CI_CHECK_TEST_FILTER:-}"

SANITIZERS=("address" "thread")
if [[ $# -ge 1 ]]; then
  SANITIZERS=("$@")
fi

run_config() {
  local sanitizer="$1"
  local build_dir="${ROOT}/build-${sanitizer:0:1}san"
  echo "=== ${sanitizer} sanitizer: configure + build (${build_dir}) ==="
  # Benchmarks and examples are not needed to validate the library under a
  # sanitizer, and skipping them roughly halves the instrumented build.
  local launcher_args=()
  if command -v ccache >/dev/null 2>&1; then
    launcher_args+=(-DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
  fi
  cmake -B "${build_dir}" -S "${ROOT}" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DRULELINK_SANITIZE="${sanitizer}" \
    -DRULELINK_BUILD_BENCHMARKS=OFF \
    -DRULELINK_BUILD_EXAMPLES=OFF \
    "${launcher_args[@]}"
  cmake --build "${build_dir}" -j "${JOBS}"

  echo "=== ${sanitizer} sanitizer: ctest ==="
  local ctest_args=(--test-dir "${build_dir}" --output-on-failure -j "${JOBS}")
  if [[ -n "${FILTER}" ]]; then
    ctest_args+=(-R "${FILTER}")
  fi
  if [[ "${sanitizer}" == "thread" ]]; then
    # Fail the run on any reported race, and keep going so one race does
    # not mask the rest of the suite.
    TSAN_OPTIONS="halt_on_error=0 exitcode=66" ctest "${ctest_args[@]}"
  else
    ASAN_OPTIONS="detect_leaks=1" ctest "${ctest_args[@]}"
  fi
}

for sanitizer in "${SANITIZERS[@]}"; do
  run_config "${sanitizer}"
done

echo "=== all sanitizer configurations passed ==="
