// Compares the paper's rule-based class filtering with the classic
// blocking families it surveys in §2 — cartesian (naive), standard key
// blocking, sorted neighbourhood, bi-gram indexing — on the synthetic
// electronic-components corpus, then runs the full linker on each
// candidate set to show the end-to-end cost/recall trade-off.
//
// Usage: blocking_comparison [catalog_size] [num_links]
#include <cstdlib>
#include <iostream>
#include <memory>

#include "blocking/bigram_indexing.h"
#include "blocking/metrics.h"
#include "blocking/rule_blocker.h"
#include "blocking/sorted_neighbourhood.h"
#include "blocking/standard_blocking.h"
#include "core/learner.h"
#include "datagen/generator.h"
#include "eval/report.h"
#include "linking/evaluation.h"
#include "linking/linker.h"
#include "text/segmenter.h"
#include "util/stopwatch.h"

int main(int argc, char** argv) {
  using namespace rulelink;

  datagen::DatasetConfig config;
  config.catalog_size = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 4000;
  config.num_links = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1500;
  auto dataset_or = datagen::DatasetGenerator(config).Generate();
  if (!dataset_or.ok()) {
    std::cerr << dataset_or.status() << "\n";
    return 1;
  }
  const datagen::Dataset& dataset = *dataset_or;

  // Gold matches: (external index, catalog index).
  std::vector<blocking::CandidatePair> gold;
  for (const auto& link : dataset.links) {
    gold.push_back(
        blocking::CandidatePair{link.external_index, link.catalog_index});
  }

  // Learn rules for the rule blocker.
  const core::TrainingSet ts = datagen::BuildTrainingSet(dataset);
  const text::SeparatorSegmenter segmenter;
  core::LearnerOptions options;
  options.support_threshold = 0.002;
  options.segmenter = &segmenter;
  options.properties = {datagen::props::kPartNumber};
  auto rules_or = core::RuleLearner(options).Learn(ts);
  if (!rules_or.ok()) {
    std::cerr << rules_or.status() << "\n";
    return 1;
  }
  const core::RuleClassifier classifier(&*rules_or, &segmenter);

  const std::string pn = datagen::props::kPartNumber;
  std::vector<std::unique_ptr<blocking::CandidateGenerator>> generators;
  generators.push_back(std::make_unique<blocking::CartesianBlocker>());
  generators.push_back(std::make_unique<blocking::StandardBlocker>(pn, 5));
  generators.push_back(
      std::make_unique<blocking::SortedNeighbourhoodBlocker>(pn, 10));
  generators.push_back(std::make_unique<blocking::BigramBlocker>(pn, 0.9));
  generators.push_back(std::make_unique<blocking::RuleBlocker>(
      &classifier, &dataset.ontology(), &dataset.catalog_classes,
      /*min_confidence=*/0.4, /*compare_all_when_unclassified=*/true));

  // Linker configuration: part number fuzzily, manufacturer exactly.
  const linking::ItemMatcher matcher({
      {pn, pn, linking::SimilarityMeasure::kJaroWinkler, 3.0},
      {datagen::props::kManufacturer, datagen::props::kManufacturer,
       linking::SimilarityMeasure::kExact, 1.0},
  });
  const linking::Linker linker(&matcher, /*threshold=*/0.92);

  std::cout << "external=" << dataset.external_items.size()
            << " local=" << dataset.catalog_items.size()
            << " gold matches=" << gold.size() << "\n\n";
  for (const auto& generator : generators) {
    util::Stopwatch timer;
    const auto candidates =
        generator->Generate(dataset.external_items, dataset.catalog_items);
    const double block_seconds = timer.ElapsedSeconds();
    const auto quality = blocking::EvaluateBlocking(
        candidates, gold, dataset.external_items.size(),
        dataset.catalog_items.size());
    std::cout << eval::FormatBlockingQuality(generator->name(), quality,
                                             block_seconds)
              << "\n";

    timer.Restart();
    linking::LinkerStats stats;
    const auto links = linker.Run(dataset.external_items,
                                  dataset.catalog_items, candidates, &stats);
    const auto linkage = linking::EvaluateLinks(links, gold);
    std::cout << "    end-to-end: pairs scored=" << stats.pairs_scored
              << " links=" << linkage.emitted << " P=" << linkage.precision
              << " R=" << linkage.recall << " F1=" << linkage.f1
              << " time=" << timer.ElapsedSeconds() << "s\n";
  }
  return 0;
}
