// The paper's introductory motivation beyond part numbers (§4): toponyms
// in rdfs:label often contain the type of the place — "Dresden Elbe
// Valley", "Copacabana Beach", "Louvre Museum" — so segments of the label
// predict the class. This example learns such rules from a small
// geographic training set and classifies unseen toponyms, demonstrating
// that the approach is domain-independent (§6: "to show the generality of
// our approach we plan to test it on data from other domains").
#include <iostream>
#include <vector>

#include "core/classifier.h"
#include "core/learner.h"
#include "core/training_set.h"
#include "ontology/ontology.h"
#include "text/segmenter.h"

int main() {
  using namespace rulelink;

  // Mini geographic ontology.
  ontology::Ontology onto;
  const auto place = onto.AddClass("geo:Place", "Place");
  const auto beach = onto.AddClass("geo:Beach", "Beach");
  const auto museum = onto.AddClass("geo:Museum", "Museum");
  const auto valley = onto.AddClass("geo:Valley", "Valley");
  const auto square = onto.AddClass("geo:Square", "Square");
  for (auto c : {beach, museum, valley, square}) {
    if (auto s = onto.AddSubClassOf(c, place); !s.ok()) {
      std::cerr << s << "\n";
      return 1;
    }
  }
  if (auto s = onto.Finalize(); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }

  // Expert-linked toponyms: (label, class). The label plays the role the
  // part-number played for electronic products.
  const std::vector<std::pair<std::string, ontology::ClassId>> gold = {
      {"Copacabana Beach", beach},       {"Bondi Beach", beach},
      {"Venice Beach", beach},           {"Ipanema Beach", beach},
      {"Louvre Museum", museum},         {"British Museum", museum},
      {"Prado Museum", museum},          {"Acropolis Museum", museum},
      {"Dresden Elbe Valley", valley},   {"Loire Valley", valley},
      {"Napa Valley", valley},           {"Rhine Valley", valley},
      {"Place de la Concorde", square},  {"Times Square", square},
      {"Red Square", square},            {"Trafalgar Square", square},
  };

  core::TrainingSet ts(onto);
  for (std::size_t i = 0; i < gold.size(); ++i) {
    core::Item item;
    item.iri = "ext:toponym" + std::to_string(i);
    item.facts.push_back(core::PropertyValue{"rdfs:label", gold[i].first});
    ts.AddExample(item, "local:place" + std::to_string(i), {gold[i].second});
  }

  // Labels split on spaces; every word is a candidate segment.
  const text::SeparatorSegmenter segmenter(" ");
  core::LearnerOptions options;
  options.support_threshold = 0.1;
  options.segmenter = &segmenter;
  auto rules_or = core::RuleLearner(options).Learn(ts);
  if (!rules_or.ok()) {
    std::cerr << rules_or.status() << "\n";
    return 1;
  }
  const core::RuleSet& rules = *rules_or;

  std::cout << "Learned " << rules.size() << " toponym rules:\n";
  for (const auto& rule : rules.rules()) {
    std::cout << "  " << core::RuleToString(rule, rules, onto)
              << "  [confidence=" << rule.confidence
              << " lift=" << rule.lift << "]\n";
  }

  // Classify unseen toponyms.
  const core::RuleClassifier classifier(&rules, &segmenter);
  const std::vector<std::string> unseen = {
      "Juhu Beach", "Orsay Museum", "Kathmandu Valley", "Wenceslas Square",
      "Mount Everest",  // no segment rule applies: stays unclassified
  };
  std::cout << "\nClassifying unseen toponyms:\n";
  for (const std::string& label : unseen) {
    core::Item item;
    item.iri = "ext:new";
    item.facts.push_back(core::PropertyValue{"rdfs:label", label});
    const auto predictions = classifier.Classify(item);
    std::cout << "  \"" << label << "\" -> ";
    if (predictions.empty()) {
      std::cout << "(no rule fires: compare with the whole source)\n";
    } else {
      std::cout << onto.label(predictions.front().cls)
                << " (confidence=" << predictions.front().confidence << ")\n";
    }
  }
  return 0;
}
