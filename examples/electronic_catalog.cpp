// End-to-end reproduction of the paper's electronic-products scenario:
// generate the synthetic Thales-like corpus, learn classification rules
// from the expert links with th = 0.002, print the §5 corpus statistics
// and Table 1 next to the paper's published values, and show the
// linking-space reduction the rules buy.
//
// Usage: electronic_catalog [seed]
#include <cstdlib>
#include <iostream>

#include "core/classifier.h"
#include "core/learner.h"
#include "core/linking_space.h"
#include "datagen/generator.h"
#include "eval/report.h"
#include "eval/table1.h"
#include "ontology/instance_index.h"
#include "text/segmenter.h"
#include "util/stopwatch.h"

int main(int argc, char** argv) {
  using namespace rulelink;

  datagen::DatasetConfig config;
  if (argc > 1) config.seed = std::strtoull(argv[1], nullptr, 10);

  std::cout << "Generating catalog (" << config.catalog_size
            << " products, " << config.num_links << " expert links, seed "
            << config.seed << ")...\n";
  util::Stopwatch timer;
  auto dataset_or = datagen::DatasetGenerator(config).Generate();
  if (!dataset_or.ok()) {
    std::cerr << "generation failed: " << dataset_or.status() << "\n";
    return 1;
  }
  const datagen::Dataset& dataset = *dataset_or;
  std::cout << "  done in " << timer.ElapsedMillis() << " ms; ontology has "
            << dataset.ontology().num_classes() << " classes ("
            << dataset.taxonomy.leaves.size() << " leaves)\n\n";

  // --- Learn rules from the training set (the expert same-as links). ---
  const core::TrainingSet ts = datagen::BuildTrainingSet(dataset);
  const text::SeparatorSegmenter segmenter;  // split on non-alphanumerics
  core::LearnerOptions options;
  options.support_threshold = 0.002;
  options.segmenter = &segmenter;
  options.properties = {datagen::props::kPartNumber};  // the expert's pick

  timer.Restart();
  core::LearnStats stats;
  auto rules_or = core::RuleLearner(options).Learn(ts, &stats);
  if (!rules_or.ok()) {
    std::cerr << "learning failed: " << rules_or.status() << "\n";
    return 1;
  }
  const core::RuleSet& rules = *rules_or;
  std::cout << "Learned " << rules.size() << " rules in "
            << timer.ElapsedMillis() << " ms\n\n";

  std::cout << "Corpus statistics (paper §5):\n"
            << eval::FormatLearnStats(stats, /*with_paper_reference=*/true)
            << "\n";

  // --- Table 1. ---
  const eval::Table1Evaluator evaluator(&rules, &segmenter,
                                        options.support_threshold);
  const eval::Table1Result table1 = evaluator.Evaluate(ts);
  std::cout << "Table 1 (measured vs paper):\n"
            << eval::FormatTable1(table1, /*with_paper_reference=*/true)
            << "classifiable items (recall denominator): "
            << table1.classifiable_items << " (paper: ~7266)\n\n";

  // --- A few example rules, as the paper quotes "ohm" and "T83". ---
  std::cout << "Top rules:\n";
  for (std::size_t i = 0; i < rules.size() && i < 8; ++i) {
    const auto& rule = rules.rules()[i];
    std::cout << "  " << core::RuleToString(rule, rules,
                                            dataset.ontology())
              << "  [conf=" << rule.confidence << " lift=" << rule.lift
              << " support=" << rule.support << "]\n";
  }
  std::cout << "\n";

  // --- Linking-space reduction over the whole catalog. ---
  const rdf::Graph local_graph = datagen::BuildLocalGraph(dataset);
  const auto index =
      ontology::InstanceIndex::Build(local_graph, dataset.ontology());
  const core::RuleClassifier classifier(&rules, &segmenter);
  const core::LinkingSpaceAnalyzer analyzer(&classifier, &index);
  const core::LinkingSpaceReport report =
      analyzer.Analyze(dataset.external_items, /*min_confidence=*/0.4,
                       core::UnclassifiedPolicy::kCompareAll);
  std::cout << "Linking space (rules at confidence >= 0.4, unclassified "
               "items fall back to the full catalog):\n"
            << eval::FormatLinkingSpace(report);
  return 0;
}
