// Auto-configuration scenario: a brand-new provider source arrives with
// an unknown schema and no expert guidance yet. The library bootstraps
// the whole linking setup from the data and a handful of validated links:
//
//   1. key discovery        — which property is key-like on each side;
//   2. schema matching      — which external property corresponds to it;
//   3. scheme selection     — which classic blocking scheme works best on
//                             the validated sample;
//   4. threshold tuning     — which (support, confidence) setting the
//                             rule learner should use, by held-out F1;
//   5. learn + compare      — rules vs the best classic scheme.
#include <iostream>
#include <memory>

#include "blocking/key_discovery.h"
#include "blocking/rule_blocker.h"
#include "blocking/scheme_selector.h"
#include "core/classifier.h"
#include "core/learner.h"
#include "datagen/generator.h"
#include "eval/tuner.h"
#include "linking/schema_matcher.h"
#include "text/segmenter.h"
#include "util/logging.h"
#include "util/string_util.h"

int main() {
  using namespace rulelink;

  datagen::DatasetConfig config;
  config.catalog_size = 6000;
  config.num_links = 2000;
  auto dataset_or = datagen::DatasetGenerator(config).Generate();
  if (!dataset_or.ok()) {
    std::cerr << dataset_or.status() << "\n";
    return 1;
  }
  const datagen::Dataset& dataset = *dataset_or;

  // 1. Key discovery on both sides.
  std::cout << "Key discovery (uniqueness x coverage):\n";
  for (const auto& [label, items] :
       {std::pair<const char*, const std::vector<core::Item>*>{
            "external", &dataset.external_items},
        std::pair<const char*, const std::vector<core::Item>*>{
            "local", &dataset.catalog_items}}) {
    std::cout << "  " << label << ":\n";
    for (const auto& keyness : blocking::DiscoverKeys(*items)) {
      std::cout << "    " << keyness.property << "  score="
                << util::FormatDouble(keyness.score, 3) << "\n";
    }
  }
  const std::string external_key =
      blocking::BestKeyProperty(dataset.external_items);

  // 2. Schema matching: confirm the external key maps onto a local
  // property with the same value distribution.
  std::cout << "\nSchema alignment:\n";
  for (const auto& alignment : linking::MatchSchemas(
           dataset.external_items, dataset.catalog_items)) {
    std::cout << "  " << alignment.external_property << " -> "
              << alignment.local_property << "  (similarity "
              << util::FormatDouble(alignment.similarity, 3) << ")\n";
  }

  // 3. Blocking-scheme selection over the discovered key.
  std::vector<blocking::CandidatePair> gold;
  for (const auto& link : dataset.links) {
    gold.push_back({link.external_index, link.catalog_index});
  }
  const auto portfolio = blocking::DefaultSchemePortfolio(external_key);
  std::vector<const blocking::CandidateGenerator*> raw;
  for (const auto& generator : portfolio) raw.push_back(generator.get());
  std::cout << "\nBlocking-scheme ranking on the validated sample:\n";
  // Full corpus (no sampling): the rule blocker below needs the class
  // vector to stay parallel to the local item list.
  blocking::SchemeSelectorOptions selector;
  selector.sample_limit = 0;
  const auto ranked = blocking::RankSchemes(
      raw, dataset.external_items, dataset.catalog_items, gold, selector);
  for (const auto& scheme : ranked) {
    std::cout << "  " << util::FormatDouble(scheme.score, 3) << "  "
              << scheme.name << "  (PC "
              << util::FormatPercent(scheme.quality.pairs_completeness)
              << ", RR "
              << util::FormatPercent(scheme.quality.reduction_ratio, 2)
              << ")\n";
  }

  // 4. Threshold tuning for the rule learner on held-out links.
  const core::TrainingSet ts = datagen::BuildTrainingSet(dataset);
  const text::SeparatorSegmenter segmenter;
  eval::TunerOptions tuner;
  tuner.segmenter = &segmenter;
  tuner.properties = {external_key};
  auto candidates = eval::TuneThresholds(ts, tuner);
  RL_CHECK(candidates.ok()) << candidates.status();
  std::cout << "\nThreshold tuning (held-out F1), top 3 of "
            << candidates->size() << ":\n";
  for (std::size_t i = 0; i < 3 && i < candidates->size(); ++i) {
    const auto& c = (*candidates)[i];
    std::cout << "  th=" << c.support_threshold
              << " minconf=" << c.min_confidence
              << "  F1=" << util::FormatDouble(c.f_beta, 3)
              << "  (precision "
              << util::FormatPercent(c.holdout.precision) << ", recall "
              << util::FormatPercent(c.holdout.recall) << ")\n";
  }

  // 5. Learn with the tuned setting and compare against the best classic
  // scheme on completeness/reduction.
  core::LearnerOptions options;
  options.support_threshold = candidates->front().support_threshold;
  options.segmenter = &segmenter;
  options.properties = {external_key};
  auto rules = core::RuleLearner(options).Learn(ts);
  RL_CHECK(rules.ok());
  const core::RuleClassifier classifier(&*rules, &segmenter);
  const blocking::RuleBlocker rule_blocker(
      &classifier, &dataset.ontology(), &dataset.catalog_classes,
      candidates->front().min_confidence,
      /*compare_all_when_unclassified=*/true);
  const auto rule_scheme = blocking::RankSchemes(
      {&rule_blocker}, dataset.external_items, dataset.catalog_items, gold,
      selector);
  std::cout << "\nLearnt rules as a blocking scheme:\n  "
            << util::FormatDouble(rule_scheme[0].score, 3) << "  "
            << rule_scheme[0].name << "  (PC "
            << util::FormatPercent(rule_scheme[0].quality.pairs_completeness)
            << ", RR "
            << util::FormatPercent(rule_scheme[0].quality.reduction_ratio, 2)
            << ")\n"
            << "vs best classic scheme: " << ranked[0].name << " at "
            << util::FormatDouble(ranked[0].score, 3) << "\n";
  return 0;
}
