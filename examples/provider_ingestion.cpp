// Provider-file ingestion scenario: real provider catalogs arrive as CSV,
// links are validated in batches, and accepted links feed both the
// incremental rule learner and a data-fusion step that consolidates the
// catalog. Demonstrates io::LoadItemsFromCsv, core::IncrementalRuleLearner,
// core::rule_io persistence, and linking::FuseLinks.
#include <iostream>

#include "blocking/standard_blocking.h"
#include "core/classifier.h"
#include "core/incremental.h"
#include "core/rule_io.h"
#include "io/item_loader.h"
#include "linking/dedup.h"
#include "linking/fusion.h"
#include "linking/schema_matcher.h"
#include "ontology/ontology.h"
#include "text/segmenter.h"
#include "util/logging.h"

namespace {

// The provider ships a CSV: one row per product.
constexpr char kProviderCsv[] =
    "sku,partnumber,manufacturer\n"
    "D1,CRCW0805-4K7-ohm,Voltron\n"
    "D2,CRCW0805-10K-ohm,Voltron\n"
    "D3,T83.106.16V,Tekdyne\n"
    "D4,T83-226-25V,Tekdyne\n"
    "D5,CRCW0805/220R/ohm,Voltron\n"
    "D6,T83_476_10V,Tekdyne\n"
    "D7,CRCW0805-1K0-ohm,Voltron\n"
    "D8,T83-335-35V,Tekdyne\n"
    "D9,CRCW0805-4K7-ohm,Voltron\n";  // re-delivery of D1: a duplicate

constexpr char kPn[] = "http://provider/schema#partnumber";

}  // namespace

int main() {
  using namespace rulelink;

  // 1. Parse the provider CSV into items.
  io::ItemCsvMapping mapping;
  mapping.id_column = "sku";
  mapping.iri_prefix = "http://provider/item/";
  mapping.property_prefix = "http://provider/schema#";
  auto items = io::LoadItemsFromCsv(kProviderCsv, mapping);
  if (!items.ok()) {
    std::cerr << items.status() << "\n";
    return 1;
  }
  std::cout << "Parsed " << items->size() << " provider items from CSV\n";

  // 1b. Deduplicate the delivery first (§3: the UNA requires eliminating
  // redundant new data). D9 is a re-delivery of D1.
  const blocking::StandardBlocker dedup_blocker(kPn, 6);
  const linking::ItemMatcher dedup_matcher(
      {{kPn, kPn, linking::SimilarityMeasure::kJaroWinkler, 1.0}});
  const auto dedup =
      linking::Deduplicate(*items, dedup_blocker, dedup_matcher, 0.99);
  std::cout << "Deduplication: " << dedup.duplicate_clusters.size()
            << " duplicate cluster(s), " << dedup.survivors.size() << " of "
            << items->size() << " items survive\n";
  {
    std::vector<core::Item> unique;
    for (std::size_t index : dedup.survivors) {
      unique.push_back((*items)[index]);
    }
    *items = std::move(unique);
  }

  // 1c. Align the provider's columns with the catalog schema by value
  // overlap (the provider's names are arbitrary).
  const std::vector<core::Item> catalog_sample = {{
      "http://catalog/P1",
      {{"http://catalog/schema#partNumber", "CRCW0805-8K2-ohm"},
       {"http://catalog/schema#manufacturerName", "Voltron"}},
  }};
  std::cout << "\nSchema alignment (by token overlap):\n";
  for (const auto& alignment :
       linking::MatchSchemas(*items, catalog_sample)) {
    std::cout << "  " << alignment.external_property << " -> "
              << alignment.local_property << "  (similarity "
              << alignment.similarity << ")\n";
  }

  // 2. A minimal local ontology with two classes.
  ontology::Ontology onto;
  const auto component = onto.AddClass("cat:Component", "Component");
  const auto resistor = onto.AddClass("cat:Resistor", "Resistor");
  const auto capacitor = onto.AddClass("cat:Capacitor", "Capacitor");
  RL_CHECK_OK(onto.AddSubClassOf(resistor, component));
  RL_CHECK_OK(onto.AddSubClassOf(capacitor, component));
  RL_CHECK_OK(onto.Finalize());

  // 3. The expert validates links in two batches; the incremental learner
  // absorbs each batch without re-scanning earlier ones.
  const text::SeparatorSegmenter segmenter;
  core::IncrementalRuleLearner learner(&onto, &segmenter, {kPn});

  const ontology::ClassId truth[] = {resistor,  resistor,  capacitor,
                                     capacitor, resistor,  capacitor,
                                     resistor,  capacitor};
  std::cout << "\nBatch 1: expert validates links for D1..D4\n";
  for (std::size_t i = 0; i < 4; ++i) {
    learner.AddExample((*items)[i], {truth[i]});
  }
  auto rules = learner.BuildRules(0.2);
  RL_CHECK(rules.ok());
  std::cout << "  rules after batch 1: " << rules->size() << "\n";

  std::cout << "Batch 2: expert validates links for D5..D8\n";
  for (std::size_t i = 4; i < 8; ++i) {
    learner.AddExample((*items)[i], {truth[i]});
  }
  rules = learner.BuildRules(0.2);
  RL_CHECK(rules.ok());
  std::cout << "  rules after batch 2: " << rules->size() << "\n";
  for (const auto& rule : rules->rules()) {
    std::cout << "    "
              << core::RuleToString(rule, *rules, onto)
              << "  [conf=" << rule.confidence << "]\n";
  }

  // 4. Persist the rule base and reload it (what a nightly job would do).
  const std::string serialized = core::WriteRules(*rules, onto);
  auto reloaded = core::ReadRules(serialized, onto);
  RL_CHECK(reloaded.ok());
  std::cout << "\nRule base round-trips through "
            << serialized.size() << " bytes of TSV\n";

  // 5. Classify a new provider row with the reloaded rules.
  core::Item fresh;
  fresh.iri = "http://provider/item/D10";
  fresh.facts.push_back(core::PropertyValue{kPn, "T83-685-50V"});
  const core::RuleClassifier classifier(&*reloaded, &segmenter);
  const auto predictions = classifier.Classify(fresh);
  RL_CHECK(!predictions.empty());
  std::cout << "New item D10 predicted as " << onto.label(predictions[0].cls)
            << " (confidence " << predictions[0].confidence << ")\n";

  // 6. Fusion: consolidate one linked pair into the catalog record.
  std::vector<core::Item> local = {{
      "http://catalog/P77",
      {{"http://catalog/schema#pn", "T83-106-16V"},
       {"http://catalog/schema#stock", "440"}},
  }};
  std::vector<core::Item> external = {(*items)[2]};  // D3
  const auto fused = linking::FuseLinks(
      external, local, {linking::Link{0, 0, 0.95}},
      linking::ConflictPolicy::kUnion);
  std::cout << "\nFused item " << fused[0].iri << " ("
            << fused[0].facts.size() << " facts from "
            << fused[0].sources.size() << " sources):\n";
  for (const auto& pv : fused[0].facts) {
    std::cout << "  " << pv.property << " = " << pv.value << "\n";
  }
  return 0;
}
