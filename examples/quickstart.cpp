// Quickstart: the whole API on a tiny hand-written RDF corpus.
//
//  1. Parse a local catalog (Turtle) with its mini ontology.
//  2. Parse external provider data and expert same-as links (N-Triples).
//  3. Build the training set, learn classification rules, inspect them.
//  4. Classify a brand-new external item and list the local candidates it
//     should be compared with.
#include <iostream>

#include "core/classifier.h"
#include "core/learner.h"
#include "core/linking_space.h"
#include "core/training_set.h"
#include "ontology/instance_index.h"
#include "rdf/ntriples.h"
#include "rdf/turtle.h"
#include "text/segmenter.h"

namespace {

// Local source S_L: a two-class ontology and a small typed catalog. The
// part numbers of resistors carry the series segment "CRCW0805" or the
// unit "ohm"; capacitors carry "T83".
constexpr char kLocalTurtle[] = R"(
@prefix rdf:  <http://www.w3.org/1999/02/22-rdf-syntax-ns#> .
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
@prefix owl:  <http://www.w3.org/2002/07/owl#> .
@prefix ex:   <http://example.org/onto#> .
@prefix cat:  <http://example.org/catalog/> .
@prefix s:    <http://example.org/schema#> .

ex:Component a owl:Class ; rdfs:label "Component" .
ex:Resistor a owl:Class ; rdfs:subClassOf ex:Component ;
    rdfs:label "Fixed film resistor" .
ex:Capacitor a owl:Class ; rdfs:subClassOf ex:Component ;
    rdfs:label "Tantalum capacitor" .

cat:r1 a ex:Resistor ; s:partNumber "CRCW0805-4K7-ohm" .
cat:r2 a ex:Resistor ; s:partNumber "CRCW0805-10K-ohm" .
cat:r3 a ex:Resistor ; s:partNumber "CRCW0805-220R-ohm" .
cat:r4 a ex:Resistor ; s:partNumber "CRCW0805-1K0-ohm" .
cat:c1 a ex:Capacitor ; s:partNumber "T83-106-16V" .
cat:c2 a ex:Capacitor ; s:partNumber "T83-226-25V" .
cat:c3 a ex:Capacitor ; s:partNumber "T83-476-10V" .
)";

// External source S_E: provider documents (schema unknown to S_L).
constexpr char kExternalNTriples[] = R"(
<http://provider.example/d1> <http://provider.example/schema#pn> "CRCW0805/4K7/ohm" .
<http://provider.example/d2> <http://provider.example/schema#pn> "CRCW0805 10K ohm" .
<http://provider.example/d3> <http://provider.example/schema#pn> "T83.106.16V" .
<http://provider.example/d4> <http://provider.example/schema#pn> "T83-226-25V" .
<http://provider.example/d5> <http://provider.example/schema#pn> "CRCW0805-220R-ohm" .
<http://provider.example/d6> <http://provider.example/schema#pn> "T83-476-10V" .
)";

// Expert-validated same-as links (the training set TS).
constexpr char kLinksNTriples[] = R"(
<http://provider.example/d1> <http://www.w3.org/2002/07/owl#sameAs> <http://example.org/catalog/r1> .
<http://provider.example/d2> <http://www.w3.org/2002/07/owl#sameAs> <http://example.org/catalog/r2> .
<http://provider.example/d3> <http://www.w3.org/2002/07/owl#sameAs> <http://example.org/catalog/c1> .
<http://provider.example/d4> <http://www.w3.org/2002/07/owl#sameAs> <http://example.org/catalog/c2> .
<http://provider.example/d5> <http://www.w3.org/2002/07/owl#sameAs> <http://example.org/catalog/r3> .
<http://provider.example/d6> <http://www.w3.org/2002/07/owl#sameAs> <http://example.org/catalog/c3> .
)";

}  // namespace

int main() {
  using namespace rulelink;

  // 1. Parse everything.
  rdf::Graph local, external, links;
  if (auto s = rdf::ParseTurtle(kLocalTurtle, &local); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  if (auto s = rdf::ParseNTriples(kExternalNTriples, &external); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  if (auto s = rdf::ParseNTriples(kLinksNTriples, &links); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }

  // 2. Ontology + instance index over the local source.
  auto onto_or = ontology::Ontology::FromGraph(local);
  if (!onto_or.ok()) {
    std::cerr << onto_or.status() << "\n";
    return 1;
  }
  const ontology::Ontology& onto = *onto_or;
  const auto index = ontology::InstanceIndex::Build(local, onto);

  // 3. Training set + rule learning.
  std::size_t skipped = 0;
  auto ts_or = core::TrainingSet::FromGraphs(external, links, index, &skipped);
  if (!ts_or.ok()) {
    std::cerr << ts_or.status() << "\n";
    return 1;
  }
  const core::TrainingSet& ts = *ts_or;
  std::cout << "Training set: " << ts.size() << " links (" << skipped
            << " skipped)\n";

  const text::SeparatorSegmenter segmenter;
  core::LearnerOptions options;
  options.support_threshold = 0.2;  // tiny corpus, generous threshold
  options.segmenter = &segmenter;
  auto rules_or = core::RuleLearner(options).Learn(ts);
  if (!rules_or.ok()) {
    std::cerr << rules_or.status() << "\n";
    return 1;
  }
  const core::RuleSet& rules = *rules_or;

  std::cout << "\nLearned " << rules.size() << " classification rules:\n";
  for (const auto& rule : rules.rules()) {
    std::cout << "  " << core::RuleToString(rule, rules, onto)
              << "  [support=" << rule.support
              << " confidence=" << rule.confidence << " lift=" << rule.lift
              << "]\n";
  }

  // 4. Classify a brand-new provider item and reduce its linking space.
  core::Item fresh;
  fresh.iri = "http://provider.example/new-item";
  fresh.facts.push_back(core::PropertyValue{
      "http://provider.example/schema#pn", "T83_686_35V"});

  const core::RuleClassifier classifier(&rules, &segmenter);
  const core::LinkingSpaceAnalyzer analyzer(&classifier, &index);
  std::cout << "\nNew item with partNumber \"T83_686_35V\" is predicted as:\n";
  for (const auto& prediction : classifier.Classify(fresh)) {
    std::cout << "  " << onto.label(prediction.cls)
              << " (confidence=" << prediction.confidence << ")\n";
  }
  std::cout << "It only needs to be compared with "
            << analyzer.SubspaceSize(fresh, 0.0,
                                     core::UnclassifiedPolicy::kCompareAll)
            << " of " << index.instances().size() << " catalog items:\n";
  for (rdf::TermId candidate : analyzer.Candidates(fresh, 0.0)) {
    std::cout << "  " << index.IriOf(candidate) << "\n";
  }
  return 0;
}
