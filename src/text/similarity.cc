#include "text/similarity.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/string_util.h"

namespace rulelink::text {

std::size_t LevenshteinDistance(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);
  // Single-row dynamic program over the shorter string.
  std::vector<std::size_t> row(a.size() + 1);
  for (std::size_t i = 0; i <= a.size(); ++i) row[i] = i;
  for (std::size_t j = 1; j <= b.size(); ++j) {
    std::size_t prev_diag = row[0];
    row[0] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
      const std::size_t insert_or_delete = std::min(row[i], row[i - 1]) + 1;
      const std::size_t substitute =
          prev_diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      prev_diag = row[i];
      row[i] = std::min(insert_or_delete, substitute);
    }
  }
  return row[a.size()];
}

std::size_t DamerauLevenshteinDistance(std::string_view a,
                                       std::string_view b) {
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  std::vector<std::vector<std::size_t>> d(n + 1,
                                          std::vector<std::size_t>(m + 1));
  for (std::size_t i = 0; i <= n; ++i) d[i][0] = i;
  for (std::size_t j = 0; j <= m; ++j) d[0][j] = j;
  for (std::size_t i = 1; i <= n; ++i) {
    for (std::size_t j = 1; j <= m; ++j) {
      const std::size_t cost = a[i - 1] == b[j - 1] ? 0 : 1;
      d[i][j] = std::min({d[i - 1][j] + 1, d[i][j - 1] + 1,
                          d[i - 1][j - 1] + cost});
      if (i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1]) {
        d[i][j] = std::min(d[i][j], d[i - 2][j - 2] + 1);
      }
    }
  }
  return d[n][m];
}

double LevenshteinSimilarity(std::string_view a, std::string_view b) {
  const std::size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 1.0;
  return 1.0 - static_cast<double>(LevenshteinDistance(a, b)) /
                   static_cast<double>(longest);
}

double JaroSimilarity(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  const std::size_t match_window =
      std::max<std::size_t>(1, std::max(a.size(), b.size()) / 2) - 1;

  std::vector<bool> a_matched(a.size(), false);
  std::vector<bool> b_matched(b.size(), false);
  std::size_t matches = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const std::size_t lo = i > match_window ? i - match_window : 0;
    const std::size_t hi = std::min(b.size(), i + match_window + 1);
    for (std::size_t j = lo; j < hi; ++j) {
      if (!b_matched[j] && a[i] == b[j]) {
        a_matched[i] = true;
        b_matched[j] = true;
        ++matches;
        break;
      }
    }
  }
  if (matches == 0) return 0.0;

  std::size_t transpositions = 0;
  std::size_t j = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!a_matched[i]) continue;
    while (!b_matched[j]) ++j;
    if (a[i] != b[j]) ++transpositions;
    ++j;
  }
  const double m = static_cast<double>(matches);
  return (m / static_cast<double>(a.size()) +
          m / static_cast<double>(b.size()) +
          (m - static_cast<double>(transpositions) / 2.0) / m) /
         3.0;
}

double JaroWinklerSimilarity(std::string_view a, std::string_view b) {
  const double jaro = JaroSimilarity(a, b);
  std::size_t prefix = 0;
  const std::size_t max_prefix = std::min<std::size_t>(
      4, std::min(a.size(), b.size()));
  while (prefix < max_prefix && a[prefix] == b[prefix]) ++prefix;
  return jaro + static_cast<double>(prefix) * 0.1 * (1.0 - jaro);
}

double JaccardTokenSimilarity(std::string_view a, std::string_view b) {
  const auto ta = util::SplitAny(a, " \t\n\r");
  const auto tb = util::SplitAny(b, " \t\n\r");
  if (ta.empty() && tb.empty()) return 1.0;
  std::unordered_map<std::string, int> seen;
  for (const auto& t : ta) seen[std::string(t)] |= 1;
  for (const auto& t : tb) seen[std::string(t)] |= 2;
  std::size_t inter = 0;
  for (const auto& [token, mask] : seen) {
    if (mask == 3) ++inter;
  }
  return static_cast<double>(inter) / static_cast<double>(seen.size());
}

std::vector<std::string> CharacterBigrams(std::string_view s) {
  std::vector<std::string> grams;
  if (s.size() < 2) {
    if (!s.empty()) grams.emplace_back(s);
    return grams;
  }
  grams.reserve(s.size() - 1);
  for (std::size_t i = 0; i + 2 <= s.size(); ++i) {
    grams.emplace_back(s.substr(i, 2));
  }
  return grams;
}

double DiceBigramSimilarity(std::string_view a, std::string_view b) {
  const auto ga = CharacterBigrams(a);
  const auto gb = CharacterBigrams(b);
  if (ga.empty() && gb.empty()) return 1.0;
  if (ga.empty() || gb.empty()) return 0.0;
  std::unordered_map<std::string, std::size_t> counts;
  for (const auto& g : ga) ++counts[g];
  std::size_t overlap = 0;
  for (const auto& g : gb) {
    auto it = counts.find(g);
    if (it != counts.end() && it->second > 0) {
      --it->second;
      ++overlap;
    }
  }
  return 2.0 * static_cast<double>(overlap) /
         static_cast<double>(ga.size() + gb.size());
}

double NGramOverlapSimilarity(std::string_view a, std::string_view b,
                              std::size_t n) {
  RL_CHECK(n > 0);
  const auto grams = [n](std::string_view s) {
    std::vector<std::string> out;
    if (s.size() < n) {
      if (!s.empty()) out.emplace_back(s);
      return out;
    }
    for (std::size_t i = 0; i + n <= s.size(); ++i) {
      out.emplace_back(s.substr(i, n));
    }
    return out;
  };
  const auto ga = grams(a);
  const auto gb = grams(b);
  if (ga.empty() && gb.empty()) return 1.0;
  if (ga.empty() || gb.empty()) return 0.0;
  std::unordered_map<std::string, std::size_t> counts;
  for (const auto& g : ga) ++counts[g];
  std::size_t overlap = 0;
  for (const auto& g : gb) {
    auto it = counts.find(g);
    if (it != counts.end() && it->second > 0) {
      --it->second;
      ++overlap;
    }
  }
  return static_cast<double>(overlap) /
         static_cast<double>(std::min(ga.size(), gb.size()));
}

double MongeElkanSimilarity(std::string_view a, std::string_view b) {
  const auto ta = util::SplitAny(a, " \t\n\r");
  const auto tb = util::SplitAny(b, " \t\n\r");
  if (ta.empty() && tb.empty()) return 1.0;
  if (ta.empty() || tb.empty()) return 0.0;
  double total = 0.0;
  for (const auto& x : ta) {
    double best = 0.0;
    for (const auto& y : tb) {
      best = std::max(best, JaroWinklerSimilarity(x, y));
    }
    total += best;
  }
  return total / static_cast<double>(ta.size());
}

void TfIdfCosine::AddDocument(const std::vector<std::string>& tokens) {
  RL_CHECK(!finalized_) << "AddDocument after Finalize";
  ++num_documents_;
  std::unordered_map<std::string, bool> seen;
  for (const auto& t : tokens) {
    if (!seen.emplace(t, true).second) continue;
    ++document_frequency_[t];
  }
}

void TfIdfCosine::Finalize() { finalized_ = true; }

double TfIdfCosine::Idf(const std::string& token) const {
  auto it = document_frequency_.find(token);
  const double df = it == document_frequency_.end()
                        ? 0.0
                        : static_cast<double>(it->second);
  // Smoothed IDF; unseen tokens get the maximum weight.
  return std::log((1.0 + static_cast<double>(num_documents_)) / (1.0 + df)) +
         1.0;
}

double TfIdfCosine::Similarity(const std::vector<std::string>& a,
                               const std::vector<std::string>& b) const {
  RL_CHECK(finalized_) << "Similarity before Finalize";
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  const auto vectorize = [this](const std::vector<std::string>& tokens) {
    std::unordered_map<std::string, double> v;
    for (const auto& t : tokens) v[t] += 1.0;
    double norm = 0.0;
    for (auto& [token, tf] : v) {
      tf *= Idf(token);
      norm += tf * tf;
    }
    return std::make_pair(std::move(v), std::sqrt(norm));
  };
  const auto [va, na] = vectorize(a);
  const auto [vb, nb] = vectorize(b);
  if (na == 0.0 || nb == 0.0) return 0.0;
  double dot = 0.0;
  for (const auto& [token, wa] : va) {
    auto it = vb.find(token);
    if (it != vb.end()) dot += wa * it->second;
  }
  return dot / (na * nb);
}

}  // namespace rulelink::text
