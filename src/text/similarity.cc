#include "text/similarity.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>

#include "util/logging.h"
#include "util/simd.h"
#include "util/string_util.h"

// The interleaved Myers kernel below is compiled once per ISA via
// per-function target attributes; only x86 has the multi-versioned
// wrappers (elsewhere the batch API degrades to single-pair calls).
#if defined(__x86_64__) || defined(__i386__)
#define RULELINK_SIMD_TARGETS 1
#include <immintrin.h>
#else
#define RULELINK_SIMD_TARGETS 0
#endif

namespace rulelink::text {

std::size_t LevenshteinDistanceDP(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);
  // Single-row dynamic program over the shorter string.
  std::vector<std::size_t> row(a.size() + 1);
  for (std::size_t i = 0; i <= a.size(); ++i) row[i] = i;
  for (std::size_t j = 1; j <= b.size(); ++j) {
    std::size_t prev_diag = row[0];
    row[0] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
      const std::size_t insert_or_delete = std::min(row[i], row[i - 1]) + 1;
      const std::size_t substitute =
          prev_diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      prev_diag = row[i];
      row[i] = std::min(insert_or_delete, substitute);
    }
  }
  return row[a.size()];
}

namespace {

// Sentinel cap meaning "compute the exact distance, never exit early".
constexpr std::size_t kNoCap = static_cast<std::size_t>(-1);

// Myers' bit-parallel Levenshtein (Hyyrö's formulation) for patterns of
// at most 64 bytes. Pv/Mv hold the vertical +1/-1 deltas of the current
// DP column; `score` tracks D[m][j] via the horizontal delta at the
// pattern's last row. `(Ph << 1) | 1` encodes the D[0][j] = j boundary.
// With a finite `cap`, returns cap + 1 as soon as even the remaining
// columns (one unit of decrease each, at best) cannot bring the final
// distance back under the cap.
std::size_t MyersDistance64(std::string_view a, std::string_view b,
                            std::size_t cap) {
  // Per-byte match masks, reset after use so only touched entries cost.
  static thread_local std::array<std::uint64_t, 256> peq{};
  const std::size_t m = a.size();
  const std::size_t n = b.size();
  for (std::size_t i = 0; i < m; ++i) {
    peq[static_cast<unsigned char>(a[i])] |= std::uint64_t{1} << i;
  }
  const std::uint64_t last_row = std::uint64_t{1} << (m - 1);
  std::uint64_t pv = ~std::uint64_t{0};
  std::uint64_t mv = 0;
  std::size_t score = m;
  std::size_t result = kNoCap;
  for (std::size_t j = 0; j < n; ++j) {
    const std::uint64_t eq = peq[static_cast<unsigned char>(b[j])];
    const std::uint64_t xv = eq | mv;
    const std::uint64_t xh = (((eq & pv) + pv) ^ pv) | eq;
    std::uint64_t ph = mv | ~(xh | pv);
    std::uint64_t mh = pv & xh;
    if (ph & last_row) ++score;
    if (mh & last_row) --score;
    ph = (ph << 1) | 1;
    mh <<= 1;
    pv = mh | ~(xv | ph);
    mv = ph & xv;
    if (cap != kNoCap && score > cap + (n - 1 - j)) {
      result = cap + 1;
      break;
    }
  }
  if (result == kNoCap) result = score;
  for (std::size_t i = 0; i < m; ++i) {
    peq[static_cast<unsigned char>(a[i])] = 0;
  }
  return result;
}

// The blocked variant for patterns longer than 64 bytes: one Pv/Mv word
// per 64-byte block, horizontal deltas carried block to block through
// `hin`/`hout` in {-1, 0, +1}. Padding bits above the last pattern row
// are harmless: information only flows upward within a column (carry and
// left-shift), and the score is read at bit (m-1) % 64 of the last block
// before the shift.
std::size_t MyersDistanceBlocked(std::string_view a, std::string_view b,
                                 std::size_t cap) {
  const std::size_t m = a.size();
  const std::size_t n = b.size();
  const std::size_t w = (m + 63) / 64;
  std::vector<std::uint64_t> peq(w * 256, 0);
  for (std::size_t i = 0; i < m; ++i) {
    peq[(i / 64) * 256 + static_cast<unsigned char>(a[i])] |=
        std::uint64_t{1} << (i % 64);
  }
  std::vector<std::uint64_t> pv(w, ~std::uint64_t{0});
  std::vector<std::uint64_t> mv(w, 0);
  const std::uint64_t block_top = std::uint64_t{1} << 63;
  const std::uint64_t last_row = std::uint64_t{1} << ((m - 1) % 64);
  std::size_t score = m;
  for (std::size_t j = 0; j < n; ++j) {
    const unsigned char c = static_cast<unsigned char>(b[j]);
    int hin = 1;  // the D[0][j] = j boundary enters block 0 as +1
    for (std::size_t blk = 0; blk < w; ++blk) {
      const std::uint64_t pv_b = pv[blk];
      const std::uint64_t mv_b = mv[blk];
      const std::uint64_t eq = peq[blk * 256 + c];
      // A -1 carried in acts like a match in the block's first row.
      const std::uint64_t eq_in = hin < 0 ? eq | 1 : eq;
      const std::uint64_t xv = eq | mv_b;
      const std::uint64_t xh = (((eq_in & pv_b) + pv_b) ^ pv_b) | eq_in;
      std::uint64_t ph = mv_b | ~(xh | pv_b);
      std::uint64_t mh = pv_b & xh;
      if (blk == w - 1) {
        if (ph & last_row) ++score;
        if (mh & last_row) --score;
      }
      const int hout = (ph & block_top) ? 1 : ((mh & block_top) ? -1 : 0);
      ph <<= 1;
      mh <<= 1;
      if (hin > 0) ph |= 1;
      if (hin < 0) mh |= 1;
      pv[blk] = mh | ~(xv | ph);
      mv[blk] = ph & xv;
      hin = hout;
    }
    if (cap != kNoCap && score > cap + (n - 1 - j)) return cap + 1;
  }
  return score;
}

std::size_t MyersDistance(std::string_view a, std::string_view b,
                          std::size_t cap) {
  if (a.size() > b.size()) std::swap(a, b);
  if (a.empty()) return b.size();
  if (a.size() <= 64) return MyersDistance64(a, b, cap);
  return MyersDistanceBlocked(a, b, cap);
}

// --- Interleaved multi-pair Myers (DESIGN.md §5h) ----------------------
//
// W independent single-word Myers computations advancing in lockstep in
// the 64-bit lanes of one vector register set, all probing the SAME
// pattern against their own texts — the shape the filter cascade
// produces, where every stage-B probe of a candidate run shares the
// external item's value. Sharing the pattern lets one match-mask table
// serve every lane and be built once per segment instead of once per
// group, which removes the dominant per-group cost (2m table writes per
// pattern).
//
// Each lane is value-identical to BoundedLevenshteinDistance on its pair
// without replaying the scalar kernel's control flow. The kernel
// advances lane k through all n[k] columns (state updates masked off
// once its text is exhausted) and derives the result afterwards as
// score > cap ? cap + 1 : score. That is exactly what the scalar kernel
// returns: its early exit fires at column j only if
// score_j > cap + (n-1-j), which forces the final score above cap (the
// score drops by at most one per column), and conversely a final score
// <= cap means the exit condition can never have held — so both compute
// d <= cap ? d : cap + 1, a value that does not depend on orientation or
// on when the exit is detected. The per-column early exit is therefore
// pure throughput, and the lockstep kernels recover it in bulk: every 8
// columns they stop if every lane is finished or provably past its cap.

// Per-thread match-mask table for the shared-pattern kernels; entries
// touched by a pattern are cleared again after each segment, the same
// discipline as the single-pair kernel's table.
std::uint64_t* InterleavedPeq() {
  static thread_local std::vector<std::uint64_t> table(256, 0);
  return table.data();
}

#if RULELINK_SIMD_TARGETS

// Runs one shared pattern (1..64 bytes) against `count` texts, four at a
// time; texts must be non-empty. The final partial group is padded with
// the group's own first element — the padded lanes compute a real value
// that is simply not written back, and reusing an in-group text keeps
// the padding from stretching the group's column count.
__attribute__((target("avx2"))) void MyersInterleavedShared4Avx2(
    std::string_view pattern, const std::string_view* text,
    const std::size_t* cap, std::size_t count, std::size_t* result) {
  std::uint64_t* table = InterleavedPeq();
  const std::size_t m = pattern.size();
  for (std::size_t i = 0; i < m; ++i) {
    table[static_cast<unsigned char>(pattern[i])] |= std::uint64_t{1} << i;
  }
  const auto i64 = [](std::uint64_t v) {
    return static_cast<long long>(v);
  };
  const __m256i lr = _mm256_set1_epi64x(i64(std::uint64_t{1} << (m - 1)));
  const __m256i m_vec = _mm256_set1_epi64x(i64(m));
  const __m256i ones = _mm256_set1_epi64x(-1);
  const __m256i one = _mm256_set1_epi64x(1);
  const __m256i zero = _mm256_setzero_si256();
  for (std::size_t g = 0; g < count; g += 4) {
    const unsigned char* txt[4];
    std::size_t last_col[4];
    std::size_t idx[4];
    std::size_t max_n = 0;
    for (int k = 0; k < 4; ++k) {
      idx[k] = g + k < count ? g + k : g;
      txt[k] = reinterpret_cast<const unsigned char*>(text[idx[k]].data());
      last_col[k] = text[idx[k]].size() - 1;
      max_n = std::max(max_n, text[idx[k]].size());
    }
    const __m256i n_vec = _mm256_set_epi64x(
        i64(last_col[3] + 1), i64(last_col[2] + 1), i64(last_col[1] + 1),
        i64(last_col[0] + 1));
    // cap + n per lane, for the bulk form of the early-exit predicate:
    // score_j > cap + (n-1-j)  <=>  score_j + (j+1) > cap + n.
    const __m256i cap_n = _mm256_set_epi64x(
        i64(cap[idx[3]] + last_col[3] + 1),
        i64(cap[idx[2]] + last_col[2] + 1),
        i64(cap[idx[1]] + last_col[1] + 1),
        i64(cap[idx[0]] + last_col[0] + 1));
    __m256i score = m_vec;
    __m256i pv = ones;
    __m256i mv = zero;
    __m256i j_vec = zero;
    for (std::size_t j = 0; j < max_n; ++j) {
      // Exhausted lanes read their last byte again (always in bounds);
      // the resulting eq is harmless because their updates are masked.
      const __m256i eq = _mm256_set_epi64x(
          i64(table[txt[3][std::min(j, last_col[3])]]),
          i64(table[txt[2][std::min(j, last_col[2])]]),
          i64(table[txt[1][std::min(j, last_col[1])]]),
          i64(table[txt[0][std::min(j, last_col[0])]]));
      const __m256i active = _mm256_cmpgt_epi64(n_vec, j_vec);
      const __m256i xv = _mm256_or_si256(eq, mv);
      const __m256i xh = _mm256_or_si256(
          _mm256_xor_si256(_mm256_add_epi64(_mm256_and_si256(eq, pv), pv),
                           pv),
          eq);
      __m256i ph = _mm256_or_si256(
          mv, _mm256_andnot_si256(_mm256_or_si256(xh, pv), ones));
      __m256i mh = _mm256_and_si256(pv, xh);
      // +1 where ph has the last-row bit, -1 where mh does: cmpeq-to-zero
      // yields -1 for "bit clear", adding one flips it into a 0/1 lane.
      const __m256i incp = _mm256_add_epi64(
          one, _mm256_cmpeq_epi64(_mm256_and_si256(ph, lr), zero));
      const __m256i incm = _mm256_add_epi64(
          one, _mm256_cmpeq_epi64(_mm256_and_si256(mh, lr), zero));
      score = _mm256_add_epi64(
          score, _mm256_and_si256(_mm256_sub_epi64(incp, incm), active));
      ph = _mm256_or_si256(_mm256_slli_epi64(ph, 1), one);
      mh = _mm256_slli_epi64(mh, 1);
      const __m256i pv_new = _mm256_or_si256(
          mh, _mm256_andnot_si256(_mm256_or_si256(xv, ph), ones));
      const __m256i mv_new = _mm256_and_si256(ph, xv);
      pv = _mm256_blendv_epi8(pv, pv_new, active);
      mv = _mm256_blendv_epi8(mv, mv_new, active);
      j_vec = _mm256_add_epi64(j_vec, one);
      if ((j & 7) == 7) {
        const __m256i finished =
            _mm256_cmpeq_epi64(_mm256_cmpgt_epi64(n_vec, j_vec), zero);
        const __m256i past_cap =
            _mm256_cmpgt_epi64(_mm256_add_epi64(score, j_vec), cap_n);
        if (_mm256_movemask_epi8(_mm256_or_si256(finished, past_cap)) ==
            -1) {
          break;
        }
      }
    }
    alignas(32) std::uint64_t fin[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(fin), score);
    for (int k = 0; k < 4 && g + k < count; ++k) {
      result[g + k] = fin[k] > cap[g + k] ? cap[g + k] + 1 : fin[k];
    }
  }
  for (std::size_t i = 0; i < m; ++i) {
    table[static_cast<unsigned char>(pattern[i])] = 0;
  }
}

__attribute__((target("sse4.2"))) void MyersInterleavedShared2Sse42(
    std::string_view pattern, const std::string_view* text,
    const std::size_t* cap, std::size_t count, std::size_t* result) {
  std::uint64_t* table = InterleavedPeq();
  const std::size_t m = pattern.size();
  for (std::size_t i = 0; i < m; ++i) {
    table[static_cast<unsigned char>(pattern[i])] |= std::uint64_t{1} << i;
  }
  const auto i64 = [](std::uint64_t v) {
    return static_cast<long long>(v);
  };
  const __m128i lr = _mm_set1_epi64x(i64(std::uint64_t{1} << (m - 1)));
  const __m128i m_vec = _mm_set1_epi64x(i64(m));
  const __m128i ones = _mm_set1_epi64x(-1);
  const __m128i one = _mm_set1_epi64x(1);
  const __m128i zero = _mm_setzero_si128();
  for (std::size_t g = 0; g < count; g += 2) {
    const unsigned char* txt[2];
    std::size_t last_col[2];
    std::size_t idx[2];
    std::size_t max_n = 0;
    for (int k = 0; k < 2; ++k) {
      idx[k] = g + k < count ? g + k : g;
      txt[k] = reinterpret_cast<const unsigned char*>(text[idx[k]].data());
      last_col[k] = text[idx[k]].size() - 1;
      max_n = std::max(max_n, text[idx[k]].size());
    }
    const __m128i n_vec =
        _mm_set_epi64x(i64(last_col[1] + 1), i64(last_col[0] + 1));
    const __m128i cap_n =
        _mm_set_epi64x(i64(cap[idx[1]] + last_col[1] + 1),
                       i64(cap[idx[0]] + last_col[0] + 1));
    __m128i score = m_vec;
    __m128i pv = ones;
    __m128i mv = zero;
    __m128i j_vec = zero;
    for (std::size_t j = 0; j < max_n; ++j) {
      const __m128i eq = _mm_set_epi64x(
          i64(table[txt[1][std::min(j, last_col[1])]]),
          i64(table[txt[0][std::min(j, last_col[0])]]));
      const __m128i active = _mm_cmpgt_epi64(n_vec, j_vec);
      const __m128i xv = _mm_or_si128(eq, mv);
      const __m128i xh = _mm_or_si128(
          _mm_xor_si128(_mm_add_epi64(_mm_and_si128(eq, pv), pv), pv), eq);
      __m128i ph =
          _mm_or_si128(mv, _mm_andnot_si128(_mm_or_si128(xh, pv), ones));
      __m128i mh = _mm_and_si128(pv, xh);
      const __m128i incp =
          _mm_add_epi64(one, _mm_cmpeq_epi64(_mm_and_si128(ph, lr), zero));
      const __m128i incm =
          _mm_add_epi64(one, _mm_cmpeq_epi64(_mm_and_si128(mh, lr), zero));
      score = _mm_add_epi64(
          score, _mm_and_si128(_mm_sub_epi64(incp, incm), active));
      ph = _mm_or_si128(_mm_slli_epi64(ph, 1), one);
      mh = _mm_slli_epi64(mh, 1);
      const __m128i pv_new =
          _mm_or_si128(mh, _mm_andnot_si128(_mm_or_si128(xv, ph), ones));
      const __m128i mv_new = _mm_and_si128(ph, xv);
      pv = _mm_blendv_epi8(pv, pv_new, active);
      mv = _mm_blendv_epi8(mv, mv_new, active);
      j_vec = _mm_add_epi64(j_vec, one);
      if ((j & 7) == 7) {
        const __m128i finished =
            _mm_cmpeq_epi64(_mm_cmpgt_epi64(n_vec, j_vec), zero);
        const __m128i past_cap =
            _mm_cmpgt_epi64(_mm_add_epi64(score, j_vec), cap_n);
        if (_mm_movemask_epi8(_mm_or_si128(finished, past_cap)) ==
            0xFFFF) {
          break;
        }
      }
    }
    alignas(16) std::uint64_t fin[2];
    _mm_store_si128(reinterpret_cast<__m128i*>(fin), score);
    for (int k = 0; k < 2 && g + k < count; ++k) {
      result[g + k] = fin[k] > cap[g + k] ? cap[g + k] + 1 : fin[k];
    }
  }
  for (std::size_t i = 0; i < m; ++i) {
    table[static_cast<unsigned char>(pattern[i])] = 0;
  }
}
#endif  // RULELINK_SIMD_TARGETS

}  // namespace

std::size_t LevenshteinDistance(std::string_view a, std::string_view b) {
  return MyersDistance(a, b, kNoCap);
}

std::size_t BoundedLevenshteinDistance(std::string_view a, std::string_view b,
                                       std::size_t cap) {
  if (a.size() > b.size()) std::swap(a, b);
  const std::size_t m = a.size();
  const std::size_t n = b.size();
  // |len(a)-len(b)| insertions are unavoidable.
  if (n - m > cap) return cap + 1;
  if (cap == 0) return a == b ? 0 : 1;
  if (m == 0) return n;  // n <= cap here, so this is the exact distance
  // Clamp so the early-exit arithmetic in the kernels cannot overflow; a
  // cap >= m + n can never fire anyway (the distance is at most n).
  cap = std::min(cap, m + n);
  if (m <= 64) return MyersDistance64(a, b, cap);
  return MyersDistanceBlocked(a, b, cap);
}

void BoundedLevenshteinDistanceBatch(const std::string_view* a,
                                     const std::string_view* b,
                                     const std::size_t* caps,
                                     std::size_t count, std::size_t* out) {
#if RULELINK_SIMD_TARGETS
  const util::SimdMode mode = util::ActiveSimdMode();
  const std::size_t width = mode == util::SimdMode::kAVX2    ? 4
                            : mode == util::SimdMode::kSSE42 ? 2
                                                             : 1;
#else
  const std::size_t width = 1;
#endif
  std::uint64_t batched = 0;
  std::uint64_t remainder = 0;
  // Pairs the interleaved kernel can take (a one-word pattern, nonzero
  // cap) are staged with the a-side kept as the pattern whenever it fits,
  // so that consecutive probes sharing their a-side — the cascade's
  // shape, one external value per candidate run — form shared-pattern
  // segments for the kernels above. The prologue mirrors
  // BoundedLevenshteinDistance but is written orientation-free, which is
  // sound because every return value (exact distance, cap + 1, the
  // prologue shortcuts) is symmetric in the two strings.
  static thread_local std::vector<std::string_view> staged_pat;
  static thread_local std::vector<std::string_view> staged_txt;
  static thread_local std::vector<std::size_t> staged_cap;
  static thread_local std::vector<std::size_t> staged_index;
  staged_pat.clear();
  staged_txt.clear();
  staged_cap.clear();
  staged_index.clear();
  for (std::size_t i = 0; i < count; ++i) {
    const std::string_view x = a[i];
    const std::string_view y = b[i];
    std::size_t cap = caps[i];
    const std::size_t mn = std::min(x.size(), y.size());
    const std::size_t mx = std::max(x.size(), y.size());
    if (mx - mn > cap) {
      out[i] = cap + 1;
      continue;
    }
    if (cap == 0) {
      out[i] = x == y ? 0 : 1;
      continue;
    }
    if (mn == 0) {
      out[i] = mx;
      continue;
    }
    cap = std::min(cap, mn + mx);
    const std::string_view shorter = x.size() <= y.size() ? x : y;
    const std::string_view longer = x.size() <= y.size() ? y : x;
    if (mn > 64) {
      out[i] = MyersDistanceBlocked(shorter, longer, cap);
      ++remainder;
      continue;
    }
    if (width <= 1) {
      out[i] = MyersDistance64(shorter, longer, cap);
      ++remainder;
      continue;
    }
    if (x.size() <= 64) {
      staged_pat.push_back(x);
      staged_txt.push_back(y);
    } else {
      staged_pat.push_back(y);
      staged_txt.push_back(x);
    }
    staged_cap.push_back(cap);
    staged_index.push_back(i);
  }
#if RULELINK_SIMD_TARGETS
  if (!staged_pat.empty()) {
    static thread_local std::vector<std::string_view> seg_txt;
    static thread_local std::vector<std::size_t> seg_cap;
    static thread_local std::vector<std::size_t> seg_out;
    static thread_local std::vector<std::uint32_t> seg_src;
    std::size_t s = 0;
    while (s < staged_pat.size()) {
      const std::string_view pat = staged_pat[s];
      std::size_t e = s + 1;
      while (e < staged_pat.size() && staged_pat[e].data() == pat.data() &&
             staged_pat[e].size() == pat.size()) {
        ++e;
      }
      const std::size_t len = e - s;
      if (len < 2) {
        // A lone pattern would pay the shared kernel's table build for
        // one lane; the single-pair kernel computes the identical value.
        out[staged_index[s]] =
            MyersDistance64(pat, staged_txt[s], staged_cap[s]);
        ++remainder;
        s = e;
        continue;
      }
      seg_src.resize(len);
      if (len <= width) {
        for (std::size_t i = 0; i < len; ++i) {
          seg_src[i] = static_cast<std::uint32_t>(s + i);
        }
      } else {
        // Counting sort on min(text length, 255): the lanes of a group
        // run in lockstep to the group's longest text, so grouping
        // similar lengths turns masked idle columns into useful ones.
        // Stable and O(segment), where a comparison sort is not. Results
        // are exact regardless of grouping — ordering is pure throughput.
        std::uint32_t counts[257] = {0};
        const auto length_key = [](std::string_view t) {
          return std::min<std::size_t>(t.size(), 255);
        };
        for (std::size_t i = s; i < e; ++i) {
          ++counts[length_key(staged_txt[i]) + 1];
        }
        for (std::size_t k = 1; k < 257; ++k) counts[k] += counts[k - 1];
        for (std::size_t i = s; i < e; ++i) {
          seg_src[counts[length_key(staged_txt[i])]++] =
              static_cast<std::uint32_t>(i);
        }
      }
      seg_txt.resize(len);
      seg_cap.resize(len);
      seg_out.resize(len);
      for (std::size_t i = 0; i < len; ++i) {
        seg_txt[i] = staged_txt[seg_src[i]];
        seg_cap[i] = staged_cap[seg_src[i]];
      }
      if (width == 4) {
        MyersInterleavedShared4Avx2(pat, seg_txt.data(), seg_cap.data(),
                                    len, seg_out.data());
      } else {
        MyersInterleavedShared2Sse42(pat, seg_txt.data(), seg_cap.data(),
                                     len, seg_out.data());
      }
      for (std::size_t i = 0; i < len; ++i) {
        out[staged_index[seg_src[i]]] = seg_out[i];
      }
      batched += static_cast<std::uint64_t>(len);
      s = e;
    }
  }
#endif
  util::AddSimdKernelPairs(batched, remainder);
}

std::size_t DamerauLevenshteinDistance(std::string_view a,
                                       std::string_view b) {
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  std::vector<std::vector<std::size_t>> d(n + 1,
                                          std::vector<std::size_t>(m + 1));
  for (std::size_t i = 0; i <= n; ++i) d[i][0] = i;
  for (std::size_t j = 0; j <= m; ++j) d[0][j] = j;
  for (std::size_t i = 1; i <= n; ++i) {
    for (std::size_t j = 1; j <= m; ++j) {
      const std::size_t cost = a[i - 1] == b[j - 1] ? 0 : 1;
      d[i][j] = std::min({d[i - 1][j] + 1, d[i][j - 1] + 1,
                          d[i - 1][j - 1] + cost});
      if (i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1]) {
        d[i][j] = std::min(d[i][j], d[i - 2][j - 2] + 1);
      }
    }
  }
  return d[n][m];
}

double LevenshteinSimilarity(std::string_view a, std::string_view b) {
  return LevenshteinSimilarityFromDistance(LevenshteinDistance(a, b),
                                           std::max(a.size(), b.size()));
}

double JaroSimilarity(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  const std::size_t match_window =
      std::max<std::size_t>(1, std::max(a.size(), b.size()) / 2) - 1;

  std::vector<bool> a_matched(a.size(), false);
  std::vector<bool> b_matched(b.size(), false);
  std::size_t matches = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const std::size_t lo = i > match_window ? i - match_window : 0;
    const std::size_t hi = std::min(b.size(), i + match_window + 1);
    for (std::size_t j = lo; j < hi; ++j) {
      if (!b_matched[j] && a[i] == b[j]) {
        a_matched[i] = true;
        b_matched[j] = true;
        ++matches;
        break;
      }
    }
  }
  if (matches == 0) return 0.0;

  std::size_t transpositions = 0;
  std::size_t j = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!a_matched[i]) continue;
    while (!b_matched[j]) ++j;
    if (a[i] != b[j]) ++transpositions;
    ++j;
  }
  const double m = static_cast<double>(matches);
  return (m / static_cast<double>(a.size()) +
          m / static_cast<double>(b.size()) +
          (m - static_cast<double>(transpositions) / 2.0) / m) /
         3.0;
}

double JaroWinklerSimilarity(std::string_view a, std::string_view b) {
  const double jaro = JaroSimilarity(a, b);
  std::size_t prefix = 0;
  const std::size_t max_prefix = std::min<std::size_t>(
      4, std::min(a.size(), b.size()));
  while (prefix < max_prefix && a[prefix] == b[prefix]) ++prefix;
  return jaro + static_cast<double>(prefix) * 0.1 * (1.0 - jaro);
}

namespace {

// Sorted-unique view of `v` in place.
void SortUnique(std::vector<std::string_view>* v) {
  std::sort(v->begin(), v->end());
  v->erase(std::unique(v->begin(), v->end()), v->end());
}

// |a ∩ b| of two sorted-unique ranges (classic merge — no hashing, no
// per-call string allocations; counts are integers, so every measure
// built on them is bit-identical to the old hash-map formulation).
std::size_t SortedIntersectionSize(const std::vector<std::string_view>& a,
                                   const std::vector<std::string_view>& b) {
  std::size_t inter = 0, i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++inter;
      ++i;
      ++j;
    }
  }
  return inter;
}

// Multiset overlap sum(min(count_a, count_b)) of two sorted ranges.
std::size_t SortedMultisetOverlap(const std::vector<std::string_view>& a,
                                  const std::vector<std::string_view>& b) {
  std::size_t overlap = 0, i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++overlap;
      ++i;
      ++j;
    }
  }
  return overlap;
}

// The character n-grams of `s` as views (a string shorter than n yields
// itself), appended to *out.
void NGramViews(std::string_view s, std::size_t n,
                std::vector<std::string_view>* out) {
  if (s.size() < n) {
    if (!s.empty()) out->push_back(s);
    return;
  }
  out->reserve(out->size() + s.size() - n + 1);
  for (std::size_t i = 0; i + n <= s.size(); ++i) {
    out->push_back(s.substr(i, n));
  }
}

}  // namespace

double JaccardTokenSimilarity(std::string_view a, std::string_view b) {
  std::vector<std::string_view> ta = util::SplitAny(a, " \t\n\r");
  std::vector<std::string_view> tb = util::SplitAny(b, " \t\n\r");
  if (ta.empty() && tb.empty()) return 1.0;
  SortUnique(&ta);
  SortUnique(&tb);
  const std::size_t inter = SortedIntersectionSize(ta, tb);
  return static_cast<double>(inter) /
         static_cast<double>(ta.size() + tb.size() - inter);
}

std::vector<std::string> CharacterBigrams(std::string_view s) {
  std::vector<std::string> grams;
  if (s.size() < 2) {
    if (!s.empty()) grams.emplace_back(s);
    return grams;
  }
  grams.reserve(s.size() - 1);
  for (std::size_t i = 0; i + 2 <= s.size(); ++i) {
    grams.emplace_back(s.substr(i, 2));
  }
  return grams;
}

void CharacterBigramViews(std::string_view s,
                          std::vector<std::string_view>* out) {
  NGramViews(s, 2, out);
}

double DiceBigramSimilarity(std::string_view a, std::string_view b) {
  std::vector<std::string_view> ga, gb;
  NGramViews(a, 2, &ga);
  NGramViews(b, 2, &gb);
  if (ga.empty() && gb.empty()) return 1.0;
  if (ga.empty() || gb.empty()) return 0.0;
  const std::size_t total = ga.size() + gb.size();
  std::sort(ga.begin(), ga.end());
  std::sort(gb.begin(), gb.end());
  const std::size_t overlap = SortedMultisetOverlap(ga, gb);
  return 2.0 * static_cast<double>(overlap) / static_cast<double>(total);
}

double NGramOverlapSimilarity(std::string_view a, std::string_view b,
                              std::size_t n) {
  RL_CHECK(n > 0);
  std::vector<std::string_view> ga, gb;
  NGramViews(a, n, &ga);
  NGramViews(b, n, &gb);
  if (ga.empty() && gb.empty()) return 1.0;
  if (ga.empty() || gb.empty()) return 0.0;
  const std::size_t smaller = std::min(ga.size(), gb.size());
  std::sort(ga.begin(), ga.end());
  std::sort(gb.begin(), gb.end());
  const std::size_t overlap = SortedMultisetOverlap(ga, gb);
  return static_cast<double>(overlap) / static_cast<double>(smaller);
}

double MongeElkanSimilarity(std::string_view a, std::string_view b) {
  const auto ta = util::SplitAny(a, " \t\n\r");
  const auto tb = util::SplitAny(b, " \t\n\r");
  if (ta.empty() && tb.empty()) return 1.0;
  if (ta.empty() || tb.empty()) return 0.0;
  double total = 0.0;
  for (const auto& x : ta) {
    double best = 0.0;
    for (const auto& y : tb) {
      best = std::max(best, JaroWinklerSimilarity(x, y));
    }
    total += best;
  }
  return total / static_cast<double>(ta.size());
}

void TfIdfCosine::AddDocument(const std::vector<std::string>& tokens) {
  RL_CHECK(!finalized_) << "AddDocument after Finalize";
  ++num_documents_;
  // Intern, then dedupe ids (sorted-unique) instead of hashing strings.
  std::vector<TokenId> ids;
  ids.reserve(tokens.size());
  for (const auto& t : tokens) {
    const TokenId id = tokens_.Intern(t);
    if (id == document_frequency_.size()) document_frequency_.push_back(0);
    ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  for (const TokenId id : ids) ++document_frequency_[id];
}

void TfIdfCosine::Finalize() { finalized_ = true; }

double TfIdfCosine::Idf(TokenId id) const {
  // Smoothed IDF; corpus-unseen tokens (kInvalidSymbolId) get the maximum
  // weight.
  const double df = id == util::kInvalidSymbolId
                        ? 0.0
                        : static_cast<double>(document_frequency_[id]);
  return std::log((1.0 + static_cast<double>(num_documents_)) / (1.0 + df)) +
         1.0;
}

double TfIdfCosine::Similarity(const std::vector<std::string>& a,
                               const std::vector<std::string>& b) const {
  RL_CHECK(finalized_) << "Similarity before Finalize";
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  // A document's sparse TF-IDF vector: one weighted entry per distinct
  // token. Vocabulary tokens are resolved read-only to TokenIds;
  // corpus-unseen tokens keep their string_view as the coordinate, so two
  // distinct unknown tokens stay distinct and matching unknowns (present
  // in both documents) still align. Entries sort by (id, view), making
  // the accumulation order deterministic rather than hash-dependent.
  struct Entry {
    TokenId id;             // kInvalidSymbolId for corpus-unseen tokens
    std::string_view view;  // coordinate tie-break among unseen tokens
    double weight;          // tf (then tf*idf)

    bool SameToken(const Entry& o) const {
      return id == o.id && (id != util::kInvalidSymbolId || view == o.view);
    }
    bool operator<(const Entry& o) const {
      if (id != o.id) return id < o.id;
      return view < o.view;
    }
  };
  const auto vectorize = [this](const std::vector<std::string>& tokens,
                                std::vector<Entry>* v) {
    v->reserve(tokens.size());
    for (const auto& t : tokens) {
      v->push_back(Entry{tokens_.Find(t), t, 1.0});
    }
    std::sort(v->begin(), v->end());
    // Collapse duplicates (term frequency), then weight by IDF.
    std::size_t out = 0;
    for (std::size_t i = 0; i < v->size();) {
      std::size_t j = i + 1;
      while (j < v->size() && (*v)[j].SameToken((*v)[i])) ++j;
      (*v)[out] = (*v)[i];
      (*v)[out].weight = static_cast<double>(j - i);
      ++out;
      i = j;
    }
    v->resize(out);
    double norm = 0.0;
    for (Entry& e : *v) {
      e.weight *= Idf(e.id);
      norm += e.weight * e.weight;
    }
    return std::sqrt(norm);
  };
  std::vector<Entry> va, vb;
  const double na = vectorize(a, &va);
  const double nb = vectorize(b, &vb);
  if (na == 0.0 || nb == 0.0) return 0.0;
  double dot = 0.0;
  std::size_t i = 0, j = 0;
  while (i < va.size() && j < vb.size()) {
    if (va[i].SameToken(vb[j])) {
      dot += va[i].weight * vb[j].weight;
      ++i;
      ++j;
    } else if (va[i] < vb[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return dot / (na * nb);
}

}  // namespace rulelink::text
