#include "text/normalize.h"

#include "util/string_util.h"

namespace rulelink::text {

std::string Normalize(std::string_view input,
                      const NormalizeOptions& options) {
  std::string_view view = input;
  if (options.strip_whitespace) {
    view = util::StripAsciiWhitespace(view);
  }
  std::string out;
  out.reserve(view.size());
  bool pending_space = false;
  for (char c : view) {
    const bool is_space = c == ' ' || c == '\t' || c == '\n' || c == '\r';
    if (options.collapse_spaces && is_space) {
      pending_space = true;
      continue;
    }
    if (pending_space) {
      out.push_back(' ');
      pending_space = false;
    }
    if (options.lowercase && c >= 'A' && c <= 'Z') {
      c = static_cast<char>(c - 'A' + 'a');
    }
    out.push_back(c);
  }
  return out;
}

std::string NormalizeDefault(std::string_view input) {
  return Normalize(input, NormalizeOptions{});
}

}  // namespace rulelink::text
