// Value normalization applied before segmentation and similarity
// computation. The paper's pipeline lower-cases nothing explicitly; we make
// normalization an explicit, configurable step.
#ifndef RULELINK_TEXT_NORMALIZE_H_
#define RULELINK_TEXT_NORMALIZE_H_

#include <string>
#include <string_view>

namespace rulelink::text {

struct NormalizeOptions {
  bool lowercase = false;        // ASCII lowercase
  bool strip_whitespace = true;  // trim leading/trailing whitespace
  bool collapse_spaces = true;   // runs of internal whitespace -> one ' '
};

// Applies `options` to `input` and returns the normalized copy.
std::string Normalize(std::string_view input, const NormalizeOptions& options);

// Default normalization used by the rule learner: trim + collapse, case
// preserved (part-numbers are case-significant).
std::string NormalizeDefault(std::string_view input);

}  // namespace rulelink::text

#endif  // RULELINK_TEXT_NORMALIZE_H_
