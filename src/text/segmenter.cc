#include "text/segmenter.h"

#include "util/logging.h"
#include "util/string_util.h"

namespace rulelink::text {

void Segmenter::SegmentInto(std::string_view value,
                            util::StringInterner* interner,
                            std::vector<SegmentId>* out) const {
  // Small inline scratch would need per-call state; a local vector's heap
  // buffer is reused by callers that hold their own scratch and call
  // SegmentViews directly. This wrapper favors simplicity.
  std::vector<std::string_view> views;
  SegmentViews(value, &views);
  out->reserve(out->size() + views.size());
  for (std::string_view view : views) out->push_back(interner->Intern(view));
}

std::vector<std::string> Segmenter::Segment(std::string_view value) const {
  std::vector<std::string_view> views;
  SegmentViews(value, &views);
  return {views.begin(), views.end()};
}

SeparatorSegmenter::SeparatorSegmenter(std::string separators)
    : separators_(std::move(separators)) {}

bool SeparatorSegmenter::IsSeparator(char c) const {
  if (separators_.empty()) return !util::IsAsciiAlnum(c);
  return separators_.find(c) != std::string::npos;
}

void SeparatorSegmenter::SegmentViews(
    std::string_view value, std::vector<std::string_view>* out) const {
  std::size_t start = 0;
  for (std::size_t i = 0; i <= value.size(); ++i) {
    if (i == value.size() || IsSeparator(value[i])) {
      if (i > start) out->push_back(value.substr(start, i - start));
      start = i + 1;
    }
  }
}

NGramSegmenter::NGramSegmenter(std::size_t n) : n_(n) {
  RL_CHECK(n > 0) << "n-gram size must be positive";
}

void NGramSegmenter::SegmentViews(std::string_view value,
                                  std::vector<std::string_view>* out) const {
  if (value.empty()) return;
  if (value.size() <= n_) {
    out->push_back(value);
    return;
  }
  out->reserve(out->size() + value.size() - n_ + 1);
  for (std::size_t i = 0; i + n_ <= value.size(); ++i) {
    out->push_back(value.substr(i, n_));
  }
}

std::string NGramSegmenter::name() const {
  return "ngram(" + std::to_string(n_) + ")";
}

void AlphaDigitSegmenter::SegmentViews(
    std::string_view value, std::vector<std::string_view>* out) const {
  const SeparatorSegmenter outer;
  const std::size_t first_token = out->size();
  outer.SegmentViews(value, out);
  const std::size_t last_token = out->size();
  // Split each separator token at alpha/digit boundaries; the intermediate
  // separator tokens are then replaced by the full run sequence.
  std::vector<std::string_view> runs;
  for (std::size_t t = first_token; t < last_token; ++t) {
    const std::string_view token = (*out)[t];
    std::size_t start = 0;
    for (std::size_t i = 1; i <= token.size(); ++i) {
      const bool boundary =
          i == token.size() ||
          util::IsAsciiDigit(token[i]) != util::IsAsciiDigit(token[i - 1]);
      if (boundary) {
        runs.push_back(token.substr(start, i - start));
        start = i;
      }
    }
  }
  out->resize(first_token);
  out->insert(out->end(), runs.begin(), runs.end());
}

PrefixEnrichedSegmenter::PrefixEnrichedSegmenter(
    std::unique_ptr<Segmenter> base, std::size_t min_prefix)
    : base_(std::move(base)), min_prefix_(min_prefix) {
  RL_CHECK(base_ != nullptr);
  RL_CHECK(min_prefix_ > 0);
}

void PrefixEnrichedSegmenter::SegmentViews(
    std::string_view value, std::vector<std::string_view>* out) const {
  const std::size_t first = out->size();
  base_->SegmentViews(value, out);
  const std::size_t original = out->size();
  for (std::size_t i = first; i < original; ++i) {
    const std::string_view seg = (*out)[i];  // copy: push_back reallocates
    for (std::size_t len = min_prefix_; len < seg.size(); ++len) {
      out->push_back(seg.substr(0, len));
    }
  }
}

std::string PrefixEnrichedSegmenter::name() const {
  return base_->name() + "+prefix(" + std::to_string(min_prefix_) + ")";
}

}  // namespace rulelink::text
