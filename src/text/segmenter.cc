#include "text/segmenter.h"

#include "util/logging.h"
#include "util/string_util.h"

namespace rulelink::text {

SeparatorSegmenter::SeparatorSegmenter(std::string separators)
    : separators_(std::move(separators)) {}

bool SeparatorSegmenter::IsSeparator(char c) const {
  if (separators_.empty()) return !util::IsAsciiAlnum(c);
  return separators_.find(c) != std::string::npos;
}

std::vector<std::string> SeparatorSegmenter::Segment(
    std::string_view value) const {
  std::vector<std::string> segments;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= value.size(); ++i) {
    if (i == value.size() || IsSeparator(value[i])) {
      if (i > start) segments.emplace_back(value.substr(start, i - start));
      start = i + 1;
    }
  }
  return segments;
}

NGramSegmenter::NGramSegmenter(std::size_t n) : n_(n) {
  RL_CHECK(n > 0) << "n-gram size must be positive";
}

std::vector<std::string> NGramSegmenter::Segment(
    std::string_view value) const {
  std::vector<std::string> segments;
  if (value.empty()) return segments;
  if (value.size() <= n_) {
    segments.emplace_back(value);
    return segments;
  }
  segments.reserve(value.size() - n_ + 1);
  for (std::size_t i = 0; i + n_ <= value.size(); ++i) {
    segments.emplace_back(value.substr(i, n_));
  }
  return segments;
}

std::string NGramSegmenter::name() const {
  return "ngram(" + std::to_string(n_) + ")";
}

std::vector<std::string> AlphaDigitSegmenter::Segment(
    std::string_view value) const {
  const SeparatorSegmenter outer;
  std::vector<std::string> segments;
  for (const std::string& token : outer.Segment(value)) {
    std::size_t start = 0;
    for (std::size_t i = 1; i <= token.size(); ++i) {
      const bool boundary =
          i == token.size() ||
          util::IsAsciiDigit(token[i]) != util::IsAsciiDigit(token[i - 1]);
      if (boundary) {
        segments.push_back(token.substr(start, i - start));
        start = i;
      }
    }
  }
  return segments;
}

PrefixEnrichedSegmenter::PrefixEnrichedSegmenter(
    std::unique_ptr<Segmenter> base, std::size_t min_prefix)
    : base_(std::move(base)), min_prefix_(min_prefix) {
  RL_CHECK(base_ != nullptr);
  RL_CHECK(min_prefix_ > 0);
}

std::vector<std::string> PrefixEnrichedSegmenter::Segment(
    std::string_view value) const {
  std::vector<std::string> segments = base_->Segment(value);
  const std::size_t original = segments.size();
  for (std::size_t i = 0; i < original; ++i) {
    // Copy: push_back below may reallocate and invalidate references into
    // the vector.
    const std::string seg = segments[i];
    for (std::size_t len = min_prefix_; len < seg.size(); ++len) {
      segments.push_back(seg.substr(0, len));
    }
  }
  return segments;
}

std::string PrefixEnrichedSegmenter::name() const {
  return base_->name() + "+prefix(" + std::to_string(min_prefix_) + ")";
}

}  // namespace rulelink::text
