// Phonetic encodings for name-valued attributes: Soundex (the census
// classic behind Jaro's original blocking keys) and a refined NYSIIS
// variant. Phonetic codes serve as blocking keys robust to spelling
// variation — the record-linkage counterpart of the paper's segment
// rules for part numbers.
#ifndef RULELINK_TEXT_PHONETIC_H_
#define RULELINK_TEXT_PHONETIC_H_

#include <string>
#include <string_view>

namespace rulelink::text {

// American Soundex: first letter + 3 digits ("Robert" -> "R163").
// Non-alphabetic characters are skipped; an empty/non-alpha input yields
// an empty code.
std::string Soundex(std::string_view name);

// NYSIIS (New York State Identification and Intelligence System), the
// common simplified variant; returns an uppercase code of length <= 6.
std::string Nysiis(std::string_view name);

}  // namespace rulelink::text

#endif  // RULELINK_TEXT_PHONETIC_H_
