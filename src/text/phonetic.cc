#include "text/phonetic.h"

#include "util/string_util.h"

namespace rulelink::text {
namespace {

char SoundexDigit(char c) {
  switch (c) {
    case 'b': case 'f': case 'p': case 'v':
      return '1';
    case 'c': case 'g': case 'j': case 'k':
    case 'q': case 's': case 'x': case 'z':
      return '2';
    case 'd': case 't':
      return '3';
    case 'l':
      return '4';
    case 'm': case 'n':
      return '5';
    case 'r':
      return '6';
    default:
      return '0';  // vowels and h/w/y
  }
}

char ToLower(char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}
char ToUpper(char c) {
  return (c >= 'a' && c <= 'z') ? static_cast<char>(c - 'a' + 'A') : c;
}

bool IsVowel(char c) {
  c = ToLower(c);
  return c == 'a' || c == 'e' || c == 'i' || c == 'o' || c == 'u';
}

}  // namespace

std::string Soundex(std::string_view name) {
  // Keep alphabetic characters only.
  std::string letters;
  for (char c : name) {
    if (util::IsAsciiAlpha(c)) letters.push_back(ToLower(c));
  }
  if (letters.empty()) return "";

  std::string code;
  code.push_back(ToUpper(letters[0]));
  char previous_digit = SoundexDigit(letters[0]);
  for (std::size_t i = 1; i < letters.size() && code.size() < 4; ++i) {
    const char c = letters[i];
    const char digit = SoundexDigit(c);
    if (digit != '0' && digit != previous_digit) {
      code.push_back(digit);
    }
    // 'h' and 'w' are transparent: they do not reset the previous digit.
    if (c != 'h' && c != 'w') previous_digit = digit;
  }
  while (code.size() < 4) code.push_back('0');
  return code;
}

std::string Nysiis(std::string_view name) {
  std::string s;
  for (char c : name) {
    if (util::IsAsciiAlpha(c)) s.push_back(ToUpper(c));
  }
  if (s.empty()) return "";

  // Leading transformations.
  const auto replace_prefix = [&](std::string_view from,
                                  std::string_view to) {
    if (s.rfind(from, 0) == 0) {
      s = std::string(to) + s.substr(from.size());
    }
  };
  replace_prefix("MAC", "MCC");
  replace_prefix("KN", "NN");
  replace_prefix("K", "C");
  replace_prefix("PH", "FF");
  replace_prefix("PF", "FF");
  replace_prefix("SCH", "SSS");
  // Trailing transformations.
  const auto replace_suffix = [&](std::string_view from,
                                  std::string_view to) {
    if (s.size() >= from.size() &&
        s.compare(s.size() - from.size(), from.size(), from) == 0) {
      s = s.substr(0, s.size() - from.size()) + std::string(to);
    }
  };
  replace_suffix("EE", "Y");
  replace_suffix("IE", "Y");
  for (const char* suffix : {"DT", "RT", "RD", "NT", "ND"}) {
    replace_suffix(suffix, "D");
  }

  std::string key;
  key.push_back(s[0]);
  for (std::size_t i = 1; i < s.size(); ++i) {
    char c = s[i];
    // Body transformations on the current window.
    if (c == 'E' && i + 1 < s.size() && s[i + 1] == 'V') {
      s[i + 1] = 'F';
      c = 'A';
    } else if (IsVowel(c)) {
      c = 'A';
    } else if (c == 'Q') {
      c = 'G';
    } else if (c == 'Z') {
      c = 'S';
    } else if (c == 'M') {
      c = 'N';
    } else if (c == 'K') {
      c = i + 1 < s.size() && s[i + 1] == 'N' ? 'N' : 'C';
    } else if (c == 'S' && s.compare(i, 3, "SCH") == 0) {
      s[i + 1] = 'S';
      s[i + 2] = 'S';
    } else if (c == 'P' && i + 1 < s.size() && s[i + 1] == 'H') {
      s[i + 1] = 'F';
      c = 'F';
    } else if (c == 'H' &&
               (!IsVowel(s[i - 1]) ||
                (i + 1 < s.size() && !IsVowel(s[i + 1])))) {
      c = s[i - 1];
    } else if (c == 'W' && IsVowel(s[i - 1])) {
      c = s[i - 1];
    }
    if (c != key.back()) key.push_back(c);
    s[i] = c;
  }
  // Trailing cleanup: drop S, convert AY -> Y, drop trailing A.
  if (key.size() > 1 && key.back() == 'S') key.pop_back();
  if (key.size() >= 2 && key.compare(key.size() - 2, 2, "AY") == 0) {
    key = key.substr(0, key.size() - 2) + "Y";
  }
  if (key.size() > 1 && key.back() == 'A') key.pop_back();
  if (key.size() > 6) key.resize(6);
  return key;
}

}  // namespace rulelink::text
