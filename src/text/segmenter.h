// Value segmentation: how a property value is split into the segments `a`
// that appear in classification rules p(X,Y) ∧ subsegment(Y,a) ⇒ c(X).
// The paper lets a domain expert choose the scheme — separation characters
// or n-grams — so the scheme is an interface with several implementations.
#ifndef RULELINK_TEXT_SEGMENTER_H_
#define RULELINK_TEXT_SEGMENTER_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace rulelink::text {

class Segmenter {
 public:
  virtual ~Segmenter() = default;

  // Splits `value` into segments. May return duplicates if a segment occurs
  // several times in the value; callers that need per-item distinct
  // semantics (the learner's support counting) deduplicate themselves.
  virtual std::vector<std::string> Segment(std::string_view value) const = 0;

  // Human-readable scheme name for reports ("separator", "ngram(3)", ...).
  virtual std::string name() const = 0;
};

// Splits on every character outside [A-Za-z0-9] — the scheme the paper's
// expert chose for part-numbers ("space, '-', '.', ...."). An explicit
// separator set may be supplied instead.
class SeparatorSegmenter : public Segmenter {
 public:
  // Default: any non-alphanumeric character separates.
  SeparatorSegmenter() = default;
  // Explicit separator set, e.g. ":-; ".
  explicit SeparatorSegmenter(std::string separators);

  std::vector<std::string> Segment(std::string_view value) const override;
  std::string name() const override { return "separator"; }

 private:
  bool IsSeparator(char c) const;

  std::string separators_;  // empty => any non-alphanumeric
};

// Character n-grams of fixed size n (the paper's alternative scheme).
// Values shorter than n produce the whole value as a single segment.
class NGramSegmenter : public Segmenter {
 public:
  explicit NGramSegmenter(std::size_t n);

  std::vector<std::string> Segment(std::string_view value) const override;
  std::string name() const override;

  std::size_t n() const { return n_; }

 private:
  std::size_t n_;
};

// Separator split followed by alpha/digit boundary split: "CRCW0805" ->
// {"CRCW", "0805"}, "63V" -> {"63", "V"}. Used as an ablation: it trades
// segment specificity for recall.
class AlphaDigitSegmenter : public Segmenter {
 public:
  AlphaDigitSegmenter() = default;

  std::vector<std::string> Segment(std::string_view value) const override;
  std::string name() const override { return "alpha-digit"; }
};

// Composite: applies a primary segmenter and additionally emits every
// prefix of each segment no shorter than `min_prefix` (classic blocking
// key family). Used for ablations.
class PrefixEnrichedSegmenter : public Segmenter {
 public:
  PrefixEnrichedSegmenter(std::unique_ptr<Segmenter> base,
                          std::size_t min_prefix);

  std::vector<std::string> Segment(std::string_view value) const override;
  std::string name() const override;

 private:
  std::unique_ptr<Segmenter> base_;
  std::size_t min_prefix_;
};

}  // namespace rulelink::text

#endif  // RULELINK_TEXT_SEGMENTER_H_
