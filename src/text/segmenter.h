// Value segmentation: how a property value is split into the segments `a`
// that appear in classification rules p(X,Y) ∧ subsegment(Y,a) ⇒ c(X).
// The paper lets a domain expert choose the scheme — separation characters
// or n-grams — so the scheme is an interface with several implementations.
//
// Two call styles:
//   * SegmentViews appends string_views into `value` — every scheme here
//     emits substrings (or prefixes of substrings) of the input, so no
//     segment ever needs its own allocation. The views are valid only
//     while `value`'s bytes are.
//   * SegmentInto resolves those views through a util::StringInterner and
//     appends dense SegmentIds — the form the learning core counts with.
// The legacy Segment() (vector of owned strings) wraps SegmentViews and
// remains for I/O-boundary callers and tests.
#ifndef RULELINK_TEXT_SEGMENTER_H_
#define RULELINK_TEXT_SEGMENTER_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/interner.h"

namespace rulelink::text {

// Dense id of an interned segment string (see util::StringInterner).
using SegmentId = util::SymbolId;
inline constexpr SegmentId kInvalidSegmentId = util::kInvalidSymbolId;

class Segmenter {
 public:
  virtual ~Segmenter() = default;

  // Appends the segments of `value` to `*out` as views into `value`. May
  // emit duplicates if a segment occurs several times; callers that need
  // per-item distinct semantics (the learner's support counting)
  // deduplicate themselves. `*out` is NOT cleared.
  virtual void SegmentViews(std::string_view value,
                            std::vector<std::string_view>* out) const = 0;

  // Appends the SegmentIds of `value` to `*out`, interning each segment
  // into `*interner`. Allocation-free apart from interner/out growth.
  void SegmentInto(std::string_view value, util::StringInterner* interner,
                   std::vector<SegmentId>* out) const;

  // Splits `value` into owned segment strings (I/O-boundary convenience).
  std::vector<std::string> Segment(std::string_view value) const;

  // Human-readable scheme name for reports ("separator", "ngram(3)", ...).
  virtual std::string name() const = 0;
};

// Splits on every character outside [A-Za-z0-9] — the scheme the paper's
// expert chose for part-numbers ("space, '-', '.', ...."). An explicit
// separator set may be supplied instead.
class SeparatorSegmenter : public Segmenter {
 public:
  // Default: any non-alphanumeric character separates.
  SeparatorSegmenter() = default;
  // Explicit separator set, e.g. ":-; ".
  explicit SeparatorSegmenter(std::string separators);

  void SegmentViews(std::string_view value,
                    std::vector<std::string_view>* out) const override;
  std::string name() const override { return "separator"; }

 private:
  bool IsSeparator(char c) const;

  std::string separators_;  // empty => any non-alphanumeric
};

// Character n-grams of fixed size n (the paper's alternative scheme).
// Values shorter than n produce the whole value as a single segment.
class NGramSegmenter : public Segmenter {
 public:
  explicit NGramSegmenter(std::size_t n);

  void SegmentViews(std::string_view value,
                    std::vector<std::string_view>* out) const override;
  std::string name() const override;

  std::size_t n() const { return n_; }

 private:
  std::size_t n_;
};

// Separator split followed by alpha/digit boundary split: "CRCW0805" ->
// {"CRCW", "0805"}, "63V" -> {"63", "V"}. Used as an ablation: it trades
// segment specificity for recall.
class AlphaDigitSegmenter : public Segmenter {
 public:
  AlphaDigitSegmenter() = default;

  void SegmentViews(std::string_view value,
                    std::vector<std::string_view>* out) const override;
  std::string name() const override { return "alpha-digit"; }
};

// Composite: applies a primary segmenter and additionally emits every
// prefix of each segment no shorter than `min_prefix` (classic blocking
// key family). Used for ablations.
class PrefixEnrichedSegmenter : public Segmenter {
 public:
  PrefixEnrichedSegmenter(std::unique_ptr<Segmenter> base,
                          std::size_t min_prefix);

  void SegmentViews(std::string_view value,
                    std::vector<std::string_view>* out) const override;
  std::string name() const override;

 private:
  std::unique_ptr<Segmenter> base_;
  std::size_t min_prefix_;
};

}  // namespace rulelink::text

#endif  // RULELINK_TEXT_SEGMENTER_H_
