// String similarity measures used by the linker and the blocking baselines.
// All functions return a similarity in [0, 1] (1 = identical) unless the
// name says "Distance".
#ifndef RULELINK_TEXT_SIMILARITY_H_
#define RULELINK_TEXT_SIMILARITY_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "util/interner.h"

namespace rulelink::text {

// Dense id of an interned token (TfIdfCosine's corpus vocabulary).
using TokenId = util::SymbolId;

// Levenshtein edit distance (insert/delete/substitute, unit costs).
// Computed with Myers' bit-parallel algorithm (64-bit blocks); byte-wise,
// so it agrees exactly with the dynamic-programming reference below even
// on multi-byte UTF-8 input.
std::size_t LevenshteinDistance(std::string_view a, std::string_view b);

// The single-row dynamic-programming formulation, kept as the differential
// oracle for the bit-parallel kernel. Not used on any hot path.
std::size_t LevenshteinDistanceDP(std::string_view a, std::string_view b);

// Threshold-capped Levenshtein: returns the exact distance when it is
// <= cap, and some value > cap otherwise (the kernel stops as soon as the
// distance provably exceeds the cap). Lets filter cascades test "within a
// distance budget" without paying for the full distance.
std::size_t BoundedLevenshteinDistance(std::string_view a, std::string_view b,
                                       std::size_t cap);

// Batched capped Levenshtein: out[i] = BoundedLevenshteinDistance(a[i],
// b[i], caps[i]) for every i < count — the same values exactly, including
// the cap+1 early-exit results. Pairs whose shorter string fits one
// 64-bit word run through a multi-pair interleaved Myers kernel: W
// independent bit-parallel computations advance in lockstep across SIMD
// lanes (W = 4 under AVX2, 2 under SSE4.2, chosen by
// util::ActiveSimdMode()), with the single-pair kernel as remainder and
// long-pattern fallback. The streaming cascade's stage-B probes are the
// intended caller: one external value against the surviving locals of a
// candidate run (DESIGN.md §5h).
void BoundedLevenshteinDistanceBatch(const std::string_view* a,
                                     const std::string_view* b,
                                     const std::size_t* caps,
                                     std::size_t count, std::size_t* out);

// The similarity LevenshteinSimilarity derives from an already-known
// distance: 1 - distance / longest (1.0 when longest == 0). Exposed so
// callers that computed the distance themselves reproduce the exact same
// double, bit for bit.
inline double LevenshteinSimilarityFromDistance(std::size_t distance,
                                                std::size_t longest) {
  if (longest == 0) return 1.0;
  return 1.0 -
         static_cast<double>(distance) / static_cast<double>(longest);
}

// Damerau-Levenshtein (adds adjacent transposition), restricted variant.
std::size_t DamerauLevenshteinDistance(std::string_view a,
                                       std::string_view b);

// 1 - distance / max(|a|, |b|); 1.0 for two empty strings.
double LevenshteinSimilarity(std::string_view a, std::string_view b);

// Jaro similarity as defined by Jaro (1989).
double JaroSimilarity(std::string_view a, std::string_view b);

// Jaro-Winkler with the standard prefix scale 0.1 and max prefix 4.
double JaroWinklerSimilarity(std::string_view a, std::string_view b);

// Jaccard similarity over whitespace tokens.
double JaccardTokenSimilarity(std::string_view a, std::string_view b);

// Dice coefficient over character bigrams (multiset semantics).
double DiceBigramSimilarity(std::string_view a, std::string_view b);

// Overlap coefficient over character n-grams.
double NGramOverlapSimilarity(std::string_view a, std::string_view b,
                              std::size_t n);

// Monge-Elkan: mean over tokens of `a` of the best Jaro-Winkler match in
// `b`'s tokens. Asymmetric; callers usually average both directions.
double MongeElkanSimilarity(std::string_view a, std::string_view b);

// Returns the character bigrams of `s` ("ab","bc",...); a string of length
// < 2 yields the string itself. Shared by Dice and the bi-gram blocker.
std::vector<std::string> CharacterBigrams(std::string_view s);

// Appends the same gram sequence as views into `s` (no allocation per
// gram). Exactly the multiset DiceBigramSimilarity compares, exposed so
// the linking feature cache can intern it once per distinct value.
void CharacterBigramViews(std::string_view s,
                          std::vector<std::string_view>* out);

// TF-IDF cosine similarity over a token corpus. Build once over the local
// source, then score pairs. The vocabulary is interned once: document
// frequencies live in a flat vector keyed by TokenId, and Similarity
// resolves tokens read-only against the vocabulary (no per-call
// string-keyed hash maps; corpus-unseen tokens still participate, matched
// by string among themselves, with the maximum smoothed IDF).
class TfIdfCosine {
 public:
  TfIdfCosine() = default;

  // Adds one document (its token multiset) to the corpus statistics.
  void AddDocument(const std::vector<std::string>& tokens);

  // Finalizes IDF weights; must be called after all AddDocument calls and
  // before Similarity.
  void Finalize();

  // Cosine similarity of the TF-IDF vectors of the two token multisets.
  double Similarity(const std::vector<std::string>& a,
                    const std::vector<std::string>& b) const;

  std::size_t num_documents() const { return num_documents_; }

  // Vocabulary size (distinct corpus tokens).
  std::size_t vocabulary_size() const { return tokens_.size(); }

 private:
  double Idf(TokenId id) const;

  util::StringInterner tokens_;                   // corpus vocabulary
  std::vector<std::size_t> document_frequency_;   // by TokenId
  std::size_t num_documents_ = 0;
  bool finalized_ = false;
};

}  // namespace rulelink::text

#endif  // RULELINK_TEXT_SIMILARITY_H_
