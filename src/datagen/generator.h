// The workload generator: builds the full synthetic corpus described in
// DESIGN.md §2 (ontology, catalog, provider documents, expert links) from
// a DatasetConfig, deterministically from the seed.
//
// Signal model. Leaf classes are Zipf-popular. The mid-popularity ranks
// are "signal classes": each owns 3-4 series tokens ("CRCW0805", "T83")
// that appear in most of its part numbers. Each signal class has a target
// confidence q: for q < 1 its tokens are polluted — products of other
// classes occasionally carry one of them, at a rate calibrated so the
// learnt token -> class rule confidence lands at q in expectation. This is
// what spreads the learnt rules across Table 1's confidence bands.
// Family-level unit tokens ("ohm", "63V") and global packaging tokens
// ("ROHS", "TR") add the weak and class-blind segments; a serial drawn
// from a bounded pool supplies the long tail of infrequent segments.
#ifndef RULELINK_DATAGEN_GENERATOR_H_
#define RULELINK_DATAGEN_GENERATOR_H_

#include "datagen/config.h"
#include "datagen/dataset.h"
#include "util/status.h"

namespace rulelink::datagen {

class DatasetGenerator {
 public:
  explicit DatasetGenerator(DatasetConfig config) : config_(config) {}

  // Generates the corpus. Fails on infeasible configuration (bad taxonomy
  // shape, num_links > catalog_size, empty pools).
  util::Result<Dataset> Generate() const;

 private:
  DatasetConfig config_;
};

}  // namespace rulelink::datagen

#endif  // RULELINK_DATAGEN_GENERATOR_H_
