// Typographic noise channel used when rendering provider documents: real
// provider files contain keying errors, which is what makes the linking
// step (and fuzzy blocking baselines) non-trivial.
#ifndef RULELINK_DATAGEN_TYPO_H_
#define RULELINK_DATAGEN_TYPO_H_

#include <string>

#include "util/rng.h"

namespace rulelink::datagen {

// Applies exactly one random edit to `s` (substitution, deletion,
// insertion, or adjacent transposition of an alphanumeric character).
// Strings of length < 2 only receive substitutions/insertions.
std::string ApplyTypo(const std::string& s, util::Rng* rng);

}  // namespace rulelink::datagen

#endif  // RULELINK_DATAGEN_TYPO_H_
