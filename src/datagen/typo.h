// Typographic noise channel used when rendering provider documents: real
// provider files contain keying errors, which is what makes the linking
// step (and fuzzy blocking baselines) non-trivial.
#ifndef RULELINK_DATAGEN_TYPO_H_
#define RULELINK_DATAGEN_TYPO_H_

#include <string>

#include "util/rng.h"

namespace rulelink::datagen {

// Applies exactly one random edit to `s` (substitution, deletion,
// insertion, or adjacent transposition of an alphanumeric character).
// Strings of fewer than 2 code points only receive substitutions/
// insertions. Edits operate on whole UTF-8 code points — a valid UTF-8
// input stays valid UTF-8 (accented or CJK part names are never split
// mid-character); for pure-ASCII input the behaviour and draw sequence
// are identical to the byte-level editor, so seeded corpora are stable.
std::string ApplyTypo(const std::string& s, util::Rng* rng);

}  // namespace rulelink::datagen

#endif  // RULELINK_DATAGEN_TYPO_H_
