#include "datagen/ontology_gen.h"

#include <algorithm>
#include <unordered_set>

#include "datagen/config.h"
#include "util/logging.h"

namespace rulelink::datagen {
namespace {

constexpr const char* kFamilyNames[] = {
    "Resistor",      "Capacitor",   "Inductor",   "Diode",
    "Transistor",    "Connector",   "Relay",      "Switch",
    "Crystal",       "Fuse",        "Transformer","Sensor",
    "Potentiometer", "Thermistor",  "Varistor",   "Oscillator",
    "Filter",        "Amplifier",   "Display",    "Regulator",
    "Converter",     "Memory",      "Microcontroller", "Antenna",
};

constexpr const char* kQualifiers[] = {
    "Fixed",     "Variable",  "Ceramic",    "Tantalum",  "Film",
    "Electrolytic", "Power",  "Signal",     "HighVoltage", "Precision",
    "SMD",       "ThroughHole", "Axial",    "Radial",    "Miniature",
    "Industrial", "Automotive", "RF",       "Digital",   "Analog",
    "LowNoise",  "HighSpeed", "Shielded",   "Sealed",    "Rugged",
};

// Family-specific measure units ("ohm" belongs to resistors the way the
// paper's §4 examples suggest): each family owns one of these exclusively.
constexpr const char* kUnitTokens[] = {
    "ohm", "kohm", "Mohm", "pF",  "nF",  "uF",  "mF",  "uH",
    "mH",  "H",    "mW",   "1W",  "5W",  "MHz", "kHz", "GHz",
    "ppm", "mA",   "uA",   "dB",  "lm",  "mT",  "kPa", "rpm",
};

// Shared electrical ratings that cut across families; these stay ambiguous
// segments and never generalize cleanly.
constexpr const char* kSharedUnitTokens[] = {
    "16V", "25V", "63V", "100V", "250V", "5V", "12V",
};

}  // namespace

util::Result<GeneratedOntology> GenerateOntology(std::size_t num_classes,
                                                 std::size_t num_leaves,
                                                 util::Rng* rng) {
  if (num_leaves < 2 || num_leaves >= num_classes) {
    return util::InvalidArgumentError(
        "need 2 <= num_leaves < num_classes");
  }
  const std::size_t num_internal = num_classes - num_leaves;
  if (num_internal < 2) {
    return util::InvalidArgumentError(
        "need at least a root and one family (num_classes - num_leaves >= "
        "2)");
  }

  // --- Internal skeleton: node 0 is the root; the first few internal
  // nodes become depth-1 families; the rest attach to random internal
  // parents below the root so families keep subtrees. The family count
  // scales with the taxonomy so small ontologies do not end up with more
  // childless internal classes than leaves.
  const std::size_t num_families = std::min(
      std::min<std::size_t>(std::size(kFamilyNames), num_internal - 1),
      std::max<std::size_t>(3, num_internal / 4));
  std::vector<std::size_t> parent(num_internal, 0);
  std::vector<std::size_t> child_count(num_internal, 0);
  for (std::size_t i = 1; i < num_internal; ++i) {
    if (i <= num_families) {
      parent[i] = 0;  // family under the root
    } else {
      // Attach below a random non-root internal node to grow depth.
      parent[i] = 1 + rng->UniformUint64(i - 1);
    }
    ++child_count[parent[i]];
  }

  // Leaves: first cover childless internal nodes, then spread the rest.
  std::vector<std::size_t> leaf_parent;
  leaf_parent.reserve(num_leaves);
  for (std::size_t i = 1; i < num_internal; ++i) {
    if (child_count[i] == 0) leaf_parent.push_back(i);
  }
  if (leaf_parent.size() > num_leaves) {
    return util::InvalidArgumentError(
        "infeasible taxonomy shape: more childless internal classes than "
        "leaves; increase num_leaves or num_classes");
  }
  while (leaf_parent.size() < num_leaves) {
    // Bias toward deeper parents (avoid piling every leaf on the root).
    const std::size_t p = 1 + rng->UniformUint64(num_internal - 1);
    leaf_parent.push_back(p);
  }
  rng->Shuffle(&leaf_parent);

  // --- Materialize the ontology. ---
  GeneratedOntology out;
  auto& onto = out.ontology;
  std::unordered_set<std::string> used_labels;
  const auto unique_label = [&](std::string base) {
    std::string label = base;
    std::size_t n = 2;
    while (!used_labels.insert(label).second) {
      label = base + " " + std::to_string(n++);
    }
    return label;
  };

  std::vector<ontology::ClassId> internal_ids(num_internal);
  for (std::size_t i = 0; i < num_internal; ++i) {
    std::string label;
    if (i == 0) {
      label = "ElectronicComponent";
    } else if (i <= num_families) {
      label = kFamilyNames[i - 1];
    } else {
      const std::size_t family_hint = rng->UniformUint64(num_families);
      label = unique_label(
          std::string(kQualifiers[rng->UniformUint64(std::size(kQualifiers))]) +
          " " + kFamilyNames[family_hint] + " Group");
    }
    internal_ids[i] =
        onto.AddClass(std::string(ns::kOntology) + "C" + std::to_string(i),
                      label);
  }
  for (std::size_t i = 1; i < num_internal; ++i) {
    RL_CHECK_OK(onto.AddSubClassOf(internal_ids[i], internal_ids[parent[i]]));
  }
  std::vector<ontology::ClassId> leaf_ids(num_leaves);
  for (std::size_t i = 0; i < num_leaves; ++i) {
    const std::string label = unique_label(
        std::string(kQualifiers[rng->UniformUint64(std::size(kQualifiers))]) +
        " " +
        kFamilyNames[rng->UniformUint64(std::size(kFamilyNames))]);
    leaf_ids[i] = onto.AddClass(
        std::string(ns::kOntology) + "L" + std::to_string(i), label);
    RL_CHECK_OK(onto.AddSubClassOf(leaf_ids[i], internal_ids[leaf_parent[i]]));
  }
  RL_RETURN_IF_ERROR(onto.Finalize());

  // --- Derived structure. ---
  out.leaves = onto.Leaves();
  // Family of each class: walk parents until a depth-1 class.
  out.family_of.assign(onto.num_classes(), ontology::kInvalidClassId);
  for (ontology::ClassId c = 0; c < onto.num_classes(); ++c) {
    ontology::ClassId cur = c;
    while (onto.Depth(cur) > 1) {
      RL_CHECK(!onto.Parents(cur).empty());
      cur = onto.Parents(cur).front();
    }
    out.family_of[c] = onto.Depth(cur) == 1 ? cur : c;
  }
  for (std::size_t i = 1; i <= num_families; ++i) {
    out.families.push_back(internal_ids[i]);
  }
  // Family unit vocabularies: one exclusive measure unit per family (the
  // family-level generalization signal of E6) plus 1-2 shared rating
  // tokens that stay ambiguous across families.
  out.family_units.resize(out.families.size());
  for (std::size_t f = 0; f < out.families.size(); ++f) {
    out.family_units[f].push_back(
        kUnitTokens[f % std::size(kUnitTokens)]);
    const std::size_t shared = 1 + rng->UniformUint64(2);
    for (std::size_t k = 0; k < shared; ++k) {
      out.family_units[f].push_back(kSharedUnitTokens[rng->UniformUint64(
          std::size(kSharedUnitTokens))]);
    }
  }
  return out;
}

}  // namespace rulelink::datagen
