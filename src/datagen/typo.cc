#include "datagen/typo.h"

#include <cstddef>
#include <vector>

namespace rulelink::datagen {
namespace {
constexpr char kAlphabet[] = "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";

char RandomChar(util::Rng* rng) {
  return kAlphabet[rng->UniformUint64(sizeof(kAlphabet) - 1)];
}

// Byte offsets of the UTF-8 code-point starts of `s`, plus s.size() as a
// sentinel. A byte is a start unless it is a continuation byte (10xxxxxx).
// Malformed input (leading continuation bytes) degrades to byte units, so
// the editor never loops on garbage; for ASCII this is exactly the byte
// positions, which keeps the typo channel's draw sequence — and therefore
// every seeded corpus — identical to the pre-UTF-8 implementation.
std::vector<std::size_t> CodePointStarts(const std::string& s) {
  std::vector<std::size_t> starts;
  starts.reserve(s.size() + 1);
  for (std::size_t i = 0; i < s.size(); ++i) {
    if ((static_cast<unsigned char>(s[i]) & 0xC0) != 0x80) starts.push_back(i);
  }
  if (starts.empty()) {
    for (std::size_t i = 0; i < s.size(); ++i) starts.push_back(i);
  }
  starts.push_back(s.size());
  return starts;
}

}  // namespace

std::string ApplyTypo(const std::string& s, util::Rng* rng) {
  std::string out = s;
  if (out.empty()) {
    out.push_back(RandomChar(rng));
    return out;
  }
  // All edits operate on whole code points so a multi-byte character is
  // never split: positions index code points, and substitution/deletion/
  // transposition move the full byte span of each one.
  const std::vector<std::size_t> starts = CodePointStarts(out);
  const std::size_t num_cps = starts.size() - 1;
  const std::uint64_t kind =
      num_cps >= 2 ? rng->UniformUint64(4) : rng->UniformUint64(2);
  const std::size_t pos = rng->UniformUint64(num_cps);
  const auto cp_begin = [&](std::size_t cp) { return starts[cp]; };
  const auto cp_len = [&](std::size_t cp) {
    return starts[cp + 1] - starts[cp];
  };
  switch (kind) {
    case 0: {  // substitution (force a change)
      char c = RandomChar(rng);
      if (cp_len(pos) == 1) {
        while (c == out[cp_begin(pos)]) c = RandomChar(rng);
      }
      out.replace(cp_begin(pos), cp_len(pos), 1, c);
      break;
    }
    case 1:  // insertion, at a code-point boundary
      out.insert(out.begin() + static_cast<std::ptrdiff_t>(cp_begin(pos)),
                 RandomChar(rng));
      break;
    case 2:  // deletion of a whole code point
      out.erase(cp_begin(pos), cp_len(pos));
      break;
    case 3: {  // adjacent code-point transposition
      const std::size_t i = pos + 1 < num_cps ? pos : pos - 1;
      const std::string left = out.substr(cp_begin(i), cp_len(i));
      const std::string right = out.substr(cp_begin(i + 1), cp_len(i + 1));
      out.replace(cp_begin(i), left.size() + right.size(), right + left);
      break;
    }
  }
  return out;
}

}  // namespace rulelink::datagen
