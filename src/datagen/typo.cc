#include "datagen/typo.h"

namespace rulelink::datagen {
namespace {
constexpr char kAlphabet[] = "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";

char RandomChar(util::Rng* rng) {
  return kAlphabet[rng->UniformUint64(sizeof(kAlphabet) - 1)];
}
}  // namespace

std::string ApplyTypo(const std::string& s, util::Rng* rng) {
  std::string out = s;
  if (out.empty()) {
    out.push_back(RandomChar(rng));
    return out;
  }
  const std::uint64_t kind =
      out.size() >= 2 ? rng->UniformUint64(4) : rng->UniformUint64(2);
  const std::size_t pos = rng->UniformUint64(out.size());
  switch (kind) {
    case 0: {  // substitution (force a change)
      char c = RandomChar(rng);
      while (c == out[pos]) c = RandomChar(rng);
      out[pos] = c;
      break;
    }
    case 1:  // insertion
      out.insert(out.begin() + static_cast<std::ptrdiff_t>(pos),
                 RandomChar(rng));
      break;
    case 2:  // deletion
      out.erase(out.begin() + static_cast<std::ptrdiff_t>(pos));
      break;
    case 3: {  // adjacent transposition
      const std::size_t i = pos + 1 < out.size() ? pos : pos - 1;
      std::swap(out[i], out[i + 1]);
      break;
    }
  }
  return out;
}

}  // namespace rulelink::datagen
