// Skewed key-selection distributions for the workload-generator suite —
// the YCSB-style taxonomy (zipfian, scrambled-zipfian, hotset, latest,
// exponential, histogram, uniform) behind one KeyChooser interface. A
// chooser maps a stream of uniform randomness to catalog keys in
// [0, num_keys); the provider query-stream generator and the request-
// replay bench (bench_workloads) drive every skew regime through it.
//
// Determinism contract. A chooser holds only immutable precomputed state
// (zeta sums, CDF tables); every draw reads randomness exclusively from
// the caller's Rng. GenerateKeyStream derives draw i's generator from
// (seed, i) alone — util::Rng::ForStream — so the emitted key stream is
// bit-identical at every thread count and any partition of the work, the
// same counter-based discipline the catalog synthesizer uses.
#ifndef RULELINK_DATAGEN_KEY_CHOOSER_H_
#define RULELINK_DATAGEN_KEY_CHOOSER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/rng.h"
#include "util/status.h"

namespace rulelink::datagen {

enum class Distribution {
  kUniform,            // every key equally likely
  kZipfian,            // key 0 the most popular (Gray et al. / YCSB)
  kScrambledZipfian,   // zipfian popularity scattered across the keyspace
  kHotset,             // a hot fraction of keys takes most operations
  kLatest,             // recency skew: the newest keys are the most popular
  kExponential,        // exponential decay from key 0
  kHistogram,          // piecewise-uniform over weighted keyspace buckets
};

// Stable lower-case name ("zipfian", "scrambled_zipfian", ...), used in
// BENCH_workloads.json and test diagnostics.
const char* DistributionName(Distribution distribution);

struct KeyChooserConfig {
  Distribution distribution = Distribution::kZipfian;
  std::uint64_t num_keys = 0;  // required: > 0

  // Zipfian family (kZipfian, kScrambledZipfian, kLatest): the skew
  // exponent theta in (0, 1). 0.99 is the YCSB default.
  double zipf_theta = 0.99;

  // kHotset: `hot_fraction` of the keyspace receives `hot_op_fraction` of
  // the draws, uniformly within each set.
  double hot_fraction = 0.2;
  double hot_op_fraction = 0.8;

  // kExponential: `exp_percentile` of the probability mass falls inside
  // the first `exp_fraction` of the keyspace.
  double exp_percentile = 0.95;
  double exp_fraction = 0.3;

  // kHistogram: relative weights of equal-width keyspace buckets, uniform
  // within a bucket. Must be non-empty with a positive sum.
  std::vector<double> histogram_weights;
};

class KeyChooser {
 public:
  virtual ~KeyChooser() = default;

  // The next key in [0, num_keys()), drawn with `rng`'s randomness only —
  // choosers are immutable and safe to share across threads.
  virtual std::uint64_t Next(util::Rng* rng) const = 0;

  virtual Distribution distribution() const = 0;
  const char* name() const { return DistributionName(distribution()); }
  std::uint64_t num_keys() const { return num_keys_; }

 protected:
  explicit KeyChooser(std::uint64_t num_keys) : num_keys_(num_keys) {}
  const std::uint64_t num_keys_;
};

// Builds the configured chooser; fails on num_keys == 0, theta outside
// (0, 1), degenerate hotset/exponential parameters, or an empty/zero
// histogram.
util::Result<std::unique_ptr<KeyChooser>> MakeKeyChooser(
    const KeyChooserConfig& config);

// Draws `count` keys, draw i from util::Rng::ForStream(seed, i). Work is
// partitioned across `num_threads` workers (0 = hardware, 1 = serial);
// because each draw's generator depends only on (seed, i), the stream is
// bit-identical at every thread count.
std::vector<std::uint64_t> GenerateKeyStream(const KeyChooser& chooser,
                                             std::uint64_t seed,
                                             std::size_t count,
                                             std::size_t num_threads = 0);

}  // namespace rulelink::datagen

#endif  // RULELINK_DATAGEN_KEY_CHOOSER_H_
