// The generated corpus: local catalog, provider documents, gold links, and
// helpers that project it into the representations the rest of the library
// consumes (TrainingSet, RDF graphs, item lists for blockers).
#ifndef RULELINK_DATAGEN_DATASET_H_
#define RULELINK_DATAGEN_DATASET_H_

#include <cstddef>
#include <string>
#include <vector>

#include "core/item.h"
#include "core/training_set.h"
#include "datagen/config.h"
#include "datagen/ontology_gen.h"
#include "rdf/graph.h"

namespace rulelink::datagen {

struct GoldLink {
  std::size_t external_index = 0;  // into Dataset::external_items
  std::size_t catalog_index = 0;   // into Dataset::catalog_items
};

struct Dataset {
  DatasetConfig config;
  GeneratedOntology taxonomy;

  // Local source S_L.
  std::vector<core::Item> catalog_items;
  std::vector<ontology::ClassId> catalog_classes;  // parallel, leaf classes

  // External source S_E: one provider document per expert link.
  std::vector<core::Item> external_items;
  std::vector<GoldLink> links;  // external i -> catalog index (expert TS)

  // Leaf classes that carry class-specific series segments (ground truth
  // of the generator, used by tests and ablation benches).
  std::vector<ontology::ClassId> signal_classes;

  const ontology::Ontology& ontology() const { return taxonomy.ontology; }
};

// Flattens the gold links into a core::TrainingSet (facts from the
// external item, classes from the catalog side). This is the direct path;
// integration tests also exercise the RDF path below.
core::TrainingSet BuildTrainingSet(const Dataset& dataset);

// RDF projections of the corpus, for the end-to-end RDF pipeline:
//   local graph:   catalog items with rdf:type, partNumber, label;
//                  plus the full class taxonomy (owl:Class/subClassOf).
//   external graph: provider documents with partNumber/manufacturerName.
//   links graph:   owl:sameAs triples of the training links.
rdf::Graph BuildLocalGraph(const Dataset& dataset);
rdf::Graph BuildExternalGraph(const Dataset& dataset);
rdf::Graph BuildLinksGraph(const Dataset& dataset);

}  // namespace rulelink::datagen

#endif  // RULELINK_DATAGEN_DATASET_H_
