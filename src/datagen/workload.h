// Million-scale workload synthesis: the scale-out companion to the
// paper-calibrated DatasetGenerator. Where generator.h reproduces the
// Thales corpus statistics at ~10k links, this layer produces arbitrarily
// large catalogs plus skewed provider query streams for the request-replay
// bench (bench/bench_workloads.cc) and the scale differential tests:
//
//   * WorkloadCatalog — catalog items with class-correlated part-number
//     series tokens, generated over "catalog time": item index is
//     insertion order, split into epochs, and a configurable fraction of
//     part series first appears in later epochs (temporal drift, the
//     regime src/core/incremental exists for).
//   * QueryStream — one provider document per request, its target drawn
//     from any KeyChooser distribution (zipfian, hotset, latest, ...),
//     rendered through a per-provider schema style (separator, casing)
//     and a dirty-data regime (typos, truncated part numbers).
//
// Determinism contract. Both generators run a cheap serial phase (pools,
// taxonomy, per-epoch samplers) from Rng(seed), then derive item/query
// i's generator from util::Rng::ForStream(seed, i) inside a ParallelFor —
// output is bit-identical at every thread count (locked down by
// tests/workload_gen_test.cc).
#ifndef RULELINK_DATAGEN_WORKLOAD_H_
#define RULELINK_DATAGEN_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/item.h"
#include "datagen/dataset.h"
#include "datagen/key_chooser.h"
#include "datagen/ontology_gen.h"
#include "util/status.h"

namespace rulelink::datagen {

struct WorkloadConfig {
  std::uint64_t seed = 42;
  std::size_t catalog_size = 100000;

  // Taxonomy shape (small relative to the catalog: scale lives in the
  // item count, not the class count).
  std::size_t num_classes = 120;
  std::size_t num_leaves = 60;

  // Part-number structure: every leaf owns `series_per_leaf` unique series
  // tokens; a product of the leaf carries one with this probability.
  std::size_t series_per_leaf = 3;
  double series_in_partnumber_prob = 0.9;
  // Probability of a second serial segment (lot/date code).
  double second_serial_prob = 0.25;
  std::size_t serial_pool_size = 20000;
  std::size_t num_manufacturers = 64;

  // Class popularity skew across eligible leaves (Zipf exponent).
  double leaf_zipf_exponent = 1.0;

  // --- Temporal drift. Generation order is insertion order; the catalog
  // is split into `num_epochs` equal index ranges. `drift_leaf_fraction`
  // of the leaves are "new part series": their series tokens first appear
  // in epoch >= 1 (spread round-robin over the later epochs), and within
  // an epoch newly introduced leaves are the most popular — new product
  // lines sell, which is exactly the regime that starves a batch learner
  // trained on an earlier epoch. ---
  std::size_t num_epochs = 1;
  double drift_leaf_fraction = 0.0;
};

struct WorkloadCatalog {
  WorkloadConfig config;
  GeneratedOntology taxonomy;

  std::vector<core::Item> items;
  std::vector<ontology::ClassId> classes;  // leaf of each item (parallel)
  std::vector<std::uint32_t> epochs;       // epoch of each item, non-decreasing
  std::vector<char> separators;            // part-number separator per item

  // Per leaf (indexed like taxonomy.leaves): the epoch its series tokens
  // first appear in, and the tokens themselves — the generator's ground
  // truth for the drift tests.
  std::vector<std::uint32_t> first_epoch_of_leaf;
  std::vector<std::vector<std::string>> series_of_leaf;

  const ontology::Ontology& ontology() const { return taxonomy.ontology; }
};

// Synthesizes the catalog. `num_threads` partitions the item loop
// (0 = hardware, 1 = serial); output is identical at every thread count.
util::Result<WorkloadCatalog> GenerateWorkloadCatalog(
    const WorkloadConfig& config, std::size_t num_threads = 0);

struct QueryStreamConfig {
  std::uint64_t seed = 7;
  std::size_t num_queries = 10000;

  // Target-key skew over the catalog; `chooser.num_keys` is filled in from
  // the catalog by GenerateQueryStream.
  KeyChooserConfig chooser;

  // Multi-provider schema variation: each query is attributed to one of
  // `num_providers` synthetic providers with a fixed rendering style
  // (preferred separator, lower-casing).
  std::size_t num_providers = 4;
  // Probability the provider re-renders with its own separator.
  double reformat_prob = 0.3;

  // Dirty-data regime.
  double typo_prob = 0.05;      // per-segment random edit
  double truncate_prob = 0.0;   // truncated part numbers
  std::size_t min_truncated_length = 4;
};

struct QueryStream {
  std::vector<core::Item> queries;  // provider documents, one per request
  std::vector<GoldLink> gold;       // query j -> catalog index (may repeat)
};

// Generates the skewed provider query stream against `catalog`. Query j
// is derived from Rng::ForStream(seed, j): identical at every thread
// count. Fails on an invalid chooser configuration or num_providers == 0.
util::Result<QueryStream> GenerateQueryStream(const WorkloadCatalog& catalog,
                                              const QueryStreamConfig& config,
                                              std::size_t num_threads = 0);

}  // namespace rulelink::datagen

#endif  // RULELINK_DATAGEN_WORKLOAD_H_
