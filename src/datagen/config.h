// Configuration of the synthetic electronic-components workload. Defaults
// are tuned so the generated corpus mirrors the statistics of the paper's
// proprietary Thales data set (§5): 566 classes / 226 leaves, ~10 265
// expert links, ~2.5 segments per part-number, ~68 frequent classes at
// th = 0.002, and class-correlated part-number segments whose purity
// spreads rules across the confidence bands of Table 1.
#ifndef RULELINK_DATAGEN_CONFIG_H_
#define RULELINK_DATAGEN_CONFIG_H_

#include <cstdint>
#include <cstddef>

namespace rulelink::datagen {

struct DatasetConfig {
  std::uint64_t seed = 42;

  // --- Ontology shape (paper: 566 classes, 226 leaves). ---
  std::size_t num_classes = 566;
  std::size_t num_leaves = 226;

  // --- Corpus sizes. ---
  // Local catalog |S_L| (paper: millions; scaled to laptop size — ratios,
  // not absolute sizes, drive every reported number).
  std::size_t catalog_size = 30000;
  // Expert-validated links |TS| (paper: 10 265).
  std::size_t num_links = 10265;

  // --- Class popularity: a three-tier model reverse-engineered from the
  // paper's Table 1 arithmetic. The average rule lift of ~20-27 with 44
  // confidence-1 rules and 2107 decisions implies ~16 rule-bearing classes
  // with priors of a few percent each (~400 links); the 68 frequent
  // classes and the ~7266-item recall denominator then pin the other two
  // tiers. Values are expected link (TS) counts per class; the catalog
  // scales proportionally. ---
  std::size_t num_signal_classes = 16;        // tier A: carry series segments
  double signal_class_min_links = 200.0;
  double signal_class_max_links = 520.0;
  std::size_t num_other_frequent_classes = 52;  // tier B: frequent, no signal
  double frequent_class_min_links = 24.0;
  double frequent_class_max_links = 34.0;
  // Tier C (all remaining leaves) absorbs the remaining link mass, with
  // per-class expectation capped below the support threshold.
  double tail_class_cap_links = 14.0;

  // --- Part-number signal structure. ---
  // Fraction of tier-C leaves that also carry series segments; they stay
  // below the support threshold and model the long tail of provider
  // series codes.
  double tail_signal_fraction = 0.08;
  // Series tokens per signal class.
  std::size_t min_series_per_class = 4;
  std::size_t max_series_per_class = 6;
  // Probability a signal-class part number actually contains a series
  // token (bounds rule recall even at confidence 1).
  double series_in_partnumber_prob = 0.85;
  // Target rule-confidence mixture of signal classes. A class with target
  // confidence q < 1 has its tokens "polluted": products of other classes
  // occasionally carry one of its tokens, at a rate calibrated so the
  // token -> class confidence lands at q in expectation. Fractions must
  // sum to <= 1; the remainder is "low". Purity is assigned BY SIZE:
  // larger signal classes are purer — the only arrangement under which
  // Table 1's band-decision column (2107 > 1224 > 712) coexists with its
  // flat lift column (~21-27).
  double pure_fraction = 0.38;        // q = 1.0
  double high_purity_fraction = 0.30; // q in [0.86, 0.97]
  double mid_purity_fraction = 0.16;  // q in [0.66, 0.84]
  // low: q in [0.46, 0.64]

  // Family-level measure-unit tokens ("ohm", "63V", "uF"): probability of
  // appending one to a part number. These give weak leaf-level rules and
  // strong family-level rules (the generalization experiment's signal).
  double unit_token_prob = 0.22;
  // Globally shared packaging tokens ("ROHS", "TR", "REEL"): class-blind
  // noise segments.
  double shared_noise_token_prob = 0.08;
  // Probability of a second serial segment (lot/date code), part of the
  // infrequent-segment tail.
  double second_serial_prob = 0.25;

  // Serial segment pool (controls the distinct-segment count; the paper
  // observed 7 842 distinct segments over 26 077 occurrences).
  std::size_t serial_pool_size = 7000;

  // --- Provider (external) rendering. ---
  // Probability the provider re-renders the part number with different
  // separator characters.
  double provider_reformat_prob = 0.30;
  // Probability of a typo inside one segment of the provider part number.
  double provider_typo_prob = 0.05;

  // Manufacturer pool size; manufacturers deliberately span classes, so
  // the manufacturer property carries no class signal (§5).
  std::size_t num_manufacturers = 40;
  // Probability that a product's manufacturer is its class's "preferred"
  // manufacturer instead of a uniform pick. 0 reproduces the paper's
  // observation that the manufacturer is non-predictive; raising it makes
  // (segment, manufacturer) conjunctions informative — the knob behind
  // the conjunctive-rule ablation (E2e).
  double manufacturer_affinity = 0.0;
};

// Property IRIs of the generated data.
namespace props {
inline constexpr char kPartNumber[] =
    "http://thales.example/schema#partNumber";
inline constexpr char kManufacturer[] =
    "http://thales.example/schema#manufacturerName";
inline constexpr char kLabel[] =
    "http://www.w3.org/2000/01/rdf-schema#label";
}  // namespace props

// IRI namespaces of the generated corpus.
namespace ns {
inline constexpr char kOntology[] = "http://thales.example/onto#";
inline constexpr char kCatalog[] = "http://thales.example/catalog/";
inline constexpr char kProvider[] = "http://provider.example/item/";
}  // namespace ns

}  // namespace rulelink::datagen

#endif  // RULELINK_DATAGEN_CONFIG_H_
