#include "datagen/dataset.h"

#include "rdf/vocab.h"
#include "util/logging.h"

namespace rulelink::datagen {

core::TrainingSet BuildTrainingSet(const Dataset& dataset) {
  core::TrainingSet ts(dataset.ontology());
  for (const GoldLink& link : dataset.links) {
    RL_CHECK(link.external_index < dataset.external_items.size());
    RL_CHECK(link.catalog_index < dataset.catalog_items.size());
    const core::Item& external = dataset.external_items[link.external_index];
    const core::Item& catalog = dataset.catalog_items[link.catalog_index];
    ts.AddExample(external, catalog.iri,
                  {dataset.catalog_classes[link.catalog_index]});
  }
  return ts;
}

rdf::Graph BuildLocalGraph(const Dataset& dataset) {
  rdf::Graph graph;
  const auto& onto = dataset.ontology();
  // Taxonomy triples.
  for (ontology::ClassId c = 0; c < onto.num_classes(); ++c) {
    graph.InsertIri(onto.iri(c), rdf::vocab::kRdfType,
                    rdf::vocab::kOwlClass);
    if (!onto.label(c).empty()) {
      graph.InsertLiteralTriple(onto.iri(c), rdf::vocab::kRdfsLabel,
                                onto.label(c));
    }
    for (ontology::ClassId p : onto.Parents(c)) {
      graph.InsertIri(onto.iri(c), rdf::vocab::kRdfsSubClassOf, onto.iri(p));
    }
  }
  // Catalog instances.
  for (std::size_t i = 0; i < dataset.catalog_items.size(); ++i) {
    const core::Item& item = dataset.catalog_items[i];
    graph.InsertIri(item.iri, rdf::vocab::kRdfType,
                    onto.iri(dataset.catalog_classes[i]));
    for (const core::PropertyValue& pv : item.facts) {
      graph.InsertLiteralTriple(item.iri, pv.property, pv.value);
    }
  }
  return graph;
}

rdf::Graph BuildExternalGraph(const Dataset& dataset) {
  rdf::Graph graph;
  for (const core::Item& item : dataset.external_items) {
    for (const core::PropertyValue& pv : item.facts) {
      graph.InsertLiteralTriple(item.iri, pv.property, pv.value);
    }
  }
  return graph;
}

rdf::Graph BuildLinksGraph(const Dataset& dataset) {
  rdf::Graph graph;
  for (const GoldLink& link : dataset.links) {
    graph.InsertIri(dataset.external_items[link.external_index].iri,
                    rdf::vocab::kOwlSameAs,
                    dataset.catalog_items[link.catalog_index].iri);
  }
  return graph;
}

}  // namespace rulelink::datagen
