#include "datagen/generator.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "datagen/typo.h"
#include "util/logging.h"

namespace rulelink::datagen {
namespace {

constexpr const char* kSeparators[] = {"-", ".", " ", "/", "_"};

constexpr const char* kNoiseTokens[] = {"ROHS", "TR", "REEL", "SMD",
                                        "LF",   "BULK", "CUT", "AMMO"};

constexpr const char* kMfrPrefixes[] = {"Vol", "Tek", "Micro", "Omni",
                                        "Dura", "Elec", "Nova", "Penta",
                                        "Quadra", "Stella"};
constexpr const char* kMfrSuffixes[] = {"tron", "tec", "dyne", "corp",
                                        "chip", "wave", "flux", "core"};

// The pseudo-series pool shared by non-signal classes. Bounded so its
// tokens repeat a little (matching the paper's distinct/occurrence ratio)
// but spread class-blindly, so they never become rules.
constexpr std::size_t kPseudoSeriesPoolSize = 2000;

// A series-style code: 2-4 uppercase letters followed by 2-4 digits,
// e.g. "CRCW0805" or "T83".
std::string MakeSeriesCode(util::Rng* rng) {
  static constexpr char kLetters[] = "ABCDEFGHIJKLMNOPQRSTUVWXYZ";
  static constexpr char kDigits[] = "0123456789";
  std::string code;
  const std::size_t letters = 1 + rng->UniformUint64(4);   // 1-4
  const std::size_t digits = 2 + rng->UniformUint64(3);    // 2-4
  for (std::size_t i = 0; i < letters; ++i) {
    code.push_back(kLetters[rng->UniformUint64(26)]);
  }
  for (std::size_t i = 0; i < digits; ++i) {
    code.push_back(kDigits[rng->UniformUint64(10)]);
  }
  return code;
}

std::string RenderPartNumber(const std::vector<std::string>& tokens,
                             const std::string& separator) {
  std::string out;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (i > 0) out += separator;
    out += tokens[i];
  }
  return out;
}

}  // namespace

util::Result<Dataset> DatasetGenerator::Generate() const {
  const DatasetConfig& cfg = config_;
  if (cfg.num_links > cfg.catalog_size) {
    return util::InvalidArgumentError(
        "num_links cannot exceed catalog_size");
  }
  if (cfg.pure_fraction + cfg.high_purity_fraction +
          cfg.mid_purity_fraction >
      1.0 + 1e-9) {
    return util::InvalidArgumentError("purity fractions must sum to <= 1");
  }
  util::Rng rng(cfg.seed);

  Dataset dataset;
  dataset.config = cfg;
  RL_ASSIGN_OR_RETURN(dataset.taxonomy,
                      GenerateOntology(cfg.num_classes, cfg.num_leaves, &rng));
  const auto& taxonomy = dataset.taxonomy;
  const auto& onto = taxonomy.ontology;
  const std::vector<ontology::ClassId>& leaves = taxonomy.leaves;
  RL_CHECK(!leaves.empty());

  // --- Class popularity: three tiers of expected TS link counts. ---
  const std::size_t num_signal =
      std::min(cfg.num_signal_classes, leaves.size());
  const std::size_t num_other_frequent = std::min(
      cfg.num_other_frequent_classes, leaves.size() - num_signal);
  std::vector<std::size_t> tier_order(leaves.size());
  for (std::size_t i = 0; i < leaves.size(); ++i) tier_order[i] = i;
  rng.Shuffle(&tier_order);

  std::vector<double> leaf_weight(leaves.size(), 0.0);  // expected TS links
  double allocated = 0.0;
  for (std::size_t k = 0; k < num_signal; ++k) {
    const double w = cfg.signal_class_min_links +
                     (cfg.signal_class_max_links - cfg.signal_class_min_links) *
                         rng.UniformDouble();
    leaf_weight[tier_order[k]] = w;
    allocated += w;
  }
  for (std::size_t k = num_signal; k < num_signal + num_other_frequent; ++k) {
    const double w =
        cfg.frequent_class_min_links +
        (cfg.frequent_class_max_links - cfg.frequent_class_min_links) *
            rng.UniformDouble();
    leaf_weight[tier_order[k]] = w;
    allocated += w;
  }
  // Tier C absorbs the remaining link mass, jittered, capped below the
  // support threshold so tail classes stay infrequent.
  const std::size_t num_tail = leaves.size() - num_signal -
                               num_other_frequent;
  if (num_tail > 0) {
    const double tail_mass = std::max(
        0.0, static_cast<double>(cfg.num_links) - allocated);
    const double mean = tail_mass / static_cast<double>(num_tail);
    for (std::size_t k = num_signal + num_other_frequent;
         k < leaves.size(); ++k) {
      const double w = std::min(cfg.tail_class_cap_links,
                                mean * (0.5 + rng.UniformDouble()));
      leaf_weight[tier_order[k]] = std::max(0.25, w);
    }
  }

  // --- Signal classes, their target confidences and series tokens. ---
  // Tier-A classes sorted by size (largest first): purity is assigned by
  // size, largest = purest (see DatasetConfig).
  std::vector<std::size_t> signal_ranks(
      tier_order.begin(), tier_order.begin() + num_signal);
  std::sort(signal_ranks.begin(), signal_ranks.end(),
            [&](std::size_t a, std::size_t b) {
              return leaf_weight[a] > leaf_weight[b];
            });
  const std::size_t num_frequent_signal = signal_ranks.size();
  // Tail signal classes: series codes too rare to clear the threshold.
  {
    const std::size_t extra = static_cast<std::size_t>(
        cfg.tail_signal_fraction * static_cast<double>(num_tail));
    for (std::size_t k = 0; k < extra; ++k) {
      signal_ranks.push_back(
          tier_order[num_signal + num_other_frequent + k]);
    }
  }

  std::unordered_map<ontology::ClassId, double> target_confidence;
  std::unordered_map<ontology::ClassId, std::vector<std::string>> series;
  std::unordered_set<std::string> used_codes;
  // Pollution plan: class -> expected number of foreign TS items that must
  // carry one of its tokens so the token confidence lands at q.
  std::vector<ontology::ClassId> pollution_classes;
  std::vector<double> pollution_weights;
  double total_pollution = 0.0;

  for (std::size_t k = 0; k < signal_ranks.size(); ++k) {
    const std::size_t rank = signal_ranks[k];
    const ontology::ClassId cls = leaves[rank];
    dataset.signal_classes.push_back(cls);
    // Target confidence by size position (tier-A classes are pre-sorted
    // largest first); tail signal classes (k >= num_frequent_signal) draw
    // a uniform position instead — they stay below the threshold anyway.
    const double position =
        k < num_frequent_signal
            ? (static_cast<double>(k) + 0.5) /
                  static_cast<double>(num_frequent_signal)
            : rng.UniformDouble();
    double q;
    if (position < cfg.pure_fraction) {
      q = 1.0;
    } else if (position < cfg.pure_fraction + cfg.high_purity_fraction) {
      q = 0.86 + 0.11 * rng.UniformDouble();
    } else if (position < cfg.pure_fraction + cfg.high_purity_fraction +
                              cfg.mid_purity_fraction) {
      q = 0.66 + 0.18 * rng.UniformDouble();
    } else {
      q = 0.46 + 0.18 * rng.UniformDouble();
    }
    target_confidence[cls] = q;
    // Series tokens, globally unique.
    const std::size_t span =
        cfg.max_series_per_class >= cfg.min_series_per_class
            ? cfg.max_series_per_class - cfg.min_series_per_class + 1
            : 1;
    const std::size_t count =
        cfg.min_series_per_class + rng.UniformUint64(span);
    auto& codes = series[cls];
    while (codes.size() < count) {
      std::string code = MakeSeriesCode(&rng);
      if (used_codes.insert(code).second) codes.push_back(std::move(code));
    }
    if (q < 1.0) {
      const double expected_links = leaf_weight[rank];
      const double own_emissions =
          expected_links * cfg.series_in_partnumber_prob;
      const double pollution = own_emissions * (1.0 / q - 1.0);
      pollution_classes.push_back(cls);
      pollution_weights.push_back(pollution);
      total_pollution += pollution;
    }
  }
  // Per-catalog-item probability of carrying a polluted token. Links are a
  // uniform catalog sample, so a links-level rate applies catalog-wide.
  const double pollution_prob =
      cfg.num_links > 0
          ? std::min(0.9, total_pollution / static_cast<double>(cfg.num_links))
          : 0.0;

  // --- Pools. ---
  std::vector<std::string> manufacturers;
  {
    std::unordered_set<std::string> seen;
    while (manufacturers.size() < cfg.num_manufacturers) {
      std::string name =
          std::string(kMfrPrefixes[rng.UniformUint64(std::size(kMfrPrefixes))]) +
          kMfrSuffixes[rng.UniformUint64(std::size(kMfrSuffixes))];
      if (manufacturers.size() >= std::size(kMfrPrefixes) *
                                      std::size(kMfrSuffixes)) {
        name += std::to_string(manufacturers.size());
      }
      if (seen.insert(name).second) manufacturers.push_back(std::move(name));
    }
  }
  std::vector<std::string> serial_pool;
  serial_pool.reserve(cfg.serial_pool_size);
  {
    std::unordered_set<std::string> seen;
    while (serial_pool.size() < cfg.serial_pool_size) {
      std::string s = rng.AlnumString(4 + rng.UniformUint64(3));
      if (seen.insert(s).second) serial_pool.push_back(std::move(s));
    }
  }
  std::vector<std::string> pseudo_pool;
  pseudo_pool.reserve(kPseudoSeriesPoolSize);
  {
    std::unordered_set<std::string> seen;
    while (pseudo_pool.size() < kPseudoSeriesPoolSize) {
      std::string s = MakeSeriesCode(&rng);
      if (used_codes.count(s) > 0) continue;  // never collide with signal
      if (seen.insert(s).second) pseudo_pool.push_back(std::move(s));
    }
  }

  // Family units lookup: family ClassId -> units.
  std::unordered_map<ontology::ClassId, const std::vector<std::string>*>
      units_of_family;
  for (std::size_t f = 0; f < taxonomy.families.size(); ++f) {
    units_of_family[taxonomy.families[f]] = &taxonomy.family_units[f];
  }

  // --- Catalog. ---
  dataset.catalog_items.reserve(cfg.catalog_size);
  dataset.catalog_classes.reserve(cfg.catalog_size);
  std::vector<std::vector<std::string>> product_tokens(cfg.catalog_size);
  std::vector<std::string> product_separator(cfg.catalog_size);
  std::vector<std::size_t> product_mfr(cfg.catalog_size);

  for (std::size_t i = 0; i < cfg.catalog_size; ++i) {
    const ontology::ClassId leaf = leaves[rng.WeightedIndex(leaf_weight)];
    std::vector<std::string>& tokens = product_tokens[i];

    auto series_it = series.find(leaf);
    if (series_it != series.end()) {
      if (rng.Bernoulli(cfg.series_in_partnumber_prob)) {
        tokens.push_back(rng.Pick(series_it->second));
      }
    } else {
      tokens.push_back(rng.Pick(pseudo_pool));
    }
    // Pollution: a foreign class's series token rides along, calibrated so
    // each impure token's confidence lands at its class's target q.
    if (!pollution_classes.empty() && rng.Bernoulli(pollution_prob)) {
      const ontology::ClassId polluter =
          pollution_classes[rng.WeightedIndex(pollution_weights)];
      if (polluter != leaf) {
        tokens.push_back(rng.Pick(series.at(polluter)));
      }
    }
    tokens.push_back(rng.Pick(serial_pool));
    if (rng.Bernoulli(cfg.second_serial_prob)) {
      tokens.push_back(rng.Pick(serial_pool));
    }
    const ontology::ClassId family = taxonomy.family_of[leaf];
    auto units_it = units_of_family.find(family);
    if (units_it != units_of_family.end() &&
        rng.Bernoulli(cfg.unit_token_prob)) {
      tokens.push_back(rng.Pick(*units_it->second));
    }
    if (rng.Bernoulli(cfg.shared_noise_token_prob)) {
      tokens.push_back(
          kNoiseTokens[rng.UniformUint64(std::size(kNoiseTokens))]);
    }

    product_separator[i] =
        kSeparators[rng.UniformUint64(std::size(kSeparators))];
    if (cfg.manufacturer_affinity > 0.0 &&
        rng.Bernoulli(cfg.manufacturer_affinity)) {
      // Class-preferred manufacturer: deterministic per class.
      product_mfr[i] = static_cast<std::size_t>(leaf) % manufacturers.size();
    } else {
      product_mfr[i] = rng.UniformUint64(manufacturers.size());
    }

    core::Item item;
    item.iri = std::string(ns::kCatalog) + "P" + std::to_string(i);
    item.facts.push_back(core::PropertyValue{
        props::kPartNumber, RenderPartNumber(tokens, product_separator[i])});
    item.facts.push_back(core::PropertyValue{
        props::kManufacturer, manufacturers[product_mfr[i]]});
    item.facts.push_back(core::PropertyValue{
        props::kLabel,
        manufacturers[product_mfr[i]] + " " + onto.label(leaf)});
    dataset.catalog_items.push_back(std::move(item));
    dataset.catalog_classes.push_back(leaf);
  }

  // --- Expert links and provider documents. ---
  std::vector<std::size_t> catalog_order(cfg.catalog_size);
  for (std::size_t i = 0; i < cfg.catalog_size; ++i) catalog_order[i] = i;
  rng.Shuffle(&catalog_order);
  dataset.external_items.reserve(cfg.num_links);
  dataset.links.reserve(cfg.num_links);
  for (std::size_t j = 0; j < cfg.num_links; ++j) {
    const std::size_t cat = catalog_order[j];
    std::vector<std::string> tokens = product_tokens[cat];
    if (!tokens.empty() && rng.Bernoulli(cfg.provider_typo_prob)) {
      const std::size_t t = rng.UniformUint64(tokens.size());
      tokens[t] = ApplyTypo(tokens[t], &rng);
    }
    std::string separator = product_separator[cat];
    if (rng.Bernoulli(cfg.provider_reformat_prob)) {
      separator = kSeparators[rng.UniformUint64(std::size(kSeparators))];
    }
    core::Item item;
    item.iri = std::string(ns::kProvider) + "D" + std::to_string(j);
    item.facts.push_back(core::PropertyValue{
        props::kPartNumber, RenderPartNumber(tokens, separator)});
    item.facts.push_back(core::PropertyValue{
        props::kManufacturer, manufacturers[product_mfr[cat]]});
    dataset.external_items.push_back(std::move(item));
    dataset.links.push_back(GoldLink{j, cat});
  }

  return dataset;
}

}  // namespace rulelink::datagen
