// Generates a synthetic electronic-components taxonomy with an exact
// class/leaf count (paper: 566 classes, 226 of them leaves), realistic
// family labels, and per-family measure-unit vocabularies.
#ifndef RULELINK_DATAGEN_ONTOLOGY_GEN_H_
#define RULELINK_DATAGEN_ONTOLOGY_GEN_H_

#include <string>
#include <vector>

#include "ontology/ontology.h"
#include "util/rng.h"
#include "util/status.h"

namespace rulelink::datagen {

struct GeneratedOntology {
  ontology::Ontology ontology;
  std::vector<ontology::ClassId> leaves;          // the paper's 226
  // Index of the depth-1 family ancestor of each class (by ClassId), used
  // to attach family-level unit vocabularies.
  std::vector<ontology::ClassId> family_of;
  std::vector<ontology::ClassId> families;        // depth-1 classes
  // Unit tokens of each family, parallel to `families`.
  std::vector<std::vector<std::string>> family_units;
};

// Builds a rooted tree with exactly `num_classes` classes of which exactly
// `num_leaves` are leaves (requires 2 <= num_leaves < num_classes and at
// least one internal class per ~8 leaves of headroom; infeasible shapes
// return InvalidArgument).
util::Result<GeneratedOntology> GenerateOntology(std::size_t num_classes,
                                                 std::size_t num_leaves,
                                                 util::Rng* rng);

}  // namespace rulelink::datagen

#endif  // RULELINK_DATAGEN_ONTOLOGY_GEN_H_
