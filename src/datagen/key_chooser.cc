#include "datagen/key_chooser.h"

#include <algorithm>
#include <cmath>

#include "util/hash.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace rulelink::datagen {
namespace {

// --- Uniform. ---
class UniformChooser final : public KeyChooser {
 public:
  explicit UniformChooser(std::uint64_t n) : KeyChooser(n) {}
  std::uint64_t Next(util::Rng* rng) const override {
    return rng->UniformUint64(num_keys_);
  }
  Distribution distribution() const override {
    return Distribution::kUniform;
  }
};

// --- Zipfian (Gray et al., "Quickly generating billion-record synthetic
// databases"; the YCSB generator). Rank r is drawn with probability
// proportional to 1/(r+1)^theta in O(1) per draw after an O(n) zeta
// precomputation, so a million-key chooser costs one pass to build and
// three flops per draw — no O(n) CDF table. ---
class ZipfianChooser final : public KeyChooser {
 public:
  ZipfianChooser(std::uint64_t n, double theta)
      : KeyChooser(n), theta_(theta) {
    double zetan = 0.0;
    for (std::uint64_t i = 0; i < n; ++i) {
      zetan += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    }
    zetan_ = zetan;
    const double zeta2 = n >= 2 ? 1.0 + std::pow(0.5, theta) : 1.0;
    alpha_ = 1.0 / (1.0 - theta);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
           (1.0 - zeta2 / zetan_);
    head_ = 1.0 + std::pow(0.5, theta);
  }

  std::uint64_t Next(util::Rng* rng) const override {
    const double u = rng->UniformDouble();
    const double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (num_keys_ >= 2 && uz < head_) return 1;
    const double rank =
        static_cast<double>(num_keys_) *
        std::pow(eta_ * u - eta_ + 1.0, alpha_);
    const auto key = static_cast<std::uint64_t>(rank);
    return key >= num_keys_ ? num_keys_ - 1 : key;
  }

  Distribution distribution() const override {
    return Distribution::kZipfian;
  }

 private:
  double theta_;
  double zetan_;
  double alpha_;
  double eta_;
  double head_;  // zeta(2, theta): the cumulative mass of ranks 0 and 1
};

// --- Scrambled zipfian: zipfian popularity, but the popular ranks are
// scattered across the keyspace by a bijective mixer, so skew does not
// concentrate on low key ids (YCSB's GEN_XZIPFIAN). ---
class ScrambledZipfianChooser final : public KeyChooser {
 public:
  ScrambledZipfianChooser(std::uint64_t n, double theta)
      : KeyChooser(n), zipf_(n, theta) {}

  std::uint64_t Next(util::Rng* rng) const override {
    return util::Mix64(zipf_.Next(rng)) % num_keys_;
  }

  Distribution distribution() const override {
    return Distribution::kScrambledZipfian;
  }

 private:
  ZipfianChooser zipf_;
};

// --- Hotset: keys [0, hot_keys) receive hot_op_fraction of the draws. ---
class HotsetChooser final : public KeyChooser {
 public:
  HotsetChooser(std::uint64_t n, double hot_fraction, double hot_op_fraction)
      : KeyChooser(n),
        hot_keys_(std::max<std::uint64_t>(
            1, static_cast<std::uint64_t>(
                   hot_fraction * static_cast<double>(n)))),
        hot_op_fraction_(hot_op_fraction) {}

  std::uint64_t Next(util::Rng* rng) const override {
    if (hot_keys_ >= num_keys_ || rng->Bernoulli(hot_op_fraction_)) {
      return rng->UniformUint64(std::min(hot_keys_, num_keys_));
    }
    return hot_keys_ + rng->UniformUint64(num_keys_ - hot_keys_);
  }

  Distribution distribution() const override {
    return Distribution::kHotset;
  }

 private:
  std::uint64_t hot_keys_;
  double hot_op_fraction_;
};

// --- Latest: zipfian over the distance from the newest key, so the most
// recently generated catalog items (highest indexes — generation order is
// insertion order) are the most popular. ---
class LatestChooser final : public KeyChooser {
 public:
  LatestChooser(std::uint64_t n, double theta)
      : KeyChooser(n), zipf_(n, theta) {}

  std::uint64_t Next(util::Rng* rng) const override {
    return num_keys_ - 1 - zipf_.Next(rng);
  }

  Distribution distribution() const override {
    return Distribution::kLatest;
  }

 private:
  ZipfianChooser zipf_;
};

// --- Exponential decay from key 0: `percentile` of the mass inside the
// first `fraction` of the keyspace. Draws beyond the keyspace are
// rejected and redrawn (probability (1-percentile)^(1/fraction), i.e.
// negligible for sane parameters). ---
class ExponentialChooser final : public KeyChooser {
 public:
  ExponentialChooser(std::uint64_t n, double percentile, double fraction)
      : KeyChooser(n),
        gamma_(-std::log(1.0 - percentile) /
               (fraction * static_cast<double>(n))) {}

  std::uint64_t Next(util::Rng* rng) const override {
    for (;;) {
      double u = rng->UniformDouble();
      if (u < 1e-300) u = 1e-300;  // -log(0) guard
      const double v = -std::log(u) / gamma_;
      if (v < static_cast<double>(num_keys_)) {
        return static_cast<std::uint64_t>(v);
      }
    }
  }

  Distribution distribution() const override {
    return Distribution::kExponential;
  }

 private:
  double gamma_;
};

// --- Histogram: equal-width keyspace buckets drawn by weight via a
// precomputed CDF (binary search), uniform within the chosen bucket. ---
class HistogramChooser final : public KeyChooser {
 public:
  HistogramChooser(std::uint64_t n, const std::vector<double>& weights)
      : KeyChooser(n) {
    cdf_.reserve(weights.size());
    double total = 0.0;
    for (const double w : weights) {
      total += w;
      cdf_.push_back(total);
    }
    for (double& c : cdf_) c /= total;
  }

  std::uint64_t Next(util::Rng* rng) const override {
    const double u = rng->UniformDouble();
    const std::size_t bucket = static_cast<std::size_t>(
        std::lower_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin());
    const std::uint64_t k = cdf_.size();
    const std::uint64_t lo = bucket * num_keys_ / k;
    const std::uint64_t hi =
        std::max(lo + 1, (bucket + 1) * num_keys_ / k);
    return lo + rng->UniformUint64(hi - lo);
  }

  Distribution distribution() const override {
    return Distribution::kHistogram;
  }

 private:
  std::vector<double> cdf_;
};

}  // namespace

const char* DistributionName(Distribution distribution) {
  switch (distribution) {
    case Distribution::kUniform: return "uniform";
    case Distribution::kZipfian: return "zipfian";
    case Distribution::kScrambledZipfian: return "scrambled_zipfian";
    case Distribution::kHotset: return "hotset";
    case Distribution::kLatest: return "latest";
    case Distribution::kExponential: return "exponential";
    case Distribution::kHistogram: return "histogram";
  }
  return "unknown";
}

util::Result<std::unique_ptr<KeyChooser>> MakeKeyChooser(
    const KeyChooserConfig& config) {
  const std::uint64_t n = config.num_keys;
  if (n == 0) {
    return util::InvalidArgumentError("KeyChooser requires num_keys > 0");
  }
  switch (config.distribution) {
    case Distribution::kUniform:
      return std::unique_ptr<KeyChooser>(new UniformChooser(n));
    case Distribution::kZipfian:
    case Distribution::kScrambledZipfian:
    case Distribution::kLatest: {
      if (config.zipf_theta <= 0.0 || config.zipf_theta >= 1.0) {
        return util::InvalidArgumentError("zipf_theta must be in (0, 1)");
      }
      if (config.distribution == Distribution::kZipfian) {
        return std::unique_ptr<KeyChooser>(
            new ZipfianChooser(n, config.zipf_theta));
      }
      if (config.distribution == Distribution::kScrambledZipfian) {
        return std::unique_ptr<KeyChooser>(
            new ScrambledZipfianChooser(n, config.zipf_theta));
      }
      return std::unique_ptr<KeyChooser>(
          new LatestChooser(n, config.zipf_theta));
    }
    case Distribution::kHotset:
      if (config.hot_fraction <= 0.0 || config.hot_fraction > 1.0 ||
          config.hot_op_fraction < 0.0 || config.hot_op_fraction > 1.0) {
        return util::InvalidArgumentError(
            "hotset requires hot_fraction in (0, 1] and hot_op_fraction "
            "in [0, 1]");
      }
      return std::unique_ptr<KeyChooser>(new HotsetChooser(
          n, config.hot_fraction, config.hot_op_fraction));
    case Distribution::kExponential:
      if (config.exp_percentile <= 0.0 || config.exp_percentile >= 1.0 ||
          config.exp_fraction <= 0.0 || config.exp_fraction > 1.0) {
        return util::InvalidArgumentError(
            "exponential requires exp_percentile in (0, 1) and "
            "exp_fraction in (0, 1]");
      }
      return std::unique_ptr<KeyChooser>(new ExponentialChooser(
          n, config.exp_percentile, config.exp_fraction));
    case Distribution::kHistogram: {
      if (config.histogram_weights.empty()) {
        return util::InvalidArgumentError(
            "histogram requires at least one bucket weight");
      }
      double total = 0.0;
      for (const double w : config.histogram_weights) {
        if (w < 0.0) {
          return util::InvalidArgumentError(
              "histogram weights must be non-negative");
        }
        total += w;
      }
      if (total <= 0.0) {
        return util::InvalidArgumentError(
            "histogram weights must have a positive sum");
      }
      if (config.histogram_weights.size() > n) {
        return util::InvalidArgumentError(
            "histogram has more buckets than keys");
      }
      return std::unique_ptr<KeyChooser>(
          new HistogramChooser(n, config.histogram_weights));
    }
  }
  return util::InvalidArgumentError("unknown distribution");
}

std::vector<std::uint64_t> GenerateKeyStream(const KeyChooser& chooser,
                                             std::uint64_t seed,
                                             std::size_t count,
                                             std::size_t num_threads) {
  std::vector<std::uint64_t> keys(count);
  util::ParallelFor(num_threads, count,
                    [&](std::size_t /*chunk*/, std::size_t begin,
                        std::size_t end) {
                      for (std::size_t i = begin; i < end; ++i) {
                        util::Rng rng = util::Rng::ForStream(seed, i);
                        keys[i] = chooser.Next(&rng);
                      }
                    },
                    /*items_per_morsel=*/1024);
  return keys;
}

}  // namespace rulelink::datagen
