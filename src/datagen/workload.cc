#include "datagen/workload.h"

#include <algorithm>
#include <cctype>
#include <unordered_set>

#include "datagen/typo.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace rulelink::datagen {
namespace {

constexpr char kSeparators[] = {'-', '.', ' ', '/', '_'};
constexpr std::size_t kNumSeparators = sizeof(kSeparators);

// Same shape as the paper generator's series codes: 1-4 uppercase letters
// followed by 2-4 digits ("CRCW0805", "T83").
std::string MakeSeriesCode(util::Rng* rng) {
  static constexpr char kLetters[] = "ABCDEFGHIJKLMNOPQRSTUVWXYZ";
  static constexpr char kDigits[] = "0123456789";
  std::string code;
  const std::size_t letters = 1 + rng->UniformUint64(4);
  const std::size_t digits = 2 + rng->UniformUint64(3);
  for (std::size_t i = 0; i < letters; ++i) {
    code.push_back(kLetters[rng->UniformUint64(26)]);
  }
  for (std::size_t i = 0; i < digits; ++i) {
    code.push_back(kDigits[rng->UniformUint64(10)]);
  }
  return code;
}

std::string RenderPartNumber(const std::vector<std::string>& tokens,
                             char separator) {
  std::string out;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (i > 0) out.push_back(separator);
    out += tokens[i];
  }
  return out;
}

std::vector<std::string> SplitPartNumber(const std::string& part_number,
                                         char separator) {
  std::vector<std::string> tokens;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= part_number.size(); ++i) {
    if (i == part_number.size() || part_number[i] == separator) {
      if (i > start) tokens.push_back(part_number.substr(start, i - start));
      start = i + 1;
    }
  }
  return tokens;
}

std::string AsciiLower(std::string s) {
  for (char& c : s) {
    c = static_cast<char>(
        std::tolower(static_cast<unsigned char>(c)));
  }
  return s;
}

}  // namespace

util::Result<WorkloadCatalog> GenerateWorkloadCatalog(
    const WorkloadConfig& cfg, std::size_t num_threads) {
  if (cfg.catalog_size == 0) {
    return util::InvalidArgumentError("catalog_size must be > 0");
  }
  if (cfg.num_epochs == 0) {
    return util::InvalidArgumentError("num_epochs must be >= 1");
  }
  if (cfg.drift_leaf_fraction < 0.0 || cfg.drift_leaf_fraction >= 1.0) {
    return util::InvalidArgumentError(
        "drift_leaf_fraction must be in [0, 1)");
  }
  if (cfg.series_per_leaf == 0 || cfg.serial_pool_size == 0 ||
      cfg.num_manufacturers == 0) {
    return util::InvalidArgumentError(
        "series_per_leaf, serial_pool_size and num_manufacturers must be "
        "positive");
  }

  // --- Serial phase: taxonomy, pools, per-epoch popularity samplers. ---
  util::Rng rng(cfg.seed);
  WorkloadCatalog catalog;
  catalog.config = cfg;
  RL_ASSIGN_OR_RETURN(
      catalog.taxonomy,
      GenerateOntology(cfg.num_classes, cfg.num_leaves, &rng));
  const std::vector<ontology::ClassId>& leaves = catalog.taxonomy.leaves;
  const std::size_t num_leaves = leaves.size();

  // Drift plan: a shuffled prefix of the leaves first appears in epoch
  // >= 1, spread round-robin over the later epochs.
  std::vector<std::size_t> leaf_order(num_leaves);
  for (std::size_t i = 0; i < num_leaves; ++i) leaf_order[i] = i;
  rng.Shuffle(&leaf_order);
  const std::size_t num_drift =
      cfg.num_epochs > 1
          ? std::min(num_leaves - 1,
                     static_cast<std::size_t>(cfg.drift_leaf_fraction *
                                              static_cast<double>(num_leaves)))
          : 0;
  catalog.first_epoch_of_leaf.assign(num_leaves, 0);
  for (std::size_t k = 0; k < num_drift; ++k) {
    catalog.first_epoch_of_leaf[leaf_order[k]] =
        1 + static_cast<std::uint32_t>(k % (cfg.num_epochs - 1));
  }

  // Series tokens, globally unique across leaves.
  catalog.series_of_leaf.resize(num_leaves);
  std::unordered_set<std::string> used_codes;
  for (std::size_t leaf = 0; leaf < num_leaves; ++leaf) {
    auto& codes = catalog.series_of_leaf[leaf];
    while (codes.size() < cfg.series_per_leaf) {
      std::string code = MakeSeriesCode(&rng);
      if (used_codes.insert(code).second) codes.push_back(std::move(code));
    }
  }

  std::vector<std::string> serial_pool;
  serial_pool.reserve(cfg.serial_pool_size);
  {
    std::unordered_set<std::string> seen;
    while (serial_pool.size() < cfg.serial_pool_size) {
      std::string s = rng.AlnumString(4 + rng.UniformUint64(3));
      if (seen.insert(s).second) serial_pool.push_back(std::move(s));
    }
  }
  std::vector<std::string> manufacturers;
  manufacturers.reserve(cfg.num_manufacturers);
  {
    std::unordered_set<std::string> seen;
    while (manufacturers.size() < cfg.num_manufacturers) {
      std::string name = "Mfr" + rng.AlnumString(3);
      if (seen.insert(name).second) manufacturers.push_back(std::move(name));
    }
  }

  // Per-epoch eligible leaves, newest introductions first: a freshly
  // launched part series immediately takes the head of the popularity
  // skew, the regime that starves a stale batch learner.
  std::vector<std::vector<std::size_t>> eligible(cfg.num_epochs);
  std::vector<util::ZipfSampler> leaf_sampler;
  leaf_sampler.reserve(cfg.num_epochs);
  for (std::uint32_t e = 0; e < cfg.num_epochs; ++e) {
    for (std::size_t leaf = 0; leaf < num_leaves; ++leaf) {
      if (catalog.first_epoch_of_leaf[leaf] <= e) {
        eligible[e].push_back(leaf);
      }
    }
    std::stable_sort(eligible[e].begin(), eligible[e].end(),
                     [&](std::size_t a, std::size_t b) {
                       return catalog.first_epoch_of_leaf[a] >
                              catalog.first_epoch_of_leaf[b];
                     });
    RL_CHECK(!eligible[e].empty());
    leaf_sampler.emplace_back(eligible[e].size(), cfg.leaf_zipf_exponent);
  }

  // --- Parallel phase: item i from Rng::ForStream(seed, i) only. ---
  const std::size_t n = cfg.catalog_size;
  catalog.items.resize(n);
  catalog.classes.resize(n);
  catalog.epochs.resize(n);
  catalog.separators.resize(n);
  util::ParallelFor(
      num_threads, n,
      [&](std::size_t /*chunk*/, std::size_t begin, std::size_t end) {
        std::vector<std::string> tokens;
        for (std::size_t i = begin; i < end; ++i) {
          util::Rng item_rng = util::Rng::ForStream(cfg.seed, i);
          const auto epoch = static_cast<std::uint32_t>(
              (i * cfg.num_epochs) / n);
          const std::size_t leaf =
              eligible[epoch][leaf_sampler[epoch].Sample(&item_rng)];

          tokens.clear();
          if (item_rng.Bernoulli(cfg.series_in_partnumber_prob)) {
            tokens.push_back(item_rng.Pick(catalog.series_of_leaf[leaf]));
          }
          tokens.push_back(item_rng.Pick(serial_pool));
          if (item_rng.Bernoulli(cfg.second_serial_prob)) {
            tokens.push_back(item_rng.Pick(serial_pool));
          }
          const char separator =
              kSeparators[item_rng.UniformUint64(kNumSeparators)];
          const std::string& manufacturer =
              manufacturers[item_rng.UniformUint64(manufacturers.size())];

          core::Item& item = catalog.items[i];
          item.iri = std::string(ns::kCatalog) + "W" + std::to_string(i);
          item.facts.push_back(core::PropertyValue{
              props::kPartNumber, RenderPartNumber(tokens, separator)});
          item.facts.push_back(
              core::PropertyValue{props::kManufacturer, manufacturer});
          item.facts.push_back(core::PropertyValue{
              props::kLabel,
              manufacturer + " " +
                  catalog.taxonomy.ontology.label(leaves[leaf])});
          catalog.classes[i] = leaves[leaf];
          catalog.epochs[i] = epoch;
          catalog.separators[i] = separator;
        }
      },
      // Counter-based streams write by index: item cost is uniform and
      // tiny, so morsels only need to amortize the loop dispatch.
      /*items_per_morsel=*/1024);
  return catalog;
}

util::Result<QueryStream> GenerateQueryStream(const WorkloadCatalog& catalog,
                                              const QueryStreamConfig& cfg,
                                              std::size_t num_threads) {
  if (cfg.num_providers == 0) {
    return util::InvalidArgumentError("num_providers must be > 0");
  }
  KeyChooserConfig chooser_config = cfg.chooser;
  chooser_config.num_keys = catalog.items.size();
  RL_ASSIGN_OR_RETURN(const std::unique_ptr<KeyChooser> chooser,
                      MakeKeyChooser(chooser_config));

  // Provider rendering styles (the schema-variation axis): preferred
  // separator plus an optional lower-cased rendering.
  struct ProviderStyle {
    char separator = '-';
    bool lowercase = false;
  };
  std::vector<ProviderStyle> styles(cfg.num_providers);
  util::Rng style_rng(cfg.seed);
  for (ProviderStyle& style : styles) {
    style.separator = kSeparators[style_rng.UniformUint64(kNumSeparators)];
    style.lowercase = style_rng.Bernoulli(0.5);
  }

  QueryStream stream;
  const std::size_t n = cfg.num_queries;
  stream.queries.resize(n);
  stream.gold.resize(n);
  util::ParallelFor(
      num_threads, n,
      [&](std::size_t /*chunk*/, std::size_t begin, std::size_t end) {
        for (std::size_t j = begin; j < end; ++j) {
          util::Rng rng = util::Rng::ForStream(cfg.seed, j);
          const auto target =
              static_cast<std::size_t>(chooser->Next(&rng));
          const ProviderStyle& style =
              styles[rng.UniformUint64(styles.size())];

          const core::Item& product = catalog.items[target];
          std::vector<std::string> tokens = SplitPartNumber(
              product.facts[0].value, catalog.separators[target]);
          for (std::string& token : tokens) {
            if (rng.Bernoulli(cfg.typo_prob)) {
              token = ApplyTypo(token, &rng);
            }
          }
          const char separator = rng.Bernoulli(cfg.reformat_prob)
                                     ? style.separator
                                     : catalog.separators[target];
          std::string part_number = RenderPartNumber(tokens, separator);
          if (part_number.size() > cfg.min_truncated_length &&
              rng.Bernoulli(cfg.truncate_prob)) {
            const std::size_t cut =
                cfg.min_truncated_length +
                rng.UniformUint64(part_number.size() -
                                  cfg.min_truncated_length);
            part_number.resize(cut);
          }
          std::string manufacturer = product.facts[1].value;
          if (style.lowercase) {
            part_number = AsciiLower(std::move(part_number));
            manufacturer = AsciiLower(std::move(manufacturer));
          }

          core::Item& query = stream.queries[j];
          query.iri = std::string(ns::kProvider) + "Q" + std::to_string(j);
          query.facts.push_back(core::PropertyValue{
              props::kPartNumber, std::move(part_number)});
          query.facts.push_back(core::PropertyValue{
              props::kManufacturer, std::move(manufacturer)});
          stream.gold[j] = GoldLink{j, target};
        }
      },
      /*items_per_morsel=*/1024);
  return stream;
}

}  // namespace rulelink::datagen
