#include "ontology/materialize.h"

#include <vector>

#include "rdf/vocab.h"

namespace rulelink::ontology {

std::size_t MaterializeTypes(const Ontology& onto, rdf::Graph* graph) {
  auto& dict = graph->dict();
  const rdf::TermId type_id = dict.FindIri(rdf::vocab::kRdfType);
  if (type_id == rdf::kInvalidTermId) return 0;

  // Collect asserted type triples first: inserting while iterating the
  // match results would grow the posting lists under the scan.
  struct Assertion {
    rdf::TermId instance;
    ClassId cls;
  };
  std::vector<Assertion> assertions;
  graph->ForEachMatch(
      rdf::TriplePattern{rdf::kInvalidTermId, type_id, rdf::kInvalidTermId},
      [&](const rdf::Triple& t) {
        const rdf::Term& obj = dict.term(t.object);
        if (obj.is_iri()) {
          const ClassId c = onto.FindByIri(obj.lexical());
          if (c != kInvalidClassId) {
            assertions.push_back(Assertion{t.subject, c});
          }
        }
        return true;
      });

  std::size_t added = 0;
  for (const Assertion& assertion : assertions) {
    for (ClassId ancestor : onto.Ancestors(assertion.cls)) {
      const rdf::TermId ancestor_id = dict.InternIri(onto.iri(ancestor));
      added += graph->Insert(
          rdf::Triple{assertion.instance, type_id, ancestor_id});
    }
  }
  return added;
}

}  // namespace rulelink::ontology
