#include "ontology/instance_index.h"

#include <algorithm>
#include <unordered_set>

#include "rdf/vocab.h"

namespace rulelink::ontology {

InstanceIndex InstanceIndex::Build(const rdf::Graph& data,
                                   const Ontology& onto) {
  InstanceIndex index(data, onto);
  const auto& dict = data.dict();
  const rdf::TermId type_id = dict.FindIri(rdf::vocab::kRdfType);
  if (type_id == rdf::kInvalidTermId) return index;

  for (const rdf::Triple& t : data.Match(
           rdf::TriplePattern{rdf::kInvalidTermId, type_id,
                              rdf::kInvalidTermId})) {
    const rdf::Term& obj = dict.term(t.object);
    if (!obj.is_iri()) continue;
    const ClassId c = onto.FindByIri(obj.lexical());
    if (c == kInvalidClassId) continue;
    auto [it, inserted] = index.instance_classes_.try_emplace(t.subject);
    if (inserted) index.instances_.push_back(t.subject);
    auto& classes = it->second;
    if (std::find(classes.begin(), classes.end(), c) == classes.end()) {
      classes.push_back(c);
      index.class_instances_[c].push_back(t.subject);
    }
  }
  // Reduce multi-typed instances to their most specific classes.
  for (auto& [instance, classes] : index.instance_classes_) {
    if (classes.size() > 1) {
      classes = onto.MostSpecific(classes);
    }
  }
  return index;
}

const std::vector<ClassId>& InstanceIndex::ClassesOf(
    rdf::TermId instance) const {
  auto it = instance_classes_.find(instance);
  return it == instance_classes_.end() ? empty_classes_ : it->second;
}

const std::vector<ClassId>& InstanceIndex::ClassesOfIri(
    const std::string& iri) const {
  const rdf::TermId id = data_->dict().FindIri(iri);
  if (id == rdf::kInvalidTermId) return empty_classes_;
  return ClassesOf(id);
}

const std::string& InstanceIndex::IriOf(rdf::TermId instance) const {
  return data_->dict().term(instance).lexical();
}

const std::vector<rdf::TermId>& InstanceIndex::DirectExtent(
    ClassId c) const {
  auto it = class_instances_.find(c);
  return it == class_instances_.end() ? empty_instances_ : it->second;
}

std::vector<rdf::TermId> InstanceIndex::TransitiveExtent(ClassId c) const {
  std::unordered_set<rdf::TermId> seen;
  std::vector<rdf::TermId> out;
  const auto absorb = [&](const std::vector<rdf::TermId>& instances) {
    for (rdf::TermId i : instances) {
      if (seen.insert(i).second) out.push_back(i);
    }
  };
  absorb(DirectExtent(c));
  for (ClassId d : onto_->Descendants(c)) absorb(DirectExtent(d));
  return out;
}

std::size_t InstanceIndex::TransitiveExtentSize(ClassId c) const {
  return TransitiveExtent(c).size();
}

}  // namespace rulelink::ontology
