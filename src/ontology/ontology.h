// OWL-lite class taxonomy: named classes, rdfs:subClassOf edges (a DAG),
// labels, and owl:disjointWith axioms. Supports the queries the paper's
// learner needs: most-specific (leaf) classes, subsumption checks, and the
// class generalization used by the future-work extension (§6).
#ifndef RULELINK_ONTOLOGY_ONTOLOGY_H_
#define RULELINK_ONTOLOGY_ONTOLOGY_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "rdf/graph.h"
#include "util/status.h"

namespace rulelink::ontology {

using ClassId = std::uint32_t;
inline constexpr ClassId kInvalidClassId = 0xFFFFFFFFu;

class Ontology {
 public:
  Ontology() = default;

  Ontology(const Ontology&) = delete;
  Ontology& operator=(const Ontology&) = delete;
  Ontology(Ontology&&) = default;
  Ontology& operator=(Ontology&&) = default;

  // --- Construction -------------------------------------------------------

  // Adds (or returns the existing) class for `iri`.
  ClassId AddClass(const std::string& iri, const std::string& label = "");

  // Declares child ⊑ parent. Both must already exist.
  util::Status AddSubClassOf(ClassId child, ClassId parent);

  // Declares a ⊥ b (and symmetrically b ⊥ a).
  util::Status AddDisjointWith(ClassId a, ClassId b);

  // Validates acyclicity and precomputes depths and transitive ancestor
  // sets. Must be called before any query; fails on a subclass cycle.
  util::Status Finalize();

  // Loads classes from an RDF graph: subjects of `rdf:type owl:Class`
  // triples and both endpoints of `rdfs:subClassOf`, plus labels and
  // disjointness. Finalizes before returning.
  static util::Result<Ontology> FromGraph(const rdf::Graph& graph);

  // --- Queries (require Finalize) -----------------------------------------

  std::size_t num_classes() const { return classes_.size(); }
  bool finalized() const { return finalized_; }

  const std::string& iri(ClassId c) const { return classes_[c].iri; }
  const std::string& label(ClassId c) const { return classes_[c].label; }
  ClassId FindByIri(const std::string& iri) const;

  // Direct taxonomy edges.
  const std::vector<ClassId>& Parents(ClassId c) const {
    return classes_[c].parents;
  }
  const std::vector<ClassId>& Children(ClassId c) const {
    return classes_[c].children;
  }

  // Reflexive-transitive subsumption: IsSubClassOf(c, c) is true.
  bool IsSubClassOf(ClassId sub, ClassId super) const;

  // Strict ancestors (excludes c), in no particular order.
  std::vector<ClassId> Ancestors(ClassId c) const;
  // Strict descendants (excludes c).
  std::vector<ClassId> Descendants(ClassId c) const;

  bool IsLeaf(ClassId c) const { return classes_[c].children.empty(); }
  bool IsRoot(ClassId c) const { return classes_[c].parents.empty(); }
  std::vector<ClassId> Leaves() const;
  std::vector<ClassId> Roots() const;

  // Longest path from a root; roots have depth 0.
  std::size_t Depth(ClassId c) const { return classes_[c].depth; }
  std::size_t MaxDepth() const;

  // Explicitly declared (not inferred) disjointness.
  bool AreDisjoint(ClassId a, ClassId b) const;

  // Of the given classes, keeps only those with no strict subclass also in
  // the set — the "most specific classes" the paper's support counting is
  // restricted to.
  std::vector<ClassId> MostSpecific(const std::vector<ClassId>& classes) const;

  // Least common ancestors of a and b: ancestors-or-self of both, minimal
  // w.r.t. subsumption. Used by rule generalization.
  std::vector<ClassId> LeastCommonAncestors(ClassId a, ClassId b) const;

 private:
  struct ClassInfo {
    std::string iri;
    std::string label;
    std::vector<ClassId> parents;
    std::vector<ClassId> children;
    std::size_t depth = 0;
    // Sorted strict-ancestor ids, precomputed at Finalize.
    std::vector<ClassId> ancestors;
  };

  bool HasAncestor(ClassId c, ClassId candidate) const;

  std::vector<ClassInfo> classes_;
  std::unordered_map<std::string, ClassId> iri_to_id_;
  std::unordered_set<std::uint64_t> disjoint_pairs_;  // (min,max) packed
  bool finalized_ = false;
};

}  // namespace rulelink::ontology

#endif  // RULELINK_ONTOLOGY_ONTOLOGY_H_
