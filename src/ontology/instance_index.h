// Index from instances to their ontology classes and back (class extents),
// built from rdf:type triples of a data graph. Used by the learner to read
// local class memberships and by the linking-space accounting to size class
// extents.
#ifndef RULELINK_ONTOLOGY_INSTANCE_INDEX_H_
#define RULELINK_ONTOLOGY_INSTANCE_INDEX_H_

#include <unordered_map>
#include <vector>

#include "ontology/ontology.h"
#include "rdf/graph.h"
#include "util/status.h"

namespace rulelink::ontology {

class InstanceIndex {
 public:
  // Scans `data` for (instance, rdf:type, C) triples where C is a class of
  // `onto`. Unknown types are ignored. `onto` must outlive the index.
  static InstanceIndex Build(const rdf::Graph& data, const Ontology& onto);

  // Most-specific asserted classes of `instance` (empty when untyped).
  const std::vector<ClassId>& ClassesOf(rdf::TermId instance) const;

  // As above, resolving the instance by IRI through the source graph's
  // dictionary (empty when the IRI is unknown or untyped).
  const std::vector<ClassId>& ClassesOfIri(const std::string& iri) const;

  // IRI of a typed instance id.
  const std::string& IriOf(rdf::TermId instance) const;

  // Instances directly asserted into `c` (not descendants).
  const std::vector<rdf::TermId>& DirectExtent(ClassId c) const;

  // Instances of `c` or any descendant, deduplicated.
  std::vector<rdf::TermId> TransitiveExtent(ClassId c) const;

  std::size_t DirectExtentSize(ClassId c) const {
    return DirectExtent(c).size();
  }
  std::size_t TransitiveExtentSize(ClassId c) const;

  // All typed instances, in first-seen order.
  const std::vector<rdf::TermId>& instances() const { return instances_; }

  const Ontology& ontology() const { return *onto_; }

 private:
  InstanceIndex(const rdf::Graph& data, const Ontology& onto)
      : data_(&data), onto_(&onto) {}

  const rdf::Graph* data_;
  const Ontology* onto_;
  std::vector<rdf::TermId> instances_;
  std::unordered_map<rdf::TermId, std::vector<ClassId>> instance_classes_;
  std::unordered_map<ClassId, std::vector<rdf::TermId>> class_instances_;
  std::vector<ClassId> empty_classes_;
  std::vector<rdf::TermId> empty_instances_;
};

}  // namespace rulelink::ontology

#endif  // RULELINK_ONTOLOGY_INSTANCE_INDEX_H_
