// RDFS-style type materialization: adds the rdf:type triples entailed by
// rdfs:subClassOf (an instance of a class is an instance of every
// superclass). After materialization, plain graph pattern matching — and
// the SPARQL engine — see transitive class extents without reasoning.
#ifndef RULELINK_ONTOLOGY_MATERIALIZE_H_
#define RULELINK_ONTOLOGY_MATERIALIZE_H_

#include <cstddef>

#include "ontology/ontology.h"
#include "rdf/graph.h"

namespace rulelink::ontology {

// Inserts every entailed (instance, rdf:type, superclass) triple into
// `graph`. Instances typed with classes unknown to `onto` are left
// untouched. Returns the number of triples added (duplicates are not
// re-added). The graph's existing triples are never modified.
std::size_t MaterializeTypes(const Ontology& onto, rdf::Graph* graph);

}  // namespace rulelink::ontology

#endif  // RULELINK_ONTOLOGY_MATERIALIZE_H_
