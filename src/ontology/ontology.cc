#include "ontology/ontology.h"

#include <algorithm>

#include "rdf/vocab.h"
#include "util/logging.h"

namespace rulelink::ontology {
namespace {

std::uint64_t PackPair(ClassId a, ClassId b) {
  if (a > b) std::swap(a, b);
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

}  // namespace

ClassId Ontology::AddClass(const std::string& iri, const std::string& label) {
  RL_CHECK(!finalized_) << "AddClass after Finalize";
  auto it = iri_to_id_.find(iri);
  if (it != iri_to_id_.end()) {
    if (!label.empty() && classes_[it->second].label.empty()) {
      classes_[it->second].label = label;
    }
    return it->second;
  }
  const ClassId id = static_cast<ClassId>(classes_.size());
  ClassInfo info;
  info.iri = iri;
  info.label = label;
  classes_.push_back(std::move(info));
  iri_to_id_.emplace(iri, id);
  return id;
}

util::Status Ontology::AddSubClassOf(ClassId child, ClassId parent) {
  if (child >= classes_.size() || parent >= classes_.size()) {
    return util::InvalidArgumentError("unknown class id");
  }
  if (child == parent) {
    return util::OkStatus();  // reflexive assertion carries no information
  }
  auto& parents = classes_[child].parents;
  if (std::find(parents.begin(), parents.end(), parent) == parents.end()) {
    parents.push_back(parent);
    classes_[parent].children.push_back(child);
  }
  return util::OkStatus();
}

util::Status Ontology::AddDisjointWith(ClassId a, ClassId b) {
  if (a >= classes_.size() || b >= classes_.size()) {
    return util::InvalidArgumentError("unknown class id");
  }
  if (a == b) {
    return util::InvalidArgumentError("a class cannot be disjoint with itself");
  }
  disjoint_pairs_.insert(PackPair(a, b));
  return util::OkStatus();
}

util::Status Ontology::Finalize() {
  // Topological order by Kahn's algorithm over parent edges (parents must
  // come first so depths and ancestor sets can be propagated).
  std::vector<std::size_t> unresolved_parents(classes_.size());
  std::vector<ClassId> queue;
  for (ClassId c = 0; c < classes_.size(); ++c) {
    unresolved_parents[c] = classes_[c].parents.size();
    if (unresolved_parents[c] == 0) queue.push_back(c);
  }
  std::size_t processed = 0;
  while (!queue.empty()) {
    const ClassId c = queue.back();
    queue.pop_back();
    ++processed;
    auto& info = classes_[c];
    // depth and ancestors from parents (already processed).
    info.depth = 0;
    info.ancestors.clear();
    for (ClassId p : info.parents) {
      info.depth = std::max(info.depth, classes_[p].depth + 1);
      info.ancestors.push_back(p);
      info.ancestors.insert(info.ancestors.end(),
                            classes_[p].ancestors.begin(),
                            classes_[p].ancestors.end());
    }
    std::sort(info.ancestors.begin(), info.ancestors.end());
    info.ancestors.erase(
        std::unique(info.ancestors.begin(), info.ancestors.end()),
        info.ancestors.end());
    for (ClassId child : info.children) {
      if (--unresolved_parents[child] == 0) queue.push_back(child);
    }
  }
  if (processed != classes_.size()) {
    return util::FailedPreconditionError(
        "subClassOf graph contains a cycle (" +
        std::to_string(classes_.size() - processed) +
        " classes unreachable from roots)");
  }
  finalized_ = true;
  return util::OkStatus();
}

util::Result<Ontology> Ontology::FromGraph(const rdf::Graph& graph) {
  Ontology onto;
  const auto& dict = graph.dict();
  const rdf::TermId type_id = dict.FindIri(rdf::vocab::kRdfType);
  const rdf::TermId owl_class_id = dict.FindIri(rdf::vocab::kOwlClass);
  const rdf::TermId subclass_id = dict.FindIri(rdf::vocab::kRdfsSubClassOf);
  const rdf::TermId label_id = dict.FindIri(rdf::vocab::kRdfsLabel);
  const rdf::TermId disjoint_id = dict.FindIri(rdf::vocab::kOwlDisjointWith);

  const auto class_of_term = [&](rdf::TermId id) -> ClassId {
    const rdf::Term& t = dict.term(id);
    if (!t.is_iri()) return kInvalidClassId;
    return onto.AddClass(t.lexical());
  };

  // Declared classes.
  if (type_id != rdf::kInvalidTermId && owl_class_id != rdf::kInvalidTermId) {
    for (rdf::TermId s : graph.Subjects(type_id, owl_class_id)) {
      class_of_term(s);
    }
  }
  // Subclass edges imply both endpoints are classes.
  if (subclass_id != rdf::kInvalidTermId) {
    for (const rdf::Triple& t :
         graph.Match(rdf::TriplePattern{rdf::kInvalidTermId, subclass_id,
                                        rdf::kInvalidTermId})) {
      const ClassId child = class_of_term(t.subject);
      const ClassId parent = class_of_term(t.object);
      if (child == kInvalidClassId || parent == kInvalidClassId) continue;
      RL_RETURN_IF_ERROR(onto.AddSubClassOf(child, parent));
    }
  }
  // Labels for known classes.
  if (label_id != rdf::kInvalidTermId) {
    for (ClassId c = 0; c < onto.classes_.size(); ++c) {
      const rdf::TermId subject = dict.FindIri(onto.classes_[c].iri);
      if (subject == rdf::kInvalidTermId) continue;
      const rdf::TermId obj = graph.FirstObject(subject, label_id);
      if (obj != rdf::kInvalidTermId && dict.term(obj).is_literal()) {
        onto.classes_[c].label = dict.term(obj).lexical();
      }
    }
  }
  // Disjointness.
  if (disjoint_id != rdf::kInvalidTermId) {
    for (const rdf::Triple& t :
         graph.Match(rdf::TriplePattern{rdf::kInvalidTermId, disjoint_id,
                                        rdf::kInvalidTermId})) {
      const ClassId a = class_of_term(t.subject);
      const ClassId b = class_of_term(t.object);
      if (a == kInvalidClassId || b == kInvalidClassId || a == b) continue;
      RL_RETURN_IF_ERROR(onto.AddDisjointWith(a, b));
    }
  }
  RL_RETURN_IF_ERROR(onto.Finalize());
  return onto;
}

ClassId Ontology::FindByIri(const std::string& iri) const {
  auto it = iri_to_id_.find(iri);
  return it == iri_to_id_.end() ? kInvalidClassId : it->second;
}

bool Ontology::HasAncestor(ClassId c, ClassId candidate) const {
  const auto& anc = classes_[c].ancestors;
  return std::binary_search(anc.begin(), anc.end(), candidate);
}

bool Ontology::IsSubClassOf(ClassId sub, ClassId super) const {
  RL_DCHECK(finalized_);
  if (sub == super) return true;
  return HasAncestor(sub, super);
}

std::vector<ClassId> Ontology::Ancestors(ClassId c) const {
  RL_DCHECK(finalized_);
  return classes_[c].ancestors;
}

std::vector<ClassId> Ontology::Descendants(ClassId c) const {
  RL_DCHECK(finalized_);
  std::vector<ClassId> out;
  std::vector<ClassId> stack(classes_[c].children);
  std::unordered_set<ClassId> seen(stack.begin(), stack.end());
  while (!stack.empty()) {
    const ClassId cur = stack.back();
    stack.pop_back();
    out.push_back(cur);
    for (ClassId child : classes_[cur].children) {
      if (seen.insert(child).second) stack.push_back(child);
    }
  }
  return out;
}

std::vector<ClassId> Ontology::Leaves() const {
  std::vector<ClassId> out;
  for (ClassId c = 0; c < classes_.size(); ++c) {
    if (IsLeaf(c)) out.push_back(c);
  }
  return out;
}

std::vector<ClassId> Ontology::Roots() const {
  std::vector<ClassId> out;
  for (ClassId c = 0; c < classes_.size(); ++c) {
    if (IsRoot(c)) out.push_back(c);
  }
  return out;
}

std::size_t Ontology::MaxDepth() const {
  std::size_t depth = 0;
  for (const auto& info : classes_) depth = std::max(depth, info.depth);
  return depth;
}

bool Ontology::AreDisjoint(ClassId a, ClassId b) const {
  return disjoint_pairs_.count(PackPair(a, b)) > 0;
}

std::vector<ClassId> Ontology::MostSpecific(
    const std::vector<ClassId>& classes) const {
  RL_DCHECK(finalized_);
  std::vector<ClassId> out;
  for (ClassId c : classes) {
    bool has_subclass_in_set = false;
    for (ClassId other : classes) {
      if (other != c && IsSubClassOf(other, c)) {
        has_subclass_in_set = true;
        break;
      }
    }
    if (!has_subclass_in_set &&
        std::find(out.begin(), out.end(), c) == out.end()) {
      out.push_back(c);
    }
  }
  return out;
}

std::vector<ClassId> Ontology::LeastCommonAncestors(ClassId a,
                                                    ClassId b) const {
  RL_DCHECK(finalized_);
  // Common ancestors-or-self.
  std::vector<ClassId> common;
  std::vector<ClassId> a_set = classes_[a].ancestors;
  a_set.push_back(a);
  std::sort(a_set.begin(), a_set.end());
  std::vector<ClassId> b_set = classes_[b].ancestors;
  b_set.push_back(b);
  std::sort(b_set.begin(), b_set.end());
  std::set_intersection(a_set.begin(), a_set.end(), b_set.begin(),
                        b_set.end(), std::back_inserter(common));
  return MostSpecific(common);
}

}  // namespace rulelink::ontology
