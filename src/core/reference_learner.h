// The original string-keyed rule learner, preserved verbatim (modulo the
// RuleSet construction API) as a differential oracle for the interned
// pipeline in learner.cc. The rewrite's acceptance bar is byte-identical
// rules, measures and statistics against this implementation at every
// thread count; the benchmark also uses it as the before/after baseline.
// It is intentionally NOT optimised — it re-segments every value three
// times and hashes (property, segment-string) pairs, exactly like the
// seed pipeline did.
#ifndef RULELINK_CORE_REFERENCE_LEARNER_H_
#define RULELINK_CORE_REFERENCE_LEARNER_H_

#include "core/learner.h"
#include "core/rule.h"
#include "core/training_set.h"
#include "util/status.h"

namespace rulelink::core {

// Same contract as RuleLearner::Learn (same options, same validation, same
// stats up to the interner_* fields, which it leaves zero).
util::Result<RuleSet> ReferenceLearn(const LearnerOptions& options,
                                     const TrainingSet& ts,
                                     LearnStats* stats = nullptr);

}  // namespace rulelink::core

#endif  // RULELINK_CORE_REFERENCE_LEARNER_H_
