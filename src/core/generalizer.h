// Rule generalization over the class hierarchy — the paper's future work
// (§6): "study how the learnt classification rules can be used to infer
// more general rules by exploiting the semantics of the subsumption
// between classes of the ontology."
//
// The idea: a segment may be too ambiguous to pin a leaf class (rules fail
// the confidence bar) while perfectly identifying a common superclass —
// e.g. "ohm" may spread over several resistor leaves but always lands
// under Resistor. Generalization recomputes rule counts with class
// membership widened to "belongs to c or any subclass of c" and emits, per
// premise, the most specific ancestors that reach the confidence target.
#ifndef RULELINK_CORE_GENERALIZER_H_
#define RULELINK_CORE_GENERALIZER_H_

#include "core/rule.h"
#include "core/training_set.h"
#include "text/segmenter.h"
#include "util/status.h"

namespace rulelink::core {

struct GeneralizerOptions {
  // Support threshold th, as in the base learner.
  double support_threshold = 0.002;
  // A generalized rule is emitted only at or above this confidence.
  double min_confidence = 0.9;
  // How many subsumption levels above a leaf conclusion may be climbed.
  // 0 = leaves only (degenerates to the base learner's conclusions).
  std::size_t max_levels_up = 3;
  // Rules with lift <= min_lift are dropped. The paper reads lift > 1 as
  // "the premise positively signals the class"; without this guard,
  // climbing far enough always reaches a near-root class whose widened
  // membership makes any segment a confidence-1 — but useless — rule.
  double min_lift = 1.0;
  // Segmentation scheme; must match the base learner's for the comparison
  // benches to be meaningful.
  const text::Segmenter* segmenter = nullptr;
};

// Learns generalized rules directly from the training set. For each
// frequent premise (p,a), candidate conclusions are the ancestors (within
// max_levels_up) of the classes co-occurring with the premise; counts use
// subsumption-widened class membership. Per premise, only conclusions that
// reach min_confidence and are most specific among those are kept, so a
// leaf rule that already qualifies suppresses its ancestors.
util::Result<RuleSet> LearnGeneralizedRules(const TrainingSet& ts,
                                            const GeneralizerOptions& options);

}  // namespace rulelink::core

#endif  // RULELINK_CORE_GENERALIZER_H_
