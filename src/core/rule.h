// Value-based classification rules (§4.1):
//     p(X,Y) ∧ subsegment(Y,a) ⇒ c(X)
// and the RuleSet container with the ordering the paper prescribes
// (confidence first, lift as tie-break).
#ifndef RULELINK_CORE_RULE_H_
#define RULELINK_CORE_RULE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "core/measures.h"
#include "core/training_set.h"
#include "ontology/ontology.h"
#include "util/hash.h"

namespace rulelink::core {

struct ClassificationRule {
  PropertyId property = kInvalidPropertyId;  // p
  std::string segment;                       // a
  ontology::ClassId cls = ontology::kInvalidClassId;  // c

  RuleCounts counts;
  double support = 0.0;
  double confidence = 0.0;
  double lift = 0.0;

  // Fills support/confidence/lift from `counts`.
  void ComputeMeasures();

  // Ordering used everywhere: confidence desc, then lift desc (higher lift
  // = smaller class = smaller subspace first), then deterministic
  // tie-breaks (property, segment, class).
  static bool BetterThan(const ClassificationRule& a,
                         const ClassificationRule& b);
};

// Renders "partNumber(X,Y) ∧ subsegment(Y,\"ohm\") ⇒ FixedFilmResistor(X)".
std::string RuleToString(const ClassificationRule& rule,
                         const PropertyCatalog& properties,
                         const ontology::Ontology& onto);

class RuleSet {
 public:
  RuleSet() = default;
  RuleSet(std::vector<ClassificationRule> rules, PropertyCatalog properties);

  const std::vector<ClassificationRule>& rules() const { return rules_; }
  std::size_t size() const { return rules_.size(); }
  bool empty() const { return rules_.empty(); }

  const PropertyCatalog& properties() const { return properties_; }

  // Rules whose premise is exactly (property, segment), best first. Empty
  // when no rule mentions that pair.
  const std::vector<std::size_t>& RulesFor(PropertyId property,
                                           const std::string& segment) const;

  // Rules with confidence >= threshold, best first.
  std::vector<const ClassificationRule*> WithMinConfidence(
      double threshold) const;

  // Rules with confidence in [lo, hi), best first; hi > 1.0 admits
  // confidence-1 rules.
  std::vector<const ClassificationRule*> InConfidenceBand(double lo,
                                                          double hi) const;

 private:
  using PremiseKey = std::pair<PropertyId, std::string>;

  std::vector<ClassificationRule> rules_;  // kept sorted, best first
  PropertyCatalog properties_;
  std::unordered_map<PremiseKey, std::vector<std::size_t>, util::PairHash>
      by_premise_;
  std::vector<std::size_t> empty_;
};

}  // namespace rulelink::core

#endif  // RULELINK_CORE_RULE_H_
