// Value-based classification rules (§4.1):
//     p(X,Y) ∧ subsegment(Y,a) ⇒ c(X)
// and the RuleSet container with the ordering the paper prescribes
// (confidence first, lift as tie-break).
//
// Rules carry the segment `a` as a dense SegmentId into a
// util::StringInterner rather than an owned std::string; the string is
// materialized only at I/O boundaries (RuleToString, rule_io). A RuleSet
// owns a compact interner holding exactly its rules' segments, so the
// classifier's premise lookups and the premise index below are pure
// integer operations.
#ifndef RULELINK_CORE_RULE_H_
#define RULELINK_CORE_RULE_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/measures.h"
#include "core/training_set.h"
#include "ontology/ontology.h"
#include "text/segmenter.h"
#include "util/hash.h"
#include "util/interner.h"

namespace rulelink::core {

using text::SegmentId;
using text::kInvalidSegmentId;

struct ClassificationRule {
  PropertyId property = kInvalidPropertyId;  // p
  SegmentId segment = kInvalidSegmentId;     // a (id into an interner)
  ontology::ClassId cls = ontology::kInvalidClassId;  // c

  RuleCounts counts;
  double support = 0.0;
  double confidence = 0.0;
  double lift = 0.0;

  // Fills support/confidence/lift from `counts`.
  void ComputeMeasures();

  // Ordering used everywhere: confidence desc, then lift desc (higher lift
  // = smaller class = smaller subspace first), then deterministic
  // tie-breaks (property, segment STRING — resolved through `segments`,
  // since ids follow first-occurrence order, not lexical — then class).
  static bool BetterThan(const ClassificationRule& a,
                         const ClassificationRule& b,
                         const util::StringInterner& segments);
};

class RuleSet;

// Renders "partNumber(X,Y) ∧ subsegment(Y,\"ohm\") ⇒ FixedFilmResistor(X)".
// `set` supplies the property names and the segment symbol table.
std::string RuleToString(const ClassificationRule& rule, const RuleSet& set,
                         const ontology::Ontology& onto);

class RuleSet {
 public:
  RuleSet() = default;

  // `rules` segment ids must refer to `segments`; the constructor
  // re-interns just the rule segments into a compact owned interner and
  // remaps the ids, so a RuleSet never pins a full corpus symbol table.
  RuleSet(std::vector<ClassificationRule> rules, PropertyCatalog properties,
          const util::StringInterner& segments);

  const std::vector<ClassificationRule>& rules() const { return rules_; }
  std::size_t size() const { return rules_.size(); }
  bool empty() const { return rules_.empty(); }

  const PropertyCatalog& properties() const { return properties_; }

  // The owned symbol table the rules' segment ids index into.
  const util::StringInterner& segments() const { return segments_; }

  // The segment string of `rule` (which must belong to this set).
  std::string_view segment_text(const ClassificationRule& rule) const {
    return segments_.View(rule.segment);
  }

  // Rules whose premise is exactly (property, segment), best first. Empty
  // when no rule mentions that pair. The id overload is the hot path; the
  // string overload resolves through the interner first.
  const std::vector<std::size_t>& RulesFor(PropertyId property,
                                           SegmentId segment) const;
  const std::vector<std::size_t>& RulesFor(PropertyId property,
                                           std::string_view segment) const;

  // Rules with confidence >= threshold, best first.
  std::vector<const ClassificationRule*> WithMinConfidence(
      double threshold) const;

  // Rules with confidence in [lo, hi), best first; hi > 1.0 admits
  // confidence-1 rules.
  std::vector<const ClassificationRule*> InConfidenceBand(double lo,
                                                          double hi) const;

 private:
  std::vector<ClassificationRule> rules_;  // kept sorted, best first
  PropertyCatalog properties_;
  util::StringInterner segments_;  // compact: exactly the rules' segments
  // Keyed by PackSymbolPair(property, segment).
  std::unordered_map<std::uint64_t, std::vector<std::size_t>>
      by_premise_;
  std::vector<std::size_t> empty_;
};

}  // namespace rulelink::core

#endif  // RULELINK_CORE_RULE_H_
