// Incremental rule learning: the expert validates links in batches (§3's
// workflow is inherently incremental — every new provider file adds
// reconciliations), so the learner should not re-scan all of TS each time.
// IncrementalRuleLearner maintains the contingency counts online; building
// the rule set at any point is a pass over the (much smaller) count tables
// and yields exactly what the batch RuleLearner would produce on the same
// examples.
//
// Segments are interned into an owned StringInterner as examples arrive;
// the count tables are keyed by packed (PropertyId, SegmentId) uint64
// composites, so ingesting an example hashes fixed-width integers instead
// of (property, string) pairs.
#ifndef RULELINK_CORE_INCREMENTAL_H_
#define RULELINK_CORE_INCREMENTAL_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/item.h"
#include "core/learner.h"
#include "core/rule.h"
#include "ontology/ontology.h"
#include "text/segmenter.h"
#include "util/hash.h"
#include "util/interner.h"

namespace rulelink::core {

class IncrementalRuleLearner {
 public:
  // `onto` and `segmenter` are borrowed and must outlive the learner.
  // `properties` is the expert's P; empty = all properties.
  IncrementalRuleLearner(const ontology::Ontology* onto,
                         const text::Segmenter* segmenter,
                         std::vector<std::string> properties = {});

  // Ingests one validated link: the external item's facts plus the local
  // item's classes (reduced to most-specific internally). O(#segments).
  void AddExample(const Item& external,
                  const std::vector<ontology::ClassId>& classes);

  // Number of examples ingested so far.
  std::size_t size() const { return num_examples_; }

  // Materializes the rules at the current counts. Equivalent to running
  // the batch RuleLearner with the same options over all ingested
  // examples. Fails if no examples were ingested or the threshold is
  // outside (0, 1).
  util::Result<RuleSet> BuildRules(double support_threshold,
                                   double min_confidence = 0.0,
                                   LearnStats* stats = nullptr) const;

 private:
  struct PremiseStat {
    std::size_t example_count = 0;
    std::size_t occurrences = 0;
    std::unordered_map<ontology::ClassId, std::size_t> joint;
  };

  struct PackedHash {
    std::size_t operator()(std::uint64_t key) const {
      return static_cast<std::size_t>(util::Mix64(key));
    }
  };

  const ontology::Ontology* onto_;
  const text::Segmenter* segmenter_;
  std::vector<std::string> selected_properties_;

  PropertyCatalog properties_;
  std::size_t num_examples_ = 0;
  util::StringInterner segments_;  // all distinct segments ever ingested
  // Keyed by PackSymbolPair(property, segment).
  std::unordered_map<std::uint64_t, PremiseStat, PackedHash> premises_;
  std::unordered_map<ontology::ClassId, std::size_t> class_counts_;
  std::size_t total_occurrences_ = 0;
};

}  // namespace rulelink::core

#endif  // RULELINK_CORE_INCREMENTAL_H_
