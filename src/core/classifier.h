// Rule application (§4.4): classifying an external item into candidate
// local classes, producing the ordered list of data-linking subspaces.
#ifndef RULELINK_CORE_CLASSIFIER_H_
#define RULELINK_CORE_CLASSIFIER_H_

#include <vector>

#include "core/item.h"
#include "core/rule.h"
#include "text/segmenter.h"

namespace rulelink::core {

// One predicted class for an item, i.e. one data-linking subspace d_ik.
struct ClassPrediction {
  ontology::ClassId cls = ontology::kInvalidClassId;
  double confidence = 0.0;
  double lift = 0.0;
  std::size_t rule_index = 0;  // index into the RuleSet's rules()
};

class RuleClassifier {
 public:
  // Both pointers are borrowed and must outlive the classifier.
  RuleClassifier(const RuleSet* rules, const text::Segmenter* segmenter);

  // All class predictions for `item`, ordered by the paper's ranking:
  // confidence first, lift second (higher lift = smaller subspace first).
  // When two rules predict the same class (identical subspaces), only the
  // better rule's prediction is kept (§4.4, last paragraph).
  // Predictions below `min_confidence` are dropped.
  std::vector<ClassPrediction> Classify(const Item& item,
                                        double min_confidence = 0.0) const;

  // Classifies a batch of items, partitioning them across `num_threads`
  // workers (0 = hardware concurrency, 1 = serial). Items are independent,
  // so result[i] is exactly Classify(items[i], min_confidence) at every
  // thread count. Classify() is const and touches only the borrowed
  // RuleSet/Segmenter, both read-only, so concurrent calls are safe.
  std::vector<std::vector<ClassPrediction>> ClassifyBatch(
      const std::vector<Item>& items, double min_confidence = 0.0,
      std::size_t num_threads = 0) const;

  // The top-ranked predicted class, or kInvalidClassId when no rule fires.
  ontology::ClassId PredictClass(const Item& item,
                                 double min_confidence = 0.0) const;

  // Batch variant of PredictClass, parallelized like ClassifyBatch.
  std::vector<ontology::ClassId> PredictClassBatch(
      const std::vector<Item>& items, double min_confidence = 0.0,
      std::size_t num_threads = 0) const;

  const RuleSet& rules() const { return *rules_; }

 private:
  const RuleSet* rules_;
  const text::Segmenter* segmenter_;
  // One scratch slot per dense ClassId a rule can predict (max cls + 1),
  // so Classify can keep best-per-class in a flat vector instead of a
  // hash map. Computed once here; the borrowed RuleSet is immutable.
  std::size_t num_class_slots_ = 0;
};

}  // namespace rulelink::core

#endif  // RULELINK_CORE_CLASSIFIER_H_
