#include "core/measures.h"

namespace rulelink::core {

double Support(const RuleCounts& c) {
  if (c.total == 0) return 0.0;
  return static_cast<double>(c.joint_count) / static_cast<double>(c.total);
}

double Confidence(const RuleCounts& c) {
  if (c.premise_count == 0) return 0.0;
  return static_cast<double>(c.joint_count) /
         static_cast<double>(c.premise_count);
}

double Lift(const RuleCounts& c) {
  if (c.class_count == 0 || c.total == 0) return 0.0;
  const double prior =
      static_cast<double>(c.class_count) / static_cast<double>(c.total);
  return Confidence(c) / prior;
}

double Coverage(const RuleCounts& c) {
  if (c.total == 0) return 0.0;
  return static_cast<double>(c.premise_count) /
         static_cast<double>(c.total);
}

double Specificity(const RuleCounts& c) {
  const std::size_t not_class = c.total - c.class_count;
  if (not_class == 0) return 0.0;
  // ¬premise ∧ ¬class = total - premise - class + joint
  const std::size_t tn =
      c.total - c.premise_count - c.class_count + c.joint_count;
  return static_cast<double>(tn) / static_cast<double>(not_class);
}

double Conviction(const RuleCounts& c) {
  if (c.total == 0) return 0.0;
  const double prior =
      static_cast<double>(c.class_count) / static_cast<double>(c.total);
  const double confidence = Confidence(c);
  if (confidence >= 1.0) return kMaxConviction;
  return (1.0 - prior) / (1.0 - confidence);
}

bool CountsAreConsistent(const RuleCounts& c) {
  return c.joint_count <= c.premise_count &&
         c.joint_count <= c.class_count && c.premise_count <= c.total &&
         c.class_count <= c.total;
}

}  // namespace rulelink::core
