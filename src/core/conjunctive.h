// Conjunctive (multi-premise) classification rules — the CBA lineage the
// paper builds on (§2 cites Liu, Hsu & Ma's "Integrating classification
// and association rule mining"). A single segment can be ambiguous while
// a conjunction is decisive:
//
//   pn(X,Y) ∧ subseg(Y,"ohm") ∧ mfr(X,Z) ∧ subseg(Z,"Voltron") ⇒ c(X)
//
// The learner first mines the paper's 1-premise rules, then extends
// frequent premise pairs into 2-premise rules, keeping a pair rule only
// when it is frequent and beats the best parent rule's confidence for the
// same conclusion by a configurable margin — otherwise the simpler rule
// wins (Occam).
#ifndef RULELINK_CORE_CONJUNCTIVE_H_
#define RULELINK_CORE_CONJUNCTIVE_H_

#include <string>
#include <vector>

#include "core/item.h"
#include "core/measures.h"
#include "core/training_set.h"
#include "ontology/ontology.h"
#include "text/segmenter.h"
#include "util/status.h"

namespace rulelink::core {

struct ConjunctivePremise {
  PropertyId property = kInvalidPropertyId;
  std::string segment;

  friend bool operator==(const ConjunctivePremise& a,
                         const ConjunctivePremise& b) {
    return a.property == b.property && a.segment == b.segment;
  }
  friend bool operator<(const ConjunctivePremise& a,
                        const ConjunctivePremise& b) {
    if (a.property != b.property) return a.property < b.property;
    return a.segment < b.segment;
  }
};

struct ConjunctiveRule {
  std::vector<ConjunctivePremise> premises;  // sorted; size 1 or 2
  ontology::ClassId cls = ontology::kInvalidClassId;
  RuleCounts counts;
  double support = 0.0;
  double confidence = 0.0;
  double lift = 0.0;

  void ComputeMeasures();
};

std::string ConjunctiveRuleToString(const ConjunctiveRule& rule,
                                    const PropertyCatalog& properties,
                                    const ontology::Ontology& onto);

struct ConjunctiveLearnerOptions {
  double support_threshold = 0.002;
  // A 2-premise rule must beat the best same-conclusion parent rule's
  // confidence by at least this much to be emitted.
  double min_confidence_gain = 0.05;
  const text::Segmenter* segmenter = nullptr;
  std::vector<std::string> properties;  // empty = all
  // Per-example cap on frequent premises considered for pairing; keeps
  // the pair space quadratic only in a small constant.
  std::size_t max_premises_per_example = 16;
};

class ConjunctiveRuleSet {
 public:
  ConjunctiveRuleSet() = default;
  ConjunctiveRuleSet(std::vector<ConjunctiveRule> rules,
                     PropertyCatalog properties);

  const std::vector<ConjunctiveRule>& rules() const { return rules_; }
  std::size_t size() const { return rules_.size(); }
  const PropertyCatalog& properties() const { return properties_; }

  // Predictions for `item`: rules whose every premise holds, best rule
  // per class, ordered by (confidence, lift). Ties favor the rule with
  // more premises (more specific evidence).
  struct Prediction {
    ontology::ClassId cls = ontology::kInvalidClassId;
    double confidence = 0.0;
    double lift = 0.0;
    std::size_t rule_index = 0;
  };
  std::vector<Prediction> Classify(const Item& item,
                                   const text::Segmenter& segmenter,
                                   double min_confidence = 0.0) const;

  std::size_t CountWithPremises(std::size_t n) const;

 private:
  std::vector<ConjunctiveRule> rules_;
  PropertyCatalog properties_;
};

util::Result<ConjunctiveRuleSet> LearnConjunctiveRules(
    const TrainingSet& ts, const ConjunctiveLearnerOptions& options);

}  // namespace rulelink::core

#endif  // RULELINK_CORE_CONJUNCTIVE_H_
