#include "core/linking_space.h"

#include <limits>
#include <unordered_set>

#include "util/logging.h"
#include "util/thread_pool.h"

namespace rulelink::core {

LinkingSpaceAnalyzer::LinkingSpaceAnalyzer(
    const RuleClassifier* classifier,
    const ontology::InstanceIndex* local_index)
    : classifier_(classifier), local_index_(local_index) {
  RL_CHECK(classifier_ != nullptr);
  RL_CHECK(local_index_ != nullptr);
}

std::vector<rdf::TermId> LinkingSpaceAnalyzer::Candidates(
    const Item& item, double min_confidence) const {
  std::vector<rdf::TermId> out;
  std::unordered_set<rdf::TermId> seen;
  for (const ClassPrediction& prediction :
       classifier_->Classify(item, min_confidence)) {
    for (rdf::TermId instance :
         local_index_->TransitiveExtent(prediction.cls)) {
      if (seen.insert(instance).second) out.push_back(instance);
    }
  }
  return out;
}

std::size_t LinkingSpaceAnalyzer::SubspaceSize(
    const Item& item, double min_confidence,
    UnclassifiedPolicy policy) const {
  const auto predictions = classifier_->Classify(item, min_confidence);
  if (predictions.empty()) {
    return policy == UnclassifiedPolicy::kCompareAll
               ? local_index_->instances().size()
               : 0;
  }
  std::unordered_set<rdf::TermId> subspace;
  for (const ClassPrediction& prediction : predictions) {
    for (rdf::TermId instance :
         local_index_->TransitiveExtent(prediction.cls)) {
      subspace.insert(instance);
    }
  }
  return subspace.size();
}

LinkingSpaceReport LinkingSpaceAnalyzer::Analyze(
    const std::vector<Item>& external, double min_confidence,
    UnclassifiedPolicy policy, std::size_t num_threads) const {
  LinkingSpaceReport report;
  report.num_external_items = external.size();
  report.local_size = local_index_->instances().size();
  report.naive_pairs = static_cast<std::uint64_t>(external.size()) *
                       static_cast<std::uint64_t>(report.local_size);

  // Parallel map: per-item subspace sizes. kNotClassified marks items no
  // rule fired on; the serial reduction below then applies the policy and
  // accumulates doubles in item order (bit-identical at any thread count).
  constexpr std::size_t kNotClassified =
      std::numeric_limits<std::size_t>::max();
  std::vector<std::size_t> subspace_sizes(external.size(), kNotClassified);
  util::ParallelFor(
      num_threads, external.size(),
      [&](std::size_t /*chunk*/, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          const auto predictions =
              classifier_->Classify(external[i], min_confidence);
          if (predictions.empty()) continue;
          std::unordered_set<rdf::TermId> subspace;
          for (const ClassPrediction& prediction : predictions) {
            for (rdf::TermId instance :
                 local_index_->TransitiveExtent(prediction.cls)) {
              subspace.insert(instance);
            }
          }
          subspace_sizes[i] = subspace.size();
        }
      },
      // Per-item cost is dominated by classification + extent union and
      // varies wildly with fan-out; fine morsels let the skew self-balance.
      /*items_per_morsel=*/16);

  double fraction_sum = 0.0;
  for (std::size_t size : subspace_sizes) {
    if (size == kNotClassified) {
      ++report.unclassified_items;
      if (policy == UnclassifiedPolicy::kCompareAll) {
        report.reduced_pairs += report.local_size;
      }
      continue;
    }
    ++report.classified_items;
    report.reduced_pairs += size;
    if (report.local_size > 0) {
      fraction_sum += static_cast<double>(size) /
                      static_cast<double>(report.local_size);
    }
  }
  if (report.naive_pairs > 0) {
    report.reduction_ratio =
        1.0 - static_cast<double>(report.reduced_pairs) /
                  static_cast<double>(report.naive_pairs);
  }
  if (report.classified_items > 0) {
    report.mean_subspace_fraction =
        fraction_sum / static_cast<double>(report.classified_items);
  }
  return report;
}

}  // namespace rulelink::core
