#include "core/learner.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "util/hash.h"

namespace rulelink::core {
namespace {

using PremiseKey = std::pair<PropertyId, std::string>;

struct PremiseStat {
  std::size_t example_count = 0;  // distinct examples whose value contains a
  std::size_t occurrences = 0;    // raw segment occurrences
};

}  // namespace

RuleLearner::RuleLearner(LearnerOptions options)
    : options_(std::move(options)) {}

util::Result<RuleSet> RuleLearner::Learn(const TrainingSet& ts,
                                         LearnStats* stats) const {
  if (options_.segmenter == nullptr) {
    return util::InvalidArgumentError("LearnerOptions.segmenter is null");
  }
  if (!(options_.support_threshold > 0.0) ||
      options_.support_threshold >= 1.0) {
    return util::InvalidArgumentError(
        "support threshold must be in (0, 1)");
  }
  if (ts.size() == 0) {
    return util::InvalidArgumentError("empty training set");
  }

  const double total = static_cast<double>(ts.size());
  // Strict '>' per the paper: count/|TS| > th  <=>  count > th*|TS|.
  const auto is_frequent = [&](std::size_t count) {
    return static_cast<double>(count) > options_.support_threshold * total;
  };

  // Property selection P: empty means all.
  std::unordered_set<PropertyId> selected_properties;
  for (const std::string& name : options_.properties) {
    const PropertyId id = ts.properties().Find(name);
    if (id != kInvalidPropertyId) selected_properties.insert(id);
  }
  if (!options_.properties.empty() && selected_properties.empty()) {
    return util::InvalidArgumentError(
        "none of the selected properties occur in the training set");
  }
  const auto property_selected = [&](PropertyId p) {
    return options_.properties.empty() || selected_properties.count(p) > 0;
  };

  // ---- Pass 1: premise frequencies and segment statistics. ----
  std::unordered_map<PremiseKey, PremiseStat, util::PairHash> premise_stats;
  std::unordered_set<std::string> distinct_segment_strings;
  std::size_t total_occurrences = 0;

  // Reused per-example scratch: which (p, segment) pairs this example has.
  std::unordered_set<PremiseKey, util::PairHash> example_premises;

  const auto collect_example_premises =
      [&](const TrainingExample& example,
          std::unordered_set<PremiseKey, util::PairHash>* out,
          bool count_occurrences) {
        out->clear();
        for (const auto& [property, value] : example.facts) {
          if (!property_selected(property)) continue;
          for (std::string& seg : options_.segmenter->Segment(value)) {
            if (count_occurrences) {
              ++total_occurrences;
              distinct_segment_strings.insert(seg);
            }
            out->emplace(property, std::move(seg));
          }
        }
      };

  for (const TrainingExample& example : ts.examples()) {
    collect_example_premises(example, &example_premises,
                             /*count_occurrences=*/true);
    for (const PremiseKey& key : example_premises) {
      ++premise_stats[key].example_count;
    }
  }
  // Raw occurrence counts per premise (for the "selected occurrences"
  // statistic) need a second tally because example_premises deduplicates.
  for (const TrainingExample& example : ts.examples()) {
    for (const auto& [property, value] : example.facts) {
      if (!property_selected(property)) continue;
      for (const std::string& seg : options_.segmenter->Segment(value)) {
        auto it = premise_stats.find({property, seg});
        if (it != premise_stats.end()) ++it->second.occurrences;
      }
    }
  }

  // Frequent premises.
  std::unordered_map<PremiseKey, std::size_t, util::PairHash>
      frequent_premise_count;
  std::size_t selected_occurrences = 0;
  for (const auto& [key, stat] : premise_stats) {
    if (is_frequent(stat.example_count)) {
      frequent_premise_count.emplace(key, stat.example_count);
      selected_occurrences += stat.occurrences;
    }
  }

  // ---- Class frequencies (most-specific classes only, already reduced by
  // TrainingSet). ----
  std::unordered_map<ontology::ClassId, std::size_t> class_count;
  for (const TrainingExample& example : ts.examples()) {
    for (ontology::ClassId c : example.classes) ++class_count[c];
  }
  std::unordered_map<ontology::ClassId, std::size_t> frequent_class_count;
  for (const auto& [cls, count] : class_count) {
    if (is_frequent(count)) frequent_class_count.emplace(cls, count);
  }

  // ---- Pass 2: joint counts for frequent premises x frequent classes. ----
  std::unordered_map<PremiseKey, std::unordered_map<ontology::ClassId,
                                                    std::size_t>,
                     util::PairHash>
      joint_count;
  for (const TrainingExample& example : ts.examples()) {
    collect_example_premises(example, &example_premises,
                             /*count_occurrences=*/false);
    for (const PremiseKey& key : example_premises) {
      if (frequent_premise_count.find(key) == frequent_premise_count.end()) {
        continue;
      }
      auto& per_class = joint_count[key];
      for (ontology::ClassId c : example.classes) {
        if (frequent_class_count.find(c) != frequent_class_count.end()) {
          ++per_class[c];
        }
      }
    }
  }

  // ---- Rule construction. ----
  std::vector<ClassificationRule> rules;
  std::unordered_set<ontology::ClassId> conclusion_classes;
  for (const auto& [key, per_class] : joint_count) {
    for (const auto& [cls, joint] : per_class) {
      if (!is_frequent(joint)) continue;
      ClassificationRule rule;
      rule.property = key.first;
      rule.segment = key.second;
      rule.cls = cls;
      rule.counts.premise_count = frequent_premise_count.at(key);
      rule.counts.class_count = frequent_class_count.at(cls);
      rule.counts.joint_count = joint;
      rule.counts.total = ts.size();
      rule.ComputeMeasures();
      if (rule.confidence < options_.min_confidence) continue;
      conclusion_classes.insert(cls);
      rules.push_back(std::move(rule));
    }
  }

  if (stats != nullptr) {
    stats->num_examples = ts.size();
    stats->distinct_segments = distinct_segment_strings.size();
    stats->segment_occurrences = total_occurrences;
    stats->selected_segment_occurrences = selected_occurrences;
    stats->frequent_premises = frequent_premise_count.size();
    stats->frequent_classes = frequent_class_count.size();
    stats->num_rules = rules.size();
    stats->classes_with_rules = conclusion_classes.size();
  }

  return RuleSet(std::move(rules), ts.properties());
}

}  // namespace rulelink::core
