#include "core/learner.h"

#include <algorithm>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "util/hash.h"
#include "util/interner.h"
#include "util/thread_pool.h"

namespace rulelink::core {
namespace {

// Dense id of a distinct (property, segment) premise, local to one Learn()
// call. The counting passes index flat vectors with it instead of hashing
// string keys.
using PremiseId = std::uint32_t;

// Hash for the packed (property, segment) composite during premise-id
// assignment; Mix64 because both halves are dense low-entropy ids.
struct PackedHash {
  std::size_t operator()(std::uint64_t key) const {
    return static_cast<std::size_t>(util::Mix64(key));
  }
};

// The one-shot segmentation pass: every fact value is segmented exactly
// once (the string pipeline segmented each value three times), segments
// are interned to dense SegmentIds, and (property, segment) pairs to dense
// PremiseIds. Everything the counting passes need afterwards is the flat
// occurrence array below — no strings survive past this point.
struct SegmentedCorpus {
  util::StringInterner segments;       // all distinct segments (stat 7842)
  std::vector<std::uint64_t> premise_keys;  // PremiseId -> packed (p, a)
  std::vector<PremiseId> occurrences;  // concatenated per-example streams
  std::vector<std::size_t> offsets;    // example i: [offsets[i], offsets[i+1])

  std::size_t num_premises() const { return premise_keys.size(); }
};

}  // namespace

RuleLearner::RuleLearner(LearnerOptions options)
    : options_(std::move(options)) {}

util::Result<RuleSet> RuleLearner::Learn(const TrainingSet& ts,
                                         LearnStats* stats,
                                         obs::MetricsRegistry* metrics) const {
  const obs::MetricsRegistry::StageScope learn_stage(metrics, "learn");
  if (options_.segmenter == nullptr) {
    return util::InvalidArgumentError("LearnerOptions.segmenter is null");
  }
  if (!(options_.support_threshold > 0.0) ||
      options_.support_threshold >= 1.0) {
    return util::InvalidArgumentError(
        "support threshold must be in (0, 1)");
  }
  if (ts.size() == 0) {
    return util::InvalidArgumentError("empty training set");
  }

  // Strict '>' per the paper, via the shared predicate so every learner
  // agrees bit-for-bit at the boundary (see IsFrequentCount).
  const auto is_frequent = [&](std::size_t count) {
    return IsFrequentCount(count, options_.support_threshold, ts.size());
  };

  // Property selection P: empty means all.
  std::unordered_set<PropertyId> selected_properties;
  for (const std::string& name : options_.properties) {
    const PropertyId id = ts.properties().Find(name);
    if (id != kInvalidPropertyId) selected_properties.insert(id);
  }
  if (!options_.properties.empty() && selected_properties.empty()) {
    return util::InvalidArgumentError(
        "none of the selected properties occur in the training set");
  }
  const auto property_selected = [&](PropertyId p) {
    return options_.properties.empty() || selected_properties.count(p) > 0;
  };

  const auto& examples = ts.examples();
  const std::size_t num_examples = examples.size();

  // ---- Phase 0 (serial): segment + intern every selected fact value
  // once. Serial interning keeps SegmentId/PremiseId assignment a pure
  // function of the corpus, so every later pass — at any thread count —
  // sees identical ids.
  SegmentedCorpus corpus;
  std::unordered_map<std::uint64_t, PremiseId, PackedHash> premise_index;
  obs::Histogram segments_per_example;
  {
    const obs::MetricsRegistry::StageScope stage(metrics, "learn/segment");
    std::vector<std::string_view> seg_scratch;
    corpus.offsets.reserve(num_examples + 1);
    corpus.offsets.push_back(0);
    for (const TrainingExample& example : examples) {
      for (const auto& [property, value] : example.facts) {
        if (!property_selected(property)) continue;
        seg_scratch.clear();
        options_.segmenter->SegmentViews(value, &seg_scratch);
        for (std::string_view seg : seg_scratch) {
          const text::SegmentId seg_id = corpus.segments.Intern(seg);
          const std::uint64_t key = util::PackSymbolPair(property, seg_id);
          auto [it, inserted] = premise_index.try_emplace(
              key, static_cast<PremiseId>(corpus.premise_keys.size()));
          if (inserted) corpus.premise_keys.push_back(key);
          corpus.occurrences.push_back(it->second);
        }
      }
      if (metrics != nullptr) {
        segments_per_example.Observe(corpus.occurrences.size() -
                                     corpus.offsets.back());
      }
      corpus.offsets.push_back(corpus.occurrences.size());
    }
  }
  const std::size_t num_premises = corpus.num_premises();
  // One accumulator shard per morsel slot (slot-order merge below replays
  // the serial order). Coarse explicit morsels: every shard is an
  // O(num_premises) flat vector (and an O(premises x classes) grid in
  // pass 2), so the default ~16-slots-per-worker heuristic would make the
  // serial merge the dominant cost. Per-example work is uniform, so a few
  // hundred examples per morsel still balances well under stealing.
  constexpr std::size_t kExamplesPerMorsel = 512;
  const std::size_t num_shards = util::ParallelSlots(
      options_.num_threads, num_examples, kExamplesPerMorsel);

  // ---- Pass 1: per-premise example counts (distinct per example, as the
  // logical reading of the premise requires) and raw occurrence counts,
  // sharded over contiguous example ranges into flat per-shard vectors
  // that merge additively in any order.
  util::Stopwatch phase_timer;  // re-armed at every phase boundary below
  std::vector<std::vector<std::uint32_t>> example_count_shards(
      num_shards, std::vector<std::uint32_t>(num_premises, 0));
  std::vector<std::vector<std::uint32_t>> occurrence_shards(
      num_shards, std::vector<std::uint32_t>(num_premises, 0));
  util::ParallelFor(
      options_.num_threads, num_examples,
      [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        auto& example_count = example_count_shards[chunk];
        auto& occurrence_count = occurrence_shards[chunk];
        std::vector<PremiseId> distinct;  // reused per-example scratch
        for (std::size_t i = begin; i < end; ++i) {
          const auto first = corpus.occurrences.begin() +
                             static_cast<std::ptrdiff_t>(corpus.offsets[i]);
          const auto last = corpus.occurrences.begin() +
                            static_cast<std::ptrdiff_t>(corpus.offsets[i + 1]);
          for (auto it = first; it != last; ++it) ++occurrence_count[*it];
          distinct.assign(first, last);
          std::sort(distinct.begin(), distinct.end());
          distinct.erase(std::unique(distinct.begin(), distinct.end()),
                         distinct.end());
          for (PremiseId id : distinct) ++example_count[id];
        }
      },
      kExamplesPerMorsel);
  std::vector<std::uint32_t> premise_example_count =
      std::move(example_count_shards[0]);
  std::vector<std::uint32_t> premise_occurrences =
      std::move(occurrence_shards[0]);
  for (std::size_t s = 1; s < num_shards; ++s) {
    for (std::size_t p = 0; p < num_premises; ++p) {
      premise_example_count[p] += example_count_shards[s][p];
      premise_occurrences[p] += occurrence_shards[s][p];
    }
  }
  example_count_shards.clear();
  occurrence_shards.clear();

  // Frequent premises, remapped to a dense frequent-id space so the joint
  // pass can count into a flat (frequent premise) x (frequent class) grid.
  constexpr std::uint32_t kNotFrequent = 0xFFFFFFFFu;
  std::vector<std::uint32_t> frequent_id(num_premises, kNotFrequent);
  std::vector<PremiseId> frequent_premises;  // frequent id -> premise id
  std::size_t selected_occurrences = 0;
  for (std::size_t p = 0; p < num_premises; ++p) {
    if (is_frequent(premise_example_count[p])) {
      frequent_id[p] = static_cast<std::uint32_t>(frequent_premises.size());
      frequent_premises.push_back(static_cast<PremiseId>(p));
      selected_occurrences += premise_occurrences[p];
    }
  }
  if (metrics != nullptr) {
    metrics->RecordStage("learn/count_premises", phase_timer.ElapsedMillis());
    phase_timer.Restart();
  }

  // ---- Class frequencies (most-specific classes only, already reduced by
  // TrainingSet). ----
  using ClassCountMap = std::unordered_map<ontology::ClassId, std::size_t>;
  std::vector<ClassCountMap> class_shards(num_shards);
  util::ParallelFor(
      options_.num_threads, num_examples,
      [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        ClassCountMap& counts = class_shards[chunk];
        for (std::size_t i = begin; i < end; ++i) {
          for (ontology::ClassId c : examples[i].classes) ++counts[c];
        }
      },
      kExamplesPerMorsel);
  ClassCountMap class_count = std::move(class_shards[0]);
  for (std::size_t s = 1; s < num_shards; ++s) {
    for (const auto& [cls, count] : class_shards[s]) {
      class_count[cls] += count;
    }
  }
  class_shards.clear();

  // Frequent classes, dense-remapped (sorted by ClassId so the remap is
  // deterministic; the additive joint counts never depend on it anyway).
  std::vector<std::pair<ontology::ClassId, std::size_t>> frequent_classes;
  for (const auto& [cls, count] : class_count) {
    if (is_frequent(count)) frequent_classes.emplace_back(cls, count);
  }
  std::sort(frequent_classes.begin(), frequent_classes.end());
  std::unordered_map<ontology::ClassId, std::uint32_t> class_to_dense;
  class_to_dense.reserve(frequent_classes.size());
  for (std::size_t c = 0; c < frequent_classes.size(); ++c) {
    class_to_dense.emplace(frequent_classes[c].first,
                           static_cast<std::uint32_t>(c));
  }
  const std::size_t num_frequent_premises = frequent_premises.size();
  const std::size_t num_frequent_classes = frequent_classes.size();
  if (metrics != nullptr) {
    metrics->RecordStage("learn/count_classes", phase_timer.ElapsedMillis());
    phase_timer.Restart();
  }

  // ---- Pass 2: joint counts over the flat frequent grid. ----
  std::vector<std::vector<std::uint32_t>> joint_shards(
      num_shards, std::vector<std::uint32_t>(
                      num_frequent_premises * num_frequent_classes, 0));
  util::ParallelFor(
      options_.num_threads, num_examples,
      [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        auto& joint = joint_shards[chunk];
        std::vector<PremiseId> distinct;
        std::vector<std::uint32_t> dense_classes;
        for (std::size_t i = begin; i < end; ++i) {
          dense_classes.clear();
          for (ontology::ClassId c : examples[i].classes) {
            auto it = class_to_dense.find(c);
            if (it != class_to_dense.end()) dense_classes.push_back(it->second);
          }
          if (dense_classes.empty()) continue;
          const auto first = corpus.occurrences.begin() +
                             static_cast<std::ptrdiff_t>(corpus.offsets[i]);
          const auto last = corpus.occurrences.begin() +
                            static_cast<std::ptrdiff_t>(corpus.offsets[i + 1]);
          distinct.assign(first, last);
          std::sort(distinct.begin(), distinct.end());
          distinct.erase(std::unique(distinct.begin(), distinct.end()),
                         distinct.end());
          for (PremiseId id : distinct) {
            const std::uint32_t fid = frequent_id[id];
            if (fid == kNotFrequent) continue;
            const std::size_t row = fid * num_frequent_classes;
            for (std::uint32_t cid : dense_classes) ++joint[row + cid];
          }
        }
      },
      kExamplesPerMorsel);
  std::vector<std::uint32_t> joint_count = std::move(joint_shards[0]);
  for (std::size_t s = 1; s < num_shards; ++s) {
    for (std::size_t j = 0; j < joint_count.size(); ++j) {
      joint_count[j] += joint_shards[s][j];
    }
  }
  joint_shards.clear();
  if (metrics != nullptr) {
    metrics->RecordStage("learn/count_joint", phase_timer.ElapsedMillis());
    phase_timer.Restart();
  }

  // ---- Rule construction over the flat grid (serial; tiny vs counting).
  std::vector<ClassificationRule> rules;
  std::unordered_set<ontology::ClassId> conclusion_classes;
  for (std::size_t f = 0; f < num_frequent_premises; ++f) {
    const PremiseId premise = frequent_premises[f];
    const std::uint64_t key = corpus.premise_keys[premise];
    for (std::size_t c = 0; c < num_frequent_classes; ++c) {
      const std::uint32_t joint = joint_count[f * num_frequent_classes + c];
      if (!is_frequent(joint)) continue;
      ClassificationRule rule;
      rule.property = util::PackedHi(key);
      rule.segment = util::PackedLo(key);
      rule.cls = frequent_classes[c].first;
      rule.counts.premise_count = premise_example_count[premise];
      rule.counts.class_count = frequent_classes[c].second;
      rule.counts.joint_count = joint;
      rule.counts.total = ts.size();
      rule.ComputeMeasures();
      if (rule.confidence < options_.min_confidence) continue;
      conclusion_classes.insert(rule.cls);
      rules.push_back(std::move(rule));
    }
  }

  if (metrics != nullptr) {
    metrics->RecordStage("learn/emit_rules", phase_timer.ElapsedMillis());
    metrics->AddCounter("learn/examples", ts.size());
    metrics->AddCounter("learn/distinct_segments", corpus.segments.size());
    metrics->AddCounter("learn/segment_occurrences",
                        corpus.occurrences.size());
    metrics->AddCounter("learn/selected_segment_occurrences",
                        selected_occurrences);
    metrics->AddCounter("learn/frequent_premises", num_frequent_premises);
    metrics->AddCounter("learn/frequent_classes", num_frequent_classes);
    metrics->AddCounter("learn/rules_emitted", rules.size());
    metrics->AddCounter("learn/classes_with_rules",
                        conclusion_classes.size());
    metrics->MergeHistogram("learn/segments_per_example",
                            segments_per_example);
  }

  if (stats != nullptr) {
    stats->num_examples = ts.size();
    stats->distinct_segments = corpus.segments.size();
    stats->segment_occurrences = corpus.occurrences.size();
    stats->selected_segment_occurrences = selected_occurrences;
    stats->frequent_premises = num_frequent_premises;
    stats->frequent_classes = num_frequent_classes;
    stats->num_rules = rules.size();
    stats->classes_with_rules = conclusion_classes.size();
    stats->interner_symbols = corpus.segments.size();
    stats->interner_bytes = corpus.segments.arena_bytes();
  }

  return RuleSet(std::move(rules), ts.properties(), corpus.segments);
}

}  // namespace rulelink::core
