#include "core/rule_io.h"

#include <cmath>
#include <fstream>
#include <sstream>

#include "core/measures.h"
#include "util/interner.h"
#include "util/string_util.h"

namespace rulelink::core {
namespace {

// Segments may contain anything but tabs/newlines; escape those plus the
// escape character itself.
std::string EscapeField(std::string_view s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\t': out += "\\t"; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

util::Result<std::string> UnescapeField(std::string_view s) {
  std::string out;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\') {
      out.push_back(s[i]);
      continue;
    }
    if (i + 1 >= s.size()) {
      return util::InvalidArgumentError("dangling escape");
    }
    switch (s[++i]) {
      case '\\': out.push_back('\\'); break;
      case 't': out.push_back('\t'); break;
      case 'n': out.push_back('\n'); break;
      default:
        return util::InvalidArgumentError("unknown escape");
    }
  }
  return out;
}

}  // namespace

std::string WriteRules(const RuleSet& rules,
                       const ontology::Ontology& onto) {
  std::ostringstream os;
  os << "# rulelink classification rules v2\n"
     << "# property\tsegment\tclass\tpremise\tclass_count\tjoint\ttotal"
        "\tconfidence\tlift\n";
  for (const ClassificationRule& rule : rules.rules()) {
    os << EscapeField(rules.properties().name(rule.property)) << '\t'
       << EscapeField(rules.segment_text(rule)) << '\t'
       << EscapeField(onto.iri(rule.cls)) << '\t'
       << rule.counts.premise_count << '\t' << rule.counts.class_count
       << '\t' << rule.counts.joint_count << '\t' << rule.counts.total
       << '\t' << util::FormatDoubleRoundTrip(rule.confidence) << '\t'
       << util::FormatDoubleRoundTrip(rule.lift) << '\n';
  }
  return os.str();
}

util::Status WriteRulesToFile(const RuleSet& rules,
                              const ontology::Ontology& onto,
                              const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return util::NotFoundError("cannot open for writing: " + path);
  out << WriteRules(rules, onto);
  if (!out) return util::DataLossError("write failed: " + path);
  return util::OkStatus();
}

util::Result<RuleSet> ReadRules(const std::string& content,
                                const ontology::Ontology& onto) {
  PropertyCatalog properties;
  util::StringInterner segments;
  std::vector<ClassificationRule> rules;
  std::size_t line_no = 0;
  std::size_t start = 0;
  int version = 1;  // headerless files are read as v1
  while (start <= content.size()) {
    std::size_t end = content.find('\n', start);
    if (end == std::string::npos) end = content.size();
    ++line_no;
    const std::string_view raw(content.data() + start, end - start);
    start = end + 1;
    const std::string_view line = util::StripAsciiWhitespace(raw);
    if (line.empty() || line[0] == '#') {
      if (line == "# rulelink classification rules v2") version = 2;
      if (end == content.size()) break;
      continue;
    }
    const auto error = [&](const std::string& what) {
      return util::InvalidArgumentError(
          "rule file line " + std::to_string(line_no) + ": " + what);
    };
    const std::size_t expected_fields = version == 2 ? 9u : 7u;
    const auto fields = util::Split(line, '\t');
    if (fields.size() != expected_fields) {
      return error("expected " + std::to_string(expected_fields) +
                   " tab-separated fields, got " +
                   std::to_string(fields.size()));
    }
    auto property = UnescapeField(fields[0]);
    auto segment = UnescapeField(fields[1]);
    auto class_iri = UnescapeField(fields[2]);
    if (!property.ok() || !segment.ok() || !class_iri.ok()) {
      return error("bad escape sequence");
    }
    unsigned long long counts[4];
    for (int k = 0; k < 4; ++k) {
      if (!util::ParseUint64(fields[static_cast<std::size_t>(3 + k)],
                             &counts[k])) {
        return error("bad count field");
      }
    }
    const ontology::ClassId cls = onto.FindByIri(*class_iri);
    if (cls == ontology::kInvalidClassId) {
      return error("unknown class IRI " + *class_iri);
    }
    ClassificationRule rule;
    rule.property = properties.Intern(*property);
    rule.segment = segments.Intern(*segment);
    rule.cls = cls;
    rule.counts.premise_count = static_cast<std::size_t>(counts[0]);
    rule.counts.class_count = static_cast<std::size_t>(counts[1]);
    rule.counts.joint_count = static_cast<std::size_t>(counts[2]);
    rule.counts.total = static_cast<std::size_t>(counts[3]);
    if (!CountsAreConsistent(rule.counts)) {
      return error("inconsistent rule counts");
    }
    // Support is an exact division of the counts either way; v2 restores
    // confidence and lift bit-for-bit from the stored shortest-round-trip
    // doubles, v1 recomputes them.
    rule.ComputeMeasures();
    if (version == 2) {
      double confidence = 0.0;
      double lift = 0.0;
      if (!util::ParseDouble(fields[7], &confidence) ||
          !util::ParseDouble(fields[8], &lift)) {
        return error("bad measure field");
      }
      if (!(confidence >= 0.0 && confidence <= 1.0)) {
        return error("confidence out of [0, 1]");
      }
      if (!std::isfinite(lift) || lift < 0.0) {
        return error("negative or non-finite lift");
      }
      rule.confidence = confidence;
      rule.lift = lift;
    }
    rules.push_back(std::move(rule));
    if (end == content.size()) break;
  }
  return RuleSet(std::move(rules), std::move(properties), segments);
}

util::Result<RuleSet> ReadRulesFromFile(const std::string& path,
                                        const ontology::Ontology& onto) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return util::NotFoundError("cannot open file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return ReadRules(buf.str(), onto);
}

}  // namespace rulelink::core
