// Persistence for learnt rule sets: a line-oriented TSV format so a rule
// base learnt once from the expert links can be shipped with the catalog
// and reloaded when new provider documents arrive (§3's workflow).
//
// Format (tab-separated, '#' comments, one rule per line):
//   property-IRI  segment  class-IRI  premise  class_count  joint  total
// Measures are recomputed on load, so files stay minimal and consistent.
#ifndef RULELINK_CORE_RULE_IO_H_
#define RULELINK_CORE_RULE_IO_H_

#include <string>

#include "core/rule.h"
#include "ontology/ontology.h"
#include "util/status.h"

namespace rulelink::core {

// Serializes the rule set. Class ids are written as IRIs via `onto`.
std::string WriteRules(const RuleSet& rules, const ontology::Ontology& onto);
util::Status WriteRulesToFile(const RuleSet& rules,
                              const ontology::Ontology& onto,
                              const std::string& path);

// Parses a rule file. Class IRIs must resolve in `onto`; unknown IRIs,
// malformed lines, or inconsistent counts produce InvalidArgument with the
// line number.
util::Result<RuleSet> ReadRules(const std::string& content,
                                const ontology::Ontology& onto);
util::Result<RuleSet> ReadRulesFromFile(const std::string& path,
                                        const ontology::Ontology& onto);

}  // namespace rulelink::core

#endif  // RULELINK_CORE_RULE_IO_H_
