// Persistence for learnt rule sets: a line-oriented TSV format so a rule
// base learnt once from the expert links can be shipped with the catalog
// and reloaded when new provider documents arrive (§3's workflow).
//
// Format v2 (tab-separated, '#' comments, one rule per line):
//   property-IRI  segment  class-IRI  premise  class_count  joint  total
//   confidence  lift
// The two measure columns are shortest-round-trip doubles
// (util::FormatDoubleRoundTrip), so save -> load -> save is byte-identical
// and external tooling can consume the measures without recomputing them.
// Support is recomputed from the counts on load (an exact division).
//
// v1 files (7 columns, measures recomputed from the counts) still load;
// the version is taken from the "# rulelink classification rules vN"
// header line, defaulting to v1 when absent.
#ifndef RULELINK_CORE_RULE_IO_H_
#define RULELINK_CORE_RULE_IO_H_

#include <string>

#include "core/rule.h"
#include "ontology/ontology.h"
#include "util/status.h"

namespace rulelink::core {

// Serializes the rule set. Class ids are written as IRIs via `onto`.
std::string WriteRules(const RuleSet& rules, const ontology::Ontology& onto);
util::Status WriteRulesToFile(const RuleSet& rules,
                              const ontology::Ontology& onto,
                              const std::string& path);

// Parses a rule file. Class IRIs must resolve in `onto`; unknown IRIs,
// malformed lines, or inconsistent counts produce InvalidArgument with the
// line number.
util::Result<RuleSet> ReadRules(const std::string& content,
                                const ontology::Ontology& onto);
util::Result<RuleSet> ReadRulesFromFile(const std::string& path,
                                        const ontology::Ontology& onto);

}  // namespace rulelink::core

#endif  // RULELINK_CORE_RULE_IO_H_
