// Quality measures for classification rules (§4.2 of the paper). All
// measures are derived from the contingency counts of a rule over the
// training set TS:
//   premise_count  = |{X : p(X,Y) ∧ subsegment(Y,a)}|
//   class_count    = |{X : c(X)}|
//   joint_count    = |{X : p(X,Y) ∧ subsegment(Y,a) ∧ c(X)}|
//   total          = |TS|
#ifndef RULELINK_CORE_MEASURES_H_
#define RULELINK_CORE_MEASURES_H_

#include <cstddef>

namespace rulelink::core {

struct RuleCounts {
  std::size_t premise_count = 0;
  std::size_t class_count = 0;
  std::size_t joint_count = 0;
  std::size_t total = 0;
};

// support(R) = joint / total. Rule representativeness.
double Support(const RuleCounts& counts);

// confidence(R) = joint / premise. Rule precision irrespective of class
// proximity in the ontology. 0 when the premise never fires.
double Confidence(const RuleCounts& counts);

// lift(R) = confidence / (class_count / total). Deviation from premise ⊥
// conclusion independence; > 1 means the segment positively signals the
// class. The paper reads lift as a linking-space reduction factor: a lift
// of k shrinks the candidate space of a confidence-1 rule by ~k.
double Lift(const RuleCounts& counts);

// --- Additional measures from the quality-measures literature the paper
// cites (Guillet & Hamilton 2007), provided as extensions. ---

// coverage(R) = premise / total: how often the rule fires at all.
double Coverage(const RuleCounts& counts);

// specificity(R) = |¬premise ∧ ¬class| / |¬class|: true-negative rate.
double Specificity(const RuleCounts& counts);

// conviction(R) = (1 - prior) / (1 - confidence); +inf for confidence 1
// is clamped to kMaxConviction.
double Conviction(const RuleCounts& counts);
inline constexpr double kMaxConviction = 1e9;

// Validity check: counts are mutually consistent (joint <= premise,
// joint <= class_count, premise <= total, class_count <= total).
bool CountsAreConsistent(const RuleCounts& counts);

}  // namespace rulelink::core

#endif  // RULELINK_CORE_MEASURES_H_
