#include "core/training_set.h"

#include "rdf/vocab.h"

namespace rulelink::core {

PropertyId PropertyCatalog::Intern(const std::string& property) {
  auto it = name_to_id_.find(property);
  if (it != name_to_id_.end()) return it->second;
  const PropertyId id = static_cast<PropertyId>(names_.size());
  names_.push_back(property);
  name_to_id_.emplace(property, id);
  return id;
}

PropertyId PropertyCatalog::Find(const std::string& property) const {
  auto it = name_to_id_.find(property);
  return it == name_to_id_.end() ? kInvalidPropertyId : it->second;
}

void TrainingSet::AddExample(const Item& external,
                             const std::string& local_iri,
                             const std::vector<ontology::ClassId>& classes) {
  TrainingExample example;
  example.external_iri = external.iri;
  example.local_iri = local_iri;
  example.facts.reserve(external.facts.size());
  for (const auto& pv : external.facts) {
    example.facts.emplace_back(properties_.Intern(pv.property), pv.value);
  }
  example.classes = onto_->MostSpecific(classes);
  examples_.push_back(std::move(example));
}

util::Result<TrainingSet> TrainingSet::FromGraphs(
    const rdf::Graph& external, const rdf::Graph& links,
    const ontology::InstanceIndex& local_index, std::size_t* skipped) {
  TrainingSet ts(local_index.ontology());
  std::size_t skipped_count = 0;

  const auto& link_dict = links.dict();
  const rdf::TermId sameas_id = link_dict.FindIri(rdf::vocab::kOwlSameAs);
  if (sameas_id == rdf::kInvalidTermId) {
    return util::InvalidArgumentError(
        "link graph contains no owl:sameAs triples");
  }

  const auto& ext_dict = external.dict();
  for (const rdf::Triple& link : links.Match(rdf::TriplePattern{
           rdf::kInvalidTermId, sameas_id, rdf::kInvalidTermId})) {
    const rdf::Term& ext_term = link_dict.term(link.subject);
    const rdf::Term& local_term = link_dict.term(link.object);
    if (!ext_term.is_iri() || !local_term.is_iri()) {
      ++skipped_count;
      continue;
    }

    // External facts: every data-type (literal-valued) property.
    Item item;
    item.iri = ext_term.lexical();
    const rdf::TermId ext_subject = ext_dict.FindIri(item.iri);
    if (ext_subject != rdf::kInvalidTermId) {
      external.ForEachMatch(
          rdf::TriplePattern{ext_subject, rdf::kInvalidTermId,
                             rdf::kInvalidTermId},
          [&](const rdf::Triple& t) {
            const rdf::Term& obj = ext_dict.term(t.object);
            if (obj.is_literal()) {
              item.facts.push_back(PropertyValue{
                  ext_dict.term(t.predicate).lexical(), obj.lexical()});
            }
            return true;
          });
    }

    // Local classes, resolved by IRI through the index's source graph.
    const std::vector<ontology::ClassId>& classes =
        local_index.ClassesOfIri(local_term.lexical());

    if (item.facts.empty() || classes.empty()) {
      ++skipped_count;
      continue;
    }
    ts.AddExample(item, local_term.lexical(), classes);
  }
  if (skipped != nullptr) *skipped = skipped_count;
  return ts;
}

}  // namespace rulelink::core
