// The rule learning algorithm (Algorithm 1, §4.3): frequent-conjunction
// mining of p(X,Y) ∧ subsegment(Y,a) ⇒ c(X) rules over the training set.
//
// Counting semantics (one "count" = one training example / same-as link):
//   * premise_count(p,a) counts examples whose external item has SOME value
//     of p containing segment a (distinct per example, as the logical
//     reading of the premise requires);
//   * class_count(c) counts examples whose local item belongs to the
//     most-specific class c;
//   * joint_count(p,a,c) counts examples satisfying both.
// A conjunction is frequent when count / |TS| > th (strict, matching the
// paper's "frequency greater than th").
#ifndef RULELINK_CORE_LEARNER_H_
#define RULELINK_CORE_LEARNER_H_

#include <string>
#include <vector>

#include "core/rule.h"
#include "core/training_set.h"
#include "obs/metrics.h"
#include "text/segmenter.h"
#include "util/status.h"

namespace rulelink::core {

// The one frequency predicate every learner shares: a conjunction seen in
// `count` of `total` examples is frequent iff count / total > th — strict,
// matching the paper's "frequency greater than th". Stated as
// count > th * total (one multiply, no division) and kept in a single
// place so the batch, reference and incremental learners cannot drift at
// the boundary: count == th * total exactly (e.g. 2 of 8 at th = 0.25) is
// NOT frequent for all of them, bit-for-bit.
inline bool IsFrequentCount(std::size_t count, double support_threshold,
                            std::size_t total) {
  return static_cast<double>(count) >
         support_threshold * static_cast<double>(total);
}

struct LearnerOptions {
  // Support threshold th (relative to |TS|). The paper uses 0.002.
  double support_threshold = 0.002;

  // Segmentation scheme (borrowed pointer, must outlive Learn()).
  const text::Segmenter* segmenter = nullptr;

  // The expert-selected property set P (property IRIs). Empty = all
  // properties present in the training facts, as Algorithm 1 allows.
  std::vector<std::string> properties;

  // Optional post-filter: drop rules below this confidence. 0 keeps all.
  double min_confidence = 0.0;

  // Worker threads for the counting passes. 0 = hardware concurrency,
  // 1 = the serial code path (no pool). Every thread count produces
  // byte-identical rules, ordering and statistics: counting is sharded
  // over contiguous example ranges into per-worker maps that are merged
  // additively, and the RuleSet ordering is a total order.
  std::size_t num_threads = 0;
};

// Corpus statistics reported by the learner; these are the §5 in-text
// numbers (7842 distinct segments, 26077 occurrences, 7058 selected
// occurrences, 68 frequent classes, 144 rules, 16 classes with rules).
struct LearnStats {
  std::size_t num_examples = 0;
  std::size_t distinct_segments = 0;        // distinct segment strings
  std::size_t segment_occurrences = 0;      // total occurrences emitted
  std::size_t selected_segment_occurrences = 0;  // occurrences of frequent premises
  std::size_t frequent_premises = 0;        // (p,a) pairs above th
  std::size_t frequent_classes = 0;         // classes above th
  std::size_t num_rules = 0;
  std::size_t classes_with_rules = 0;       // distinct rule conclusions
  // Interned-pipeline internals (bench/diagnostics): symbol-table size and
  // arena footprint of the corpus segment interner built in phase 0.
  std::size_t interner_symbols = 0;
  std::size_t interner_bytes = 0;
};

class RuleLearner {
 public:
  explicit RuleLearner(LearnerOptions options);

  // Mines the rule set. Fails on an empty training set, a missing
  // segmenter, or a threshold outside (0, 1). `metrics`, when non-null,
  // gets the learner phase stages ("learn/segment", "learn/count_*",
  // "learn/emit_rules"), the corpus counters mirroring LearnStats and a
  // log2 histogram of per-example segment occurrences — all
  // thread-invariant, so snapshots are byte-identical at every
  // num_threads (DESIGN.md §5f).
  util::Result<RuleSet> Learn(const TrainingSet& ts,
                              LearnStats* stats = nullptr,
                              obs::MetricsRegistry* metrics = nullptr) const;

  const LearnerOptions& options() const { return options_; }

 private:
  LearnerOptions options_;
};

}  // namespace rulelink::core

#endif  // RULELINK_CORE_LEARNER_H_
