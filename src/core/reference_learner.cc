#include "core/reference_learner.h"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "util/hash.h"
#include "util/interner.h"
#include "util/thread_pool.h"

namespace rulelink::core {
namespace {

using PremiseKey = std::pair<PropertyId, std::string>;

struct PremiseStat {
  std::size_t example_count = 0;  // distinct examples whose value contains a
  std::size_t occurrences = 0;    // raw segment occurrences
};

// Per-worker accumulators of the counting passes, merged additively in
// chunk order (see learner.cc for the deterministic-parallelism contract).
struct PremiseShard {
  std::unordered_map<PremiseKey, PremiseStat, util::PairHash> premise_stats;
  std::unordered_set<std::string> distinct_segments;
  std::size_t total_occurrences = 0;
};

using ClassCountMap = std::unordered_map<ontology::ClassId, std::size_t>;
using JointCountMap =
    std::unordered_map<PremiseKey, ClassCountMap, util::PairHash>;

}  // namespace

util::Result<RuleSet> ReferenceLearn(const LearnerOptions& options,
                                     const TrainingSet& ts,
                                     LearnStats* stats) {
  if (options.segmenter == nullptr) {
    return util::InvalidArgumentError("LearnerOptions.segmenter is null");
  }
  if (!(options.support_threshold > 0.0) ||
      options.support_threshold >= 1.0) {
    return util::InvalidArgumentError(
        "support threshold must be in (0, 1)");
  }
  if (ts.size() == 0) {
    return util::InvalidArgumentError("empty training set");
  }

  const auto is_frequent = [&](std::size_t count) {
    return IsFrequentCount(count, options.support_threshold, ts.size());
  };

  std::unordered_set<PropertyId> selected_properties;
  for (const std::string& name : options.properties) {
    const PropertyId id = ts.properties().Find(name);
    if (id != kInvalidPropertyId) selected_properties.insert(id);
  }
  if (!options.properties.empty() && selected_properties.empty()) {
    return util::InvalidArgumentError(
        "none of the selected properties occur in the training set");
  }
  const auto property_selected = [&](PropertyId p) {
    return options.properties.empty() || selected_properties.count(p) > 0;
  };

  const auto& examples = ts.examples();
  const std::size_t num_examples = examples.size();
  // One map shard per morsel slot, merged in slot order after each pass.
  // Coarse explicit morsels: each shard carries whole string-keyed count
  // maps, so the merge cost scales with the slot count — same reasoning
  // as the interned learner's kExamplesPerMorsel.
  constexpr std::size_t kExamplesPerMorsel = 512;
  const std::size_t num_shards = util::ParallelSlots(
      options.num_threads, num_examples, kExamplesPerMorsel);

  const auto collect_example_premises =
      [&](const TrainingExample& example,
          std::unordered_set<PremiseKey, util::PairHash>* out) {
        out->clear();
        for (const auto& [property, value] : example.facts) {
          if (!property_selected(property)) continue;
          for (std::string& seg : options.segmenter->Segment(value)) {
            out->emplace(property, std::move(seg));
          }
        }
      };

  // ---- Pass 1: premise frequencies and segment statistics. ----
  std::vector<PremiseShard> shards(num_shards);
  util::ParallelFor(
      options.num_threads, num_examples,
      [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        PremiseShard& shard = shards[chunk];
        std::unordered_set<PremiseKey, util::PairHash> example_premises;
        for (std::size_t i = begin; i < end; ++i) {
          example_premises.clear();
          for (const auto& [property, value] : examples[i].facts) {
            if (!property_selected(property)) continue;
            for (std::string& seg : options.segmenter->Segment(value)) {
              ++shard.total_occurrences;
              shard.distinct_segments.insert(seg);
              example_premises.emplace(property, std::move(seg));
            }
          }
          for (const PremiseKey& key : example_premises) {
            ++shard.premise_stats[key].example_count;
          }
        }
      },
      kExamplesPerMorsel);

  std::unordered_map<PremiseKey, PremiseStat, util::PairHash> premise_stats =
      std::move(shards[0].premise_stats);
  std::unordered_set<std::string> distinct_segment_strings =
      std::move(shards[0].distinct_segments);
  std::size_t total_occurrences = shards[0].total_occurrences;
  for (std::size_t s = 1; s < num_shards; ++s) {
    for (auto& [key, stat] : shards[s].premise_stats) {
      PremiseStat& merged = premise_stats[key];
      merged.example_count += stat.example_count;
      merged.occurrences += stat.occurrences;
    }
    distinct_segment_strings.merge(shards[s].distinct_segments);
    total_occurrences += shards[s].total_occurrences;
  }
  shards.clear();

  // Raw occurrence counts per premise (for "selected occurrences").
  std::vector<std::unordered_map<PremiseKey, std::size_t, util::PairHash>>
      occurrence_shards(num_shards);
  util::ParallelFor(
      options.num_threads, num_examples,
      [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        auto& occurrences = occurrence_shards[chunk];
        for (std::size_t i = begin; i < end; ++i) {
          for (const auto& [property, value] : examples[i].facts) {
            if (!property_selected(property)) continue;
            for (std::string& seg : options.segmenter->Segment(value)) {
              ++occurrences[PremiseKey(property, std::move(seg))];
            }
          }
        }
      },
      kExamplesPerMorsel);
  for (auto& occurrences : occurrence_shards) {
    for (const auto& [key, count] : occurrences) {
      auto it = premise_stats.find(key);
      if (it != premise_stats.end()) it->second.occurrences += count;
    }
  }
  occurrence_shards.clear();

  std::unordered_map<PremiseKey, std::size_t, util::PairHash>
      frequent_premise_count;
  std::size_t selected_occurrences = 0;
  for (const auto& [key, stat] : premise_stats) {
    if (is_frequent(stat.example_count)) {
      frequent_premise_count.emplace(key, stat.example_count);
      selected_occurrences += stat.occurrences;
    }
  }

  // ---- Class frequencies. ----
  std::vector<ClassCountMap> class_shards(num_shards);
  util::ParallelFor(
      options.num_threads, num_examples,
      [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        ClassCountMap& counts = class_shards[chunk];
        for (std::size_t i = begin; i < end; ++i) {
          for (ontology::ClassId c : examples[i].classes) ++counts[c];
        }
      },
      kExamplesPerMorsel);
  ClassCountMap class_count = std::move(class_shards[0]);
  for (std::size_t s = 1; s < num_shards; ++s) {
    for (const auto& [cls, count] : class_shards[s]) {
      class_count[cls] += count;
    }
  }
  class_shards.clear();

  ClassCountMap frequent_class_count;
  for (const auto& [cls, count] : class_count) {
    if (is_frequent(count)) frequent_class_count.emplace(cls, count);
  }

  // ---- Pass 2: joint counts for frequent premises x frequent classes. ----
  std::vector<JointCountMap> joint_shards(num_shards);
  util::ParallelFor(
      options.num_threads, num_examples,
      [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        JointCountMap& joint = joint_shards[chunk];
        std::unordered_set<PremiseKey, util::PairHash> example_premises;
        for (std::size_t i = begin; i < end; ++i) {
          collect_example_premises(examples[i], &example_premises);
          for (const PremiseKey& key : example_premises) {
            if (frequent_premise_count.find(key) ==
                frequent_premise_count.end()) {
              continue;
            }
            auto& per_class = joint[key];
            for (ontology::ClassId c : examples[i].classes) {
              if (frequent_class_count.find(c) !=
                  frequent_class_count.end()) {
                ++per_class[c];
              }
            }
          }
        }
      },
      kExamplesPerMorsel);
  JointCountMap joint_count = std::move(joint_shards[0]);
  for (std::size_t s = 1; s < num_shards; ++s) {
    for (auto& [key, per_class] : joint_shards[s]) {
      ClassCountMap& merged = joint_count[key];
      for (const auto& [cls, count] : per_class) merged[cls] += count;
    }
  }
  joint_shards.clear();

  // ---- Rule construction. The rules' segment strings go through a local
  // interner (the only interned-model concession this port makes, since
  // ClassificationRule now carries SegmentId).
  util::StringInterner rule_segments;
  std::vector<ClassificationRule> rules;
  std::unordered_set<ontology::ClassId> conclusion_classes;
  for (const auto& [key, per_class] : joint_count) {
    for (const auto& [cls, joint] : per_class) {
      if (!is_frequent(joint)) continue;
      ClassificationRule rule;
      rule.property = key.first;
      rule.segment = rule_segments.Intern(key.second);
      rule.cls = cls;
      rule.counts.premise_count = frequent_premise_count.at(key);
      rule.counts.class_count = frequent_class_count.at(cls);
      rule.counts.joint_count = joint;
      rule.counts.total = ts.size();
      rule.ComputeMeasures();
      if (rule.confidence < options.min_confidence) continue;
      conclusion_classes.insert(cls);
      rules.push_back(std::move(rule));
    }
  }

  if (stats != nullptr) {
    stats->num_examples = ts.size();
    stats->distinct_segments = distinct_segment_strings.size();
    stats->segment_occurrences = total_occurrences;
    stats->selected_segment_occurrences = selected_occurrences;
    stats->frequent_premises = frequent_premise_count.size();
    stats->frequent_classes = frequent_class_count.size();
    stats->num_rules = rules.size();
    stats->classes_with_rules = conclusion_classes.size();
    stats->interner_symbols = 0;
    stats->interner_bytes = 0;
  }

  return RuleSet(std::move(rules), ts.properties(), rule_segments);
}

}  // namespace rulelink::core
