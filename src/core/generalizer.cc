#include "core/generalizer.h"

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/hash.h"
#include "util/interner.h"

namespace rulelink::core {
namespace {

// Packed (PropertyId, SegmentId) premise key (see util::PackSymbolPair).
struct PackedHash {
  std::size_t operator()(std::uint64_t key) const {
    return static_cast<std::size_t>(util::Mix64(key));
  }
};

// Ancestor-or-self classes of an example's most-specific classes, capped at
// `max_levels_up` levels above any asserted class.
std::vector<ontology::ClassId> WidenedClasses(
    const ontology::Ontology& onto,
    const std::vector<ontology::ClassId>& asserted,
    std::size_t max_levels_up) {
  std::unordered_set<ontology::ClassId> out;
  for (ontology::ClassId c : asserted) {
    out.insert(c);
    const std::size_t base_depth = onto.Depth(c);
    for (ontology::ClassId a : onto.Ancestors(c)) {
      const std::size_t levels = base_depth - onto.Depth(a);
      if (levels <= max_levels_up) out.insert(a);
    }
  }
  return {out.begin(), out.end()};
}

}  // namespace

util::Result<RuleSet> LearnGeneralizedRules(
    const TrainingSet& ts, const GeneralizerOptions& options) {
  if (options.segmenter == nullptr) {
    return util::InvalidArgumentError("GeneralizerOptions.segmenter is null");
  }
  if (!(options.support_threshold > 0.0) ||
      options.support_threshold >= 1.0) {
    return util::InvalidArgumentError("support threshold must be in (0, 1)");
  }
  if (ts.size() == 0) {
    return util::InvalidArgumentError("empty training set");
  }
  const ontology::Ontology& onto = ts.ontology();
  const double total = static_cast<double>(ts.size());
  const auto is_frequent = [&](std::size_t count) {
    return static_cast<double>(count) > options.support_threshold * total;
  };

  // Per-example premises (packed keys over a call-local interner) and
  // widened class sets, materialized once.
  util::StringInterner segments;
  std::vector<std::vector<std::uint64_t>> example_premises(ts.size());
  std::vector<std::vector<ontology::ClassId>> example_classes(ts.size());
  std::unordered_map<std::uint64_t, std::size_t, PackedHash> premise_count;
  std::unordered_map<ontology::ClassId, std::size_t> widened_class_count;

  std::vector<text::SegmentId> seg_scratch;
  for (std::size_t i = 0; i < ts.size(); ++i) {
    const TrainingExample& example = ts.examples()[i];
    std::vector<std::uint64_t>& premises = example_premises[i];
    for (const auto& [property, value] : example.facts) {
      seg_scratch.clear();
      options.segmenter->SegmentInto(value, &segments, &seg_scratch);
      for (const text::SegmentId seg : seg_scratch) {
        premises.push_back(util::PackSymbolPair(property, seg));
      }
    }
    std::sort(premises.begin(), premises.end());
    premises.erase(std::unique(premises.begin(), premises.end()),
                   premises.end());
    for (const std::uint64_t key : premises) ++premise_count[key];

    example_classes[i] =
        WidenedClasses(onto, example.classes, options.max_levels_up);
    for (ontology::ClassId c : example_classes[i]) ++widened_class_count[c];
  }

  // Joint counts restricted to frequent premises.
  std::unordered_map<std::uint64_t,
                     std::unordered_map<ontology::ClassId, std::size_t>,
                     PackedHash>
      joint;
  for (std::size_t i = 0; i < ts.size(); ++i) {
    for (const std::uint64_t key : example_premises[i]) {
      auto it = premise_count.find(key);
      if (it == premise_count.end() || !is_frequent(it->second)) continue;
      auto& per_class = joint[key];
      for (ontology::ClassId c : example_classes[i]) ++per_class[c];
    }
  }

  // Per premise: qualifying conclusions, reduced to the most specific.
  std::vector<ClassificationRule> rules;
  for (const auto& [key, per_class] : joint) {
    std::vector<ontology::ClassId> qualifying;
    std::unordered_map<ontology::ClassId, ClassificationRule> drafts;
    for (const auto& [cls, joint_count] : per_class) {
      if (!is_frequent(joint_count)) continue;
      ClassificationRule rule;
      rule.property = util::PackedHi(key);
      rule.segment = util::PackedLo(key);
      rule.cls = cls;
      rule.counts.premise_count = premise_count.at(key);
      rule.counts.class_count = widened_class_count.at(cls);
      rule.counts.joint_count = joint_count;
      rule.counts.total = ts.size();
      rule.ComputeMeasures();
      if (rule.confidence < options.min_confidence) continue;
      if (rule.lift <= options.min_lift) continue;
      qualifying.push_back(cls);
      drafts.emplace(cls, std::move(rule));
    }
    // Most specific qualifying conclusions only: a leaf that already
    // reaches the confidence bar suppresses its (also qualifying)
    // ancestors, which would only enlarge the subspace.
    for (ontology::ClassId cls : onto.MostSpecific(qualifying)) {
      rules.push_back(drafts.at(cls));
    }
  }

  return RuleSet(std::move(rules), ts.properties(), segments);
}

}  // namespace rulelink::core
