#include "core/incremental.h"

#include <algorithm>

#include "util/logging.h"

namespace rulelink::core {

IncrementalRuleLearner::IncrementalRuleLearner(
    const ontology::Ontology* onto, const text::Segmenter* segmenter,
    std::vector<std::string> properties)
    : onto_(onto),
      segmenter_(segmenter),
      selected_properties_(std::move(properties)) {
  RL_CHECK(onto_ != nullptr);
  RL_CHECK(segmenter_ != nullptr);
}

void IncrementalRuleLearner::AddExample(
    const Item& external, const std::vector<ontology::ClassId>& classes) {
  ++num_examples_;

  // Distinct (property, segment) premises of this example.
  std::unordered_set<PremiseKey, util::PairHash> premises;
  for (const PropertyValue& pv : external.facts) {
    if (!selected_properties_.empty() &&
        std::find(selected_properties_.begin(), selected_properties_.end(),
                  pv.property) == selected_properties_.end()) {
      continue;
    }
    const PropertyId property = properties_.Intern(pv.property);
    for (std::string& seg : segmenter_->Segment(pv.value)) {
      ++total_occurrences_;
      distinct_segments_.insert(seg);
      // Raw occurrences are tracked per premise as well, so the selected-
      // occurrence statistic matches the batch learner.
      premises.emplace(property, std::move(seg));
    }
  }
  // Second tally for occurrences per premise (the set above deduplicated).
  for (const PropertyValue& pv : external.facts) {
    if (!selected_properties_.empty() &&
        std::find(selected_properties_.begin(), selected_properties_.end(),
                  pv.property) == selected_properties_.end()) {
      continue;
    }
    const PropertyId property = properties_.Intern(pv.property);
    for (const std::string& seg : segmenter_->Segment(pv.value)) {
      ++premises_[{property, seg}].occurrences;
    }
  }

  const std::vector<ontology::ClassId> most_specific =
      onto_->MostSpecific(classes);
  for (ontology::ClassId c : most_specific) ++class_counts_[c];

  for (const PremiseKey& key : premises) {
    PremiseStat& stat = premises_[key];
    ++stat.example_count;
    for (ontology::ClassId c : most_specific) ++stat.joint[c];
  }
}

util::Result<RuleSet> IncrementalRuleLearner::BuildRules(
    double support_threshold, double min_confidence,
    LearnStats* stats) const {
  if (!(support_threshold > 0.0) || support_threshold >= 1.0) {
    return util::InvalidArgumentError("support threshold must be in (0, 1)");
  }
  if (num_examples_ == 0) {
    return util::InvalidArgumentError("no examples ingested");
  }
  const double total = static_cast<double>(num_examples_);
  const auto is_frequent = [&](std::size_t count) {
    return static_cast<double>(count) > support_threshold * total;
  };

  std::unordered_map<ontology::ClassId, std::size_t> frequent_classes;
  for (const auto& [cls, count] : class_counts_) {
    if (is_frequent(count)) frequent_classes.emplace(cls, count);
  }

  std::vector<ClassificationRule> rules;
  std::unordered_set<ontology::ClassId> conclusion_classes;
  std::size_t frequent_premises = 0;
  std::size_t selected_occurrences = 0;
  for (const auto& [key, stat] : premises_) {
    if (!is_frequent(stat.example_count)) continue;
    ++frequent_premises;
    selected_occurrences += stat.occurrences;
    for (const auto& [cls, joint] : stat.joint) {
      if (!is_frequent(joint)) continue;
      auto freq_it = frequent_classes.find(cls);
      if (freq_it == frequent_classes.end()) continue;
      ClassificationRule rule;
      rule.property = key.first;
      rule.segment = key.second;
      rule.cls = cls;
      rule.counts.premise_count = stat.example_count;
      rule.counts.class_count = freq_it->second;
      rule.counts.joint_count = joint;
      rule.counts.total = num_examples_;
      rule.ComputeMeasures();
      if (rule.confidence < min_confidence) continue;
      conclusion_classes.insert(cls);
      rules.push_back(std::move(rule));
    }
  }

  if (stats != nullptr) {
    stats->num_examples = num_examples_;
    stats->distinct_segments = distinct_segments_.size();
    stats->segment_occurrences = total_occurrences_;
    stats->selected_segment_occurrences = selected_occurrences;
    stats->frequent_premises = frequent_premises;
    stats->frequent_classes = frequent_classes.size();
    stats->num_rules = rules.size();
    stats->classes_with_rules = conclusion_classes.size();
  }
  return RuleSet(std::move(rules), properties_);
}

}  // namespace rulelink::core
