#include "core/incremental.h"

#include <algorithm>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "util/logging.h"

namespace rulelink::core {

IncrementalRuleLearner::IncrementalRuleLearner(
    const ontology::Ontology* onto, const text::Segmenter* segmenter,
    std::vector<std::string> properties)
    : onto_(onto),
      segmenter_(segmenter),
      selected_properties_(std::move(properties)) {
  RL_CHECK(onto_ != nullptr);
  RL_CHECK(segmenter_ != nullptr);
  // Intern the expert's P once: AddExample then resolves each fact's
  // property with one read-only Find instead of a linear scan over the
  // selected names per fact.
  for (const std::string& name : selected_properties_) {
    properties_.Intern(name);
  }
}

void IncrementalRuleLearner::AddExample(
    const Item& external, const std::vector<ontology::ClassId>& classes) {
  ++num_examples_;

  // One segmentation pass: every occurrence is interned and recorded as a
  // packed (property, segment) key; occurrences count every repetition,
  // the sorted-unique pass below gives the distinct-per-example premises.
  std::vector<std::uint64_t> keys;
  std::vector<SegmentId> seg_scratch;
  for (const PropertyValue& pv : external.facts) {
    PropertyId property;
    if (selected_properties_.empty()) {
      property = properties_.Intern(pv.property);
    } else {
      // P was interned at construction, so membership is the same hash
      // lookup that resolves the id.
      property = properties_.Find(pv.property);
      if (property == kInvalidPropertyId) continue;
    }
    seg_scratch.clear();
    segmenter_->SegmentInto(pv.value, &segments_, &seg_scratch);
    for (const SegmentId seg : seg_scratch) {
      keys.push_back(util::PackSymbolPair(property, seg));
    }
  }
  total_occurrences_ += keys.size();
  for (const std::uint64_t key : keys) ++premises_[key].occurrences;

  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());

  const std::vector<ontology::ClassId> most_specific =
      onto_->MostSpecific(classes);
  for (ontology::ClassId c : most_specific) ++class_counts_[c];

  for (const std::uint64_t key : keys) {
    PremiseStat& stat = premises_[key];
    ++stat.example_count;
    for (ontology::ClassId c : most_specific) ++stat.joint[c];
  }
}

util::Result<RuleSet> IncrementalRuleLearner::BuildRules(
    double support_threshold, double min_confidence,
    LearnStats* stats) const {
  if (!(support_threshold > 0.0) || support_threshold >= 1.0) {
    return util::InvalidArgumentError("support threshold must be in (0, 1)");
  }
  if (num_examples_ == 0) {
    return util::InvalidArgumentError("no examples ingested");
  }
  // The shared strict-'>' predicate (IsFrequentCount) keeps this learner
  // bit-identical to the batch RuleLearner at the support boundary.
  const auto is_frequent = [&](std::size_t count) {
    return IsFrequentCount(count, support_threshold, num_examples_);
  };

  std::unordered_map<ontology::ClassId, std::size_t> frequent_classes;
  for (const auto& [cls, count] : class_counts_) {
    if (is_frequent(count)) frequent_classes.emplace(cls, count);
  }

  std::vector<ClassificationRule> rules;
  std::unordered_set<ontology::ClassId> conclusion_classes;
  std::size_t frequent_premises = 0;
  std::size_t selected_occurrences = 0;
  for (const auto& [key, stat] : premises_) {
    if (!is_frequent(stat.example_count)) continue;
    ++frequent_premises;
    selected_occurrences += stat.occurrences;
    for (const auto& [cls, joint] : stat.joint) {
      if (!is_frequent(joint)) continue;
      auto freq_it = frequent_classes.find(cls);
      if (freq_it == frequent_classes.end()) continue;
      ClassificationRule rule;
      rule.property = util::PackedHi(key);
      rule.segment = util::PackedLo(key);
      rule.cls = cls;
      rule.counts.premise_count = stat.example_count;
      rule.counts.class_count = freq_it->second;
      rule.counts.joint_count = joint;
      rule.counts.total = num_examples_;
      rule.ComputeMeasures();
      if (rule.confidence < min_confidence) continue;
      conclusion_classes.insert(cls);
      rules.push_back(std::move(rule));
    }
  }

  if (stats != nullptr) {
    stats->num_examples = num_examples_;
    stats->distinct_segments = segments_.size();
    stats->segment_occurrences = total_occurrences_;
    stats->selected_segment_occurrences = selected_occurrences;
    stats->frequent_premises = frequent_premises;
    stats->frequent_classes = frequent_classes.size();
    stats->num_rules = rules.size();
    stats->classes_with_rules = conclusion_classes.size();
    stats->interner_symbols = segments_.size();
    stats->interner_bytes = segments_.arena_bytes();
  }
  // RuleSet re-interns compactly, so the returned set does not pin this
  // learner's (growing) symbol table.
  return RuleSet(std::move(rules), properties_, segments_);
}

}  // namespace rulelink::core
