// The training set TS: expert-validated same-as links between external and
// local items, flattened into learning examples. Each example carries the
// external item's property facts (the rule premises range over these) and
// the local item's most-specific ontology classes (the rule conclusions).
#ifndef RULELINK_CORE_TRAINING_SET_H_
#define RULELINK_CORE_TRAINING_SET_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "core/item.h"
#include "ontology/instance_index.h"
#include "ontology/ontology.h"
#include "rdf/graph.h"
#include "util/status.h"

namespace rulelink::core {

// Dense id for a property IRI, local to a TrainingSet / RuleSet.
using PropertyId = std::uint32_t;
inline constexpr PropertyId kInvalidPropertyId = 0xFFFFFFFFu;

// Interns property IRIs. Copyable so a RuleSet can own a snapshot.
class PropertyCatalog {
 public:
  PropertyId Intern(const std::string& property);
  PropertyId Find(const std::string& property) const;
  const std::string& name(PropertyId id) const { return names_[id]; }
  std::size_t size() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, PropertyId> name_to_id_;
};

// One same-as link flattened for learning.
struct TrainingExample {
  std::string external_iri;
  std::string local_iri;
  // (property, value) facts of the external item (TSE in the paper).
  std::vector<std::pair<PropertyId, std::string>> facts;
  // Most-specific classes of the local item in O_L.
  std::vector<ontology::ClassId> classes;
};

class TrainingSet {
 public:
  // `onto` must outlive the TrainingSet.
  explicit TrainingSet(const ontology::Ontology& onto) : onto_(&onto) {}

  TrainingSet(const TrainingSet&) = delete;
  TrainingSet& operator=(const TrainingSet&) = delete;
  TrainingSet(TrainingSet&&) = default;
  TrainingSet& operator=(TrainingSet&&) = default;

  // Adds one validated link. `external` supplies the facts; `classes` are
  // the local item's classes (reduced to most-specific internally).
  void AddExample(const Item& external, const std::string& local_iri,
                  const std::vector<ontology::ClassId>& classes);

  // Builds a TrainingSet from RDF sources: for every owl:sameAs triple in
  // `links` (external item as subject, local item as object), reads the
  // external item's data-type property facts from `external` and the local
  // item's classes from `local_index`. Links whose external item has no
  // facts or whose local item is untyped are skipped (counted in
  // *skipped when non-null).
  static util::Result<TrainingSet> FromGraphs(
      const rdf::Graph& external, const rdf::Graph& links,
      const ontology::InstanceIndex& local_index, std::size_t* skipped);

  const std::vector<TrainingExample>& examples() const { return examples_; }
  std::size_t size() const { return examples_.size(); }

  const ontology::Ontology& ontology() const { return *onto_; }
  const PropertyCatalog& properties() const { return properties_; }
  PropertyCatalog& mutable_properties() { return properties_; }

 private:
  const ontology::Ontology* onto_;
  PropertyCatalog properties_;
  std::vector<TrainingExample> examples_;
};

}  // namespace rulelink::core

#endif  // RULELINK_CORE_TRAINING_SET_H_
