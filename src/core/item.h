// Plain description of a data item as the learner and classifier see it:
// an identifier plus (data-type property, literal value) facts. External
// items carry no class information — that is what the rules predict.
#ifndef RULELINK_CORE_ITEM_H_
#define RULELINK_CORE_ITEM_H_

#include <string>
#include <vector>

namespace rulelink::core {

struct PropertyValue {
  std::string property;  // property IRI (or short name in tests)
  std::string value;     // literal lexical form

  friend bool operator==(const PropertyValue& a, const PropertyValue& b) {
    return a.property == b.property && a.value == b.value;
  }
};

struct Item {
  std::string iri;
  std::vector<PropertyValue> facts;

  // All values of `property` on this item.
  std::vector<std::string> ValuesOf(const std::string& property) const {
    std::vector<std::string> out;
    for (const auto& pv : facts) {
      if (pv.property == property) out.push_back(pv.value);
    }
    return out;
  }
};

}  // namespace rulelink::core

#endif  // RULELINK_CORE_ITEM_H_
