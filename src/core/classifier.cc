#include "core/classifier.h"

#include <algorithm>
#include <string_view>
#include <vector>

#include "util/interner.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace rulelink::core {

RuleClassifier::RuleClassifier(const RuleSet* rules,
                               const text::Segmenter* segmenter)
    : rules_(rules), segmenter_(segmenter) {
  RL_CHECK(rules_ != nullptr);
  RL_CHECK(segmenter_ != nullptr);
  for (const ClassificationRule& rule : rules_->rules()) {
    RL_DCHECK(rule.cls != ontology::kInvalidClassId);
    num_class_slots_ =
        std::max(num_class_slots_, static_cast<std::size_t>(rule.cls) + 1);
  }
}

std::vector<ClassPrediction> RuleClassifier::Classify(
    const Item& item, double min_confidence) const {
  // Distinct (property, segment) premises the item satisfies, as packed
  // (PropertyId, SegmentId) keys. Segments are resolved read-only against
  // the RuleSet's compact interner: a segment it has never seen cannot
  // fire any rule, so unknown segments are skipped (and the shared
  // interner is never mutated — concurrent Classify calls stay safe).
  const util::StringInterner& segments = rules_->segments();
  std::vector<std::uint64_t> premises;
  std::vector<std::string_view> seg_scratch;
  for (const auto& pv : item.facts) {
    const PropertyId property = rules_->properties().Find(pv.property);
    if (property == kInvalidPropertyId) continue;
    seg_scratch.clear();
    segmenter_->SegmentViews(pv.value, &seg_scratch);
    for (std::string_view seg : seg_scratch) {
      const SegmentId seg_id = segments.Find(seg);
      if (seg_id == kInvalidSegmentId) continue;
      premises.push_back(util::PackSymbolPair(property, seg_id));
    }
  }
  // Sorted-unique premise order makes the scan (and therefore the
  // rule_index chosen on exact (confidence, lift) ties) deterministic,
  // where the old string pipeline depended on hash iteration order.
  std::sort(premises.begin(), premises.end());
  premises.erase(std::unique(premises.begin(), premises.end()),
                 premises.end());

  // Fire rules; keep only the best rule per predicted class so identical
  // subspaces are not ranked twice. ClassIds are dense (interned by the
  // ontology), so best-per-class lives in a flat scratch vector indexed
  // by ClassId instead of a hash map — no hashing per fired rule, and the
  // scratch is reused across calls on the same thread. `touched` records
  // which slots were written so the reset is O(fired classes), not
  // O(num_class_slots_).
  struct ClassifyScratch {
    std::vector<ClassPrediction> best;        // slot c: best rule for class c
    std::vector<ontology::ClassId> touched;   // slots to reset afterwards
  };
  thread_local ClassifyScratch scratch;
  if (scratch.best.size() < num_class_slots_) {
    scratch.best.resize(num_class_slots_);
  }
  scratch.touched.clear();

  const auto& all_rules = rules_->rules();
  for (const std::uint64_t premise : premises) {
    for (std::size_t rule_index :
         rules_->RulesFor(util::PackedHi(premise), util::PackedLo(premise))) {
      const ClassificationRule& rule = all_rules[rule_index];
      if (rule.confidence < min_confidence) continue;
      ClassPrediction& cur = scratch.best[rule.cls];
      if (cur.cls == ontology::kInvalidClassId) {
        cur = ClassPrediction{rule.cls, rule.confidence, rule.lift,
                              rule_index};
        scratch.touched.push_back(rule.cls);
      } else if (rule.confidence > cur.confidence ||
                 (rule.confidence == cur.confidence &&
                  rule.lift > cur.lift)) {
        cur = ClassPrediction{rule.cls, rule.confidence, rule.lift,
                              rule_index};
      }
    }
  }

  std::vector<ClassPrediction> predictions;
  predictions.reserve(scratch.touched.size());
  for (const ontology::ClassId cls : scratch.touched) {
    predictions.push_back(scratch.best[cls]);
    scratch.best[cls] = ClassPrediction{};  // restore the sentinel
  }
  std::sort(predictions.begin(), predictions.end(),
            [](const ClassPrediction& a, const ClassPrediction& b) {
              if (a.confidence != b.confidence) {
                return a.confidence > b.confidence;
              }
              if (a.lift != b.lift) return a.lift > b.lift;
              return a.cls < b.cls;
            });
  return predictions;
}

std::vector<std::vector<ClassPrediction>> RuleClassifier::ClassifyBatch(
    const std::vector<Item>& items, double min_confidence,
    std::size_t num_threads) const {
  std::vector<std::vector<ClassPrediction>> results(items.size());
  util::ParallelFor(
      num_threads, items.size(),
      [&](std::size_t /*chunk*/, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          results[i] = Classify(items[i], min_confidence);
        }
      },
      /*items_per_morsel=*/64);  // write-by-index: fine morsels are free
  return results;
}

ontology::ClassId RuleClassifier::PredictClass(const Item& item,
                                               double min_confidence) const {
  const auto predictions = Classify(item, min_confidence);
  return predictions.empty() ? ontology::kInvalidClassId
                             : predictions.front().cls;
}

std::vector<ontology::ClassId> RuleClassifier::PredictClassBatch(
    const std::vector<Item>& items, double min_confidence,
    std::size_t num_threads) const {
  std::vector<ontology::ClassId> results(items.size(),
                                         ontology::kInvalidClassId);
  util::ParallelFor(
      num_threads, items.size(),
      [&](std::size_t /*chunk*/, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          results[i] = PredictClass(items[i], min_confidence);
        }
      },
      /*items_per_morsel=*/64);
  return results;
}

}  // namespace rulelink::core
