#include "core/classifier.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "util/hash.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace rulelink::core {

RuleClassifier::RuleClassifier(const RuleSet* rules,
                               const text::Segmenter* segmenter)
    : rules_(rules), segmenter_(segmenter) {
  RL_CHECK(rules_ != nullptr);
  RL_CHECK(segmenter_ != nullptr);
}

std::vector<ClassPrediction> RuleClassifier::Classify(
    const Item& item, double min_confidence) const {
  // Distinct (property, segment) premises the item satisfies.
  std::unordered_set<std::pair<PropertyId, std::string>, util::PairHash>
      premises;
  for (const auto& pv : item.facts) {
    const PropertyId property = rules_->properties().Find(pv.property);
    if (property == kInvalidPropertyId) continue;
    for (std::string& seg : segmenter_->Segment(pv.value)) {
      premises.emplace(property, std::move(seg));
    }
  }

  // Fire rules; keep only the best rule per predicted class so identical
  // subspaces are not ranked twice.
  std::unordered_map<ontology::ClassId, ClassPrediction> best_per_class;
  const auto& all_rules = rules_->rules();
  for (const auto& premise : premises) {
    for (std::size_t rule_index :
         rules_->RulesFor(premise.first, premise.second)) {
      const ClassificationRule& rule = all_rules[rule_index];
      if (rule.confidence < min_confidence) continue;
      ClassPrediction prediction{rule.cls, rule.confidence, rule.lift,
                                 rule_index};
      auto [it, inserted] = best_per_class.try_emplace(rule.cls, prediction);
      if (!inserted) {
        const ClassPrediction& cur = it->second;
        if (prediction.confidence > cur.confidence ||
            (prediction.confidence == cur.confidence &&
             prediction.lift > cur.lift)) {
          it->second = prediction;
        }
      }
    }
  }

  std::vector<ClassPrediction> predictions;
  predictions.reserve(best_per_class.size());
  for (const auto& [cls, prediction] : best_per_class) {
    predictions.push_back(prediction);
  }
  std::sort(predictions.begin(), predictions.end(),
            [](const ClassPrediction& a, const ClassPrediction& b) {
              if (a.confidence != b.confidence) {
                return a.confidence > b.confidence;
              }
              if (a.lift != b.lift) return a.lift > b.lift;
              return a.cls < b.cls;
            });
  return predictions;
}

std::vector<std::vector<ClassPrediction>> RuleClassifier::ClassifyBatch(
    const std::vector<Item>& items, double min_confidence,
    std::size_t num_threads) const {
  std::vector<std::vector<ClassPrediction>> results(items.size());
  util::ParallelFor(
      num_threads, items.size(),
      [&](std::size_t /*chunk*/, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          results[i] = Classify(items[i], min_confidence);
        }
      });
  return results;
}

ontology::ClassId RuleClassifier::PredictClass(const Item& item,
                                               double min_confidence) const {
  const auto predictions = Classify(item, min_confidence);
  return predictions.empty() ? ontology::kInvalidClassId
                             : predictions.front().cls;
}

std::vector<ontology::ClassId> RuleClassifier::PredictClassBatch(
    const std::vector<Item>& items, double min_confidence,
    std::size_t num_threads) const {
  std::vector<ontology::ClassId> results(items.size(),
                                         ontology::kInvalidClassId);
  util::ParallelFor(
      num_threads, items.size(),
      [&](std::size_t /*chunk*/, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          results[i] = PredictClass(items[i], min_confidence);
        }
      });
  return results;
}

}  // namespace rulelink::core
