#include "core/conjunctive.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "util/hash.h"
#include "util/logging.h"

namespace rulelink::core {

void ConjunctiveRule::ComputeMeasures() {
  support = Support(counts);
  confidence = Confidence(counts);
  lift = Lift(counts);
}

std::string ConjunctiveRuleToString(const ConjunctiveRule& rule,
                                    const PropertyCatalog& properties,
                                    const ontology::Ontology& onto) {
  std::string out;
  for (std::size_t i = 0; i < rule.premises.size(); ++i) {
    if (i) out += " ∧ ";
    const auto& premise = rule.premises[i];
    out += properties.name(premise.property) + "(X,Y" +
           std::to_string(i) + ") ∧ subsegment(Y" + std::to_string(i) +
           ",\"" + premise.segment + "\")";
  }
  const std::string cls = onto.label(rule.cls).empty()
                              ? onto.iri(rule.cls)
                              : onto.label(rule.cls);
  return out + " ⇒ " + cls + "(X)";
}

ConjunctiveRuleSet::ConjunctiveRuleSet(std::vector<ConjunctiveRule> rules,
                                       PropertyCatalog properties)
    : rules_(std::move(rules)), properties_(std::move(properties)) {
  std::sort(rules_.begin(), rules_.end(),
            [](const ConjunctiveRule& a, const ConjunctiveRule& b) {
              if (a.confidence != b.confidence) {
                return a.confidence > b.confidence;
              }
              if (a.lift != b.lift) return a.lift > b.lift;
              if (a.premises.size() != b.premises.size()) {
                return a.premises.size() > b.premises.size();
              }
              if (a.premises != b.premises) return a.premises < b.premises;
              return a.cls < b.cls;
            });
}

std::vector<ConjunctiveRuleSet::Prediction> ConjunctiveRuleSet::Classify(
    const Item& item, const text::Segmenter& segmenter,
    double min_confidence) const {
  std::set<ConjunctivePremise> held;
  for (const PropertyValue& pv : item.facts) {
    const PropertyId property = properties_.Find(pv.property);
    if (property == kInvalidPropertyId) continue;
    for (std::string& seg : segmenter.Segment(pv.value)) {
      held.insert(ConjunctivePremise{property, std::move(seg)});
    }
  }

  std::unordered_map<ontology::ClassId, Prediction> best;
  for (std::size_t r = 0; r < rules_.size(); ++r) {
    const ConjunctiveRule& rule = rules_[r];
    if (rule.confidence < min_confidence) continue;
    const bool fires = std::all_of(
        rule.premises.begin(), rule.premises.end(),
        [&](const ConjunctivePremise& p) { return held.count(p) > 0; });
    if (!fires) continue;
    // rules_ is sorted best-first, so the first hit per class wins.
    best.try_emplace(rule.cls,
                     Prediction{rule.cls, rule.confidence, rule.lift, r});
  }

  std::vector<Prediction> out;
  out.reserve(best.size());
  for (const auto& [cls, prediction] : best) out.push_back(prediction);
  std::sort(out.begin(), out.end(),
            [](const Prediction& a, const Prediction& b) {
              if (a.confidence != b.confidence) {
                return a.confidence > b.confidence;
              }
              if (a.lift != b.lift) return a.lift > b.lift;
              return a.cls < b.cls;
            });
  return out;
}

std::size_t ConjunctiveRuleSet::CountWithPremises(std::size_t n) const {
  std::size_t count = 0;
  for (const auto& rule : rules_) count += rule.premises.size() == n;
  return count;
}

util::Result<ConjunctiveRuleSet> LearnConjunctiveRules(
    const TrainingSet& ts, const ConjunctiveLearnerOptions& options) {
  if (options.segmenter == nullptr) {
    return util::InvalidArgumentError("segmenter is null");
  }
  if (!(options.support_threshold > 0.0) ||
      options.support_threshold >= 1.0) {
    return util::InvalidArgumentError("support threshold must be in (0, 1)");
  }
  if (ts.size() == 0) {
    return util::InvalidArgumentError("empty training set");
  }
  const double total = static_cast<double>(ts.size());
  const auto is_frequent = [&](std::size_t count) {
    return static_cast<double>(count) > options.support_threshold * total;
  };
  std::unordered_set<PropertyId> selected;
  for (const std::string& name : options.properties) {
    const PropertyId id = ts.properties().Find(name);
    if (id != kInvalidPropertyId) selected.insert(id);
  }
  const auto property_selected = [&](PropertyId p) {
    return options.properties.empty() || selected.count(p) > 0;
  };

  // ---- Pass 1: per-example premise sets; single-premise counts. ----
  std::vector<std::vector<ConjunctivePremise>> example_premises(ts.size());
  std::map<ConjunctivePremise, std::size_t> premise_count;
  for (std::size_t i = 0; i < ts.size(); ++i) {
    std::set<ConjunctivePremise> premises;
    for (const auto& [property, value] : ts.examples()[i].facts) {
      if (!property_selected(property)) continue;
      for (std::string& seg : options.segmenter->Segment(value)) {
        premises.insert(ConjunctivePremise{property, std::move(seg)});
      }
    }
    example_premises[i].assign(premises.begin(), premises.end());
    for (const ConjunctivePremise& p : example_premises[i]) {
      ++premise_count[p];
    }
  }

  // Class counts.
  std::unordered_map<ontology::ClassId, std::size_t> class_count;
  for (const TrainingExample& example : ts.examples()) {
    for (ontology::ClassId c : example.classes) ++class_count[c];
  }

  // ---- Pass 2: joint counts for single frequent premises and frequent
  // premise pairs. ----
  std::map<ConjunctivePremise,
           std::unordered_map<ontology::ClassId, std::size_t>>
      single_joint;
  using Pair = std::pair<ConjunctivePremise, ConjunctivePremise>;
  std::map<Pair, std::size_t> pair_count;
  std::map<Pair, std::unordered_map<ontology::ClassId, std::size_t>>
      pair_joint;

  for (std::size_t i = 0; i < ts.size(); ++i) {
    // Frequent premises of this example, capped for pairing.
    std::vector<ConjunctivePremise> frequent;
    for (const ConjunctivePremise& p : example_premises[i]) {
      if (is_frequent(premise_count.at(p))) frequent.push_back(p);
    }
    const auto& classes = ts.examples()[i].classes;
    for (const ConjunctivePremise& p : frequent) {
      auto& per_class = single_joint[p];
      for (ontology::ClassId c : classes) ++per_class[c];
    }
    if (frequent.size() > options.max_premises_per_example) {
      frequent.resize(options.max_premises_per_example);
    }
    for (std::size_t a = 0; a < frequent.size(); ++a) {
      for (std::size_t b = a + 1; b < frequent.size(); ++b) {
        const Pair key{frequent[a], frequent[b]};
        ++pair_count[key];
        auto& per_class = pair_joint[key];
        for (ontology::ClassId c : classes) ++per_class[c];
      }
    }
  }

  // ---- Emit rules. ----
  std::vector<ConjunctiveRule> rules;
  // Best single-premise confidence per (premise, class), for the gain test.
  std::map<std::pair<ConjunctivePremise, ontology::ClassId>, double>
      single_confidence;
  for (const auto& [premise, per_class] : single_joint) {
    for (const auto& [cls, joint] : per_class) {
      if (!is_frequent(joint)) continue;
      auto class_it = class_count.find(cls);
      if (class_it == class_count.end() || !is_frequent(class_it->second)) {
        continue;
      }
      ConjunctiveRule rule;
      rule.premises = {premise};
      rule.cls = cls;
      rule.counts.premise_count = premise_count.at(premise);
      rule.counts.class_count = class_it->second;
      rule.counts.joint_count = joint;
      rule.counts.total = ts.size();
      rule.ComputeMeasures();
      single_confidence[{premise, cls}] = rule.confidence;
      rules.push_back(std::move(rule));
    }
  }
  for (const auto& [pair, per_class] : pair_joint) {
    if (!is_frequent(pair_count.at(pair))) continue;
    for (const auto& [cls, joint] : per_class) {
      if (!is_frequent(joint)) continue;
      auto class_it = class_count.find(cls);
      if (class_it == class_count.end() || !is_frequent(class_it->second)) {
        continue;
      }
      ConjunctiveRule rule;
      rule.premises = {pair.first, pair.second};
      rule.cls = cls;
      rule.counts.premise_count = pair_count.at(pair);
      rule.counts.class_count = class_it->second;
      rule.counts.joint_count = joint;
      rule.counts.total = ts.size();
      rule.ComputeMeasures();
      // Occam gate: must beat both parents' confidence by the margin.
      double parent = 0.0;
      for (const ConjunctivePremise& p : rule.premises) {
        auto it = single_confidence.find({p, cls});
        if (it != single_confidence.end()) {
          parent = std::max(parent, it->second);
        }
      }
      if (rule.confidence < parent + options.min_confidence_gain) continue;
      rules.push_back(std::move(rule));
    }
  }
  return ConjunctiveRuleSet(std::move(rules), ts.properties());
}

}  // namespace rulelink::core
