// Linking-space accounting: how much of the naive |S_E| x |S_L| comparison
// space the learnt rules prune away (§3, §4.4, and the lift discussion in
// §5). The subspace of an external item is the union of the (transitive)
// extents of its predicted classes.
#ifndef RULELINK_CORE_LINKING_SPACE_H_
#define RULELINK_CORE_LINKING_SPACE_H_

#include <cstdint>
#include <vector>

#include "core/classifier.h"
#include "core/item.h"
#include "ontology/instance_index.h"

namespace rulelink::core {

// What to do with external items no rule fires on.
enum class UnclassifiedPolicy {
  kCompareAll,  // fall back to comparing against the whole local source
  kSkip,        // leave them for a later (manual) pass: zero pairs now
};

struct LinkingSpaceReport {
  std::size_t num_external_items = 0;
  std::size_t local_size = 0;  // |S_L|
  std::uint64_t naive_pairs = 0;    // |S_E| * |S_L|
  std::uint64_t reduced_pairs = 0;  // sum of per-item subspace sizes
  std::size_t classified_items = 0;
  std::size_t unclassified_items = 0;
  // 1 - reduced / naive (0 when naive is empty).
  double reduction_ratio = 0.0;
  // Mean over classified items of |subspace| / |S_L|; its inverse is the
  // per-item space division factor the paper derives from the lift.
  double mean_subspace_fraction = 0.0;
};

class LinkingSpaceAnalyzer {
 public:
  // Borrowed pointers; must outlive the analyzer. `local_index` provides
  // class extents over the local source; |S_L| is taken as the number of
  // typed local instances.
  LinkingSpaceAnalyzer(const RuleClassifier* classifier,
                       const ontology::InstanceIndex* local_index);

  // Size of the data-linking subspace of a single item: the number of
  // distinct local instances in the union of predicted class extents.
  // Returns |S_L| or 0 for unclassified items, depending on `policy`.
  std::size_t SubspaceSize(const Item& item, double min_confidence,
                           UnclassifiedPolicy policy) const;

  // The candidate local instances themselves, deduplicated, ordered by the
  // prediction ranking (instances of better-ranked classes first).
  std::vector<rdf::TermId> Candidates(const Item& item,
                                      double min_confidence) const;

  // Aggregates over a whole external source. The per-item classification
  // and subspace-union work is partitioned across `num_threads` workers
  // (0 = hardware concurrency, 1 = serial); the floating-point aggregation
  // is then reduced serially in item order, so the report is bit-identical
  // at every thread count.
  LinkingSpaceReport Analyze(const std::vector<Item>& external,
                             double min_confidence,
                             UnclassifiedPolicy policy,
                             std::size_t num_threads = 0) const;

 private:
  const RuleClassifier* classifier_;
  const ontology::InstanceIndex* local_index_;
};

}  // namespace rulelink::core

#endif  // RULELINK_CORE_LINKING_SPACE_H_
