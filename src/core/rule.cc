#include "core/rule.h"

#include <algorithm>

namespace rulelink::core {

void ClassificationRule::ComputeMeasures() {
  support = Support(counts);
  confidence = Confidence(counts);
  lift = Lift(counts);
}

bool ClassificationRule::BetterThan(const ClassificationRule& a,
                                    const ClassificationRule& b) {
  if (a.confidence != b.confidence) return a.confidence > b.confidence;
  if (a.lift != b.lift) return a.lift > b.lift;
  if (a.property != b.property) return a.property < b.property;
  if (a.segment != b.segment) return a.segment < b.segment;
  return a.cls < b.cls;
}

std::string RuleToString(const ClassificationRule& rule,
                         const PropertyCatalog& properties,
                         const ontology::Ontology& onto) {
  const std::string& prop = properties.name(rule.property);
  const std::string cls = onto.label(rule.cls).empty()
                              ? onto.iri(rule.cls)
                              : onto.label(rule.cls);
  return prop + "(X,Y) ∧ subsegment(Y,\"" + rule.segment + "\") ⇒ " + cls +
         "(X)";
}

RuleSet::RuleSet(std::vector<ClassificationRule> rules,
                 PropertyCatalog properties)
    : rules_(std::move(rules)), properties_(std::move(properties)) {
  std::sort(rules_.begin(), rules_.end(), ClassificationRule::BetterThan);
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    by_premise_[{rules_[i].property, rules_[i].segment}].push_back(i);
  }
}

const std::vector<std::size_t>& RuleSet::RulesFor(
    PropertyId property, const std::string& segment) const {
  auto it = by_premise_.find({property, segment});
  return it == by_premise_.end() ? empty_ : it->second;
}

std::vector<const ClassificationRule*> RuleSet::WithMinConfidence(
    double threshold) const {
  std::vector<const ClassificationRule*> out;
  for (const auto& rule : rules_) {
    if (rule.confidence >= threshold) out.push_back(&rule);
  }
  return out;
}

std::vector<const ClassificationRule*> RuleSet::InConfidenceBand(
    double lo, double hi) const {
  std::vector<const ClassificationRule*> out;
  for (const auto& rule : rules_) {
    if (rule.confidence >= lo && rule.confidence < hi) out.push_back(&rule);
  }
  return out;
}

}  // namespace rulelink::core
