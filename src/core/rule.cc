#include "core/rule.h"

#include <algorithm>

namespace rulelink::core {

void ClassificationRule::ComputeMeasures() {
  support = Support(counts);
  confidence = Confidence(counts);
  lift = Lift(counts);
}

bool ClassificationRule::BetterThan(const ClassificationRule& a,
                                    const ClassificationRule& b,
                                    const util::StringInterner& segments) {
  if (a.confidence != b.confidence) return a.confidence > b.confidence;
  if (a.lift != b.lift) return a.lift > b.lift;
  if (a.property != b.property) return a.property < b.property;
  if (a.segment != b.segment) {
    // Ids are first-occurrence ordered; the public ordering contract is
    // lexical on the segment string, independent of intern order.
    return segments.View(a.segment) < segments.View(b.segment);
  }
  return a.cls < b.cls;
}

std::string RuleToString(const ClassificationRule& rule, const RuleSet& set,
                         const ontology::Ontology& onto) {
  const std::string& prop = set.properties().name(rule.property);
  const std::string cls = onto.label(rule.cls).empty()
                              ? onto.iri(rule.cls)
                              : onto.label(rule.cls);
  return prop + "(X,Y) ∧ subsegment(Y,\"" +
         std::string(set.segment_text(rule)) + "\") ⇒ " + cls + "(X)";
}

RuleSet::RuleSet(std::vector<ClassificationRule> rules,
                 PropertyCatalog properties,
                 const util::StringInterner& segments)
    : rules_(std::move(rules)), properties_(std::move(properties)) {
  segments_.Reserve(rules_.size());
  for (ClassificationRule& rule : rules_) {
    rule.segment = segments_.Intern(segments.View(rule.segment));
  }
  std::sort(rules_.begin(), rules_.end(),
            [this](const ClassificationRule& a, const ClassificationRule& b) {
              return ClassificationRule::BetterThan(a, b, segments_);
            });
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    by_premise_[util::PackSymbolPair(rules_[i].property, rules_[i].segment)]
        .push_back(i);
  }
}

const std::vector<std::size_t>& RuleSet::RulesFor(PropertyId property,
                                                  SegmentId segment) const {
  auto it = by_premise_.find(util::PackSymbolPair(property, segment));
  return it == by_premise_.end() ? empty_ : it->second;
}

const std::vector<std::size_t>& RuleSet::RulesFor(
    PropertyId property, std::string_view segment) const {
  const SegmentId id = segments_.Find(segment);
  if (id == kInvalidSegmentId) return empty_;
  return RulesFor(property, id);
}

std::vector<const ClassificationRule*> RuleSet::WithMinConfidence(
    double threshold) const {
  std::vector<const ClassificationRule*> out;
  for (const auto& rule : rules_) {
    if (rule.confidence >= threshold) out.push_back(&rule);
  }
  return out;
}

std::vector<const ClassificationRule*> RuleSet::InConfidenceBand(
    double lo, double hi) const {
  std::vector<const ClassificationRule*> out;
  for (const auto& rule : rules_) {
    if (rule.confidence >= lo && rule.confidence < hi) out.push_back(&rule);
  }
  return out;
}

}  // namespace rulelink::core
