// RFC-4180-style CSV parsing: quoted fields, embedded separators, escaped
// quotes ("" inside quotes), CRLF/LF line endings. Provider catalogs are
// routinely delivered as CSV next to (or instead of) RDF, so ingestion is
// part of the linking substrate.
#ifndef RULELINK_IO_CSV_H_
#define RULELINK_IO_CSV_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace rulelink::io {

struct CsvTable {
  std::vector<std::string> header;             // empty if has_header=false
  std::vector<std::vector<std::string>> rows;  // all records

  // Column index by header name, or npos.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t ColumnIndex(std::string_view name) const;
};

struct CsvOptions {
  char separator = ',';
  bool has_header = true;
  // When true, rows shorter than the header are padded with empty fields
  // and longer rows are an error; when false, ragged rows pass through.
  bool enforce_width = true;
};

// Parses CSV content. Returns InvalidArgument with a line number on
// unterminated quotes or (with enforce_width) over-long rows.
util::Result<CsvTable> ParseCsv(std::string_view content,
                                const CsvOptions& options = CsvOptions());

util::Result<CsvTable> ParseCsvFile(const std::string& path,
                                    const CsvOptions& options = CsvOptions());

}  // namespace rulelink::io

#endif  // RULELINK_IO_CSV_H_
