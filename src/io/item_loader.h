// Loading core::Items from tabular provider files: one CSV row per item,
// one designated id column, every other mapped column becomes a
// (property, value) fact — the exact shape of the paper's provider
// documents (part-number + manufacturer name per product).
#ifndef RULELINK_IO_ITEM_LOADER_H_
#define RULELINK_IO_ITEM_LOADER_H_

#include <string>
#include <vector>

#include "core/item.h"
#include "io/csv.h"
#include "util/status.h"

namespace rulelink::io {

struct ItemCsvMapping {
  // Column holding the item identifier; combined with `iri_prefix` to form
  // the item IRI.
  std::string id_column;
  std::string iri_prefix;
  // column name -> property IRI. Empty = map every non-id column to a
  // property named "<property_prefix><column>".
  std::vector<std::pair<std::string, std::string>> columns;
  std::string property_prefix;
  // Skip facts with empty values (default) instead of emitting them.
  bool skip_empty_values = true;
};

// Converts a parsed CSV table into items. Fails when the id column (or a
// mapped column) is missing, or when an id value is empty or duplicated.
util::Result<std::vector<core::Item>> ItemsFromCsv(
    const CsvTable& table, const ItemCsvMapping& mapping);

// Convenience: parse + convert.
util::Result<std::vector<core::Item>> LoadItemsFromCsv(
    std::string_view content, const ItemCsvMapping& mapping,
    const CsvOptions& options = CsvOptions());

}  // namespace rulelink::io

#endif  // RULELINK_IO_ITEM_LOADER_H_
