#include "io/item_loader.h"

#include <unordered_set>

namespace rulelink::io {

util::Result<std::vector<core::Item>> ItemsFromCsv(
    const CsvTable& table, const ItemCsvMapping& mapping) {
  const std::size_t id_index = table.ColumnIndex(mapping.id_column);
  if (id_index == CsvTable::npos) {
    return util::InvalidArgumentError("CSV has no id column '" +
                                      mapping.id_column + "'");
  }

  // Resolve the (column index, property IRI) pairs.
  std::vector<std::pair<std::size_t, std::string>> columns;
  if (!mapping.columns.empty()) {
    for (const auto& [column, property] : mapping.columns) {
      const std::size_t index = table.ColumnIndex(column);
      if (index == CsvTable::npos) {
        return util::InvalidArgumentError("CSV has no column '" + column +
                                          "'");
      }
      columns.emplace_back(index, property);
    }
  } else {
    for (std::size_t i = 0; i < table.header.size(); ++i) {
      if (i == id_index) continue;
      columns.emplace_back(i, mapping.property_prefix + table.header[i]);
    }
  }

  std::vector<core::Item> items;
  items.reserve(table.rows.size());
  std::unordered_set<std::string> seen_ids;
  for (std::size_t r = 0; r < table.rows.size(); ++r) {
    const auto& row = table.rows[r];
    if (id_index >= row.size() || row[id_index].empty()) {
      return util::InvalidArgumentError(
          "CSV row " + std::to_string(r + 2) + ": empty id");
    }
    if (!seen_ids.insert(row[id_index]).second) {
      return util::InvalidArgumentError(
          "CSV row " + std::to_string(r + 2) + ": duplicate id '" +
          row[id_index] + "'");
    }
    core::Item item;
    item.iri = mapping.iri_prefix + row[id_index];
    for (const auto& [index, property] : columns) {
      if (index >= row.size()) continue;
      if (mapping.skip_empty_values && row[index].empty()) continue;
      item.facts.push_back(core::PropertyValue{property, row[index]});
    }
    items.push_back(std::move(item));
  }
  return items;
}

util::Result<std::vector<core::Item>> LoadItemsFromCsv(
    std::string_view content, const ItemCsvMapping& mapping,
    const CsvOptions& options) {
  auto table = ParseCsv(content, options);
  if (!table.ok()) return table.status();
  return ItemsFromCsv(*table, mapping);
}

}  // namespace rulelink::io
