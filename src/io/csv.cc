#include "io/csv.h"

#include <fstream>
#include <sstream>

namespace rulelink::io {

std::size_t CsvTable::ColumnIndex(std::string_view name) const {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return i;
  }
  return npos;
}

util::Result<CsvTable> ParseCsv(std::string_view content,
                                const CsvOptions& options) {
  std::vector<std::vector<std::string>> records;
  std::vector<std::string> record;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;  // any char consumed for the current record
  std::size_t line_no = 1;
  std::size_t quote_open_line = 0;  // line of the last unmatched opening quote

  const auto end_field = [&] {
    record.push_back(std::move(field));
    field.clear();
  };
  const auto end_record = [&] {
    end_field();
    records.push_back(std::move(record));
    record.clear();
    field_started = false;
  };

  for (std::size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < content.size() && content[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        if (c == '\n') ++line_no;
        field.push_back(c);
      }
      continue;
    }
    if (c == '"') {
      in_quotes = true;
      quote_open_line = line_no;
      field_started = true;
    } else if (c == options.separator) {
      end_field();
      field_started = true;
    } else if (c == '\r' && i + 1 < content.size() &&
               content[i + 1] == '\n') {
      // CRLF: the \r is part of the record terminator, not of the field;
      // the \n that follows ends the record. A \r NOT followed by \n is
      // ordinary field data and falls through to the default branch.
    } else if (c == '\n') {
      ++line_no;
      if (field_started || !field.empty() || !record.empty()) {
        end_record();
      }
    } else {
      field.push_back(c);
      field_started = true;
    }
  }
  if (in_quotes) {
    // Report where the offending quote opened, not the line the scan ended
    // on — a quoted field may span many physical lines, and the EOF line
    // number points nowhere near the actual mistake.
    return util::InvalidArgumentError(
        "CSV: unterminated quoted field (opened on line " +
        std::to_string(quote_open_line) + ")");
  }
  if (field_started || !field.empty() || !record.empty()) {
    end_record();
  }

  CsvTable table;
  std::size_t first_row = 0;
  if (options.has_header) {
    if (records.empty()) {
      return util::InvalidArgumentError("CSV: missing header row");
    }
    table.header = std::move(records[0]);
    first_row = 1;
  }
  for (std::size_t r = first_row; r < records.size(); ++r) {
    if (options.has_header && options.enforce_width) {
      if (records[r].size() > table.header.size()) {
        return util::InvalidArgumentError(
            "CSV: row " + std::to_string(r + 1) + " has " +
            std::to_string(records[r].size()) + " fields, header has " +
            std::to_string(table.header.size()));
      }
      records[r].resize(table.header.size());
    }
    table.rows.push_back(std::move(records[r]));
  }
  return table;
}

util::Result<CsvTable> ParseCsvFile(const std::string& path,
                                    const CsvOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return util::NotFoundError("cannot open file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseCsv(buf.str(), options);
}

}  // namespace rulelink::io
