#include "rdf/turtle_writer.h"

#include <set>
#include <sstream>

#include "rdf/vocab.h"
#include "util/string_util.h"

namespace rulelink::rdf {
namespace {

// A local name is safe for prefixed-name syntax when it is non-empty
// alphanumeric/underscore/dash (a conservative subset of PN_LOCAL).
bool SafeLocalName(std::string_view local) {
  if (local.empty()) return false;
  for (char c : local) {
    if (!util::IsAsciiAlnum(c) && c != '_' && c != '-') return false;
  }
  return true;
}

class Writer {
 public:
  Writer(const Graph& graph, const TurtleWriterOptions& options)
      : graph_(graph), options_(options) {
    prefixes_ = options.prefixes;
    prefixes_.emplace_back("rdf", vocab::kRdfNs);
    prefixes_.emplace_back("rdfs", vocab::kRdfsNs);
    prefixes_.emplace_back("owl", vocab::kOwlNs);
    prefixes_.emplace_back("xsd", vocab::kXsdNs);
  }

  std::string Run() {
    std::ostringstream os;
    for (const auto& [prefix, ns] : prefixes_) {
      if (used_prefix_.count(prefix) == 0 && !PrefixUsed(ns)) continue;
      os << "@prefix " << prefix << ": <" << ns << "> .\n";
    }
    os << "\n";

    // Group triples by subject in first-seen order.
    std::vector<TermId> subjects = graph_.DistinctSubjects();
    for (TermId subject : subjects) {
      // predicate -> objects, preserving insertion order.
      std::vector<std::pair<TermId, std::vector<TermId>>> predicates;
      graph_.ForEachMatch(
          TriplePattern{subject, kInvalidTermId, kInvalidTermId},
          [&](const Triple& t) {
            for (auto& [predicate, objects] : predicates) {
              if (predicate == t.predicate) {
                objects.push_back(t.object);
                return true;
              }
            }
            predicates.push_back({t.predicate, {t.object}});
            return true;
          });

      if (!options_.group) {
        for (const auto& [predicate, objects] : predicates) {
          for (TermId object : objects) {
            os << RenderTerm(subject) << " " << RenderPredicate(predicate)
               << " " << RenderTerm(object) << " .\n";
          }
        }
        continue;
      }
      os << RenderTerm(subject) << " ";
      for (std::size_t p = 0; p < predicates.size(); ++p) {
        if (p > 0) os << " ;\n    ";
        os << RenderPredicate(predicates[p].first) << " ";
        const auto& objects = predicates[p].second;
        for (std::size_t o = 0; o < objects.size(); ++o) {
          if (o > 0) os << " , ";
          os << RenderTerm(objects[o]);
        }
      }
      os << " .\n";
    }
    return os.str();
  }

 private:
  bool PrefixUsed(const std::string& ns) const {
    // Pre-scan: any IRI in the graph starting with ns and compactable.
    for (const Triple& t : graph_.triples()) {
      for (TermId id : {t.subject, t.predicate, t.object}) {
        const Term& term = graph_.dict().term(id);
        if (term.is_iri() && util::StartsWith(term.lexical(), ns) &&
            SafeLocalName(
                std::string_view(term.lexical()).substr(ns.size()))) {
          return true;
        }
      }
    }
    return false;
  }

  std::string Compact(const std::string& iri) {
    for (const auto& [prefix, ns] : prefixes_) {
      if (util::StartsWith(iri, ns) &&
          SafeLocalName(std::string_view(iri).substr(ns.size()))) {
        used_prefix_.insert(prefix);
        return prefix + ":" + iri.substr(ns.size());
      }
    }
    return "<" + iri + ">";
  }

  std::string RenderPredicate(TermId id) {
    const Term& term = graph_.dict().term(id);
    if (term.is_iri() && term.lexical() == vocab::kRdfType) return "a";
    return RenderTerm(id);
  }

  std::string RenderTerm(TermId id) {
    const Term& term = graph_.dict().term(id);
    switch (term.kind()) {
      case TermKind::kIri:
        return Compact(term.lexical());
      case TermKind::kBlankNode:
        return "_:" + term.lexical();
      case TermKind::kLiteral: {
        std::string out =
            "\"" + EscapeNTriplesString(term.lexical()) + "\"";
        if (!term.language().empty()) {
          out += "@" + term.language();
        } else if (!term.datatype().empty()) {
          out += "^^" + Compact(term.datatype());
        }
        return out;
      }
    }
    return "";
  }

  const Graph& graph_;
  const TurtleWriterOptions& options_;
  std::vector<std::pair<std::string, std::string>> prefixes_;
  std::set<std::string> used_prefix_;
};

}  // namespace

std::string WriteTurtle(const Graph& graph,
                        const TurtleWriterOptions& options) {
  return Writer(graph, options).Run();
}

}  // namespace rulelink::rdf
