// Set algebra over graphs: union, difference, intersection by triple
// value. The operational use case is diffing provider deliveries — what
// triples did the new file add or retract relative to the previous one —
// and merging multiple deliveries before learning.
#ifndef RULELINK_RDF_GRAPH_ALGEBRA_H_
#define RULELINK_RDF_GRAPH_ALGEBRA_H_

#include "rdf/graph.h"

namespace rulelink::rdf {

// Triples present in `a` or `b` (terms re-interned into the result).
Graph Union(const Graph& a, const Graph& b);

// Triples of `a` that are not in `b`.
Graph Difference(const Graph& a, const Graph& b);

// Triples present in both.
Graph Intersection(const Graph& a, const Graph& b);

// True when both graphs hold exactly the same triple set (dictionaries
// may differ).
bool Isomorphic(const Graph& a, const Graph& b);

// True when every triple of `a` is in `b`.
bool IsSubgraphOf(const Graph& a, const Graph& b);

}  // namespace rulelink::rdf

#endif  // RULELINK_RDF_GRAPH_ALGEBRA_H_
