// A small conjunctive (basic-graph-pattern) query engine over rdf::Graph —
// the SPARQL subset a data-linking pipeline actually needs: BGP joins with
// named variables, optional DISTINCT, LIMIT, and simple value filters.
//
//   Query query;
//   query.Add(Var("item"), Iri(rdf::vocab::kRdfType), Var("class"));
//   query.Add(Var("item"), Iri("...#partNumber"), Var("pn"));
//   auto rows = Evaluate(graph, query);   // each row binds item/class/pn
//
// Evaluation is backtracking join in pattern order with greedy
// most-selective-first reordering; bindings are TermIds into the graph's
// dictionary.
#ifndef RULELINK_RDF_QUERY_H_
#define RULELINK_RDF_QUERY_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "rdf/graph.h"
#include "util/status.h"

namespace rulelink::rdf {

// A query atom position: a constant term, or a named variable.
class QueryTerm {
 public:
  // Constant positions.
  static QueryTerm Constant(Term term);
  // Variable positions; names are case-sensitive, without the '?'.
  static QueryTerm Variable(std::string name);

  bool is_variable() const { return is_variable_; }
  const Term& term() const { return term_; }
  const std::string& name() const { return name_; }

 private:
  bool is_variable_ = false;
  Term term_;
  std::string name_;
};

// Convenience constructors mirroring SPARQL syntax.
inline QueryTerm Var(std::string name) {
  return QueryTerm::Variable(std::move(name));
}
inline QueryTerm Iri(std::string iri) {
  return QueryTerm::Constant(Term::Iri(std::move(iri)));
}
inline QueryTerm Lit(std::string lexical) {
  return QueryTerm::Constant(Term::Literal(std::move(lexical)));
}

struct QueryPattern {
  QueryTerm subject;
  QueryTerm predicate;
  QueryTerm object;
};

// A value filter applied to one variable once it is bound; returns true to
// keep the binding. Filters see the bound Term.
struct QueryFilter {
  std::string variable;
  std::function<bool(const Term&)> predicate;
};

class Query {
 public:
  Query& Add(QueryTerm subject, QueryTerm predicate, QueryTerm object);
  Query& Filter(std::string variable, std::function<bool(const Term&)> f);
  // Requires the two variables to bind to DIFFERENT terms (SPARQL's
  // FILTER(?a != ?b)); checked as soon as both are bound.
  Query& NotEqual(std::string a, std::string b);
  Query& Distinct(bool distinct = true);
  Query& Limit(std::size_t limit);

  const std::vector<QueryPattern>& patterns() const { return patterns_; }
  const std::vector<QueryFilter>& filters() const { return filters_; }
  const std::vector<std::pair<std::string, std::string>>& not_equal()
      const {
    return not_equal_;
  }
  bool distinct() const { return distinct_; }
  std::size_t limit() const { return limit_; }

  // Variable names in first-appearance order (the result row layout).
  std::vector<std::string> Variables() const;

 private:
  std::vector<QueryPattern> patterns_;
  std::vector<QueryFilter> filters_;
  std::vector<std::pair<std::string, std::string>> not_equal_;
  bool distinct_ = false;
  std::size_t limit_ = 0;  // 0 = unlimited
};

// One result row: variable name -> bound term id.
using Bindings = std::unordered_map<std::string, TermId>;

// Evaluates the query. Fails on an empty pattern list, a filter over a
// variable that no pattern mentions, or a pattern with no variable or
// constant (impossible by construction).
util::Result<std::vector<Bindings>> Evaluate(const Graph& graph,
                                             const Query& query);

// Number of result rows without materializing them (still applies
// DISTINCT/LIMIT semantics).
util::Result<std::size_t> Count(const Graph& graph, const Query& query);

}  // namespace rulelink::rdf

#endif  // RULELINK_RDF_QUERY_H_
