#include "rdf/turtle.h"

#include <fstream>
#include <sstream>
#include <unordered_map>

#include "util/string_util.h"

namespace rulelink::rdf {
namespace {

// Token kinds produced by the lexer.
enum class TokKind {
  kEof,
  kIri,          // <...> (unexpanded)
  kPrefixedName, // pfx:local or :local
  kLiteral,      // "..." with suffix fields
  kBlank,        // _:label
  kA,            // keyword 'a'
  kDot,
  kSemicolon,
  kComma,
  kPrefixDecl,   // @prefix or PREFIX
  kBaseDecl,     // @base or BASE
};

struct Token {
  TokKind kind = TokKind::kEof;
  std::string text;      // IRI body, prefixed name, literal lexical, label
  std::string language;  // literal @lang
  std::string datatype;  // literal ^^ datatype (raw: <iri> body or pfx:local)
  bool datatype_prefixed = false;
  std::size_t line = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view content) : content_(content) {}

  util::Result<Token> Next() {
    SkipWhitespaceAndComments();
    Token tok;
    tok.line = line_;
    if (AtEnd()) {
      tok.kind = TokKind::kEof;
      return tok;
    }
    const char c = Peek();
    if (c == '.') {
      ++pos_;
      tok.kind = TokKind::kDot;
      return tok;
    }
    if (c == ';') {
      ++pos_;
      tok.kind = TokKind::kSemicolon;
      return tok;
    }
    if (c == ',') {
      ++pos_;
      tok.kind = TokKind::kComma;
      return tok;
    }
    if (c == '<') return LexIri(&tok);
    if (c == '"' || c == '\'') return LexLiteral(&tok);
    if (c == '_') return LexBlank(&tok);
    if (c == '@') return LexAtKeyword(&tok);
    if (c == '[' || c == '(') {
      return Error("blank node property lists and collections are not "
                   "supported by this Turtle subset");
    }
    return LexNameOrKeyword(&tok);
  }

  std::size_t line() const { return line_; }

 private:
  bool AtEnd() const { return pos_ >= content_.size(); }
  char Peek() const { return content_[pos_]; }

  util::Status Error(const std::string& what) const {
    return util::InvalidArgumentError("Turtle line " + std::to_string(line_) +
                                      ": " + what);
  }

  void SkipWhitespaceAndComments() {
    while (!AtEnd()) {
      const char c = Peek();
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (c == ' ' || c == '\t' || c == '\r') {
        ++pos_;
      } else if (c == '#') {
        while (!AtEnd() && Peek() != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  util::Result<Token> LexIri(Token* tok) {
    const std::size_t close = content_.find('>', pos_ + 1);
    if (close == std::string_view::npos) return Error("unterminated IRI");
    tok->kind = TokKind::kIri;
    tok->text = std::string(content_.substr(pos_ + 1, close - pos_ - 1));
    pos_ = close + 1;
    return *tok;
  }

  util::Result<Token> LexLiteral(Token* tok) {
    const char quote = Peek();
    std::size_t i = pos_ + 1;
    std::string body;
    bool closed = false;
    while (i < content_.size()) {
      const char c = content_[i];
      if (c == '\\') {
        if (i + 1 >= content_.size()) return Error("dangling escape");
        const char e = content_[i + 1];
        switch (e) {
          case 't': body.push_back('\t'); break;
          case 'n': body.push_back('\n'); break;
          case 'r': body.push_back('\r'); break;
          case '"': body.push_back('"'); break;
          case '\'': body.push_back('\''); break;
          case '\\': body.push_back('\\'); break;
          default:
            return Error(std::string("unknown escape \\") + e);
        }
        i += 2;
        continue;
      }
      if (c == quote) {
        closed = true;
        ++i;
        break;
      }
      if (c == '\n') ++line_;
      body.push_back(c);
      ++i;
    }
    if (!closed) return Error("unterminated literal");
    pos_ = i;
    tok->kind = TokKind::kLiteral;
    tok->text = std::move(body);
    // Optional @lang / ^^datatype.
    if (!AtEnd() && Peek() == '@') {
      std::size_t end = pos_ + 1;
      while (end < content_.size() && (util::IsAsciiAlnum(content_[end]) ||
                                       content_[end] == '-')) {
        ++end;
      }
      tok->language = std::string(content_.substr(pos_ + 1, end - pos_ - 1));
      if (tok->language.empty()) return Error("empty language tag");
      pos_ = end;
    } else if (pos_ + 1 < content_.size() && Peek() == '^' &&
               content_[pos_ + 1] == '^') {
      pos_ += 2;
      if (AtEnd()) return Error("missing datatype");
      if (Peek() == '<') {
        const std::size_t close = content_.find('>', pos_ + 1);
        if (close == std::string_view::npos) {
          return Error("unterminated datatype IRI");
        }
        tok->datatype = std::string(content_.substr(pos_ + 1, close - pos_ - 1));
        pos_ = close + 1;
      } else {
        std::size_t end = pos_;
        while (end < content_.size() && !IsNameBreak(content_[end])) ++end;
        tok->datatype = std::string(content_.substr(pos_, end - pos_));
        tok->datatype_prefixed = true;
        if (tok->datatype.find(':') == std::string::npos) {
          return Error("datatype must be an IRI or prefixed name");
        }
        pos_ = end;
      }
    }
    return *tok;
  }

  util::Result<Token> LexBlank(Token* tok) {
    if (pos_ + 1 >= content_.size() || content_[pos_ + 1] != ':') {
      return Error("expected _: blank node");
    }
    std::size_t end = pos_ + 2;
    while (end < content_.size() && !IsNameBreak(content_[end])) ++end;
    tok->kind = TokKind::kBlank;
    tok->text = std::string(content_.substr(pos_ + 2, end - pos_ - 2));
    if (tok->text.empty()) return Error("empty blank node label");
    pos_ = end;
    return *tok;
  }

  util::Result<Token> LexAtKeyword(Token* tok) {
    std::size_t end = pos_ + 1;
    while (end < content_.size() && util::IsAsciiAlpha(content_[end])) ++end;
    const auto kw = content_.substr(pos_ + 1, end - pos_ - 1);
    pos_ = end;
    if (kw == "prefix") {
      tok->kind = TokKind::kPrefixDecl;
      return *tok;
    }
    if (kw == "base") {
      tok->kind = TokKind::kBaseDecl;
      return *tok;
    }
    return Error("unknown @-keyword: @" + std::string(kw));
  }

  util::Result<Token> LexNameOrKeyword(Token* tok) {
    std::size_t end = pos_;
    while (end < content_.size() && !IsNameBreak(content_[end])) ++end;
    auto word = content_.substr(pos_, end - pos_);
    pos_ = end;
    if (word == "a") {
      tok->kind = TokKind::kA;
      return *tok;
    }
    if (word == "PREFIX") {
      tok->kind = TokKind::kPrefixDecl;
      return *tok;
    }
    if (word == "BASE") {
      tok->kind = TokKind::kBaseDecl;
      return *tok;
    }
    if (word.find(':') != std::string_view::npos) {
      tok->kind = TokKind::kPrefixedName;
      tok->text = std::string(word);
      return *tok;
    }
    return Error("unexpected token: " + std::string(word));
  }

  static bool IsNameBreak(char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == ';' ||
           c == ',' || c == '#' || c == '"' || c == '<' ||
           c == '(' || c == ')' || c == '[' || c == ']';
  }

  std::string_view content_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
};

class Parser {
 public:
  Parser(std::string_view content, Graph* graph)
      : lexer_(content), graph_(graph) {}

  util::Status Run() {
    RL_RETURN_IF_ERROR(Advance());
    while (tok_.kind != TokKind::kEof) {
      if (tok_.kind == TokKind::kPrefixDecl) {
        RL_RETURN_IF_ERROR(ParsePrefixDecl());
      } else if (tok_.kind == TokKind::kBaseDecl) {
        RL_RETURN_IF_ERROR(ParseBaseDecl());
      } else {
        RL_RETURN_IF_ERROR(ParseStatement());
      }
    }
    return util::OkStatus();
  }

 private:
  util::Status Advance() {
    auto t = lexer_.Next();
    if (!t.ok()) return t.status();
    tok_ = std::move(t).value();
    return util::OkStatus();
  }

  util::Status Error(const std::string& what) const {
    return util::InvalidArgumentError(
        "Turtle line " + std::to_string(tok_.line) + ": " + what);
  }

  util::Status ExpectDot() {
    if (tok_.kind != TokKind::kDot) return Error("expected '.'");
    return Advance();
  }

  util::Status ParsePrefixDecl() {
    RL_RETURN_IF_ERROR(Advance());  // past @prefix
    if (tok_.kind != TokKind::kPrefixedName ||
        tok_.text.back() != ':') {
      return Error("expected prefix name ending in ':'");
    }
    const std::string prefix = tok_.text.substr(0, tok_.text.size() - 1);
    RL_RETURN_IF_ERROR(Advance());
    if (tok_.kind != TokKind::kIri) return Error("expected namespace IRI");
    prefixes_[prefix] = ResolveIri(tok_.text);
    RL_RETURN_IF_ERROR(Advance());
    // SPARQL-style PREFIX has no dot; @prefix requires one.
    if (tok_.kind == TokKind::kDot) RL_RETURN_IF_ERROR(Advance());
    return util::OkStatus();
  }

  util::Status ParseBaseDecl() {
    RL_RETURN_IF_ERROR(Advance());
    if (tok_.kind != TokKind::kIri) return Error("expected base IRI");
    base_ = tok_.text;
    RL_RETURN_IF_ERROR(Advance());
    if (tok_.kind == TokKind::kDot) RL_RETURN_IF_ERROR(Advance());
    return util::OkStatus();
  }

  std::string ResolveIri(const std::string& raw) const {
    // Resolve relative IRIs against @base when one is set. We only handle
    // the simple concatenation case (no ../ normalization).
    if (base_.empty() || raw.find("://") != std::string::npos) return raw;
    return base_ + raw;
  }

  util::Result<Term> ExpandPrefixedName(const std::string& pname) const {
    const std::size_t colon = pname.find(':');
    const std::string prefix = pname.substr(0, colon);
    const std::string local = pname.substr(colon + 1);
    auto it = prefixes_.find(prefix);
    if (it == prefixes_.end()) {
      return util::InvalidArgumentError("undeclared prefix '" + prefix + ":'");
    }
    return Term::Iri(it->second + local);
  }

  util::Result<Term> TokenToTerm(const Token& tok) const {
    switch (tok.kind) {
      case TokKind::kIri:
        return Term::Iri(ResolveIri(tok.text));
      case TokKind::kPrefixedName:
        return ExpandPrefixedName(tok.text);
      case TokKind::kBlank:
        return Term::BlankNode(tok.text);
      case TokKind::kLiteral: {
        if (!tok.language.empty()) {
          return Term::LangLiteral(tok.text, tok.language);
        }
        if (!tok.datatype.empty()) {
          if (tok.datatype_prefixed) {
            auto dt = ExpandPrefixedName(tok.datatype);
            if (!dt.ok()) return dt.status();
            return Term::TypedLiteral(tok.text, dt.value().lexical());
          }
          return Term::TypedLiteral(tok.text, ResolveIri(tok.datatype));
        }
        return Term::Literal(tok.text);
      }
      default:
        return util::InvalidArgumentError("expected an RDF term");
    }
  }

  util::Status ParseStatement() {
    auto subject = TokenToTerm(tok_);
    if (!subject.ok()) return Error(subject.status().message());
    if (subject.value().is_literal()) {
      return Error("literal in subject position");
    }
    RL_RETURN_IF_ERROR(Advance());

    for (;;) {  // predicate list
      Term predicate;
      if (tok_.kind == TokKind::kA) {
        predicate = Term::Iri(
            "http://www.w3.org/1999/02/22-rdf-syntax-ns#type");
      } else {
        auto p = TokenToTerm(tok_);
        if (!p.ok()) return Error(p.status().message());
        if (!p.value().is_iri()) return Error("predicate must be an IRI");
        predicate = std::move(p).value();
      }
      RL_RETURN_IF_ERROR(Advance());

      for (;;) {  // object list
        auto object = TokenToTerm(tok_);
        if (!object.ok()) return Error(object.status().message());
        graph_->Insert(subject.value(), predicate, object.value());
        RL_RETURN_IF_ERROR(Advance());
        if (tok_.kind == TokKind::kComma) {
          RL_RETURN_IF_ERROR(Advance());
          continue;
        }
        break;
      }
      if (tok_.kind == TokKind::kSemicolon) {
        RL_RETURN_IF_ERROR(Advance());
        // Allow trailing ';' before '.'
        if (tok_.kind == TokKind::kDot) break;
        continue;
      }
      break;
    }
    return ExpectDot();
  }

  Lexer lexer_;
  Graph* graph_;
  Token tok_;
  std::unordered_map<std::string, std::string> prefixes_;
  std::string base_;
};

}  // namespace

util::Status ParseTurtle(std::string_view content, Graph* graph) {
  return Parser(content, graph).Run();
}

util::Status ParseTurtleFile(const std::string& path, Graph* graph) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return util::NotFoundError("cannot open file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseTurtle(buf.str(), graph);
}

}  // namespace rulelink::rdf
