// Turtle serialization with prefix compaction and subject/predicate
// grouping — the human-readable counterpart of the N-Triples writer,
// producing output the Turtle-subset parser round-trips.
#ifndef RULELINK_RDF_TURTLE_WRITER_H_
#define RULELINK_RDF_TURTLE_WRITER_H_

#include <string>
#include <vector>

#include "rdf/graph.h"

namespace rulelink::rdf {

struct TurtleWriterOptions {
  // Prefix declarations to emit and compact with, as (prefix, namespace)
  // pairs; rdf/rdfs/owl/xsd are always available.
  std::vector<std::pair<std::string, std::string>> prefixes;
  // Group consecutive predicates of one subject with ';' and objects of
  // one predicate with ','.
  bool group = true;
};

// Serializes the graph as Turtle, deterministically (subjects in
// first-seen order, predicates/objects in insertion order).
std::string WriteTurtle(const Graph& graph,
                        const TurtleWriterOptions& options = {});

}  // namespace rulelink::rdf

#endif  // RULELINK_RDF_TURTLE_WRITER_H_
