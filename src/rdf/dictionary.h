// Term interning: maps Term values to dense 32-bit TermIds and back. All
// triple storage and all counting in the rule learner operate on ids, so
// string comparisons happen exactly once per distinct term.
#ifndef RULELINK_RDF_DICTIONARY_H_
#define RULELINK_RDF_DICTIONARY_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "rdf/term.h"

namespace rulelink::rdf {

class TermDictionary {
 public:
  TermDictionary();

  TermDictionary(const TermDictionary&) = delete;
  TermDictionary& operator=(const TermDictionary&) = delete;
  TermDictionary(TermDictionary&&) = default;
  TermDictionary& operator=(TermDictionary&&) = default;

  // Returns the id of `term`, interning it on first sight.
  TermId Intern(const Term& term);
  TermId Intern(Term&& term);

  // Convenience interners.
  TermId InternIri(std::string iri);
  TermId InternLiteral(std::string lexical);

  // Returns the id of `term` or kInvalidTermId when never interned.
  TermId Find(const Term& term) const;
  TermId FindIri(const std::string& iri) const;

  // Id -> term. `id` must be a valid id returned by this dictionary.
  const Term& term(TermId id) const;

  bool Contains(TermId id) const {
    return id != kInvalidTermId && id < terms_.size();
  }

  // Number of interned terms (excluding the reserved invalid slot).
  std::size_t size() const { return terms_.size() - 1; }

 private:
  std::vector<Term> terms_;                      // index = TermId
  std::unordered_map<Term, TermId> term_to_id_;
};

}  // namespace rulelink::rdf

#endif  // RULELINK_RDF_DICTIONARY_H_
