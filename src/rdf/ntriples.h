// N-Triples (W3C) parser and serializer. The parser accepts the line-based
// grammar: IRIs in angle brackets, blank nodes as _:label, literals with
// optional @lang or ^^<datatype>, '#' comments and blank lines.
#ifndef RULELINK_RDF_NTRIPLES_H_
#define RULELINK_RDF_NTRIPLES_H_

#include <iosfwd>
#include <string>
#include <string_view>

#include "rdf/graph.h"
#include "util/status.h"

namespace rulelink::rdf {

// Parses N-Triples content into `graph`. Returns InvalidArgument with a
// line number on the first syntax error.
util::Status ParseNTriples(std::string_view content, Graph* graph);

// Parses a file from disk.
util::Status ParseNTriplesFile(const std::string& path, Graph* graph);

// Parses a single N-Triples term (used by the parser and by tests).
util::Result<Term> ParseNTriplesTerm(std::string_view text);

// Parses the leading term of `text` (after optional whitespace), setting
// *consumed to the characters read. Building block shared with the
// N-Quads parser.
util::Result<Term> ParseLeadingTerm(std::string_view text,
                                    std::size_t* consumed);

// Serializes the whole graph as N-Triples, one triple per line, in
// insertion order (deterministic).
std::string WriteNTriples(const Graph& graph);
void WriteNTriples(const Graph& graph, std::ostream& os);

}  // namespace rulelink::rdf

#endif  // RULELINK_RDF_NTRIPLES_H_
