#include "rdf/term.h"

#include "util/hash.h"

namespace rulelink::rdf {

Term Term::Iri(std::string iri) {
  Term t;
  t.kind_ = TermKind::kIri;
  t.lexical_ = std::move(iri);
  return t;
}

Term Term::Literal(std::string lexical) {
  Term t;
  t.kind_ = TermKind::kLiteral;
  t.lexical_ = std::move(lexical);
  return t;
}

Term Term::TypedLiteral(std::string lexical, std::string datatype_iri) {
  Term t;
  t.kind_ = TermKind::kLiteral;
  t.lexical_ = std::move(lexical);
  t.datatype_ = std::move(datatype_iri);
  return t;
}

Term Term::LangLiteral(std::string lexical, std::string language) {
  Term t;
  t.kind_ = TermKind::kLiteral;
  t.lexical_ = std::move(lexical);
  t.language_ = std::move(language);
  return t;
}

Term Term::BlankNode(std::string label) {
  Term t;
  t.kind_ = TermKind::kBlankNode;
  t.lexical_ = std::move(label);
  return t;
}

std::string EscapeNTriplesString(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string Term::ToNTriples() const {
  switch (kind_) {
    case TermKind::kIri:
      return "<" + lexical_ + ">";
    case TermKind::kBlankNode:
      return "_:" + lexical_;
    case TermKind::kLiteral: {
      std::string out = "\"" + EscapeNTriplesString(lexical_) + "\"";
      if (!language_.empty()) {
        out += "@" + language_;
      } else if (!datatype_.empty()) {
        out += "^^<" + datatype_ + ">";
      }
      return out;
    }
  }
  return "";
}

bool operator<(const Term& a, const Term& b) {
  if (a.kind_ != b.kind_) return a.kind_ < b.kind_;
  if (a.lexical_ != b.lexical_) return a.lexical_ < b.lexical_;
  if (a.datatype_ != b.datatype_) return a.datatype_ < b.datatype_;
  return a.language_ < b.language_;
}

std::size_t Term::Hash() const {
  std::size_t h = static_cast<std::size_t>(kind_);
  h = util::HashCombine(h, util::Fnv1a64(lexical_));
  h = util::HashCombine(h, util::Fnv1a64(datatype_));
  h = util::HashCombine(h, util::Fnv1a64(language_));
  return h;
}

}  // namespace rulelink::rdf
