// Well-known RDF/RDFS/OWL/XSD vocabulary IRIs used throughout the library.
#ifndef RULELINK_RDF_VOCAB_H_
#define RULELINK_RDF_VOCAB_H_

namespace rulelink::rdf::vocab {

inline constexpr char kRdfNs[] = "http://www.w3.org/1999/02/22-rdf-syntax-ns#";
inline constexpr char kRdfsNs[] = "http://www.w3.org/2000/01/rdf-schema#";
inline constexpr char kOwlNs[] = "http://www.w3.org/2002/07/owl#";
inline constexpr char kXsdNs[] = "http://www.w3.org/2001/XMLSchema#";

inline constexpr char kRdfType[] =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
inline constexpr char kRdfsSubClassOf[] =
    "http://www.w3.org/2000/01/rdf-schema#subClassOf";
inline constexpr char kRdfsLabel[] =
    "http://www.w3.org/2000/01/rdf-schema#label";
inline constexpr char kRdfsComment[] =
    "http://www.w3.org/2000/01/rdf-schema#comment";
inline constexpr char kRdfsDomain[] =
    "http://www.w3.org/2000/01/rdf-schema#domain";
inline constexpr char kRdfsRange[] =
    "http://www.w3.org/2000/01/rdf-schema#range";
inline constexpr char kOwlClass[] = "http://www.w3.org/2002/07/owl#Class";
inline constexpr char kOwlThing[] = "http://www.w3.org/2002/07/owl#Thing";
inline constexpr char kOwlSameAs[] = "http://www.w3.org/2002/07/owl#sameAs";
inline constexpr char kOwlDisjointWith[] =
    "http://www.w3.org/2002/07/owl#disjointWith";
inline constexpr char kOwlDatatypeProperty[] =
    "http://www.w3.org/2002/07/owl#DatatypeProperty";
inline constexpr char kOwlObjectProperty[] =
    "http://www.w3.org/2002/07/owl#ObjectProperty";
inline constexpr char kXsdString[] =
    "http://www.w3.org/2001/XMLSchema#string";
inline constexpr char kXsdInteger[] =
    "http://www.w3.org/2001/XMLSchema#integer";
inline constexpr char kXsdDouble[] =
    "http://www.w3.org/2001/XMLSchema#double";

}  // namespace rulelink::rdf::vocab

#endif  // RULELINK_RDF_VOCAB_H_
