// N-Quads support: a Dataset keyed by named graph, used to keep the
// provenance §3 calls for ("linked pairs of data items are stored with
// their provenance information") — e.g. one named graph per provider
// delivery, each holding its owl:sameAs links.
#ifndef RULELINK_RDF_NQUADS_H_
#define RULELINK_RDF_NQUADS_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "rdf/graph.h"
#include "util/status.h"

namespace rulelink::rdf {

// A collection of graphs: the default graph under the empty name, named
// graphs under their IRI. Each graph owns its dictionary; cross-graph
// work goes through Terms.
class Dataset {
 public:
  Dataset() = default;
  Dataset(const Dataset&) = delete;
  Dataset& operator=(const Dataset&) = delete;
  Dataset(Dataset&&) = default;
  Dataset& operator=(Dataset&&) = default;

  Graph& DefaultGraph() { return graphs_[""]; }
  // Creates the named graph on first access.
  Graph& NamedGraph(const std::string& iri) { return graphs_[iri]; }

  // nullptr when the graph does not exist.
  const Graph* FindGraph(const std::string& iri) const;
  bool HasGraph(const std::string& iri) const {
    return graphs_.count(iri) > 0;
  }

  // Graph names in sorted order ("" first when the default graph exists).
  std::vector<std::string> GraphNames() const;

  std::size_t TotalTriples() const;

  // Merges every graph (default + named) into one graph, re-interning
  // terms. Provenance is lost; useful to feed merged links to consumers
  // that take a single graph.
  Graph Merged() const;

 private:
  std::map<std::string, Graph> graphs_;
};

// Parses N-Quads: like N-Triples with an optional fourth position (IRI of
// the named graph) before the final '.'.
util::Status ParseNQuads(std::string_view content, Dataset* dataset);
util::Status ParseNQuadsFile(const std::string& path, Dataset* dataset);

// Serializes the dataset as N-Quads (default-graph triples without a
// graph label), deterministically.
std::string WriteNQuads(const Dataset& dataset);

}  // namespace rulelink::rdf

#endif  // RULELINK_RDF_NQUADS_H_
