// RDF term model: IRIs, literals (with optional datatype IRI and language
// tag), and blank nodes. Terms are value types; graphs intern them into ids
// via TermDictionary.
#ifndef RULELINK_RDF_TERM_H_
#define RULELINK_RDF_TERM_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace rulelink::rdf {

enum class TermKind : std::uint8_t {
  kIri = 0,
  kLiteral = 1,
  kBlankNode = 2,
};

// Interned term identifier. Id 0 is reserved as "invalid / unbound".
using TermId = std::uint32_t;
inline constexpr TermId kInvalidTermId = 0;

class Term {
 public:
  // Factories -- the only way to build a Term.
  static Term Iri(std::string iri);
  static Term Literal(std::string lexical);
  static Term TypedLiteral(std::string lexical, std::string datatype_iri);
  static Term LangLiteral(std::string lexical, std::string language);
  static Term BlankNode(std::string label);

  Term() : kind_(TermKind::kIri) {}

  TermKind kind() const { return kind_; }
  bool is_iri() const { return kind_ == TermKind::kIri; }
  bool is_literal() const { return kind_ == TermKind::kLiteral; }
  bool is_blank() const { return kind_ == TermKind::kBlankNode; }

  // IRI string, literal lexical form, or blank node label depending on kind.
  const std::string& lexical() const { return lexical_; }
  // Datatype IRI; empty for plain literals and non-literals.
  const std::string& datatype() const { return datatype_; }
  // BCP-47 language tag; empty unless a language-tagged literal.
  const std::string& language() const { return language_; }

  // N-Triples serialization of this single term, with escaping.
  std::string ToNTriples() const;

  friend bool operator==(const Term& a, const Term& b) {
    return a.kind_ == b.kind_ && a.lexical_ == b.lexical_ &&
           a.datatype_ == b.datatype_ && a.language_ == b.language_;
  }
  friend bool operator!=(const Term& a, const Term& b) { return !(a == b); }

  // Total order: by kind, then lexical, datatype, language. Used by sorted
  // containers and for deterministic output.
  friend bool operator<(const Term& a, const Term& b);

  // Stable hash over all fields.
  std::size_t Hash() const;

 private:
  TermKind kind_;
  std::string lexical_;
  std::string datatype_;
  std::string language_;
};

// Escapes a string for embedding in an N-Triples literal or IRI.
std::string EscapeNTriplesString(std::string_view s);

}  // namespace rulelink::rdf

template <>
struct std::hash<rulelink::rdf::Term> {
  std::size_t operator()(const rulelink::rdf::Term& t) const {
    return t.Hash();
  }
};

#endif  // RULELINK_RDF_TERM_H_
