#include "rdf/ntriples.h"

#include <fstream>
#include <ostream>
#include <sstream>

#include "util/string_util.h"

namespace rulelink::rdf {
namespace {

// Cursor over one physical line.
struct LineCursor {
  std::string_view text;
  std::size_t pos = 0;

  bool AtEnd() const { return pos >= text.size(); }
  char Peek() const { return text[pos]; }

  void SkipWhitespace() {
    while (!AtEnd() && (text[pos] == ' ' || text[pos] == '\t')) ++pos;
  }
};

util::Status SyntaxError(std::size_t line_no, const std::string& what) {
  return util::InvalidArgumentError("N-Triples line " +
                                    std::to_string(line_no) + ": " + what);
}

// Decodes \-escapes inside an IRI or literal body.
util::Result<std::string> Unescape(std::string_view body) {
  std::string out;
  out.reserve(body.size());
  for (std::size_t i = 0; i < body.size(); ++i) {
    const char c = body[i];
    if (c != '\\') {
      out.push_back(c);
      continue;
    }
    if (i + 1 >= body.size()) {
      return util::Status(util::StatusCode::kInvalidArgument,
                          "dangling backslash escape");
    }
    const char e = body[++i];
    switch (e) {
      case 't': out.push_back('\t'); break;
      case 'n': out.push_back('\n'); break;
      case 'r': out.push_back('\r'); break;
      case '"': out.push_back('"'); break;
      case '\\': out.push_back('\\'); break;
      case 'u':
      case 'U': {
        const std::size_t len = (e == 'u') ? 4 : 8;
        if (i + len >= body.size()) {
          return util::Status(util::StatusCode::kInvalidArgument,
                              "truncated unicode escape");
        }
        std::uint32_t code = 0;
        for (std::size_t k = 1; k <= len; ++k) {
          const char h = body[i + k];
          code <<= 4;
          if (h >= '0' && h <= '9') code |= static_cast<std::uint32_t>(h - '0');
          else if (h >= 'a' && h <= 'f') code |= static_cast<std::uint32_t>(h - 'a' + 10);
          else if (h >= 'A' && h <= 'F') code |= static_cast<std::uint32_t>(h - 'A' + 10);
          else
            return util::Status(util::StatusCode::kInvalidArgument,
                                "bad hex digit in unicode escape");
        }
        i += len;
        // UTF-8 encode.
        if (code < 0x80) {
          out.push_back(static_cast<char>(code));
        } else if (code < 0x800) {
          out.push_back(static_cast<char>(0xC0 | (code >> 6)));
          out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        } else if (code < 0x10000) {
          out.push_back(static_cast<char>(0xE0 | (code >> 12)));
          out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
          out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        } else {
          out.push_back(static_cast<char>(0xF0 | (code >> 18)));
          out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
          out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
          out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        }
        break;
      }
      default:
        return util::Status(util::StatusCode::kInvalidArgument,
                            std::string("unknown escape \\") + e);
    }
  }
  return out;
}

// Parses one term starting at the cursor; advances past it.
util::Result<Term> ParseTermAt(LineCursor* cur) {
  cur->SkipWhitespace();
  if (cur->AtEnd()) {
    return util::Status(util::StatusCode::kInvalidArgument, "expected term");
  }
  const char c = cur->Peek();
  if (c == '<') {
    const std::size_t close = cur->text.find('>', cur->pos + 1);
    if (close == std::string_view::npos) {
      return util::Status(util::StatusCode::kInvalidArgument,
                          "unterminated IRI");
    }
    auto body = cur->text.substr(cur->pos + 1, close - cur->pos - 1);
    cur->pos = close + 1;
    auto unescaped = Unescape(body);
    if (!unescaped.ok()) return unescaped.status();
    return Term::Iri(std::move(unescaped).value());
  }
  if (c == '_') {
    if (cur->pos + 1 >= cur->text.size() || cur->text[cur->pos + 1] != ':') {
      return util::Status(util::StatusCode::kInvalidArgument,
                          "blank node must start with _:");
    }
    std::size_t end = cur->pos + 2;
    while (end < cur->text.size() && cur->text[end] != ' ' &&
           cur->text[end] != '\t') {
      ++end;
    }
    auto label = cur->text.substr(cur->pos + 2, end - cur->pos - 2);
    if (label.empty()) {
      return util::Status(util::StatusCode::kInvalidArgument,
                          "empty blank node label");
    }
    cur->pos = end;
    return Term::BlankNode(std::string(label));
  }
  if (c == '"') {
    // Find the closing quote, honoring escapes.
    std::size_t i = cur->pos + 1;
    bool escaped = false;
    while (i < cur->text.size()) {
      if (escaped) {
        escaped = false;
      } else if (cur->text[i] == '\\') {
        escaped = true;
      } else if (cur->text[i] == '"') {
        break;
      }
      ++i;
    }
    if (i >= cur->text.size()) {
      return util::Status(util::StatusCode::kInvalidArgument,
                          "unterminated literal");
    }
    auto body = cur->text.substr(cur->pos + 1, i - cur->pos - 1);
    cur->pos = i + 1;
    auto lexical = Unescape(body);
    if (!lexical.ok()) return lexical.status();
    // Optional @lang or ^^<datatype>.
    if (!cur->AtEnd() && cur->Peek() == '@') {
      std::size_t end = cur->pos + 1;
      while (end < cur->text.size() &&
             (util::IsAsciiAlnum(cur->text[end]) || cur->text[end] == '-')) {
        ++end;
      }
      auto lang = cur->text.substr(cur->pos + 1, end - cur->pos - 1);
      if (lang.empty()) {
        return util::Status(util::StatusCode::kInvalidArgument,
                            "empty language tag");
      }
      cur->pos = end;
      return Term::LangLiteral(std::move(lexical).value(), std::string(lang));
    }
    if (cur->pos + 1 < cur->text.size() && cur->Peek() == '^' &&
        cur->text[cur->pos + 1] == '^') {
      cur->pos += 2;
      if (cur->AtEnd() || cur->Peek() != '<') {
        return util::Status(util::StatusCode::kInvalidArgument,
                            "datatype must be an IRI");
      }
      const std::size_t close = cur->text.find('>', cur->pos + 1);
      if (close == std::string_view::npos) {
        return util::Status(util::StatusCode::kInvalidArgument,
                            "unterminated datatype IRI");
      }
      auto dt = cur->text.substr(cur->pos + 1, close - cur->pos - 1);
      cur->pos = close + 1;
      return Term::TypedLiteral(std::move(lexical).value(), std::string(dt));
    }
    return Term::Literal(std::move(lexical).value());
  }
  return util::Status(util::StatusCode::kInvalidArgument,
                      std::string("unexpected character '") + c + "'");
}

}  // namespace

util::Result<Term> ParseLeadingTerm(std::string_view text,
                                    std::size_t* consumed) {
  LineCursor cur{text};
  auto term = ParseTermAt(&cur);
  *consumed = cur.pos;
  return term;
}

util::Result<Term> ParseNTriplesTerm(std::string_view text) {
  LineCursor cur{text};
  auto term = ParseTermAt(&cur);
  if (!term.ok()) return term;
  cur.SkipWhitespace();
  if (!cur.AtEnd()) {
    return util::Status(util::StatusCode::kInvalidArgument,
                        "trailing characters after term");
  }
  return term;
}

util::Status ParseNTriples(std::string_view content, Graph* graph) {
  std::size_t line_no = 0;
  std::size_t start = 0;
  while (start <= content.size()) {
    std::size_t end = content.find('\n', start);
    if (end == std::string_view::npos) end = content.size();
    ++line_no;
    std::string_view raw = content.substr(start, end - start);
    start = end + 1;
    std::string_view line = util::StripAsciiWhitespace(raw);
    if (line.empty() || line[0] == '#') {
      if (end == content.size()) break;
      continue;
    }

    LineCursor cur{line};
    auto s = ParseTermAt(&cur);
    if (!s.ok()) return SyntaxError(line_no, s.status().message());
    if (s.value().is_literal()) {
      return SyntaxError(line_no, "literal in subject position");
    }
    auto p = ParseTermAt(&cur);
    if (!p.ok()) return SyntaxError(line_no, p.status().message());
    if (!p.value().is_iri()) {
      return SyntaxError(line_no, "predicate must be an IRI");
    }
    auto o = ParseTermAt(&cur);
    if (!o.ok()) return SyntaxError(line_no, o.status().message());

    cur.SkipWhitespace();
    if (cur.AtEnd() || cur.Peek() != '.') {
      return SyntaxError(line_no, "missing terminating '.'");
    }
    ++cur.pos;
    cur.SkipWhitespace();
    if (!cur.AtEnd() && cur.Peek() != '#') {
      return SyntaxError(line_no, "trailing characters after '.'");
    }
    graph->Insert(s.value(), p.value(), o.value());
    if (end == content.size()) break;
  }
  return util::OkStatus();
}

util::Status ParseNTriplesFile(const std::string& path, Graph* graph) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return util::NotFoundError("cannot open file: " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseNTriples(buf.str(), graph);
}

std::string WriteNTriples(const Graph& graph) {
  std::ostringstream os;
  WriteNTriples(graph, os);
  return os.str();
}

void WriteNTriples(const Graph& graph, std::ostream& os) {
  const auto& dict = graph.dict();
  for (const Triple& t : graph.triples()) {
    os << dict.term(t.subject).ToNTriples() << " "
       << dict.term(t.predicate).ToNTriples() << " "
       << dict.term(t.object).ToNTriples() << " .\n";
  }
}

}  // namespace rulelink::rdf
