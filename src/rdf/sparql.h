// Text front-end for the BGP query engine: parses the SPARQL subset the
// engine evaluates —
//
//   PREFIX ex: <http://example.org/>
//   SELECT DISTINCT ?item ?class WHERE {
//     ?item a ?class .
//     ?item ex:partNumber ?pn .
//   } LIMIT 10
//
// Supported: PREFIX declarations, SELECT with a variable list or '*',
// DISTINCT, WHERE with triple patterns (IRIs, prefixed names, literals
// with @lang / ^^datatype, variables, 'a'), FILTER regex(?v, "pat"[, "i"])
// and FILTER (?a != ?b), and LIMIT. Everything else (OPTIONAL, UNION,
// general FILTER expressions, property paths) is rejected with a clear
// error; arbitrary programmatic filters remain available on rdf::Query.
#ifndef RULELINK_RDF_SPARQL_H_
#define RULELINK_RDF_SPARQL_H_

#include <string>
#include <string_view>
#include <vector>

#include "rdf/query.h"
#include "util/status.h"

namespace rulelink::rdf {

struct ParsedSparql {
  Query query;
  // Projection: the SELECT list in order; empty means '*' (all variables
  // in first-appearance order).
  std::vector<std::string> projection;
};

util::Result<ParsedSparql> ParseSparql(std::string_view text);

// Convenience: parse and evaluate in one go, projecting the SELECT list.
// Each row holds the lexical forms (N-Triples serialization for IRIs and
// blank nodes, plain lexical for literals) of the projected variables.
util::Result<std::vector<std::vector<std::string>>> RunSparql(
    const Graph& graph, std::string_view text);

}  // namespace rulelink::rdf

#endif  // RULELINK_RDF_SPARQL_H_
