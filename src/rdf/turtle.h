// Turtle-subset parser. Supported syntax: @prefix / PREFIX declarations,
// @base / BASE, prefixed names, the 'a' keyword, predicate lists (';'),
// object lists (','), IRIs, blank node labels, and literals with @lang or
// ^^datatype (IRI or prefixed). Blank node property lists '[...]' and
// collections '(...)' are not supported and produce a clear error.
#ifndef RULELINK_RDF_TURTLE_H_
#define RULELINK_RDF_TURTLE_H_

#include <string>
#include <string_view>

#include "rdf/graph.h"
#include "util/status.h"

namespace rulelink::rdf {

util::Status ParseTurtle(std::string_view content, Graph* graph);
util::Status ParseTurtleFile(const std::string& path, Graph* graph);

}  // namespace rulelink::rdf

#endif  // RULELINK_RDF_TURTLE_H_
