// A triple of interned term ids. Plain data; meaning comes from the graph's
// dictionary.
#ifndef RULELINK_RDF_TRIPLE_H_
#define RULELINK_RDF_TRIPLE_H_

#include <cstddef>
#include <functional>

#include "rdf/term.h"
#include "util/hash.h"

namespace rulelink::rdf {

struct Triple {
  TermId subject = kInvalidTermId;
  TermId predicate = kInvalidTermId;
  TermId object = kInvalidTermId;

  friend bool operator==(const Triple& a, const Triple& b) {
    return a.subject == b.subject && a.predicate == b.predicate &&
           a.object == b.object;
  }
  friend bool operator<(const Triple& a, const Triple& b) {
    if (a.subject != b.subject) return a.subject < b.subject;
    if (a.predicate != b.predicate) return a.predicate < b.predicate;
    return a.object < b.object;
  }
};

struct TripleHash {
  std::size_t operator()(const Triple& t) const {
    std::size_t h = std::hash<TermId>()(t.subject);
    h = util::HashCombine(h, std::hash<TermId>()(t.predicate));
    h = util::HashCombine(h, std::hash<TermId>()(t.object));
    return h;
  }
};

}  // namespace rulelink::rdf

#endif  // RULELINK_RDF_TRIPLE_H_
