#include "rdf/graph.h"

#include <algorithm>

namespace rulelink::rdf {

bool Graph::Insert(const Triple& triple) {
  if (triple.subject == kInvalidTermId ||
      triple.predicate == kInvalidTermId ||
      triple.object == kInvalidTermId) {
    return false;
  }
  if (!triple_set_.insert(triple).second) return false;
  const auto idx = static_cast<std::uint32_t>(triples_.size());
  triples_.push_back(triple);
  by_subject_[triple.subject].push_back(idx);
  by_predicate_[triple.predicate].push_back(idx);
  by_object_[triple.object].push_back(idx);
  return true;
}

bool Graph::Insert(const Term& s, const Term& p, const Term& o) {
  return Insert(Triple{dict_.Intern(s), dict_.Intern(p), dict_.Intern(o)});
}

bool Graph::InsertIri(const std::string& s, const std::string& p,
                      const std::string& o) {
  return Insert(Triple{dict_.InternIri(s), dict_.InternIri(p),
                       dict_.InternIri(o)});
}

bool Graph::InsertLiteralTriple(const std::string& s, const std::string& p,
                                const std::string& literal) {
  return Insert(Triple{dict_.InternIri(s), dict_.InternIri(p),
                       dict_.InternLiteral(literal)});
}

bool Graph::Contains(const Triple& triple) const {
  return triple_set_.count(triple) > 0;
}

const Graph::PostingList* Graph::SubjectPostings(TermId id) const {
  auto it = by_subject_.find(id);
  return it == by_subject_.end() ? nullptr : &it->second;
}
const Graph::PostingList* Graph::PredicatePostings(TermId id) const {
  auto it = by_predicate_.find(id);
  return it == by_predicate_.end() ? nullptr : &it->second;
}
const Graph::PostingList* Graph::ObjectPostings(TermId id) const {
  auto it = by_object_.find(id);
  return it == by_object_.end() ? nullptr : &it->second;
}

const Graph::PostingList* Graph::ChoosePostings(const TriplePattern& pattern,
                                                bool* miss) const {
  *miss = false;
  const PostingList* best = nullptr;
  const auto consider = [&](TermId bound, const PostingList* list) {
    if (bound == kInvalidTermId) return;
    if (list == nullptr) {
      *miss = true;
      return;
    }
    if (best == nullptr || list->size() < best->size()) best = list;
  };
  consider(pattern.subject, SubjectPostings(pattern.subject));
  if (*miss) return nullptr;
  consider(pattern.predicate, PredicatePostings(pattern.predicate));
  if (*miss) return nullptr;
  consider(pattern.object, ObjectPostings(pattern.object));
  if (*miss) return nullptr;
  return best;
}

void Graph::ForEachMatch(const TriplePattern& pattern,
                         const std::function<bool(const Triple&)>& fn) const {
  bool miss = false;
  const PostingList* postings = ChoosePostings(pattern, &miss);
  if (miss) return;
  if (postings != nullptr) {
    for (std::uint32_t idx : *postings) {
      const Triple& t = triples_[idx];
      if (Matches(t, pattern) && !fn(t)) return;
    }
    return;
  }
  for (const Triple& t : triples_) {  // fully unbound: scan
    if (Matches(t, pattern) && !fn(t)) return;
  }
}

std::vector<Triple> Graph::Match(const TriplePattern& pattern) const {
  std::vector<Triple> out;
  ForEachMatch(pattern, [&](const Triple& t) {
    out.push_back(t);
    return true;
  });
  return out;
}

std::size_t Graph::EstimateMatches(const TriplePattern& pattern) const {
  bool miss = false;
  const PostingList* postings = ChoosePostings(pattern, &miss);
  if (miss) return 0;
  return postings == nullptr ? triples_.size() : postings->size();
}

std::size_t Graph::CountMatches(const TriplePattern& pattern) const {
  std::size_t n = 0;
  ForEachMatch(pattern, [&](const Triple&) {
    ++n;
    return true;
  });
  return n;
}

std::vector<TermId> Graph::Objects(TermId subject, TermId predicate) const {
  std::vector<TermId> out;
  ForEachMatch(TriplePattern{subject, predicate, kInvalidTermId},
               [&](const Triple& t) {
                 out.push_back(t.object);
                 return true;
               });
  return out;
}

std::vector<TermId> Graph::Subjects(TermId predicate, TermId object) const {
  std::vector<TermId> out;
  ForEachMatch(TriplePattern{kInvalidTermId, predicate, object},
               [&](const Triple& t) {
                 out.push_back(t.subject);
                 return true;
               });
  return out;
}

TermId Graph::FirstObject(TermId subject, TermId predicate) const {
  TermId found = kInvalidTermId;
  ForEachMatch(TriplePattern{subject, predicate, kInvalidTermId},
               [&](const Triple& t) {
                 found = t.object;
                 return false;
               });
  return found;
}

std::vector<TermId> Graph::DistinctSubjects() const {
  std::vector<TermId> out;
  std::unordered_set<TermId> seen;
  for (const Triple& t : triples_) {
    if (seen.insert(t.subject).second) out.push_back(t.subject);
  }
  return out;
}

std::vector<TermId> Graph::DistinctPredicates() const {
  std::vector<TermId> out;
  std::unordered_set<TermId> seen;
  for (const Triple& t : triples_) {
    if (seen.insert(t.predicate).second) out.push_back(t.predicate);
  }
  return out;
}

}  // namespace rulelink::rdf
