#include "rdf/nquads.h"

#include <fstream>
#include <sstream>

#include "rdf/ntriples.h"
#include "util/string_util.h"

namespace rulelink::rdf {

const Graph* Dataset::FindGraph(const std::string& iri) const {
  auto it = graphs_.find(iri);
  return it == graphs_.end() ? nullptr : &it->second;
}

std::vector<std::string> Dataset::GraphNames() const {
  std::vector<std::string> names;
  names.reserve(graphs_.size());
  for (const auto& [name, graph] : graphs_) names.push_back(name);
  return names;
}

std::size_t Dataset::TotalTriples() const {
  std::size_t total = 0;
  for (const auto& [name, graph] : graphs_) total += graph.size();
  return total;
}

Graph Dataset::Merged() const {
  Graph merged;
  for (const auto& [name, graph] : graphs_) {
    const auto& dict = graph.dict();
    for (const Triple& t : graph.triples()) {
      merged.Insert(dict.term(t.subject), dict.term(t.predicate),
                    dict.term(t.object));
    }
  }
  return merged;
}

util::Status ParseNQuads(std::string_view content, Dataset* dataset) {
  std::size_t line_no = 0;
  std::size_t start = 0;
  while (start <= content.size()) {
    std::size_t end = content.find('\n', start);
    if (end == std::string_view::npos) end = content.size();
    ++line_no;
    std::string_view raw = content.substr(start, end - start);
    start = end + 1;
    std::string_view line = util::StripAsciiWhitespace(raw);
    const auto error = [&](const std::string& what) {
      return util::InvalidArgumentError(
          "N-Quads line " + std::to_string(line_no) + ": " + what);
    };
    if (line.empty() || line[0] == '#') {
      if (end == content.size()) break;
      continue;
    }

    // Subject, predicate, object, then an optional graph IRI before '.'.
    Term terms[3];
    for (int k = 0; k < 3; ++k) {
      std::size_t consumed = 0;
      auto term = ParseLeadingTerm(line, &consumed);
      if (!term.ok()) return error(term.status().message());
      terms[k] = std::move(term).value();
      line = util::StripAsciiWhitespace(line.substr(consumed));
    }
    if (terms[0].is_literal()) return error("literal in subject position");
    if (!terms[1].is_iri()) return error("predicate must be an IRI");

    std::string graph_name;
    if (!line.empty() && line[0] != '.') {
      std::size_t consumed = 0;
      auto graph_term = ParseLeadingTerm(line, &consumed);
      if (!graph_term.ok()) return error(graph_term.status().message());
      if (!graph_term.value().is_iri()) {
        return error("graph label must be an IRI");
      }
      graph_name = graph_term.value().lexical();
      line = util::StripAsciiWhitespace(line.substr(consumed));
    }
    if (line.empty() || line[0] != '.') {
      return error("missing terminating '.'");
    }
    line = util::StripAsciiWhitespace(line.substr(1));
    if (!line.empty() && line[0] != '#') {
      return error("trailing characters after '.'");
    }

    Graph& graph = graph_name.empty() ? dataset->DefaultGraph()
                                      : dataset->NamedGraph(graph_name);
    graph.Insert(terms[0], terms[1], terms[2]);
    if (end == content.size()) break;
  }
  return util::OkStatus();
}

util::Status ParseNQuadsFile(const std::string& path, Dataset* dataset) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return util::NotFoundError("cannot open file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseNQuads(buf.str(), dataset);
}

std::string WriteNQuads(const Dataset& dataset) {
  std::ostringstream os;
  for (const std::string& name : dataset.GraphNames()) {
    const Graph* graph = dataset.FindGraph(name);
    const auto& dict = graph->dict();
    const std::string label =
        name.empty() ? "" : " " + Term::Iri(name).ToNTriples();
    for (const Triple& t : graph->triples()) {
      os << dict.term(t.subject).ToNTriples() << " "
         << dict.term(t.predicate).ToNTriples() << " "
         << dict.term(t.object).ToNTriples() << label << " .\n";
    }
  }
  return os.str();
}

}  // namespace rulelink::rdf
