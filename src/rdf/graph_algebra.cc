#include "rdf/graph_algebra.h"

namespace rulelink::rdf {
namespace {

// Maps a triple of `from` into `to`'s id space without interning new
// terms; any miss means the triple cannot exist in `to`.
bool MapTriple(const Graph& from, const Triple& t, const Graph& to,
               Triple* mapped) {
  mapped->subject = to.dict().Find(from.dict().term(t.subject));
  mapped->predicate = to.dict().Find(from.dict().term(t.predicate));
  mapped->object = to.dict().Find(from.dict().term(t.object));
  return mapped->subject != kInvalidTermId &&
         mapped->predicate != kInvalidTermId &&
         mapped->object != kInvalidTermId;
}

void CopyAll(const Graph& from, Graph* to) {
  for (const Triple& t : from.triples()) {
    to->Insert(from.dict().term(t.subject), from.dict().term(t.predicate),
               from.dict().term(t.object));
  }
}

}  // namespace

Graph Union(const Graph& a, const Graph& b) {
  Graph out;
  CopyAll(a, &out);
  CopyAll(b, &out);
  return out;
}

Graph Difference(const Graph& a, const Graph& b) {
  Graph out;
  for (const Triple& t : a.triples()) {
    Triple mapped;
    if (MapTriple(a, t, b, &mapped) && b.Contains(mapped)) continue;
    out.Insert(a.dict().term(t.subject), a.dict().term(t.predicate),
               a.dict().term(t.object));
  }
  return out;
}

Graph Intersection(const Graph& a, const Graph& b) {
  Graph out;
  for (const Triple& t : a.triples()) {
    Triple mapped;
    if (MapTriple(a, t, b, &mapped) && b.Contains(mapped)) {
      out.Insert(a.dict().term(t.subject), a.dict().term(t.predicate),
                 a.dict().term(t.object));
    }
  }
  return out;
}

bool IsSubgraphOf(const Graph& a, const Graph& b) {
  for (const Triple& t : a.triples()) {
    Triple mapped;
    if (!MapTriple(a, t, b, &mapped) || !b.Contains(mapped)) return false;
  }
  return true;
}

bool Isomorphic(const Graph& a, const Graph& b) {
  return a.size() == b.size() && IsSubgraphOf(a, b);
}

}  // namespace rulelink::rdf
