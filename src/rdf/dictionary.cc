#include "rdf/dictionary.h"

#include "util/logging.h"

namespace rulelink::rdf {

TermDictionary::TermDictionary() {
  terms_.emplace_back();  // reserve id 0 as invalid
}

TermId TermDictionary::Intern(const Term& term) {
  auto it = term_to_id_.find(term);
  if (it != term_to_id_.end()) return it->second;
  const TermId id = static_cast<TermId>(terms_.size());
  terms_.push_back(term);
  term_to_id_.emplace(term, id);
  return id;
}

TermId TermDictionary::Intern(Term&& term) {
  auto it = term_to_id_.find(term);
  if (it != term_to_id_.end()) return it->second;
  const TermId id = static_cast<TermId>(terms_.size());
  term_to_id_.emplace(term, id);
  terms_.push_back(std::move(term));
  return id;
}

TermId TermDictionary::InternIri(std::string iri) {
  return Intern(Term::Iri(std::move(iri)));
}

TermId TermDictionary::InternLiteral(std::string lexical) {
  return Intern(Term::Literal(std::move(lexical)));
}

TermId TermDictionary::Find(const Term& term) const {
  auto it = term_to_id_.find(term);
  return it == term_to_id_.end() ? kInvalidTermId : it->second;
}

TermId TermDictionary::FindIri(const std::string& iri) const {
  return Find(Term::Iri(iri));
}

const Term& TermDictionary::term(TermId id) const {
  RL_CHECK(Contains(id)) << "invalid TermId " << id;
  return terms_[id];
}

}  // namespace rulelink::rdf
