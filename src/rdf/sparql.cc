#include "rdf/sparql.h"

#include <algorithm>
#include <memory>
#include <regex>
#include <unordered_map>

#include "rdf/vocab.h"
#include "util/string_util.h"

namespace rulelink::rdf {
namespace {

// Token-level scanner shared with nothing else: SPARQL's lexical rules
// differ enough from Turtle's (variables, keywords) to warrant its own.
class Scanner {
 public:
  explicit Scanner(std::string_view text) : text_(text) {}

  util::Status error(const std::string& what) const {
    return util::InvalidArgumentError("SPARQL line " +
                                      std::to_string(line_) + ": " + what);
  }

  void SkipSpace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (c == ' ' || c == '\t' || c == '\r') {
        ++pos_;
      } else if (c == '#') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= text_.size();
  }

  char Peek() {
    SkipSpace();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  bool Consume(char c) {
    if (Peek() != c) return false;
    ++pos_;
    return true;
  }

  // Reads a bare word (keyword or prefixed name chunk).
  std::string Word() {
    SkipSpace();
    std::size_t end = pos_;
    while (end < text_.size() && !IsBreak(text_[end])) ++end;
    std::string word(text_.substr(pos_, end - pos_));
    pos_ = end;
    return word;
  }

  // Case-insensitive keyword match without consuming on failure.
  bool Keyword(std::string_view kw) {
    SkipSpace();
    if (pos_ + kw.size() > text_.size()) return false;
    for (std::size_t i = 0; i < kw.size(); ++i) {
      char a = text_[pos_ + i];
      if (a >= 'a' && a <= 'z') a = static_cast<char>(a - 'a' + 'A');
      if (a != kw[i]) return false;
    }
    const std::size_t after = pos_ + kw.size();
    if (after < text_.size() && !IsBreak(text_[after])) return false;
    pos_ = after;
    return true;
  }

  util::Result<std::string> IriRef() {
    const std::size_t close = text_.find('>', pos_ + 1);
    if (close == std::string_view::npos) return error("unterminated IRI");
    std::string iri(text_.substr(pos_ + 1, close - pos_ - 1));
    pos_ = close + 1;
    return iri;
  }

  util::Result<std::string> VariableName() {
    ++pos_;  // past '?' or '$'
    std::size_t end = pos_;
    while (end < text_.size() &&
           (util::IsAsciiAlnum(text_[end]) || text_[end] == '_')) {
      ++end;
    }
    if (end == pos_) return error("empty variable name");
    std::string name(text_.substr(pos_, end - pos_));
    pos_ = end;
    return name;
  }

  util::Result<Term> LiteralTerm() {
    const char quote = text_[pos_];
    std::string body;
    std::size_t i = pos_ + 1;
    bool closed = false;
    while (i < text_.size()) {
      const char c = text_[i];
      if (c == '\\') {
        if (i + 1 >= text_.size()) return error("dangling escape");
        const char e = text_[i + 1];
        switch (e) {
          case 'n': body.push_back('\n'); break;
          case 't': body.push_back('\t'); break;
          case 'r': body.push_back('\r'); break;
          case '"': body.push_back('"'); break;
          case '\'': body.push_back('\''); break;
          case '\\': body.push_back('\\'); break;
          default: return error("unknown escape");
        }
        i += 2;
        continue;
      }
      if (c == quote) {
        closed = true;
        ++i;
        break;
      }
      if (c == '\n') ++line_;
      body.push_back(c);
      ++i;
    }
    if (!closed) return error("unterminated literal");
    pos_ = i;
    // @lang / ^^<iri> or ^^prefixed handled by the parser via suffix
    // peeking below.
    if (pos_ < text_.size() && text_[pos_] == '@') {
      std::size_t end = pos_ + 1;
      while (end < text_.size() &&
             (util::IsAsciiAlnum(text_[end]) || text_[end] == '-')) {
        ++end;
      }
      std::string lang(text_.substr(pos_ + 1, end - pos_ - 1));
      pos_ = end;
      if (lang.empty()) return error("empty language tag");
      return Term::LangLiteral(std::move(body), std::move(lang));
    }
    if (pos_ + 1 < text_.size() && text_[pos_] == '^' &&
        text_[pos_ + 1] == '^') {
      pos_ += 2;
      if (pos_ < text_.size() && text_[pos_] == '<') {
        auto iri = IriRef();
        if (!iri.ok()) return iri.status();
        return Term::TypedLiteral(std::move(body), std::move(iri).value());
      }
      return error("datatype must be <IRI> (prefixed datatypes: expand "
                   "manually)");
    }
    return Term::Literal(std::move(body));
  }

  static bool IsBreak(char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '{' ||
           c == '}' || c == '.' || c == ';' || c == ',' || c == '#' ||
           c == '<' || c == '"' || c == '\'' || c == '?' || c == '$' ||
           c == '(' || c == ')';
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
};

class SparqlParser {
 public:
  explicit SparqlParser(std::string_view text) : scan_(text) {}

  util::Result<ParsedSparql> Parse() {
    ParsedSparql out;
    // PREFIX declarations.
    while (scan_.Keyword("PREFIX")) {
      const std::string pname = scan_.Word();
      if (pname.empty() || pname.back() != ':') {
        return scan_.error("expected prefix name ending in ':'");
      }
      if (scan_.Peek() != '<') return scan_.error("expected namespace IRI");
      RL_ASSIGN_OR_RETURN(std::string iri, scan_.IriRef());
      prefixes_[pname.substr(0, pname.size() - 1)] = std::move(iri);
    }
    if (!scan_.Keyword("SELECT")) return scan_.error("expected SELECT");
    if (scan_.Keyword("DISTINCT")) out.query.Distinct();
    // Projection list.
    if (scan_.Peek() == '*') {
      scan_.Consume('*');
    } else {
      while (scan_.Peek() == '?' || scan_.Peek() == '$') {
        RL_ASSIGN_OR_RETURN(std::string name, scan_.VariableName());
        out.projection.push_back(std::move(name));
      }
      if (out.projection.empty()) {
        return scan_.error("SELECT needs '*' or at least one variable");
      }
    }
    if (!scan_.Keyword("WHERE")) return scan_.error("expected WHERE");
    if (!scan_.Consume('{')) return scan_.error("expected '{'");

    // Triple patterns and FILTERs until '}'.
    while (scan_.Peek() != '}') {
      if (scan_.AtEnd()) return scan_.error("unterminated WHERE block");
      if (scan_.Keyword("FILTER")) {
        RL_RETURN_IF_ERROR(ParseFilter(&out.query));
        if (scan_.Consume('.')) continue;  // optional separator
        continue;
      }
      RL_ASSIGN_OR_RETURN(QueryTerm subject, ParseTerm(/*predicate=*/false));
      RL_ASSIGN_OR_RETURN(QueryTerm predicate, ParseTerm(/*predicate=*/true));
      RL_ASSIGN_OR_RETURN(QueryTerm object, ParseTerm(/*predicate=*/false));
      out.query.Add(std::move(subject), std::move(predicate),
                    std::move(object));
      if (!scan_.Consume('.') && scan_.Peek() != '}') {
        return scan_.error("expected '.' between patterns");
      }
    }
    scan_.Consume('}');
    if (scan_.Keyword("LIMIT")) {
      const std::string number = scan_.Word();
      unsigned long long limit = 0;
      if (!util::ParseUint64(number, &limit) || limit == 0) {
        return scan_.error("LIMIT needs a positive integer");
      }
      out.query.Limit(static_cast<std::size_t>(limit));
    }
    if (!scan_.AtEnd()) {
      return scan_.error("unexpected trailing input (OPTIONAL/UNION/FILTER "
                         "are not supported by this subset)");
    }
    return out;
  }

 private:
  // FILTER regex(?v, "pattern" [, "i"])  or  FILTER (?a != ?b).
  util::Status ParseFilter(Query* query) {
    if (scan_.Keyword("REGEX")) {
      if (!scan_.Consume('(')) return scan_.error("expected '('");
      if (scan_.Peek() != '?' && scan_.Peek() != '$') {
        return scan_.error("regex filter needs a variable");
      }
      RL_ASSIGN_OR_RETURN(std::string variable, scan_.VariableName());
      if (!scan_.Consume(',')) return scan_.error("expected ','");
      if (scan_.Peek() != '"' && scan_.Peek() != '\'') {
        return scan_.error("regex filter needs a pattern literal");
      }
      RL_ASSIGN_OR_RETURN(Term pattern_term, scan_.LiteralTerm());
      bool case_insensitive = false;
      if (scan_.Consume(',')) {
        if (scan_.Peek() != '"' && scan_.Peek() != '\'') {
          return scan_.error("regex flags must be a literal");
        }
        RL_ASSIGN_OR_RETURN(Term flags, scan_.LiteralTerm());
        if (flags.lexical() == "i") {
          case_insensitive = true;
        } else if (!flags.lexical().empty()) {
          return scan_.error("unsupported regex flags '" + flags.lexical() +
                             "'");
        }
      }
      if (!scan_.Consume(')')) return scan_.error("expected ')'");
      std::regex::flag_type flags = std::regex::ECMAScript;
      if (case_insensitive) flags |= std::regex::icase;
      std::shared_ptr<std::regex> re;
      try {
        re = std::make_shared<std::regex>(pattern_term.lexical(), flags);
      } catch (const std::regex_error& e) {
        return scan_.error(std::string("bad regex: ") + e.what());
      }
      query->Filter(variable, [re](const Term& term) {
        return std::regex_search(term.lexical(), *re);
      });
      return util::OkStatus();
    }
    if (!scan_.Consume('(')) {
      return scan_.error(
          "only FILTER regex(...) and FILTER (?a != ?b) are supported");
    }
    if (scan_.Peek() != '?' && scan_.Peek() != '$') {
      return scan_.error("expected variable in filter");
    }
    RL_ASSIGN_OR_RETURN(std::string a, scan_.VariableName());
    if (!scan_.Consume('!') || !scan_.Consume('=')) {
      return scan_.error("only '!=' comparisons are supported");
    }
    if (scan_.Peek() != '?' && scan_.Peek() != '$') {
      return scan_.error("expected variable after '!='");
    }
    RL_ASSIGN_OR_RETURN(std::string b, scan_.VariableName());
    if (!scan_.Consume(')')) return scan_.error("expected ')'");
    query->NotEqual(std::move(a), std::move(b));
    return util::OkStatus();
  }

  util::Result<QueryTerm> ParseTerm(bool predicate) {
    const char c = scan_.Peek();
    if (c == '?' || c == '$') {
      RL_ASSIGN_OR_RETURN(std::string name, scan_.VariableName());
      return Var(std::move(name));
    }
    if (c == '<') {
      RL_ASSIGN_OR_RETURN(std::string iri, scan_.IriRef());
      return QueryTerm::Constant(Term::Iri(std::move(iri)));
    }
    if (c == '"' || c == '\'') {
      if (predicate) return scan_.error("literal in predicate position");
      RL_ASSIGN_OR_RETURN(Term term, scan_.LiteralTerm());
      return QueryTerm::Constant(std::move(term));
    }
    const std::string word = scan_.Word();
    if (word == "a") {
      return QueryTerm::Constant(Term::Iri(vocab::kRdfType));
    }
    const std::size_t colon = word.find(':');
    if (colon == std::string::npos) {
      return scan_.error("expected term, got '" + word + "'");
    }
    auto it = prefixes_.find(word.substr(0, colon));
    if (it == prefixes_.end()) {
      return scan_.error("undeclared prefix '" + word.substr(0, colon) +
                         ":'");
    }
    return QueryTerm::Constant(Term::Iri(it->second + word.substr(colon + 1)));
  }

  Scanner scan_;
  std::unordered_map<std::string, std::string> prefixes_;
};

}  // namespace

util::Result<ParsedSparql> ParseSparql(std::string_view text) {
  return SparqlParser(text).Parse();
}

util::Result<std::vector<std::vector<std::string>>> RunSparql(
    const Graph& graph, std::string_view text) {
  RL_ASSIGN_OR_RETURN(ParsedSparql parsed, ParseSparql(text));
  std::vector<std::string> projection = parsed.projection;
  if (projection.empty()) projection = parsed.query.Variables();
  // Validate projection against mentioned variables.
  {
    const auto mentioned = parsed.query.Variables();
    for (const std::string& name : projection) {
      if (std::find(mentioned.begin(), mentioned.end(), name) ==
          mentioned.end()) {
        return util::InvalidArgumentError("SELECT variable ?" + name +
                                          " not used in WHERE");
      }
    }
  }
  RL_ASSIGN_OR_RETURN(std::vector<Bindings> rows,
                      Evaluate(graph, parsed.query));
  std::vector<std::vector<std::string>> out;
  out.reserve(rows.size());
  for (const Bindings& row : rows) {
    std::vector<std::string> cells;
    cells.reserve(projection.size());
    for (const std::string& name : projection) {
      const Term& term = graph.dict().term(row.at(name));
      cells.push_back(term.is_literal() ? term.lexical()
                                        : term.ToNTriples());
    }
    out.push_back(std::move(cells));
  }
  return out;
}

}  // namespace rulelink::rdf
