#include "rdf/query.h"

#include <algorithm>
#include <set>
#include <unordered_set>

namespace rulelink::rdf {

QueryTerm QueryTerm::Constant(Term term) {
  QueryTerm qt;
  qt.is_variable_ = false;
  qt.term_ = std::move(term);
  return qt;
}

QueryTerm QueryTerm::Variable(std::string name) {
  QueryTerm qt;
  qt.is_variable_ = true;
  qt.name_ = std::move(name);
  return qt;
}

Query& Query::Add(QueryTerm subject, QueryTerm predicate, QueryTerm object) {
  patterns_.push_back(QueryPattern{std::move(subject), std::move(predicate),
                                   std::move(object)});
  return *this;
}

Query& Query::Filter(std::string variable,
                     std::function<bool(const Term&)> f) {
  filters_.push_back(QueryFilter{std::move(variable), std::move(f)});
  return *this;
}

Query& Query::NotEqual(std::string a, std::string b) {
  not_equal_.emplace_back(std::move(a), std::move(b));
  return *this;
}

Query& Query::Distinct(bool distinct) {
  distinct_ = distinct;
  return *this;
}

Query& Query::Limit(std::size_t limit) {
  limit_ = limit;
  return *this;
}

std::vector<std::string> Query::Variables() const {
  std::vector<std::string> names;
  std::unordered_set<std::string> seen;
  const auto visit = [&](const QueryTerm& qt) {
    if (qt.is_variable() && seen.insert(qt.name()).second) {
      names.push_back(qt.name());
    }
  };
  for (const QueryPattern& p : patterns_) {
    visit(p.subject);
    visit(p.predicate);
    visit(p.object);
  }
  return names;
}

namespace {

// Evaluation state shared across the backtracking recursion.
class Evaluator {
 public:
  Evaluator(const Graph& graph, const Query& query)
      : graph_(graph), query_(query) {}

  util::Result<std::vector<Bindings>> Run() {
    if (query_.patterns().empty()) {
      return util::InvalidArgumentError("query has no patterns");
    }
    // Validate filters against mentioned variables.
    {
      const auto variables = query_.Variables();
      const std::unordered_set<std::string> known(variables.begin(),
                                                  variables.end());
      for (const QueryFilter& f : query_.filters()) {
        if (known.count(f.variable) == 0) {
          return util::InvalidArgumentError(
              "filter over unknown variable ?" + f.variable);
        }
      }
      for (const auto& [a, b] : query_.not_equal()) {
        if (known.count(a) == 0 || known.count(b) == 0) {
          return util::InvalidArgumentError(
              "!= filter over unknown variable");
        }
      }
    }
    // Resolve constants. A constant absent from the dictionary means the
    // pattern can never match.
    resolved_.resize(query_.patterns().size());
    for (std::size_t i = 0; i < query_.patterns().size(); ++i) {
      const QueryPattern& p = query_.patterns()[i];
      for (const QueryTerm* qt : {&p.subject, &p.predicate, &p.object}) {
        if (!qt->is_variable()) {
          const TermId id = graph_.dict().Find(qt->term());
          if (id == kInvalidTermId) return std::vector<Bindings>{};
          resolved_[i].push_back(id);
        } else {
          resolved_[i].push_back(kInvalidTermId);
        }
      }
    }
    used_.assign(query_.patterns().size(), false);
    Solve();
    return std::move(rows_);
  }

 private:
  bool LimitReached() const {
    return query_.limit() > 0 && rows_.size() >= query_.limit();
  }

  // Builds the concrete TriplePattern for pattern i under current
  // bindings; positions bound to variables without a value stay unbound.
  TriplePattern Concretize(std::size_t i) const {
    const QueryPattern& p = query_.patterns()[i];
    TriplePattern out;
    const QueryTerm* terms[3] = {&p.subject, &p.predicate, &p.object};
    TermId* slots[3] = {&out.subject, &out.predicate, &out.object};
    for (int k = 0; k < 3; ++k) {
      if (!terms[k]->is_variable()) {
        *slots[k] = resolved_[i][static_cast<std::size_t>(k)];
      } else {
        auto it = bindings_.find(terms[k]->name());
        *slots[k] = it == bindings_.end() ? kInvalidTermId : it->second;
      }
    }
    return out;
  }

  // Chooses the unused pattern with the most bound positions (constants or
  // already-bound variables); ties break by the smallest posting-list
  // estimate, so the join starts from the most selective pattern.
  std::size_t PickNext() const {
    std::size_t best = query_.patterns().size();
    int best_bound = -1;
    std::size_t best_estimate = 0;
    for (std::size_t i = 0; i < query_.patterns().size(); ++i) {
      if (used_[i]) continue;
      const TriplePattern concrete = Concretize(i);
      const int bound = (concrete.subject != kInvalidTermId) +
                        (concrete.predicate != kInvalidTermId) +
                        (concrete.object != kInvalidTermId);
      const std::size_t estimate = graph_.EstimateMatches(concrete);
      if (bound > best_bound ||
          (bound == best_bound && estimate < best_estimate)) {
        best = i;
        best_bound = bound;
        best_estimate = estimate;
      }
    }
    return best;
  }

  // Checks filters whose variable is `name`.
  bool PassesFilters(const std::string& name, TermId id) const {
    for (const QueryFilter& f : query_.filters()) {
      if (f.variable == name && !f.predicate(graph_.dict().term(id))) {
        return false;
      }
    }
    // Inequality constraints that became fully bound with this binding.
    for (const auto& [a, b] : query_.not_equal()) {
      if (a != name && b != name) continue;
      const std::string& other = a == name ? b : a;
      auto it = bindings_.find(other);
      if (it != bindings_.end() && it->second == id) return false;
    }
    return true;
  }

  void Solve() {
    if (LimitReached()) return;
    if (std::all_of(used_.begin(), used_.end(), [](bool u) { return u; })) {
      Emit();
      return;
    }
    const std::size_t i = PickNext();
    used_[i] = true;
    const QueryPattern& p = query_.patterns()[i];
    const TriplePattern concrete = Concretize(i);

    graph_.ForEachMatch(concrete, [&](const Triple& t) {
      // Bind the variable positions, honoring repeated variables within
      // one pattern (?x ?p ?x).
      std::vector<std::string> newly_bound;
      const QueryTerm* terms[3] = {&p.subject, &p.predicate, &p.object};
      const TermId values[3] = {t.subject, t.predicate, t.object};
      bool ok = true;
      for (int k = 0; k < 3 && ok; ++k) {
        if (!terms[k]->is_variable()) continue;
        const std::string& name = terms[k]->name();
        auto it = bindings_.find(name);
        if (it != bindings_.end()) {
          ok = it->second == values[k];
          continue;
        }
        if (!PassesFilters(name, values[k])) {
          ok = false;
          continue;
        }
        bindings_.emplace(name, values[k]);
        newly_bound.push_back(name);
      }
      if (ok) Solve();
      for (const std::string& name : newly_bound) bindings_.erase(name);
      return !LimitReached();
    });
    used_[i] = false;
  }

  void Emit() {
    if (query_.distinct()) {
      std::vector<std::pair<std::string, TermId>> key(bindings_.begin(),
                                                      bindings_.end());
      std::sort(key.begin(), key.end());
      if (!seen_.insert(key).second) return;
    }
    rows_.push_back(bindings_);
  }

  const Graph& graph_;
  const Query& query_;
  std::vector<std::vector<TermId>> resolved_;
  std::vector<bool> used_;
  Bindings bindings_;
  std::vector<Bindings> rows_;
  std::set<std::vector<std::pair<std::string, TermId>>> seen_;
};

}  // namespace

util::Result<std::vector<Bindings>> Evaluate(const Graph& graph,
                                             const Query& query) {
  return Evaluator(graph, query).Run();
}

util::Result<std::size_t> Count(const Graph& graph, const Query& query) {
  auto rows = Evaluate(graph, query);
  if (!rows.ok()) return rows.status();
  return rows->size();
}

}  // namespace rulelink::rdf
