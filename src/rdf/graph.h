// In-memory indexed triple store. Triples are de-duplicated; S, P and O
// indexes support pattern matching with any combination of bound positions.
// The store owns a TermDictionary so callers can work with Terms or ids.
#ifndef RULELINK_RDF_GRAPH_H_
#define RULELINK_RDF_GRAPH_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "rdf/dictionary.h"
#include "rdf/term.h"
#include "rdf/triple.h"

namespace rulelink::rdf {

// A triple pattern: kInvalidTermId in a position means "unbound".
struct TriplePattern {
  TermId subject = kInvalidTermId;
  TermId predicate = kInvalidTermId;
  TermId object = kInvalidTermId;
};

class Graph {
 public:
  Graph() = default;

  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;
  Graph(Graph&&) = default;
  Graph& operator=(Graph&&) = default;

  TermDictionary& dict() { return dict_; }
  const TermDictionary& dict() const { return dict_; }

  // Inserts a triple; returns true when it was not already present.
  bool Insert(const Triple& triple);
  bool Insert(const Term& s, const Term& p, const Term& o);
  // Interning + insert convenience for the common IRI/IRI/any shape.
  bool InsertIri(const std::string& s, const std::string& p,
                 const std::string& o);
  bool InsertLiteralTriple(const std::string& s, const std::string& p,
                           const std::string& literal);

  bool Contains(const Triple& triple) const;

  std::size_t size() const { return triples_.size(); }
  bool empty() const { return triples_.empty(); }

  // All triples in insertion order.
  const std::vector<Triple>& triples() const { return triples_; }

  // Returns every triple matching `pattern` (copy of matching triples).
  std::vector<Triple> Match(const TriplePattern& pattern) const;

  // Calls `fn` for each triple matching `pattern`; `fn` returning false
  // stops the scan early.
  void ForEachMatch(const TriplePattern& pattern,
                    const std::function<bool(const Triple&)>& fn) const;

  // Number of triples matching `pattern` without materializing them.
  std::size_t CountMatches(const TriplePattern& pattern) const;

  // O(1) upper bound on CountMatches: the shortest posting list among the
  // bound positions (graph size when fully unbound, 0 when a bound term
  // has no postings). Used by the query planner's selectivity ordering.
  std::size_t EstimateMatches(const TriplePattern& pattern) const;

  // Common lookups ---------------------------------------------------------

  // Objects of (subject, predicate, ?o).
  std::vector<TermId> Objects(TermId subject, TermId predicate) const;
  // Subjects of (?s, predicate, object).
  std::vector<TermId> Subjects(TermId predicate, TermId object) const;
  // First object of (subject, predicate, ?o) or kInvalidTermId.
  TermId FirstObject(TermId subject, TermId predicate) const;

  // Distinct subjects appearing in the graph, in first-seen order.
  std::vector<TermId> DistinctSubjects() const;
  // Distinct predicates appearing in the graph, in first-seen order.
  std::vector<TermId> DistinctPredicates() const;

 private:
  using PostingList = std::vector<std::uint32_t>;  // indexes into triples_

  const PostingList* SubjectPostings(TermId id) const;
  const PostingList* PredicatePostings(TermId id) const;
  const PostingList* ObjectPostings(TermId id) const;

  // Picks the shortest applicable posting list for `pattern`, or nullptr
  // when no position is bound (full scan). Sets `*miss` when a bound
  // position has an empty posting list (no matches possible).
  const PostingList* ChoosePostings(const TriplePattern& pattern,
                                    bool* miss) const;

  static bool Matches(const Triple& t, const TriplePattern& p) {
    return (p.subject == kInvalidTermId || t.subject == p.subject) &&
           (p.predicate == kInvalidTermId || t.predicate == p.predicate) &&
           (p.object == kInvalidTermId || t.object == p.object);
  }

  TermDictionary dict_;
  std::vector<Triple> triples_;
  std::unordered_set<Triple, TripleHash> triple_set_;
  std::unordered_map<TermId, PostingList> by_subject_;
  std::unordered_map<TermId, PostingList> by_predicate_;
  std::unordered_map<TermId, PostingList> by_object_;
};

}  // namespace rulelink::rdf

#endif  // RULELINK_RDF_GRAPH_H_
