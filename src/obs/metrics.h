// Deterministic pipeline observability: a low-overhead metrics registry
// (named counters, gauges and histograms with fixed log2 bucketing) plus
// hierarchical stage timers and pipeline trace spans, exported as one
// MetricsSnapshot JSON document (DESIGN.md §5f).
//
// Determinism contract. Counters, gauges and histograms record only
// thread-invariant quantities: parallel stages accumulate into per-chunk
// plain structs (the PR-1 discipline) and record the chunk-order merge
// into the registry once, on the coordinating thread, so the
// counter/gauge/histogram sections of a snapshot are byte-identical at
// every thread count and across reruns of the same input. Stage timings
// and trace spans are wall-clock and therefore excluded from that
// contract; MetricsSnapshot::DeterministicJson() renders only the
// invariant sections (the cross-thread differential in
// tests/metrics_test.cc compares exactly that string).
//
// Overhead budget. Nothing in this header touches a per-pair hot loop:
// instrumented stages observe per-item quantities into shard-local
// Histogram objects (one array increment) and defer every registry access
// to the post-merge epilogue, keeping the measured instrumentation cost
// on bench_linking's streaming section under 2% (asserted in CI).
//
// The registry itself is not thread-safe by design: stages begin/end and
// metrics are recorded on the coordinating thread only. A null registry
// pointer everywhere means "not instrumented" and costs one branch.
#ifndef RULELINK_OBS_METRICS_H_
#define RULELINK_OBS_METRICS_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/simd.h"
#include "util/status.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace rulelink::obs {

// Fixed log2 bucketing: bucket 0 holds the value 0, bucket b >= 1 holds
// values v with floor(log2(v)) == b - 1, i.e. [2^(b-1), 2^b). 65 buckets
// cover the whole uint64 range.
inline constexpr std::size_t kNumHistogramBuckets = 65;

// The bucket index of `value` under the scheme above.
std::size_t Log2Bucket(std::uint64_t value);

// The smallest value bucket `bucket` admits (0, 1, 2, 4, 8, ...).
std::uint64_t BucketLowerBound(std::size_t bucket);

// A log2-bucketed histogram of non-negative integer observations. Plain
// value type so parallel stages can keep one per shard and merge in chunk
// order; merging is associative and commutative, so the merged histogram
// is identical at every chunking.
class Histogram {
 public:
  void Observe(std::uint64_t value) {
    ++buckets_[Log2Bucket(value)];
    ++count_;
    sum_ += value;
    if (count_ == 1 || value < min_) min_ = value;
    if (value > max_) max_ = value;
  }

  void Merge(const Histogram& other);

  // The value at cumulative fraction `q` in [0, 1] (0.5 = p50, 0.999 =
  // p999), linearly interpolated inside the containing log2 bucket and
  // clamped to the observed min/max. 0 when the histogram is empty. The
  // bucketing bounds the relative error by the bucket width (a factor of
  // 2), which is what a latency-percentile report needs; exact quantiles
  // would require retaining every observation.
  double ValueAtQuantile(double q) const;

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  // min()/max() are meaningful only when count() > 0.
  std::uint64_t min() const { return min_; }
  std::uint64_t max() const { return max_; }
  const std::array<std::uint64_t, kNumHistogramBuckets>& buckets() const {
    return buckets_;
  }

 private:
  std::array<std::uint64_t, kNumHistogramBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

// Accumulated wall-clock of one stage path ("learn/segment",
// "pipeline/cache_build", ...).
struct StageTiming {
  double total_ms = 0.0;
  std::uint64_t calls = 0;
};

// One entry of the pipeline trace: the stages in the order they began,
// with their nesting depth at begin time. The structure (paths, depths,
// order) is deterministic; `millis` is wall-clock.
struct TraceSpan {
  std::string path;
  std::size_t depth = 0;
  double millis = 0.0;
};

// Immutable copy of a registry's state, renderable as JSON.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, Histogram> histograms;
  std::map<std::string, StageTiming> stages;
  std::vector<TraceSpan> trace;
  // The process-wide morsel scheduler's counters at snapshot time
  // (workers, loops, per-worker morsels/steals/busy time — DESIGN.md §5g).
  // Thread-variant by nature: steal counts depend on timing, so this
  // section renders only in the full document, never the deterministic
  // one.
  util::SchedulerStats scheduler;
  // SIMD dispatch target and batched/remainder pair counters at snapshot
  // time (DESIGN.md §5h). Dispatch-variant (depends on the host CPU and
  // RULELINK_SIMD), so it renders alongside "scheduler" in the full
  // document only.
  util::SimdStats simd;

  // Full document: {"counters": {...}, "gauges": {...},
  // "histograms": {...}, "stages": {...}, "trace": [...],
  // "scheduler": {...}, "simd": {...}}. Doubles are written with shortest round-trip
  // formatting, histogram buckets as [lower_bound, count] pairs for the
  // non-empty buckets only.
  std::string ToJson(bool include_timings = true) const;

  // The thread-invariant sections only (no stages/trace/scheduler/simd)
  // — byte-identical at every thread count for the same input.
  std::string DeterministicJson() const { return ToJson(false); }

  util::Status WriteJsonFile(const std::string& path,
                             bool include_timings = true) const;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  void AddCounter(std::string_view name, std::uint64_t delta = 1);
  // Last write wins; NaN is normalized to 0 so snapshots stay comparable.
  void SetGauge(std::string_view name, double value);
  void Observe(std::string_view name, std::uint64_t value);
  // Folds a shard-merged histogram into the named one.
  void MergeHistogram(std::string_view name, const Histogram& merged);
  // Accumulates wall-clock into the named stage (one `calls` tick) and
  // appends a trace span at the current nesting depth. StageScope is the
  // usual way in; call this directly for externally-timed stages.
  void RecordStage(std::string_view path, double millis);

  MetricsSnapshot Snapshot() const;

  // RAII stage timer. Null-registry tolerant: every instrumented function
  // takes a MetricsRegistry* that may be null, and a StageScope over a
  // null registry is a no-op, so call sites need no branches.
  class StageScope {
   public:
    StageScope(MetricsRegistry* registry, std::string_view path);
    ~StageScope();
    StageScope(const StageScope&) = delete;
    StageScope& operator=(const StageScope&) = delete;

   private:
    MetricsRegistry* registry_;
    std::string path_;
    std::size_t span_index_ = 0;
    util::Stopwatch timer_;
  };

 private:
  friend class StageScope;

  std::map<std::string, std::uint64_t, std::less<>> counters_;
  std::map<std::string, double, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
  std::map<std::string, StageTiming, std::less<>> stages_;
  std::vector<TraceSpan> trace_;
  std::size_t open_spans_ = 0;  // nesting depth of live StageScopes
};

}  // namespace rulelink::obs

#endif  // RULELINK_OBS_METRICS_H_
