#include "obs/metrics.h"

#include <fstream>
#include <limits>

#include "util/string_util.h"

namespace rulelink::obs {
namespace {

// Appends a JSON string literal. Metric names are library-chosen ASCII
// identifiers, but escape defensively so arbitrary names stay valid JSON.
void AppendJsonString(std::string_view s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendSchedulerWorkerJson(const util::SchedulerWorkerStats& w,
                               std::string* out) {
  *out += "{\"morsels\": " + std::to_string(w.morsels) +
          ", \"steals\": " + std::to_string(w.steals) +
          ", \"steal_failures\": " + std::to_string(w.steal_failures) +
          ", \"busy_micros\": " + std::to_string(w.busy_micros);
  // Hardware counters render only when the worker's perf_event group is
  // live, so "no perf access" is distinguishable from "zero misses".
  // Thread-variant like the rest of the scheduler section: never part of
  // DeterministicJson.
  if (w.hw.valid) {
    *out += ", \"hw\": {\"cycles\": " + std::to_string(w.hw.cycles) +
            ", \"instructions\": " + std::to_string(w.hw.instructions) +
            ", \"llc_misses\": " + std::to_string(w.hw.llc_misses) + "}";
  }
  *out += "}";
}

void AppendHistogramJson(const Histogram& h, std::string* out) {
  *out += "{\"count\": " + std::to_string(h.count());
  *out += ", \"sum\": " + std::to_string(h.sum());
  if (h.count() > 0) {
    *out += ", \"min\": " + std::to_string(h.min());
    *out += ", \"max\": " + std::to_string(h.max());
  }
  *out += ", \"buckets\": [";
  bool first = true;
  for (std::size_t b = 0; b < kNumHistogramBuckets; ++b) {
    if (h.buckets()[b] == 0) continue;
    if (!first) *out += ", ";
    first = false;
    *out += "[" + std::to_string(BucketLowerBound(b)) + ", " +
            std::to_string(h.buckets()[b]) + "]";
  }
  *out += "]}";
}

}  // namespace

std::size_t Log2Bucket(std::uint64_t value) {
  if (value == 0) return 0;
  std::size_t bucket = 1;
  while (value >>= 1) ++bucket;
  return bucket;  // floor(log2(v)) + 1, at most 64
}

std::uint64_t BucketLowerBound(std::size_t bucket) {
  if (bucket == 0) return 0;
  return std::uint64_t{1} << (bucket - 1);
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) return;
  for (std::size_t b = 0; b < kNumHistogramBuckets; ++b) {
    buckets_[b] += other.buckets_[b];
  }
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
  count_ += other.count_;
  sum_ += other.sum_;
}

double Histogram::ValueAtQuantile(double q) const {
  if (count_ == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the target observation (1-based), then walk the buckets to the
  // one containing it and interpolate linearly inside its value range.
  const double target = q * static_cast<double>(count_);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < kNumHistogramBuckets; ++b) {
    if (buckets_[b] == 0) continue;
    const std::uint64_t prev = cumulative;
    cumulative += buckets_[b];
    if (static_cast<double>(cumulative) < target) continue;
    const double lo = static_cast<double>(BucketLowerBound(b));
    const double hi = b + 1 < kNumHistogramBuckets
                          ? static_cast<double>(BucketLowerBound(b + 1))
                          : lo * 2.0;
    const double within =
        (target - static_cast<double>(prev)) /
        static_cast<double>(buckets_[b]);
    double value = lo + (hi - lo) * within;
    if (value < static_cast<double>(min_)) value = static_cast<double>(min_);
    if (value > static_cast<double>(max_)) value = static_cast<double>(max_);
    return value;
  }
  return static_cast<double>(max_);
}

void MetricsRegistry::AddCounter(std::string_view name, std::uint64_t delta) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

void MetricsRegistry::SetGauge(std::string_view name, double value) {
  if (value != value) value = 0.0;  // NaN would break snapshot comparisons
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    gauges_.emplace(std::string(name), value);
  } else {
    it->second = value;
  }
}

void MetricsRegistry::Observe(std::string_view name, std::uint64_t value) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), Histogram()).first;
  }
  it->second.Observe(value);
}

void MetricsRegistry::MergeHistogram(std::string_view name,
                                     const Histogram& merged) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    histograms_.emplace(std::string(name), merged);
  } else {
    it->second.Merge(merged);
  }
}

void MetricsRegistry::RecordStage(std::string_view path, double millis) {
  auto it = stages_.find(path);
  if (it == stages_.end()) {
    it = stages_.emplace(std::string(path), StageTiming()).first;
  }
  it->second.total_ms += millis;
  ++it->second.calls;
  trace_.push_back(TraceSpan{std::string(path), open_spans_, millis});
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  snapshot.counters.insert(counters_.begin(), counters_.end());
  snapshot.gauges.insert(gauges_.begin(), gauges_.end());
  snapshot.histograms.insert(histograms_.begin(), histograms_.end());
  snapshot.stages.insert(stages_.begin(), stages_.end());
  snapshot.trace = trace_;
  snapshot.scheduler = util::GlobalSchedulerStats();
  snapshot.simd = util::GlobalSimdStats();
  return snapshot;
}

MetricsRegistry::StageScope::StageScope(MetricsRegistry* registry,
                                        std::string_view path)
    : registry_(registry), path_(path) {
  if (registry_ == nullptr) return;
  // Reserve the trace slot now so spans appear in begin order (a parent
  // stage precedes the stages it contains) even though the duration is
  // only known at destruction.
  span_index_ = registry_->trace_.size();
  registry_->trace_.push_back(
      TraceSpan{path_, registry_->open_spans_, 0.0});
  ++registry_->open_spans_;
}

MetricsRegistry::StageScope::~StageScope() {
  if (registry_ == nullptr) return;
  const double millis = timer_.ElapsedMillis();
  --registry_->open_spans_;
  registry_->trace_[span_index_].millis = millis;
  auto it = registry_->stages_.find(path_);
  if (it == registry_->stages_.end()) {
    it = registry_->stages_.emplace(path_, StageTiming()).first;
  }
  it->second.total_ms += millis;
  ++it->second.calls;
}

std::string MetricsSnapshot::ToJson(bool include_timings) const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    AppendJsonString(name, &out);
    out += ": " + std::to_string(value);
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    AppendJsonString(name, &out);
    out += ": " + util::FormatDoubleRoundTrip(value);
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    AppendJsonString(name, &out);
    out += ": ";
    AppendHistogramJson(histogram, &out);
  }
  out += first ? "}" : "\n  }";

  if (include_timings) {
    out += ",\n  \"stages\": {";
    first = true;
    for (const auto& [path, timing] : stages) {
      out += first ? "\n" : ",\n";
      first = false;
      out += "    ";
      AppendJsonString(path, &out);
      out += ": {\"total_ms\": " + util::FormatDoubleRoundTrip(timing.total_ms) +
             ", \"calls\": " + std::to_string(timing.calls) + "}";
    }
    out += first ? "},\n" : "\n  },\n";

    out += "  \"trace\": [";
    first = true;
    for (const TraceSpan& span : trace) {
      out += first ? "\n" : ",\n";
      first = false;
      out += "    {\"path\": ";
      AppendJsonString(span.path, &out);
      out += ", \"depth\": " + std::to_string(span.depth) +
             ", \"ms\": " + util::FormatDoubleRoundTrip(span.millis) + "}";
    }
    out += first ? "]" : "\n  ]";

    // Scheduler counters are timing-dependent (steal order, busy time),
    // which is exactly why they live here and not in DeterministicJson.
    out += ",\n  \"scheduler\": {\"workers\": " +
           std::to_string(scheduler.workers) +
           ", \"pinned\": " + (scheduler.pinned ? "true" : "false") +
           ", \"hw_counters\": " +
           (util::ThreadPerfCounters::Available() ? "true" : "false") +
           ", \"loops\": " + std::to_string(scheduler.loops) +
           ", \"uptime_micros\": " + std::to_string(scheduler.uptime_micros) +
           ", \"utilization\": " +
           util::FormatDoubleRoundTrip(scheduler.Utilization());
    out += ",\n    \"external\": ";
    AppendSchedulerWorkerJson(scheduler.external, &out);
    out += ",\n    \"per_worker\": [";
    first = true;
    for (const util::SchedulerWorkerStats& w : scheduler.per_worker) {
      out += first ? "\n      " : ",\n      ";
      first = false;
      AppendSchedulerWorkerJson(w, &out);
    }
    out += first ? "]" : "\n    ]";
    out += "\n  }";

    // SIMD dispatch is host/CPU-dependent, so it stays out of the
    // deterministic document too.
    out += ",\n  \"simd\": {\"dispatch\": \"" + std::string(simd.dispatch) +
           "\", \"batch_width\": " + std::to_string(simd.batch_width) +
           ", \"cascade_batched_pairs\": " +
           std::to_string(simd.totals.cascade_batched_pairs) +
           ", \"cascade_remainder_pairs\": " +
           std::to_string(simd.totals.cascade_remainder_pairs) +
           ", \"kernel_batched_pairs\": " +
           std::to_string(simd.totals.kernel_batched_pairs) +
           ", \"kernel_remainder_pairs\": " +
           std::to_string(simd.totals.kernel_remainder_pairs) + "}";
  }
  out += "\n}\n";
  return out;
}

util::Status MetricsSnapshot::WriteJsonFile(const std::string& path,
                                            bool include_timings) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return util::NotFoundError("cannot open for writing: " + path);
  out << ToJson(include_timings);
  if (!out) return util::DataLossError("write failed: " + path);
  return util::OkStatus();
}

}  // namespace rulelink::obs
