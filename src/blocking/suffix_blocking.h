// Suffix-array blocking (Aizawa & Oyama 2005): every suffix of the
// blocking key no shorter than `min_suffix_length` indexes the record;
// records sharing a suffix become candidates. Suffixes shared by more
// than `max_block_size` records are dropped as non-discriminating. Robust
// to prefix noise (e.g. manufacturer prefixes glued in front of a shared
// part-number core) where prefix-based standard blocking fails.
#ifndef RULELINK_BLOCKING_SUFFIX_BLOCKING_H_
#define RULELINK_BLOCKING_SUFFIX_BLOCKING_H_

#include <string>
#include <vector>

#include "blocking/blocker.h"

namespace rulelink::blocking {

class SuffixBlocker : public CandidateGenerator {
 public:
  SuffixBlocker(std::string property, std::size_t min_suffix_length,
                std::size_t max_block_size = 50);

  std::vector<CandidatePair> Generate(
      const std::vector<core::Item>& external,
      const std::vector<core::Item>& local) const override;
  std::string name() const override;

 private:
  std::string property_;
  std::size_t min_suffix_length_;
  std::size_t max_block_size_;
};

}  // namespace rulelink::blocking

#endif  // RULELINK_BLOCKING_SUFFIX_BLOCKING_H_
