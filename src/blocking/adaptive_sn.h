// Adaptive Sorted Neighbourhood (Yan, Lee, Kan & Giles 2007 — the paper's
// reference [13]): instead of a fixed window, the sorted list is cut into
// variable-size blocks wherever two consecutive sorting keys fall below a
// similarity threshold; each adaptive block is compared exhaustively
// (cross-source pairs only). Dense key regions grow the block, sparse
// regions shrink it — the fixed-window failure mode the adaptive variant
// exists to fix.
#ifndef RULELINK_BLOCKING_ADAPTIVE_SN_H_
#define RULELINK_BLOCKING_ADAPTIVE_SN_H_

#include <string>
#include <vector>

#include "blocking/blocker.h"

namespace rulelink::blocking {

class AdaptiveSortedNeighbourhoodBlocker : public CandidateGenerator {
 public:
  // Consecutive sorted records stay in one block while the Jaro-Winkler
  // similarity of their keys is >= `boundary_similarity`. `max_block`
  // caps degenerate blocks (identical keys repeated thousands of times).
  AdaptiveSortedNeighbourhoodBlocker(std::string property,
                                     double boundary_similarity,
                                     std::size_t max_block = 1000);

  std::vector<CandidatePair> Generate(
      const std::vector<core::Item>& external,
      const std::vector<core::Item>& local) const override;
  std::string name() const override;

 private:
  std::string property_;
  double boundary_similarity_;
  std::size_t max_block_;
};

}  // namespace rulelink::blocking

#endif  // RULELINK_BLOCKING_ADAPTIVE_SN_H_
