#include "blocking/suffix_blocking.h"

#include <algorithm>
#include <set>
#include <unordered_map>

#include "util/logging.h"

namespace rulelink::blocking {
namespace {

struct SuffixBlock {
  std::vector<std::size_t> external;
  std::vector<std::size_t> local;
};

}  // namespace

SuffixBlocker::SuffixBlocker(std::string property,
                             std::size_t min_suffix_length,
                             std::size_t max_block_size)
    : property_(std::move(property)),
      min_suffix_length_(min_suffix_length),
      max_block_size_(max_block_size) {
  RL_CHECK(min_suffix_length_ > 0);
  RL_CHECK(max_block_size_ >= 2);
}

std::vector<CandidatePair> SuffixBlocker::Generate(
    const std::vector<core::Item>& external,
    const std::vector<core::Item>& local) const {
  std::unordered_map<std::string, SuffixBlock> blocks;
  const auto add = [&](const std::vector<core::Item>& items,
                       bool is_external) {
    for (std::size_t i = 0; i < items.size(); ++i) {
      const std::string key = BlockingKey(items[i], property_, 0);
      if (key.size() < min_suffix_length_) continue;
      for (std::size_t start = 0;
           start + min_suffix_length_ <= key.size(); ++start) {
        SuffixBlock& block = blocks[key.substr(start)];
        (is_external ? block.external : block.local).push_back(i);
      }
    }
  };
  add(external, true);
  add(local, false);

  std::set<CandidatePair> pairs;
  for (const auto& [suffix, block] : blocks) {
    if (block.external.size() + block.local.size() > max_block_size_) {
      continue;  // non-discriminating suffix
    }
    for (std::size_t e : block.external) {
      for (std::size_t l : block.local) {
        pairs.insert(CandidatePair{e, l});
      }
    }
  }
  return {pairs.begin(), pairs.end()};
}

std::string SuffixBlocker::name() const {
  return "suffix(" + property_ + ",min=" +
         std::to_string(min_suffix_length_) + ",max-block=" +
         std::to_string(max_block_size_) + ")";
}

}  // namespace rulelink::blocking
