#include "blocking/suffix_blocking.h"

#include <algorithm>
#include <string_view>
#include <vector>

#include "util/interner.h"
#include "util/logging.h"

namespace rulelink::blocking {
namespace {

struct SuffixBlock {
  std::vector<std::size_t> external;
  std::vector<std::size_t> local;
};

}  // namespace

SuffixBlocker::SuffixBlocker(std::string property,
                             std::size_t min_suffix_length,
                             std::size_t max_block_size)
    : property_(std::move(property)),
      min_suffix_length_(min_suffix_length),
      max_block_size_(max_block_size) {
  RL_CHECK(min_suffix_length_ > 0);
  RL_CHECK(max_block_size_ >= 2);
}

std::vector<CandidatePair> SuffixBlocker::Generate(
    const std::vector<core::Item>& external,
    const std::vector<core::Item>& local) const {
  // Every suffix is a view into the key string and interns without a
  // per-suffix allocation (the old map allocated a std::string node per
  // distinct suffix); blocks live in a flat vector indexed by suffix id.
  util::StringInterner suffixes;
  std::vector<SuffixBlock> blocks;  // by suffix id
  const auto add = [&](const std::vector<core::Item>& items,
                       bool is_external) {
    for (std::size_t i = 0; i < items.size(); ++i) {
      const std::string key = BlockingKey(items[i], property_, 0);
      if (key.size() < min_suffix_length_) continue;
      const std::string_view key_view = key;
      for (std::size_t start = 0;
           start + min_suffix_length_ <= key.size(); ++start) {
        const util::SymbolId id = suffixes.Intern(key_view.substr(start));
        if (id == blocks.size()) blocks.emplace_back();
        SuffixBlock& block = blocks[id];
        (is_external ? block.external : block.local).push_back(i);
      }
    }
  };
  add(external, true);
  add(local, false);

  std::vector<CandidatePair> pairs;
  for (const SuffixBlock& block : blocks) {
    if (block.external.size() + block.local.size() > max_block_size_) {
      continue;  // non-discriminating suffix
    }
    for (std::size_t e : block.external) {
      for (std::size_t l : block.local) {
        pairs.push_back(CandidatePair{e, l});
      }
    }
  }
  // Same sorted-unique pair list the old std::set produced.
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  return pairs;
}

std::string SuffixBlocker::name() const {
  return "suffix(" + property_ + ",min=" +
         std::to_string(min_suffix_length_) + ",max-block=" +
         std::to_string(max_block_size_) + ")";
}

}  // namespace rulelink::blocking
