#include "blocking/scheme_selector.h"

#include <algorithm>
#include <unordered_map>

#include "blocking/bigram_indexing.h"
#include "blocking/sorted_neighbourhood.h"
#include "blocking/standard_blocking.h"
#include "blocking/suffix_blocking.h"

namespace rulelink::blocking {

std::vector<SchemeScore> RankSchemes(
    const std::vector<const CandidateGenerator*>& generators,
    const std::vector<core::Item>& external,
    const std::vector<core::Item>& local,
    const std::vector<CandidatePair>& gold,
    const SchemeSelectorOptions& options) {
  // Sample prefix of each side; remap the gold pairs into the sample.
  const std::size_t e_count =
      options.sample_limit == 0
          ? external.size()
          : std::min(options.sample_limit, external.size());
  const std::size_t l_count =
      options.sample_limit == 0 ? local.size()
                                : std::min(options.sample_limit, local.size());
  const std::vector<core::Item> e_sample(external.begin(),
                                         external.begin() + e_count);
  const std::vector<core::Item> l_sample(local.begin(),
                                         local.begin() + l_count);
  std::vector<CandidatePair> gold_sample;
  for (const CandidatePair& pair : gold) {
    if (pair.external_index < e_count && pair.local_index < l_count) {
      gold_sample.push_back(pair);
    }
  }

  const double beta2 = options.beta * options.beta;
  std::vector<SchemeScore> scores;
  scores.reserve(generators.size());
  for (const CandidateGenerator* generator : generators) {
    SchemeScore entry;
    entry.name = generator->name();
    entry.quality = EvaluateBlocking(generator->Generate(e_sample, l_sample),
                                     gold_sample, e_count, l_count);
    // F-beta with completeness in the recall slot and reduction in the
    // precision slot: beta > 1 favors completeness.
    const double pc = entry.quality.pairs_completeness;
    const double rr = entry.quality.reduction_ratio;
    entry.score = (beta2 * rr + pc > 0.0)
                      ? (1.0 + beta2) * rr * pc / (beta2 * rr + pc)
                      : 0.0;
    scores.push_back(std::move(entry));
  }
  std::sort(scores.begin(), scores.end(),
            [](const SchemeScore& a, const SchemeScore& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.name < b.name;
            });
  return scores;
}

std::vector<std::unique_ptr<CandidateGenerator>> DefaultSchemePortfolio(
    const std::string& property) {
  std::vector<std::unique_ptr<CandidateGenerator>> portfolio;
  for (std::size_t prefix : {3u, 5u, 8u}) {
    portfolio.push_back(
        std::make_unique<StandardBlocker>(property, prefix));
  }
  for (std::size_t window : {5u, 10u, 20u}) {
    portfolio.push_back(
        std::make_unique<SortedNeighbourhoodBlocker>(property, window));
  }
  portfolio.push_back(std::make_unique<BigramBlocker>(property, 0.9));
  portfolio.push_back(std::make_unique<SuffixBlocker>(property, 6));
  return portfolio;
}

}  // namespace rulelink::blocking
