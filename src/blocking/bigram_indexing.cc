#include "blocking/bigram_indexing.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "text/similarity.h"
#include "util/interner.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace rulelink::blocking {

BigramBlocker::BigramBlocker(std::string property, double threshold,
                             std::size_t max_sublists_per_record)
    : property_(std::move(property)),
      threshold_(threshold),
      max_sublists_(max_sublists_per_record) {
  RL_CHECK(threshold_ > 0.0 && threshold_ <= 1.0)
      << "bigram threshold must be in (0, 1]";
  RL_CHECK(max_sublists_ > 0);
}

std::vector<std::string> BigramBlocker::SublistKeys(
    const std::string& value) const {
  std::vector<std::string> bigrams = text::CharacterBigrams(value);
  if (bigrams.empty()) return {};
  std::sort(bigrams.begin(), bigrams.end());
  bigrams.erase(std::unique(bigrams.begin(), bigrams.end()), bigrams.end());

  const std::size_t n = bigrams.size();
  const std::size_t k = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::ceil(threshold_ * static_cast<double>(n))));

  // Enumerate C(n, k) combinations in lexicographic order, capped.
  std::vector<std::string> keys;
  std::vector<std::size_t> combo(k);
  for (std::size_t i = 0; i < k; ++i) combo[i] = i;
  for (;;) {
    std::string key;
    for (std::size_t i : combo) key += bigrams[i];
    keys.push_back(std::move(key));
    if (keys.size() >= max_sublists_) break;
    // Next combination.
    std::size_t i = k;
    while (i > 0) {
      --i;
      if (combo[i] != i + n - k) break;
      if (i == 0) return keys;  // exhausted
    }
    if (combo[i] == i + n - k) return keys;
    ++combo[i];
    for (std::size_t j = i + 1; j < k; ++j) combo[j] = combo[j - 1] + 1;
  }
  return keys;
}

std::vector<CandidatePair> BigramBlocker::Generate(
    const std::vector<core::Item>& external,
    const std::vector<core::Item>& local) const {
  // Sublist keys are interned to dense ids: the index becomes a flat
  // vector-of-vectors, and the probe side resolves keys read-only.
  util::StringInterner keys;
  std::vector<std::vector<std::size_t>> index;  // by sublist-key id
  for (std::size_t l = 0; l < local.size(); ++l) {
    const std::string value = BlockingKey(local[l], property_, 0);
    if (value.empty()) continue;
    for (const std::string& key : SublistKeys(value)) {
      const util::SymbolId id = keys.Intern(key);
      if (id == index.size()) index.emplace_back();
      index[id].push_back(l);
    }
  }
  std::vector<CandidatePair> pairs;
  for (std::size_t e = 0; e < external.size(); ++e) {
    const std::string value = BlockingKey(external[e], property_, 0);
    if (value.empty()) continue;
    for (const std::string& key : SublistKeys(value)) {
      const util::SymbolId id = keys.Find(key);
      if (id == util::kInvalidSymbolId) continue;
      for (std::size_t l : index[id]) pairs.push_back(CandidatePair{e, l});
    }
  }
  // Same sorted-unique pair list the old std::set produced.
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  return pairs;
}

std::string BigramBlocker::name() const {
  return "bigram(" + property_ + ",t=" + util::FormatDouble(threshold_, 2) +
         ")";
}

}  // namespace rulelink::blocking
