#include "blocking/bigram_indexing.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_map>

#include "text/similarity.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace rulelink::blocking {

BigramBlocker::BigramBlocker(std::string property, double threshold,
                             std::size_t max_sublists_per_record)
    : property_(std::move(property)),
      threshold_(threshold),
      max_sublists_(max_sublists_per_record) {
  RL_CHECK(threshold_ > 0.0 && threshold_ <= 1.0)
      << "bigram threshold must be in (0, 1]";
  RL_CHECK(max_sublists_ > 0);
}

std::vector<std::string> BigramBlocker::SublistKeys(
    const std::string& value) const {
  std::vector<std::string> bigrams = text::CharacterBigrams(value);
  if (bigrams.empty()) return {};
  std::sort(bigrams.begin(), bigrams.end());
  bigrams.erase(std::unique(bigrams.begin(), bigrams.end()), bigrams.end());

  const std::size_t n = bigrams.size();
  const std::size_t k = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::ceil(threshold_ * static_cast<double>(n))));

  // Enumerate C(n, k) combinations in lexicographic order, capped.
  std::vector<std::string> keys;
  std::vector<std::size_t> combo(k);
  for (std::size_t i = 0; i < k; ++i) combo[i] = i;
  for (;;) {
    std::string key;
    for (std::size_t i : combo) key += bigrams[i];
    keys.push_back(std::move(key));
    if (keys.size() >= max_sublists_) break;
    // Next combination.
    std::size_t i = k;
    while (i > 0) {
      --i;
      if (combo[i] != i + n - k) break;
      if (i == 0) return keys;  // exhausted
    }
    if (combo[i] == i + n - k) return keys;
    ++combo[i];
    for (std::size_t j = i + 1; j < k; ++j) combo[j] = combo[j - 1] + 1;
  }
  return keys;
}

std::vector<CandidatePair> BigramBlocker::Generate(
    const std::vector<core::Item>& external,
    const std::vector<core::Item>& local) const {
  std::unordered_map<std::string, std::vector<std::size_t>> index;
  for (std::size_t l = 0; l < local.size(); ++l) {
    const std::string value = BlockingKey(local[l], property_, 0);
    if (value.empty()) continue;
    for (std::string& key : SublistKeys(value)) {
      index[std::move(key)].push_back(l);
    }
  }
  std::set<CandidatePair> pairs;
  for (std::size_t e = 0; e < external.size(); ++e) {
    const std::string value = BlockingKey(external[e], property_, 0);
    if (value.empty()) continue;
    for (const std::string& key : SublistKeys(value)) {
      auto it = index.find(key);
      if (it == index.end()) continue;
      for (std::size_t l : it->second) pairs.insert(CandidatePair{e, l});
    }
  }
  return {pairs.begin(), pairs.end()};
}

std::string BigramBlocker::name() const {
  return "bigram(" + property_ + ",t=" + util::FormatDouble(threshold_, 2) +
         ")";
}

}  // namespace rulelink::blocking
