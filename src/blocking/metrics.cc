#include "blocking/metrics.h"

#include <algorithm>
#include <set>

namespace rulelink::blocking {

BlockingQuality EvaluateBlocking(const std::vector<CandidatePair>& candidates,
                                 const std::vector<CandidatePair>& gold,
                                 std::size_t num_external,
                                 std::size_t num_local) {
  BlockingQuality quality;
  quality.total_pairs = static_cast<std::uint64_t>(num_external) *
                        static_cast<std::uint64_t>(num_local);
  const std::set<CandidatePair> candidate_set(candidates.begin(),
                                              candidates.end());
  const std::set<CandidatePair> gold_set(gold.begin(), gold.end());
  quality.candidate_pairs = candidate_set.size();
  quality.true_matches = gold_set.size();
  for (const CandidatePair& pair : gold_set) {
    if (candidate_set.count(pair) > 0) ++quality.matches_found;
  }
  if (quality.total_pairs > 0) {
    quality.reduction_ratio =
        1.0 - static_cast<double>(quality.candidate_pairs) /
                  static_cast<double>(quality.total_pairs);
  }
  if (quality.true_matches > 0) {
    quality.pairs_completeness =
        static_cast<double>(quality.matches_found) /
        static_cast<double>(quality.true_matches);
  }
  if (quality.candidate_pairs > 0) {
    quality.pairs_quality = static_cast<double>(quality.matches_found) /
                            static_cast<double>(quality.candidate_pairs);
  }
  return quality;
}

}  // namespace rulelink::blocking
