#include "blocking/rule_blocker.h"

#include <algorithm>
#include <unordered_map>

#include "util/logging.h"
#include "util/string_util.h"

namespace rulelink::blocking {

RuleBlocker::RuleBlocker(const core::RuleClassifier* classifier,
                         const ontology::Ontology* onto,
                         const std::vector<ontology::ClassId>* local_classes,
                         double min_confidence,
                         bool compare_all_when_unclassified)
    : classifier_(classifier),
      onto_(onto),
      local_classes_(local_classes),
      min_confidence_(min_confidence),
      compare_all_when_unclassified_(compare_all_when_unclassified) {
  RL_CHECK(classifier_ != nullptr);
  RL_CHECK(onto_ != nullptr);
  RL_CHECK(local_classes_ != nullptr);
}

std::vector<CandidatePair> RuleBlocker::Generate(
    const std::vector<core::Item>& external,
    const std::vector<core::Item>& local) const {
  RL_CHECK(local_classes_->size() == local.size())
      << "local_classes must parallel the local item list";

  // Class -> local item indexes (direct assertion).
  std::unordered_map<ontology::ClassId, std::vector<std::size_t>> extents;
  for (std::size_t l = 0; l < local.size(); ++l) {
    const ontology::ClassId c = (*local_classes_)[l];
    if (c != ontology::kInvalidClassId) extents[c].push_back(l);
  }

  std::vector<CandidatePair> pairs;
  std::vector<bool> in_subspace(local.size(), false);
  for (std::size_t e = 0; e < external.size(); ++e) {
    const auto predictions =
        classifier_->Classify(external[e], min_confidence_);
    if (predictions.empty()) {
      if (compare_all_when_unclassified_) {
        for (std::size_t l = 0; l < local.size(); ++l) {
          pairs.push_back(CandidatePair{e, l});
        }
      }
      continue;
    }
    std::vector<std::size_t> touched;
    const auto absorb = [&](ontology::ClassId c) {
      auto it = extents.find(c);
      if (it == extents.end()) return;
      for (std::size_t l : it->second) {
        if (!in_subspace[l]) {
          in_subspace[l] = true;
          touched.push_back(l);
        }
      }
    };
    for (const core::ClassPrediction& prediction : predictions) {
      absorb(prediction.cls);
      for (ontology::ClassId d : onto_->Descendants(prediction.cls)) {
        absorb(d);
      }
    }
    std::sort(touched.begin(), touched.end());
    for (std::size_t l : touched) {
      pairs.push_back(CandidatePair{e, l});
      in_subspace[l] = false;  // reset for the next external item
    }
  }
  return pairs;
}

namespace {

class RuleBlockIndex : public CandidateIndex {
 public:
  RuleBlockIndex(
      const core::RuleClassifier* classifier, const ontology::Ontology* onto,
      std::unordered_map<ontology::ClassId, std::vector<std::size_t>> extents,
      const std::vector<core::Item>* external, std::size_t num_local,
      double min_confidence, bool compare_all_when_unclassified)
      : classifier_(classifier),
        onto_(onto),
        extents_(std::move(extents)),
        external_(external),
        num_local_(num_local),
        min_confidence_(min_confidence),
        compare_all_when_unclassified_(compare_all_when_unclassified) {}

  void CandidatesOf(std::size_t external_index,
                    std::vector<std::size_t>* out) const override {
    out->clear();
    const auto predictions =
        classifier_->Classify((*external_)[external_index], min_confidence_);
    if (predictions.empty()) {
      if (compare_all_when_unclassified_) {
        out->resize(num_local_);
        for (std::size_t l = 0; l < num_local_; ++l) (*out)[l] = l;
      }
      return;
    }
    const auto absorb = [&](ontology::ClassId c) {
      auto it = extents_.find(c);
      if (it == extents_.end()) return;
      out->insert(out->end(), it->second.begin(), it->second.end());
    };
    for (const core::ClassPrediction& prediction : predictions) {
      absorb(prediction.cls);
      for (ontology::ClassId d : onto_->Descendants(prediction.cls)) {
        absorb(d);
      }
    }
    // Predicted classes can overlap through the hierarchy; sort + unique
    // yields the same set Generate's in_subspace bitmap deduplicates.
    std::sort(out->begin(), out->end());
    out->erase(std::unique(out->begin(), out->end()), out->end());
  }
  std::size_t num_external() const override { return external_->size(); }

 private:
  const core::RuleClassifier* classifier_;
  const ontology::Ontology* onto_;
  const std::unordered_map<ontology::ClassId, std::vector<std::size_t>>
      extents_;
  const std::vector<core::Item>* external_;
  std::size_t num_local_;
  double min_confidence_;
  bool compare_all_when_unclassified_;
};

}  // namespace

std::unique_ptr<CandidateIndex> RuleBlocker::BuildIndex(
    const std::vector<core::Item>& external,
    const std::vector<core::Item>& local) const {
  RL_CHECK(local_classes_->size() == local.size())
      << "local_classes must parallel the local item list";
  std::unordered_map<ontology::ClassId, std::vector<std::size_t>> extents;
  for (std::size_t l = 0; l < local.size(); ++l) {
    const ontology::ClassId c = (*local_classes_)[l];
    if (c != ontology::kInvalidClassId) extents[c].push_back(l);
  }
  return std::make_unique<RuleBlockIndex>(classifier_, onto_,
                                          std::move(extents), &external,
                                          local.size(), min_confidence_,
                                          compare_all_when_unclassified_);
}

std::string RuleBlocker::name() const {
  return "rule-classifier(minconf=" +
         util::FormatDouble(min_confidence_, 2) +
         (compare_all_when_unclassified_ ? ",fallback=all)" : ",fallback=skip)");
}

}  // namespace rulelink::blocking
