// Candidate-pair generation interface shared by the classic blocking
// baselines the paper surveys (§2) and by the rule-based class filter the
// paper proposes. A generator sees an external and a local item list and
// proposes the (external, local) index pairs a linker should compare.
#ifndef RULELINK_BLOCKING_BLOCKER_H_
#define RULELINK_BLOCKING_BLOCKER_H_

#include <cstddef>
#include <string>
#include <vector>

#include "core/item.h"

namespace rulelink::blocking {

struct CandidatePair {
  std::size_t external_index = 0;
  std::size_t local_index = 0;

  friend bool operator==(const CandidatePair& a, const CandidatePair& b) {
    return a.external_index == b.external_index &&
           a.local_index == b.local_index;
  }
  friend bool operator<(const CandidatePair& a, const CandidatePair& b) {
    if (a.external_index != b.external_index) {
      return a.external_index < b.external_index;
    }
    return a.local_index < b.local_index;
  }
};

class CandidateGenerator {
 public:
  virtual ~CandidateGenerator() = default;

  // Proposes candidate pairs. Pairs are deduplicated and sorted.
  virtual std::vector<CandidatePair> Generate(
      const std::vector<core::Item>& external,
      const std::vector<core::Item>& local) const = 0;

  virtual std::string name() const = 0;
};

// The naive |S_E| x |S_L| space (§3): every pair is a candidate.
class CartesianBlocker : public CandidateGenerator {
 public:
  std::vector<CandidatePair> Generate(
      const std::vector<core::Item>& external,
      const std::vector<core::Item>& local) const override;
  std::string name() const override { return "cartesian"; }
};

// Extracts the blocking key of an item: the first value of `property`,
// optionally truncated to `prefix_length` characters (0 = whole value),
// ASCII-lowercased. Shared by the key-based blockers.
std::string BlockingKey(const core::Item& item, const std::string& property,
                        std::size_t prefix_length);

}  // namespace rulelink::blocking

#endif  // RULELINK_BLOCKING_BLOCKER_H_
