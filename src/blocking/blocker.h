// Candidate-pair generation interface shared by the classic blocking
// baselines the paper surveys (§2) and by the rule-based class filter the
// paper proposes. A generator sees an external and a local item list and
// proposes the (external, local) index pairs a linker should compare.
#ifndef RULELINK_BLOCKING_BLOCKER_H_
#define RULELINK_BLOCKING_BLOCKER_H_

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "core/item.h"
#include "obs/metrics.h"

namespace rulelink::blocking {

struct CandidatePair {
  std::size_t external_index = 0;
  std::size_t local_index = 0;

  friend bool operator==(const CandidatePair& a, const CandidatePair& b) {
    return a.external_index == b.external_index &&
           a.local_index == b.local_index;
  }
  friend bool operator<(const CandidatePair& a, const CandidatePair& b) {
    if (a.external_index != b.external_index) {
      return a.external_index < b.external_index;
    }
    return a.local_index < b.local_index;
  }
};

// A per-external view of the candidate space. Instead of materializing
// every (external, local) pair into one O(candidates) vector, an index
// answers "which locals should external item e be compared against?" one
// run at a time, so a streaming consumer's working set is bounded by the
// largest single run. Indexes are immutable once built and safe to probe
// from multiple threads concurrently.
class CandidateIndex {
 public:
  virtual ~CandidateIndex() = default;

  // Replaces `out` with the local candidates of `external_index`, in
  // ascending order with no duplicates — the same locals Generate pairs
  // with that external item.
  virtual void CandidatesOf(std::size_t external_index,
                            std::vector<std::size_t>* out) const = 0;

  // Number of external items the index was built over; CandidatesOf
  // accepts indexes in [0, num_external()).
  virtual std::size_t num_external() const = 0;
};

// A local-only candidate index probed with an arbitrary query item rather
// than a pre-registered external index — the serving engine's interface.
// CandidateIndex precomputes each external item's key at build time, so it
// cannot answer items it has never seen; an ItemCandidateIndex keeps the
// inverted structure over the locals only and resolves the probe's key per
// call. Immutable once built and safe to probe from many threads; the
// caller passes its own key scratch so a warm probe allocates nothing.
class ItemCandidateIndex {
 public:
  virtual ~ItemCandidateIndex() = default;

  // Replaces `out` with the local candidates of `item`, ascending with no
  // duplicates — exactly what BuildIndex({item}, local)->CandidatesOf(0)
  // would return. `key_scratch` is a caller-owned reusable buffer for key
  // extraction (contents unspecified afterwards).
  virtual void CandidatesOfItem(const core::Item& item,
                                std::string* key_scratch,
                                std::vector<std::size_t>* out) const = 0;

  // Number of local items the index was built over.
  virtual std::size_t num_local() const = 0;
};

class CandidateGenerator {
 public:
  virtual ~CandidateGenerator() = default;

  // Proposes candidate pairs. Pairs are deduplicated and sorted.
  virtual std::vector<CandidatePair> Generate(
      const std::vector<core::Item>& external,
      const std::vector<core::Item>& local) const = 0;

  // Builds a candidate index equivalent to Generate: for every e,
  // CandidatesOf(e) returns exactly the locals Generate would pair with e.
  // The base implementation materializes Generate's output into CSR form
  // (correct for any generator, but still O(candidates) memory once);
  // blockers that already hold an inverted structure override it to answer
  // runs directly. Item vectors may be borrowed by the returned index and
  // must outlive it.
  virtual std::unique_ptr<CandidateIndex> BuildIndex(
      const std::vector<core::Item>& external,
      const std::vector<core::Item>& local) const;

  // Builds a probe-by-item index over `local` (see ItemCandidateIndex).
  // Returns null when this generator cannot probe item-at-a-time (the
  // base behaviour); key-based blockers override it. `local` may be
  // borrowed by the returned index and must outlive it.
  virtual std::unique_ptr<ItemCandidateIndex> BuildItemIndex(
      const std::vector<core::Item>& local) const;

  // Extends `base` — an index this generator previously built — with
  // `delta` items logically appended after the base's locals, without
  // re-inverting the base catalog: the returned index answers with
  // global indices, the base's candidates first and then the delta's
  // (delta locals are numbered base->num_local() + j, so the combined
  // run stays ascending and duplicate-free). Returns null when `base`
  // was built by a different generator or with different key parameters
  // (the base behaviour — extension would be unsound). The returned
  // index shares ownership of `base` and copies what it needs from
  // `delta`; `delta` is not borrowed. This is the serving engine's
  // delta publish path (DESIGN.md §5j).
  virtual std::unique_ptr<ItemCandidateIndex> ExtendItemIndex(
      std::shared_ptr<const ItemCandidateIndex> base,
      const std::vector<core::Item>& delta) const;

  virtual std::string name() const = 0;
};

// The naive |S_E| x |S_L| space (§3): every pair is a candidate.
class CartesianBlocker : public CandidateGenerator {
 public:
  std::vector<CandidatePair> Generate(
      const std::vector<core::Item>& external,
      const std::vector<core::Item>& local) const override;
  // Every run is 0..|local|-1; nothing to materialize.
  std::unique_ptr<CandidateIndex> BuildIndex(
      const std::vector<core::Item>& external,
      const std::vector<core::Item>& local) const override;
  std::unique_ptr<ItemCandidateIndex> BuildItemIndex(
      const std::vector<core::Item>& local) const override;
  std::unique_ptr<ItemCandidateIndex> ExtendItemIndex(
      std::shared_ptr<const ItemCandidateIndex> base,
      const std::vector<core::Item>& delta) const override;
  std::string name() const override { return "cartesian"; }
};

// Extracts the blocking key of an item: the first value of `property`,
// optionally truncated to `prefix_length` characters (0 = whole value),
// ASCII-lowercased. Shared by the key-based blockers.
std::string BlockingKey(const core::Item& item, const std::string& property,
                        std::size_t prefix_length);

// BlockingKey into a caller-owned buffer (cleared first, capacity reused):
// the allocation-free form the per-query probe path uses. *key is empty
// when the item has no value under `property`.
void AppendBlockingKey(const core::Item& item, const std::string& property,
                       std::size_t prefix_length, std::string* key);

// Instrumented candidate generation: runs generator.Generate under the
// "blocking/generate" stage and records the item/candidate counters.
// With a null `metrics` this is exactly generator.Generate — the linkage
// pipeline drivers route through these two wrappers so every blocker is
// observable without widening the virtual interface.
std::vector<CandidatePair> GenerateWithMetrics(
    const CandidateGenerator& generator,
    const std::vector<core::Item>& external,
    const std::vector<core::Item>& local, obs::MetricsRegistry* metrics);

// Instrumented BuildIndex under the "blocking/build_index" stage with the
// same item counters (run sizes are observed downstream by the streaming
// linker, which sees every run exactly once).
std::unique_ptr<CandidateIndex> BuildIndexWithMetrics(
    const CandidateGenerator& generator,
    const std::vector<core::Item>& external,
    const std::vector<core::Item>& local, obs::MetricsRegistry* metrics);

}  // namespace rulelink::blocking

#endif  // RULELINK_BLOCKING_BLOCKER_H_
