#include "blocking/canopy.h"

#include <algorithm>
#include <set>

#include "text/similarity.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace rulelink::blocking {

CanopyBlocker::CanopyBlocker(std::string property, double loose_threshold,
                             double tight_threshold, std::uint64_t seed)
    : property_(std::move(property)),
      loose_(loose_threshold),
      tight_(tight_threshold),
      seed_(seed) {
  RL_CHECK(loose_ <= tight_)
      << "canopy loose threshold must not exceed the tight threshold";
  RL_CHECK(loose_ > 0.0 && tight_ <= 1.0);
}

std::vector<CandidatePair> CanopyBlocker::Generate(
    const std::vector<core::Item>& external,
    const std::vector<core::Item>& local) const {
  struct Record {
    bool is_external;
    std::size_t index;
    std::vector<std::string> tokens;  // character bigrams of the key
  };
  std::vector<Record> records;
  records.reserve(external.size() + local.size());
  text::TfIdfCosine tfidf;
  const auto add = [&](const std::vector<core::Item>& items,
                       bool is_external) {
    for (std::size_t i = 0; i < items.size(); ++i) {
      const std::string key = BlockingKey(items[i], property_, 0);
      if (key.empty()) continue;
      Record record{is_external, i, text::CharacterBigrams(key)};
      tfidf.AddDocument(record.tokens);
      records.push_back(std::move(record));
    }
  };
  add(external, true);
  add(local, false);
  tfidf.Finalize();

  std::vector<bool> in_pool(records.size(), true);
  std::size_t remaining = records.size();
  util::Rng rng(seed_);
  std::set<CandidatePair> pairs;

  while (remaining > 0) {
    // Deterministic seed pick: a uniformly random pool member.
    std::size_t nth = rng.UniformUint64(remaining);
    std::size_t seed_index = 0;
    for (std::size_t i = 0; i < records.size(); ++i) {
      if (!in_pool[i]) continue;
      if (nth-- == 0) {
        seed_index = i;
        break;
      }
    }
    const Record& center = records[seed_index];
    std::vector<std::size_t> canopy;
    for (std::size_t i = 0; i < records.size(); ++i) {
      // Canonical canopy clustering: every record within the loose
      // threshold joins the canopy (tight-retired records included);
      // retirement only removes records from the CENTER pool.
      const double sim = tfidf.Similarity(center.tokens, records[i].tokens);
      if (sim >= loose_) {
        canopy.push_back(i);
        if (sim >= tight_ && in_pool[i]) {
          in_pool[i] = false;
          --remaining;
        }
      }
    }
    if (in_pool[seed_index]) {  // always retire the seed itself
      in_pool[seed_index] = false;
      --remaining;
    }
    for (std::size_t a : canopy) {
      for (std::size_t b : canopy) {
        if (!records[a].is_external || records[b].is_external) continue;
        pairs.insert(CandidatePair{records[a].index, records[b].index});
      }
    }
  }
  return {pairs.begin(), pairs.end()};
}

std::string CanopyBlocker::name() const {
  return "canopy(" + property_ + ",loose=" + util::FormatDouble(loose_, 2) +
         ",tight=" + util::FormatDouble(tight_, 2) + ")";
}

}  // namespace rulelink::blocking
