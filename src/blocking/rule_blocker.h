// The paper's approach exposed through the CandidateGenerator interface:
// classify each external item with the learnt rules, then propose only the
// local items whose class is subsumed by a predicted class. This is what
// the blocking-comparison bench pits against the classic baselines.
#ifndef RULELINK_BLOCKING_RULE_BLOCKER_H_
#define RULELINK_BLOCKING_RULE_BLOCKER_H_

#include <vector>

#include "blocking/blocker.h"
#include "core/classifier.h"
#include "ontology/ontology.h"

namespace rulelink::blocking {

class RuleBlocker : public CandidateGenerator {
 public:
  // `local_classes[l]` is the (most specific) class of local item l, or
  // ontology::kInvalidClassId for untyped items. Pointers are borrowed.
  // Items no rule fires on produce no candidates (UnclassifiedPolicy::kSkip
  // semantics); pass `compare_all_when_unclassified` to fall back to the
  // whole local source instead.
  RuleBlocker(const core::RuleClassifier* classifier,
              const ontology::Ontology* onto,
              const std::vector<ontology::ClassId>* local_classes,
              double min_confidence = 0.0,
              bool compare_all_when_unclassified = false);

  std::vector<CandidatePair> Generate(
      const std::vector<core::Item>& external,
      const std::vector<core::Item>& local) const override;
  // Keeps the class extents and classifies each external item on demand,
  // so no pair list is ever materialized. The returned index borrows
  // `external` (items are re-classified per probe) and this blocker's
  // classifier/ontology; all must outlive it.
  std::unique_ptr<CandidateIndex> BuildIndex(
      const std::vector<core::Item>& external,
      const std::vector<core::Item>& local) const override;
  std::string name() const override;

 private:
  const core::RuleClassifier* classifier_;
  const ontology::Ontology* onto_;
  const std::vector<ontology::ClassId>* local_classes_;
  double min_confidence_;
  bool compare_all_when_unclassified_;
};

}  // namespace rulelink::blocking

#endif  // RULELINK_BLOCKING_RULE_BLOCKER_H_
