#include "blocking/key_discovery.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "util/interner.h"

namespace rulelink::blocking {

std::vector<PropertyKeyness> DiscoverKeys(
    const std::vector<core::Item>& items) {
  // Property names intern to dense ids (tallies are then a flat vector);
  // each tally counts distinct values with its own interner instead of a
  // std::unordered_set<std::string>.
  struct Tally {
    std::size_t items_with_value = 0;
    std::size_t last_item = std::numeric_limits<std::size_t>::max();
    util::StringInterner values;
  };
  util::StringInterner property_names;
  std::vector<Tally> tallies;  // by property id
  for (std::size_t i = 0; i < items.size(); ++i) {
    for (const core::PropertyValue& pv : items[i].facts) {
      const util::SymbolId id = property_names.Intern(pv.property);
      if (id == tallies.size()) tallies.emplace_back();
      Tally& tally = tallies[id];
      if (tally.last_item != i) {
        tally.last_item = i;
        ++tally.items_with_value;
      }
      tally.values.Intern(pv.value);
    }
  }

  std::vector<PropertyKeyness> out;
  out.reserve(tallies.size());
  const double total = static_cast<double>(items.size());
  for (util::SymbolId id = 0; id < tallies.size(); ++id) {
    const Tally& tally = tallies[id];
    PropertyKeyness keyness;
    keyness.property = std::string(property_names.View(id));
    keyness.items_with_value = tally.items_with_value;
    keyness.distinct_values = tally.values.size();
    if (tally.items_with_value > 0) {
      keyness.uniqueness =
          static_cast<double>(keyness.distinct_values) /
          static_cast<double>(tally.items_with_value);
    }
    if (total > 0) {
      keyness.coverage =
          static_cast<double>(tally.items_with_value) / total;
    }
    keyness.score = keyness.uniqueness * keyness.coverage;
    out.push_back(std::move(keyness));
  }
  std::sort(out.begin(), out.end(),
            [](const PropertyKeyness& a, const PropertyKeyness& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.property < b.property;
            });
  return out;
}

std::string BestKeyProperty(const std::vector<core::Item>& items) {
  const auto ranked = DiscoverKeys(items);
  return ranked.empty() ? std::string() : ranked.front().property;
}

}  // namespace rulelink::blocking
