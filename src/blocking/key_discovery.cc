#include "blocking/key_discovery.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace rulelink::blocking {

std::vector<PropertyKeyness> DiscoverKeys(
    const std::vector<core::Item>& items) {
  struct Tally {
    std::size_t items_with_value = 0;
    std::unordered_set<std::string> values;
  };
  std::unordered_map<std::string, Tally> tallies;
  for (const core::Item& item : items) {
    std::unordered_set<std::string> seen_properties;
    for (const core::PropertyValue& pv : item.facts) {
      Tally& tally = tallies[pv.property];
      if (seen_properties.insert(pv.property).second) {
        ++tally.items_with_value;
      }
      tally.values.insert(pv.value);
    }
  }

  std::vector<PropertyKeyness> out;
  out.reserve(tallies.size());
  const double total = static_cast<double>(items.size());
  for (auto& [property, tally] : tallies) {
    PropertyKeyness keyness;
    keyness.property = property;
    keyness.items_with_value = tally.items_with_value;
    keyness.distinct_values = tally.values.size();
    if (tally.items_with_value > 0) {
      keyness.uniqueness =
          static_cast<double>(keyness.distinct_values) /
          static_cast<double>(tally.items_with_value);
    }
    if (total > 0) {
      keyness.coverage =
          static_cast<double>(tally.items_with_value) / total;
    }
    keyness.score = keyness.uniqueness * keyness.coverage;
    out.push_back(std::move(keyness));
  }
  std::sort(out.begin(), out.end(),
            [](const PropertyKeyness& a, const PropertyKeyness& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.property < b.property;
            });
  return out;
}

std::string BestKeyProperty(const std::vector<core::Item>& items) {
  const auto ranked = DiscoverKeys(items);
  return ranked.empty() ? std::string() : ranked.front().property;
}

}  // namespace rulelink::blocking
