// Sorted Neighbourhood (Hernández & Stolfo; adaptive variant surveyed by
// Yan et al. 2007, cited in §2): both sources are merged, sorted by a
// sorting key, and a fixed-size window slides over the sorted list; every
// cross-source pair inside the window is a candidate.
#ifndef RULELINK_BLOCKING_SORTED_NEIGHBOURHOOD_H_
#define RULELINK_BLOCKING_SORTED_NEIGHBOURHOOD_H_

#include <string>
#include <vector>

#include "blocking/blocker.h"

namespace rulelink::blocking {

class SortedNeighbourhoodBlocker : public CandidateGenerator {
 public:
  // Sorts on the full (lowercased) value of `property`; `window_size` is
  // the number of consecutive sorted records in one window (>= 2).
  SortedNeighbourhoodBlocker(std::string property, std::size_t window_size);

  std::vector<CandidatePair> Generate(
      const std::vector<core::Item>& external,
      const std::vector<core::Item>& local) const override;
  std::string name() const override;

 private:
  std::string property_;
  std::size_t window_size_;
};

}  // namespace rulelink::blocking

#endif  // RULELINK_BLOCKING_SORTED_NEIGHBOURHOOD_H_
