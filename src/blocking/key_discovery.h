// Key discovery: the approaches the paper contrasts with (§1-§2) rely on
// key constraints to partition the data; when no key is declared, a
// near-key can be mined. This module ranks the data-type properties of an
// item collection by "keyness" (uniqueness x coverage), both to feed the
// classic key-based blockers and to sanity-check the expert's property
// choice for rule learning (the part number scores ~1.0; the manufacturer
// — which the paper explicitly rejects as non-predictive — scores low).
#ifndef RULELINK_BLOCKING_KEY_DISCOVERY_H_
#define RULELINK_BLOCKING_KEY_DISCOVERY_H_

#include <string>
#include <vector>

#include "core/item.h"

namespace rulelink::blocking {

struct PropertyKeyness {
  std::string property;
  std::size_t items_with_value = 0;  // items having >= 1 value
  std::size_t distinct_values = 0;
  double uniqueness = 0.0;  // distinct_values / items_with_value
  double coverage = 0.0;    // items_with_value / total items
  double score = 0.0;       // uniqueness * coverage
};

// Ranks every property appearing in `items`, best key first. Ties break
// by property name for determinism.
std::vector<PropertyKeyness> DiscoverKeys(
    const std::vector<core::Item>& items);

// The best-scoring property, or empty when `items` carries no facts.
std::string BestKeyProperty(const std::vector<core::Item>& items);

}  // namespace rulelink::blocking

#endif  // RULELINK_BLOCKING_KEY_DISCOVERY_H_
