#include "blocking/blocker.h"

#include "util/string_util.h"

namespace rulelink::blocking {

std::vector<CandidatePair> CartesianBlocker::Generate(
    const std::vector<core::Item>& external,
    const std::vector<core::Item>& local) const {
  std::vector<CandidatePair> pairs;
  pairs.reserve(external.size() * local.size());
  for (std::size_t e = 0; e < external.size(); ++e) {
    for (std::size_t l = 0; l < local.size(); ++l) {
      pairs.push_back(CandidatePair{e, l});
    }
  }
  return pairs;
}

std::string BlockingKey(const core::Item& item, const std::string& property,
                        std::size_t prefix_length) {
  for (const auto& pv : item.facts) {
    if (pv.property == property) {
      std::string key = util::AsciiToLower(pv.value);
      if (prefix_length > 0 && key.size() > prefix_length) {
        key.resize(prefix_length);
      }
      return key;
    }
  }
  return "";
}

}  // namespace rulelink::blocking
