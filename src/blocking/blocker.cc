#include "blocking/blocker.h"

#include <algorithm>

#include "util/string_util.h"

namespace rulelink::blocking {
namespace {

// The fallback index for generators without an inverted structure of their
// own: Generate's sorted pair list in CSR form. Still O(candidates) memory
// at build time, but the streaming consumer keeps its per-run interface.
class MaterializedCandidateIndex : public CandidateIndex {
 public:
  MaterializedCandidateIndex(std::vector<CandidatePair> pairs,
                             std::size_t num_external)
      : offsets_(num_external + 1, 0) {
    locals_.reserve(pairs.size());
    for (const CandidatePair& pair : pairs) {
      ++offsets_[pair.external_index + 1];
      locals_.push_back(pair.local_index);
    }
    for (std::size_t e = 1; e < offsets_.size(); ++e) {
      offsets_[e] += offsets_[e - 1];
    }
  }

  void CandidatesOf(std::size_t external_index,
                    std::vector<std::size_t>* out) const override {
    out->assign(locals_.begin() + offsets_[external_index],
                locals_.begin() + offsets_[external_index + 1]);
  }
  std::size_t num_external() const override { return offsets_.size() - 1; }

 private:
  std::vector<std::size_t> offsets_;  // by external index
  std::vector<std::size_t> locals_;
};

class CartesianCandidateIndex : public CandidateIndex {
 public:
  CartesianCandidateIndex(std::size_t num_external, std::size_t num_local)
      : num_external_(num_external), num_local_(num_local) {}

  void CandidatesOf(std::size_t,
                    std::vector<std::size_t>* out) const override {
    out->resize(num_local_);
    for (std::size_t l = 0; l < num_local_; ++l) (*out)[l] = l;
  }
  std::size_t num_external() const override { return num_external_; }

 private:
  std::size_t num_external_;
  std::size_t num_local_;
};

class CartesianItemIndex : public ItemCandidateIndex {
 public:
  explicit CartesianItemIndex(std::size_t num_local)
      : num_local_(num_local) {}

  void CandidatesOfItem(const core::Item&, std::string*,
                        std::vector<std::size_t>* out) const override {
    out->resize(num_local_);
    for (std::size_t l = 0; l < num_local_; ++l) (*out)[l] = l;
  }
  std::size_t num_local() const override { return num_local_; }

 private:
  std::size_t num_local_;
};

}  // namespace

std::unique_ptr<CandidateIndex> CandidateGenerator::BuildIndex(
    const std::vector<core::Item>& external,
    const std::vector<core::Item>& local) const {
  return std::make_unique<MaterializedCandidateIndex>(
      Generate(external, local), external.size());
}

std::unique_ptr<ItemCandidateIndex> CandidateGenerator::BuildItemIndex(
    const std::vector<core::Item>&) const {
  // Most generators resolve candidates from the external *list* (sorting,
  // windowing, cross-item statistics) and cannot probe one unseen item;
  // the ones that can (key-based, cartesian) override this.
  return nullptr;
}

std::unique_ptr<ItemCandidateIndex> CandidateGenerator::ExtendItemIndex(
    std::shared_ptr<const ItemCandidateIndex>,
    const std::vector<core::Item>&) const {
  // A generator that cannot build an item index cannot extend one either,
  // and even an item-capable generator can only extend indexes built with
  // its own key scheme — overrides check and fall back to null.
  return nullptr;
}

std::unique_ptr<CandidateIndex> CartesianBlocker::BuildIndex(
    const std::vector<core::Item>& external,
    const std::vector<core::Item>& local) const {
  return std::make_unique<CartesianCandidateIndex>(external.size(),
                                                   local.size());
}

std::unique_ptr<ItemCandidateIndex> CartesianBlocker::BuildItemIndex(
    const std::vector<core::Item>& local) const {
  return std::make_unique<CartesianItemIndex>(local.size());
}

std::unique_ptr<ItemCandidateIndex> CartesianBlocker::ExtendItemIndex(
    std::shared_ptr<const ItemCandidateIndex> base,
    const std::vector<core::Item>& delta) const {
  // Every local is a candidate either way; the extension is just a wider
  // iota, so nothing of the base needs to be kept.
  if (dynamic_cast<const CartesianItemIndex*>(base.get()) == nullptr) {
    return nullptr;
  }
  return std::make_unique<CartesianItemIndex>(base->num_local() +
                                              delta.size());
}

std::vector<CandidatePair> CartesianBlocker::Generate(
    const std::vector<core::Item>& external,
    const std::vector<core::Item>& local) const {
  std::vector<CandidatePair> pairs;
  pairs.reserve(external.size() * local.size());
  for (std::size_t e = 0; e < external.size(); ++e) {
    for (std::size_t l = 0; l < local.size(); ++l) {
      pairs.push_back(CandidatePair{e, l});
    }
  }
  return pairs;
}

std::string BlockingKey(const core::Item& item, const std::string& property,
                        std::size_t prefix_length) {
  std::string key;
  AppendBlockingKey(item, property, prefix_length, &key);
  return key;
}

void AppendBlockingKey(const core::Item& item, const std::string& property,
                       std::size_t prefix_length, std::string* key) {
  key->clear();
  for (const auto& pv : item.facts) {
    if (pv.property != property) continue;
    // In-place equivalent of AsciiToLower + truncate: same bytes out, but
    // the caller's buffer capacity is reused.
    key->assign(pv.value, 0,
                prefix_length > 0
                    ? std::min(prefix_length, pv.value.size())
                    : pv.value.size());
    for (char& c : *key) {
      if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
    }
    return;
  }
}

std::vector<CandidatePair> GenerateWithMetrics(
    const CandidateGenerator& generator,
    const std::vector<core::Item>& external,
    const std::vector<core::Item>& local, obs::MetricsRegistry* metrics) {
  const obs::MetricsRegistry::StageScope stage(metrics, "blocking/generate");
  std::vector<CandidatePair> candidates = generator.Generate(external, local);
  if (metrics != nullptr) {
    metrics->AddCounter("blocking/external_items", external.size());
    metrics->AddCounter("blocking/local_items", local.size());
    metrics->AddCounter("blocking/candidates", candidates.size());
  }
  return candidates;
}

std::unique_ptr<CandidateIndex> BuildIndexWithMetrics(
    const CandidateGenerator& generator,
    const std::vector<core::Item>& external,
    const std::vector<core::Item>& local, obs::MetricsRegistry* metrics) {
  const obs::MetricsRegistry::StageScope stage(metrics,
                                               "blocking/build_index");
  std::unique_ptr<CandidateIndex> index =
      generator.BuildIndex(external, local);
  if (metrics != nullptr) {
    metrics->AddCounter("blocking/external_items", external.size());
    metrics->AddCounter("blocking/local_items", local.size());
  }
  return index;
}

}  // namespace rulelink::blocking
