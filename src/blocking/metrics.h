// Blocking quality metrics (Christen's standard trio): reduction ratio,
// pairs completeness, pairs quality — measured against a gold standard of
// true matching pairs.
#ifndef RULELINK_BLOCKING_METRICS_H_
#define RULELINK_BLOCKING_METRICS_H_

#include <cstdint>
#include <vector>

#include "blocking/blocker.h"

namespace rulelink::blocking {

struct BlockingQuality {
  std::uint64_t total_pairs = 0;      // |S_E| * |S_L|
  std::size_t candidate_pairs = 0;
  std::size_t true_matches = 0;       // gold size
  std::size_t matches_found = 0;      // gold pairs among the candidates
  // 1 - candidates / total: how much comparison work is saved.
  double reduction_ratio = 0.0;
  // matches_found / true_matches: recall of the match set.
  double pairs_completeness = 0.0;
  // matches_found / candidates: precision of the candidate set.
  double pairs_quality = 0.0;
};

// `candidates` need not be sorted; `gold` lists the true (external, local)
// matches. Duplicate candidates are counted once.
BlockingQuality EvaluateBlocking(const std::vector<CandidatePair>& candidates,
                                 const std::vector<CandidatePair>& gold,
                                 std::size_t num_external,
                                 std::size_t num_local);

}  // namespace rulelink::blocking

#endif  // RULELINK_BLOCKING_METRICS_H_
