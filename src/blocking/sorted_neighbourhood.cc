#include "blocking/sorted_neighbourhood.h"

#include <algorithm>
#include <set>

#include "util/logging.h"

namespace rulelink::blocking {

SortedNeighbourhoodBlocker::SortedNeighbourhoodBlocker(
    std::string property, std::size_t window_size)
    : property_(std::move(property)), window_size_(window_size) {
  RL_CHECK(window_size_ >= 2) << "window must span at least 2 records";
}

std::vector<CandidatePair> SortedNeighbourhoodBlocker::Generate(
    const std::vector<core::Item>& external,
    const std::vector<core::Item>& local) const {
  struct Entry {
    std::string key;
    bool is_external;
    std::size_t index;
  };
  std::vector<Entry> entries;
  entries.reserve(external.size() + local.size());
  for (std::size_t e = 0; e < external.size(); ++e) {
    std::string key = BlockingKey(external[e], property_, 0);
    if (!key.empty()) entries.push_back(Entry{std::move(key), true, e});
  }
  for (std::size_t l = 0; l < local.size(); ++l) {
    std::string key = BlockingKey(local[l], property_, 0);
    if (!key.empty()) entries.push_back(Entry{std::move(key), false, l});
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) {
              if (a.key != b.key) return a.key < b.key;
              if (a.is_external != b.is_external) return a.is_external;
              return a.index < b.index;
            });

  std::set<CandidatePair> pairs;
  const auto add_pair = [&pairs](const Entry& a, const Entry& b) {
    if (a.is_external == b.is_external) return;
    const Entry& ext = a.is_external ? a : b;
    const Entry& loc = a.is_external ? b : a;
    pairs.insert(CandidatePair{ext.index, loc.index});
  };
  if (entries.size() >= 2) {
    const std::size_t window = std::min(window_size_, entries.size());
    // First window: all pairs inside it.
    for (std::size_t i = 0; i < window; ++i) {
      for (std::size_t j = i + 1; j < window; ++j) {
        add_pair(entries[i], entries[j]);
      }
    }
    // Each slide adds one record; pair it with the rest of its window.
    for (std::size_t start = 1; start + window <= entries.size(); ++start) {
      const Entry& last = entries[start + window - 1];
      for (std::size_t i = start; i + 1 < start + window; ++i) {
        add_pair(entries[i], last);
      }
    }
  }
  return {pairs.begin(), pairs.end()};
}

std::string SortedNeighbourhoodBlocker::name() const {
  return "sorted-neighbourhood(" + property_ + ",w=" +
         std::to_string(window_size_) + ")";
}

}  // namespace rulelink::blocking
