#include "blocking/standard_blocking.h"

#include <algorithm>
#include <vector>

#include "util/interner.h"

namespace rulelink::blocking {

StandardBlocker::StandardBlocker(std::string property,
                                 std::size_t prefix_length)
    : property_(std::move(property)), prefix_length_(prefix_length) {}

std::vector<CandidatePair> StandardBlocker::Generate(
    const std::vector<core::Item>& external,
    const std::vector<core::Item>& local) const {
  // Keys are interned to dense ids; the block index is then a flat
  // vector-of-vectors instead of a string-keyed hash map, and the probe
  // side never allocates map nodes (Find is read-only).
  util::StringInterner keys;
  std::vector<std::vector<std::size_t>> blocks;  // by key id
  for (std::size_t l = 0; l < local.size(); ++l) {
    const std::string key = BlockingKey(local[l], property_, prefix_length_);
    if (key.empty()) continue;
    const util::SymbolId id = keys.Intern(key);
    if (id == blocks.size()) blocks.emplace_back();
    blocks[id].push_back(l);
  }
  std::vector<CandidatePair> pairs;
  for (std::size_t e = 0; e < external.size(); ++e) {
    const std::string key = BlockingKey(external[e], property_, prefix_length_);
    if (key.empty()) continue;
    const util::SymbolId id = keys.Find(key);
    if (id == util::kInvalidSymbolId) continue;
    for (std::size_t l : blocks[id]) pairs.push_back(CandidatePair{e, l});
  }
  std::sort(pairs.begin(), pairs.end());
  return pairs;
}

namespace {

class StandardBlockIndex : public CandidateIndex {
 public:
  StandardBlockIndex(std::vector<std::vector<std::size_t>> blocks,
                     std::vector<util::SymbolId> external_key)
      : blocks_(std::move(blocks)), external_key_(std::move(external_key)) {}

  void CandidatesOf(std::size_t external_index,
                    std::vector<std::size_t>* out) const override {
    const util::SymbolId id = external_key_[external_index];
    if (id == util::kInvalidSymbolId) {
      out->clear();
      return;
    }
    // Locals were inserted in ascending order, so each block already is a
    // sorted-unique run.
    out->assign(blocks_[id].begin(), blocks_[id].end());
  }
  std::size_t num_external() const override { return external_key_.size(); }

 private:
  std::vector<std::vector<std::size_t>> blocks_;  // by key id
  std::vector<util::SymbolId> external_key_;      // by external index
};

class StandardItemIndex : public ItemCandidateIndex {
 public:
  StandardItemIndex(std::string property, std::size_t prefix_length,
                    util::StringInterner keys,
                    std::vector<std::vector<std::size_t>> blocks,
                    std::size_t num_local)
      : property_(std::move(property)),
        prefix_length_(prefix_length),
        keys_(std::move(keys)),
        blocks_(std::move(blocks)),
        num_local_(num_local) {}

  void CandidatesOfItem(const core::Item& item, std::string* key_scratch,
                        std::vector<std::size_t>* out) const override {
    AppendBlockingKey(item, property_, prefix_length_, key_scratch);
    if (key_scratch->empty()) {
      out->clear();
      return;
    }
    // Find never mutates the interner, so concurrent probes are safe.
    const util::SymbolId id = keys_.Find(*key_scratch);
    if (id == util::kInvalidSymbolId) {
      out->clear();
      return;
    }
    out->assign(blocks_[id].begin(), blocks_[id].end());
  }
  std::size_t num_local() const override { return num_local_; }

  const std::string& property() const { return property_; }
  std::size_t prefix_length() const { return prefix_length_; }

 private:
  std::string property_;
  std::size_t prefix_length_;
  util::StringInterner keys_;
  std::vector<std::vector<std::size_t>> blocks_;  // by key id
  std::size_t num_local_;
};

// One delta layer over a shared base index: the base answers first (its
// indices are all < base->num_local()), then this layer appends its own
// postings, which carry global indices past the base's — so the combined
// run is ascending and duplicate-free by construction. Probing re-derives
// the key per layer (AppendBlockingKey into the caller's scratch), which
// keeps layers independent of each other's interner numbering.
class DeltaStandardItemIndex : public ItemCandidateIndex {
 public:
  DeltaStandardItemIndex(std::shared_ptr<const ItemCandidateIndex> base,
                         std::string property, std::size_t prefix_length,
                         util::StringInterner keys,
                         std::vector<std::vector<std::size_t>> blocks,
                         std::size_t num_local)
      : base_(std::move(base)),
        property_(std::move(property)),
        prefix_length_(prefix_length),
        keys_(std::move(keys)),
        blocks_(std::move(blocks)),
        num_local_(num_local) {}

  void CandidatesOfItem(const core::Item& item, std::string* key_scratch,
                        std::vector<std::size_t>* out) const override {
    base_->CandidatesOfItem(item, key_scratch, out);
    AppendBlockingKey(item, property_, prefix_length_, key_scratch);
    if (key_scratch->empty()) return;
    const util::SymbolId id = keys_.Find(*key_scratch);
    if (id == util::kInvalidSymbolId) return;
    out->insert(out->end(), blocks_[id].begin(), blocks_[id].end());
  }
  std::size_t num_local() const override { return num_local_; }

  const std::string& property() const { return property_; }
  std::size_t prefix_length() const { return prefix_length_; }

 private:
  std::shared_ptr<const ItemCandidateIndex> base_;
  std::string property_;
  std::size_t prefix_length_;
  util::StringInterner keys_;
  std::vector<std::vector<std::size_t>> blocks_;  // by key id, global indices
  std::size_t num_local_;
};

}  // namespace

std::unique_ptr<CandidateIndex> StandardBlocker::BuildIndex(
    const std::vector<core::Item>& external,
    const std::vector<core::Item>& local) const {
  // Same block construction as Generate, but instead of expanding the
  // cross product we keep the blocks and each external item's key id.
  util::StringInterner keys;
  std::vector<std::vector<std::size_t>> blocks;  // by key id
  for (std::size_t l = 0; l < local.size(); ++l) {
    const std::string key = BlockingKey(local[l], property_, prefix_length_);
    if (key.empty()) continue;
    const util::SymbolId id = keys.Intern(key);
    if (id == blocks.size()) blocks.emplace_back();
    blocks[id].push_back(l);
  }
  std::vector<util::SymbolId> external_key(external.size(),
                                           util::kInvalidSymbolId);
  for (std::size_t e = 0; e < external.size(); ++e) {
    const std::string key = BlockingKey(external[e], property_, prefix_length_);
    if (key.empty()) continue;
    external_key[e] = keys.Find(key);
  }
  return std::make_unique<StandardBlockIndex>(std::move(blocks),
                                              std::move(external_key));
}

std::unique_ptr<ItemCandidateIndex> StandardBlocker::BuildItemIndex(
    const std::vector<core::Item>& local) const {
  // The local half of BuildIndex, kept probe-ready: the interner resolves
  // any query item's key with a read-only Find at serve time.
  util::StringInterner keys;
  std::vector<std::vector<std::size_t>> blocks;  // by key id
  for (std::size_t l = 0; l < local.size(); ++l) {
    const std::string key = BlockingKey(local[l], property_, prefix_length_);
    if (key.empty()) continue;
    const util::SymbolId id = keys.Intern(key);
    if (id == blocks.size()) blocks.emplace_back();
    blocks[id].push_back(l);
  }
  return std::make_unique<StandardItemIndex>(property_, prefix_length_,
                                             std::move(keys),
                                             std::move(blocks), local.size());
}

std::unique_ptr<ItemCandidateIndex> StandardBlocker::ExtendItemIndex(
    std::shared_ptr<const ItemCandidateIndex> base,
    const std::vector<core::Item>& delta) const {
  if (base == nullptr) return nullptr;
  // Only an index built with this exact key scheme can be extended: the
  // delta layer must block on the same (property, prefix) or the combined
  // index would mix incompatible keys.
  const std::string* base_property = nullptr;
  std::size_t base_prefix = 0;
  if (const auto* flat = dynamic_cast<const StandardItemIndex*>(base.get())) {
    base_property = &flat->property();
    base_prefix = flat->prefix_length();
  } else if (const auto* layered =
                 dynamic_cast<const DeltaStandardItemIndex*>(base.get())) {
    base_property = &layered->property();
    base_prefix = layered->prefix_length();
  } else {
    return nullptr;
  }
  if (*base_property != property_ || base_prefix != prefix_length_) {
    return nullptr;
  }
  const std::size_t offset = base->num_local();
  util::StringInterner keys;
  std::vector<std::vector<std::size_t>> blocks;  // by key id
  for (std::size_t j = 0; j < delta.size(); ++j) {
    const std::string key = BlockingKey(delta[j], property_, prefix_length_);
    if (key.empty()) continue;
    const util::SymbolId id = keys.Intern(key);
    if (id == blocks.size()) blocks.emplace_back();
    blocks[id].push_back(offset + j);
  }
  return std::make_unique<DeltaStandardItemIndex>(
      std::move(base), property_, prefix_length_, std::move(keys),
      std::move(blocks), offset + delta.size());
}

std::string StandardBlocker::name() const {
  return "standard(" + property_ + "," + std::to_string(prefix_length_) + ")";
}

}  // namespace rulelink::blocking
