#include "blocking/standard_blocking.h"

#include <algorithm>
#include <vector>

#include "util/interner.h"

namespace rulelink::blocking {

StandardBlocker::StandardBlocker(std::string property,
                                 std::size_t prefix_length)
    : property_(std::move(property)), prefix_length_(prefix_length) {}

std::vector<CandidatePair> StandardBlocker::Generate(
    const std::vector<core::Item>& external,
    const std::vector<core::Item>& local) const {
  // Keys are interned to dense ids; the block index is then a flat
  // vector-of-vectors instead of a string-keyed hash map, and the probe
  // side never allocates map nodes (Find is read-only).
  util::StringInterner keys;
  std::vector<std::vector<std::size_t>> blocks;  // by key id
  for (std::size_t l = 0; l < local.size(); ++l) {
    const std::string key = BlockingKey(local[l], property_, prefix_length_);
    if (key.empty()) continue;
    const util::SymbolId id = keys.Intern(key);
    if (id == blocks.size()) blocks.emplace_back();
    blocks[id].push_back(l);
  }
  std::vector<CandidatePair> pairs;
  for (std::size_t e = 0; e < external.size(); ++e) {
    const std::string key = BlockingKey(external[e], property_, prefix_length_);
    if (key.empty()) continue;
    const util::SymbolId id = keys.Find(key);
    if (id == util::kInvalidSymbolId) continue;
    for (std::size_t l : blocks[id]) pairs.push_back(CandidatePair{e, l});
  }
  std::sort(pairs.begin(), pairs.end());
  return pairs;
}

std::string StandardBlocker::name() const {
  return "standard(" + property_ + "," + std::to_string(prefix_length_) + ")";
}

}  // namespace rulelink::blocking
