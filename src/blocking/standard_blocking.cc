#include "blocking/standard_blocking.h"

#include <algorithm>
#include <unordered_map>

namespace rulelink::blocking {

StandardBlocker::StandardBlocker(std::string property,
                                 std::size_t prefix_length)
    : property_(std::move(property)), prefix_length_(prefix_length) {}

std::vector<CandidatePair> StandardBlocker::Generate(
    const std::vector<core::Item>& external,
    const std::vector<core::Item>& local) const {
  std::unordered_map<std::string, std::vector<std::size_t>> local_blocks;
  for (std::size_t l = 0; l < local.size(); ++l) {
    std::string key = BlockingKey(local[l], property_, prefix_length_);
    if (!key.empty()) local_blocks[std::move(key)].push_back(l);
  }
  std::vector<CandidatePair> pairs;
  for (std::size_t e = 0; e < external.size(); ++e) {
    const std::string key = BlockingKey(external[e], property_, prefix_length_);
    if (key.empty()) continue;
    auto it = local_blocks.find(key);
    if (it == local_blocks.end()) continue;
    for (std::size_t l : it->second) pairs.push_back(CandidatePair{e, l});
  }
  std::sort(pairs.begin(), pairs.end());
  return pairs;
}

std::string StandardBlocker::name() const {
  return "standard(" + property_ + "," + std::to_string(prefix_length_) + ")";
}

}  // namespace rulelink::blocking
