#include "blocking/adaptive_sn.h"

#include <algorithm>

#include "text/similarity.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace rulelink::blocking {

AdaptiveSortedNeighbourhoodBlocker::AdaptiveSortedNeighbourhoodBlocker(
    std::string property, double boundary_similarity, std::size_t max_block)
    : property_(std::move(property)),
      boundary_similarity_(boundary_similarity),
      max_block_(max_block) {
  RL_CHECK(boundary_similarity_ > 0.0 && boundary_similarity_ <= 1.0);
  RL_CHECK(max_block_ >= 2);
}

std::vector<CandidatePair> AdaptiveSortedNeighbourhoodBlocker::Generate(
    const std::vector<core::Item>& external,
    const std::vector<core::Item>& local) const {
  struct Entry {
    std::string key;
    bool is_external;
    std::size_t index;
  };
  std::vector<Entry> entries;
  entries.reserve(external.size() + local.size());
  for (std::size_t e = 0; e < external.size(); ++e) {
    std::string key = BlockingKey(external[e], property_, 0);
    if (!key.empty()) entries.push_back(Entry{std::move(key), true, e});
  }
  for (std::size_t l = 0; l < local.size(); ++l) {
    std::string key = BlockingKey(local[l], property_, 0);
    if (!key.empty()) entries.push_back(Entry{std::move(key), false, l});
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) {
              if (a.key != b.key) return a.key < b.key;
              if (a.is_external != b.is_external) return a.is_external;
              return a.index < b.index;
            });

  std::vector<CandidatePair> pairs;
  std::size_t block_start = 0;
  const auto emit_block = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      if (!entries[i].is_external) continue;
      for (std::size_t j = begin; j < end; ++j) {
        if (entries[j].is_external) continue;
        pairs.push_back(
            CandidatePair{entries[i].index, entries[j].index});
      }
    }
  };
  for (std::size_t i = 1; i <= entries.size(); ++i) {
    const bool boundary =
        i == entries.size() ||
        i - block_start >= max_block_ ||
        text::JaroWinklerSimilarity(entries[i - 1].key, entries[i].key) <
            boundary_similarity_;
    if (boundary) {
      emit_block(block_start, i);
      block_start = i;
    }
  }
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  return pairs;
}

std::string AdaptiveSortedNeighbourhoodBlocker::name() const {
  return "adaptive-sn(" + property_ + ",b=" +
         util::FormatDouble(boundary_similarity_, 2) + ")";
}

}  // namespace rulelink::blocking
