// Supervised blocking-scheme selection: given the expert's validated
// links (the same TS the rule learner uses), evaluate a portfolio of
// candidate blocking schemes on a sample and rank them by an
// F-measure-style combination of pairs completeness and reduction ratio.
// This automates the "identified (subset of) attributes" the classic
// blocking methods of §2 presuppose.
#ifndef RULELINK_BLOCKING_SCHEME_SELECTOR_H_
#define RULELINK_BLOCKING_SCHEME_SELECTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "blocking/blocker.h"
#include "blocking/metrics.h"

namespace rulelink::blocking {

struct SchemeScore {
  std::string name;
  BlockingQuality quality;
  // Harmonic mean of pairs completeness and reduction ratio (beta = 1);
  // the standard scalarization for blocking-scheme learning.
  double score = 0.0;
};

struct SchemeSelectorOptions {
  // Cap on sampled items per side; 0 = use everything.
  std::size_t sample_limit = 1000;
  // Weight of completeness vs reduction in the F-measure (beta > 1 favors
  // completeness).
  double beta = 1.0;
};

// Evaluates every generator against the gold matches restricted to the
// sample and returns them ranked, best first. Generators are borrowed.
std::vector<SchemeScore> RankSchemes(
    const std::vector<const CandidateGenerator*>& generators,
    const std::vector<core::Item>& external,
    const std::vector<core::Item>& local,
    const std::vector<CandidatePair>& gold,
    const SchemeSelectorOptions& options = SchemeSelectorOptions());

// Builds the default candidate portfolio over `property`: standard
// blocking with several prefix lengths, sorted neighbourhood with several
// windows, bi-gram indexing, and suffix blocking. The returned generators
// own their configuration.
std::vector<std::unique_ptr<CandidateGenerator>> DefaultSchemePortfolio(
    const std::string& property);

}  // namespace rulelink::blocking

#endif  // RULELINK_BLOCKING_SCHEME_SELECTOR_H_
