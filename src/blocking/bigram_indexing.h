// Bi-gram indexing (Baxter, Christen & Churches 2003, cited in §2): the
// blocking key value is converted into its character bigram list; sub-lists
// of length ceil(threshold * len) over the sorted bigram list are generated
// and inserted into an inverted index, so records sharing any sub-list key
// become candidates. Lower thresholds tolerate more typos but create more
// keys.
#ifndef RULELINK_BLOCKING_BIGRAM_INDEXING_H_
#define RULELINK_BLOCKING_BIGRAM_INDEXING_H_

#include <string>
#include <vector>

#include "blocking/blocker.h"

namespace rulelink::blocking {

class BigramBlocker : public CandidateGenerator {
 public:
  // `threshold` in (0, 1]: the fraction of a record's bigrams a sub-list
  // must keep. `max_sublists_per_record` caps the combinatorial explosion
  // for long values (the canonical algorithm enumerates all C(n, k)
  // combinations); the cap keeps the lexicographically first combinations.
  BigramBlocker(std::string property, double threshold,
                std::size_t max_sublists_per_record = 256);

  std::vector<CandidatePair> Generate(
      const std::vector<core::Item>& external,
      const std::vector<core::Item>& local) const override;
  std::string name() const override;

  // Exposed for tests: the sub-list index keys of one key value.
  std::vector<std::string> SublistKeys(const std::string& value) const;

 private:
  std::string property_;
  double threshold_;
  std::size_t max_sublists_;
};

}  // namespace rulelink::blocking

#endif  // RULELINK_BLOCKING_BIGRAM_INDEXING_H_
