// Canopy clustering blocker (McCallum, Nigam & Ungar): records are grouped
// into overlapping canopies using a cheap TF-IDF cosine over character
// bigrams; only intra-canopy cross-source pairs become candidates. The
// classic alternative to key-based blocking when no clean key exists.
#ifndef RULELINK_BLOCKING_CANOPY_H_
#define RULELINK_BLOCKING_CANOPY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "blocking/blocker.h"

namespace rulelink::blocking {

class CanopyBlocker : public CandidateGenerator {
 public:
  // loose <= tight is required (cosine similarities: a record within
  // `tight` of the canopy seed is removed from the pool; within `loose`
  // it joins the canopy). `seed` drives the deterministic seed choice.
  CanopyBlocker(std::string property, double loose_threshold,
                double tight_threshold, std::uint64_t seed = 42);

  std::vector<CandidatePair> Generate(
      const std::vector<core::Item>& external,
      const std::vector<core::Item>& local) const override;
  std::string name() const override;

 private:
  std::string property_;
  double loose_;
  double tight_;
  std::uint64_t seed_;
};

}  // namespace rulelink::blocking

#endif  // RULELINK_BLOCKING_CANOPY_H_
