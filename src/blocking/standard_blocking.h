// Standard key blocking (Jaro 1989, as recalled in §2): items sharing the
// same blocking key — e.g. the first five characters of a name — fall in
// the same block, and only intra-block cross-source pairs are compared.
#ifndef RULELINK_BLOCKING_STANDARD_BLOCKING_H_
#define RULELINK_BLOCKING_STANDARD_BLOCKING_H_

#include <string>
#include <vector>

#include "blocking/blocker.h"

namespace rulelink::blocking {

class StandardBlocker : public CandidateGenerator {
 public:
  // Blocks on the first `prefix_length` characters (0 = full value) of
  // `property`. Items with an empty key are never candidates.
  StandardBlocker(std::string property, std::size_t prefix_length);

  std::vector<CandidatePair> Generate(
      const std::vector<core::Item>& external,
      const std::vector<core::Item>& local) const override;
  // The block structure already is an inverted index over keys, so the
  // index stores it directly (plus each external item's resolved key id)
  // instead of materializing the pair list. Borrows nothing.
  std::unique_ptr<CandidateIndex> BuildIndex(
      const std::vector<core::Item>& external,
      const std::vector<core::Item>& local) const override;
  // Probe-by-item form: keeps the blocks plus the key interner and
  // resolves each query item's key at probe time with a read-only Find —
  // no allocation beyond the caller's key scratch. Runs are identical to
  // BuildIndex's for the same item.
  std::unique_ptr<ItemCandidateIndex> BuildItemIndex(
      const std::vector<core::Item>& local) const override;
  // Extends a BuildItemIndex/ExtendItemIndex result of a StandardBlocker
  // with the same (property, prefix) key scheme: the delta items get their
  // own small key interner + blocks keyed with global indices past the
  // base's locals, and probes answer base-then-delta. Chains freely — the
  // K-th delta publish probes K small delta layers plus the original
  // inverted index. Returns null for a foreign or key-mismatched base.
  std::unique_ptr<ItemCandidateIndex> ExtendItemIndex(
      std::shared_ptr<const ItemCandidateIndex> base,
      const std::vector<core::Item>& delta) const override;
  std::string name() const override;

 private:
  std::string property_;
  std::size_t prefix_length_;
};

}  // namespace rulelink::blocking

#endif  // RULELINK_BLOCKING_STANDARD_BLOCKING_H_
