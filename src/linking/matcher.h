// Pairwise item matching: weighted combination of per-attribute string
// similarities. This is the expensive comparison step the paper's rules
// exist to avoid running on the full cartesian space.
#ifndef RULELINK_LINKING_MATCHER_H_
#define RULELINK_LINKING_MATCHER_H_

#include <string>
#include <string_view>
#include <vector>

#include "core/item.h"

namespace rulelink::linking {

enum class SimilarityMeasure {
  kExact,
  kLevenshtein,
  kJaro,
  kJaroWinkler,
  kJaccardTokens,
  kDiceBigram,
  kMongeElkan,
};

// Dispatches to the text:: similarity functions; kExact returns 1.0 on
// equality and 0.0 otherwise.
double ComputeSimilarity(SimilarityMeasure measure, std::string_view a,
                         std::string_view b);

const char* SimilarityMeasureName(SimilarityMeasure measure);

// One attribute comparison: which property to read on each side, which
// measure to apply, and its weight in the aggregate.
struct AttributeRule {
  std::string external_property;
  std::string local_property;
  SimilarityMeasure measure = SimilarityMeasure::kJaroWinkler;
  double weight = 1.0;
};

class ItemMatcher {
 public:
  explicit ItemMatcher(std::vector<AttributeRule> rules);

  // Weighted mean over attribute rules of the best value-pair similarity.
  // Rules whose property is missing on either side are skipped and the
  // weights renormalized; if every rule is skipped the score is 0.
  double Score(const core::Item& external, const core::Item& local) const;

  const std::vector<AttributeRule>& rules() const { return rules_; }

 private:
  std::vector<AttributeRule> rules_;
};

}  // namespace rulelink::linking

#endif  // RULELINK_LINKING_MATCHER_H_
