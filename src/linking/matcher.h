// Pairwise item matching: weighted combination of per-attribute string
// similarities. This is the expensive comparison step the paper's rules
// exist to avoid running on the full cartesian space.
#ifndef RULELINK_LINKING_MATCHER_H_
#define RULELINK_LINKING_MATCHER_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/item.h"

namespace rulelink::linking {

class FeatureCache;  // feature_cache.h; broken include cycle

enum class SimilarityMeasure {
  kExact,
  kLevenshtein,
  kJaro,
  kJaroWinkler,
  kJaccardTokens,
  kDiceBigram,
  kMongeElkan,
};

inline constexpr std::size_t kNumSimilarityMeasures = 7;

// Dispatches to the text:: similarity functions; kExact returns 1.0 on
// equality and 0.0 otherwise.
double ComputeSimilarity(SimilarityMeasure measure, std::string_view a,
                         std::string_view b);

const char* SimilarityMeasureName(SimilarityMeasure measure);

// One attribute comparison: which property to read on each side, which
// measure to apply, and its weight in the aggregate.
struct AttributeRule {
  std::string external_property;
  std::string local_property;
  SimilarityMeasure measure = SimilarityMeasure::kJaroWinkler;
  double weight = 1.0;
};

// Counters of the cached-score memo (see ScoreMemo below). These depend
// on how work was chunked across workers — unlike the scores themselves —
// so they live outside LinkerStats and are reported by benchmarks only.
struct ScoreMemoStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;

  void Add(const ScoreMemoStats& other) {
    lookups += other.lookups;
    hits += other.hits;
  }
  double hit_rate() const {
    return lookups == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(lookups);
  }
};

// Memo table for the cached-score path, keyed by (value-id, value-id,
// measure). Part catalogs repeat values heavily, so the same value pair is
// scored over and over across candidate pairs; an entry is a pure function
// of the two strings, so replaying it is always exact. Only the
// character-level measures (Levenshtein, Jaro, Jaro-Winkler, Monge-Elkan)
// consult it: their O(|a|*|b|) cost dwarfs a hash probe, whereas the
// id-based set measures are already cheaper than the probe itself.
// Not thread-safe: each linker worker keeps its own memo.
class ScoreMemo {
 public:
  void Clear() {
    for (auto& map : by_measure_) map.clear();
    stats_ = ScoreMemoStats();
  }
  const ScoreMemoStats& stats() const { return stats_; }

  // Internal accessors for the cached scorer; not meant for callers.
  std::unordered_map<std::uint64_t, double>& map_for(
      std::size_t measure_index) {
    return by_measure_[measure_index];
  }
  ScoreMemoStats& mutable_stats() { return stats_; }

 private:
  std::array<std::unordered_map<std::uint64_t, double>,
             kNumSimilarityMeasures>
      by_measure_;
  ScoreMemoStats stats_;
};

class ItemMatcher {
 public:
  explicit ItemMatcher(std::vector<AttributeRule> rules);

  // Weighted mean over attribute rules of the best value-pair similarity.
  // Rules whose property is missing on either side are skipped and the
  // weights renormalized; if every rule is skipped the score is 0.
  // `measures_computed` (optional) is incremented once per similarity
  // kernel actually executed (one per value pair per active rule).
  double Score(const core::Item& external, const core::Item& local,
               std::uint64_t* measures_computed = nullptr) const;

  // The same score computed from precomputed features: byte-identical to
  // Score() on the items the caches were built from, but measure dispatch
  // is hoisted out of the value-pair loop, token measures run as
  // sort-merges over dense ids instead of re-tokenizing strings, and
  // `memo` (optional) short-circuits repeated (value, value, measure)
  // triples. Both caches must have been built against this matcher and
  // share one FeatureDictionary.
  // `measures_computed` counts kernels actually run: memo hits are replays,
  // not computations, so they do not count (which makes the counter depend
  // on memo state, unlike the score itself); kExact counts the id pairs it
  // examined before short-circuiting.
  double ScoreCached(const FeatureCache& external_features,
                     std::size_t external_index,
                     const FeatureCache& local_features,
                     std::size_t local_index,
                     ScoreMemo* memo = nullptr,
                     std::uint64_t* measures_computed = nullptr) const;

  const std::vector<AttributeRule>& rules() const { return rules_; }

 private:
  std::vector<AttributeRule> rules_;
};

}  // namespace rulelink::linking

#endif  // RULELINK_LINKING_MATCHER_H_
