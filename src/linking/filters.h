// Threshold-aware filter cascade for the streaming linker: cheap, *sound*
// upper bounds on the aggregate match score, evaluated on FeatureCache
// data before any similarity kernel runs. A pair is pruned only when the
// bound proves its score would land below the linker threshold, so the
// surviving pairs — and therefore the emitted links — are exactly the
// ones the unfiltered scorer produces (the soundness argument, including
// why IEEE rounding cannot flip a decision, is in DESIGN.md §5e).
#ifndef RULELINK_LINKING_FILTERS_H_
#define RULELINK_LINKING_FILTERS_H_

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "linking/feature_cache.h"
#include "linking/matcher.h"

namespace rulelink::linking {

// Prune counters. A pruned pair increments every filter whose bound was
// below the optimistic 1.0 for some active rule, so the per-filter
// counters can sum to more than `pairs_pruned`. Folded into LinkerStats
// by the streaming linker.
struct FilterStats {
  std::uint64_t pairs_pruned = 0;
  std::uint64_t by_length = 0;        // Levenshtein length-difference bound
  std::uint64_t by_token_count = 0;   // Jaccard/Dice token/bigram counts
  std::uint64_t by_exact = 0;         // kExact id mismatch
  std::uint64_t by_distance_cap = 0;  // capped bit-parallel probe (stage B)

  void Add(const FilterStats& other) {
    pairs_pruned += other.pairs_pruned;
    by_length += other.by_length;
    by_token_count += other.by_token_count;
    by_exact += other.by_exact;
    by_distance_cap += other.by_distance_cap;
  }
};

// Reusable per-worker scratch for FilterCascade::PruneBatch: accumulator
// lanes, gather buffers and stage-B probe staging, plus the output bitmap.
// Owned by the caller (one per streaming shard) so a run's batch pass
// allocates nothing after warm-up. `pruned[i]` is 1 when candidate i of
// the last PruneBatch call was pruned. The batched/remainder counters
// accumulate across calls (candidate pairs through the SoA lane path vs
// the per-pair fallback) for the "simd" observability section; the caller
// folds them into util::AddSimdCascadePairs once per run.
struct FilterBatchScratch {
  // Per-candidate stage-A accumulators (exactly Prune's locals, as lanes).
  std::vector<double> bound_sum;
  std::vector<double> weight_total;
  std::vector<double> lev_bound;  // num-Levenshtein-rules rows of n lanes
  std::vector<std::uint8_t> flags;  // participation bits for FilterStats
  std::vector<std::uint8_t> state;  // 0 undecided / 1 pruned / 2 keep
  // Gathered local-side lanes for the rule being evaluated.
  std::vector<std::uint32_t> lane_scalar;
  std::vector<ValueId> lane_id;
  // Stage-B probe staging for BoundedLevenshteinDistanceBatch.
  std::vector<std::string_view> probe_a;
  std::vector<std::string_view> probe_b;
  std::vector<std::size_t> probe_cap;
  std::vector<std::size_t> probe_out;
  std::vector<std::size_t> probe_pair;     // candidate index per probe
  std::vector<std::size_t> probe_longest;  // max value length per probe
  std::vector<double> probe_floor;         // floor_cap per probe
  // Output bitmap of the last call.
  std::vector<std::uint8_t> pruned;
  // Cascade pair counters, caller-folded into the process totals.
  std::uint64_t batched_pairs = 0;
  std::uint64_t remainder_pairs = 0;
};

class FilterCascade {
 public:
  // `matcher` is borrowed and must outlive the cascade; `threshold` is the
  // linker's decision threshold in [0, 1].
  FilterCascade(const ItemMatcher* matcher, double threshold);

  // True when the pair's aggregate score is provably below the threshold.
  // Stage A combines per-rule upper bounds (length gap for Levenshtein,
  // count bounds for Jaccard/Dice, the exact id scan for kExact, 1.0 for
  // everything else) with the matcher's weight renormalization; stage B
  // spends a capped bit-parallel Levenshtein probe per surviving
  // Levenshtein rule. Thread-safe: no mutable state.
  bool Prune(const FeatureCache& external_features,
             std::size_t external_index,
             const FeatureCache& local_features, std::size_t local_index,
             FilterStats* stats) const;

  // Batched Prune over one external item's whole candidate run: fills
  // scratch->pruned[i] with Prune(ext, e, loc, candidates[i], stats) for
  // every i < count, updating `stats` exactly as the per-pair calls would
  // (same decisions, same counters — the arithmetic per lane is the very
  // expression Prune evaluates, so the results are byte-identical; see
  // DESIGN.md §5h). Pairs whose items carry multi-valued slots take the
  // per-pair path internally. Stage A runs over the FeatureCache SoA
  // lanes through an ISA-dispatched elementwise kernel
  // (util::ActiveSimdMode()); stage B collects its capped probes into
  // text::BoundedLevenshteinDistanceBatch. Thread-safe as long as each
  // worker owns its scratch.
  void PruneBatch(const FeatureCache& external_features,
                  std::size_t external_index,
                  const FeatureCache& local_features,
                  const std::size_t* candidates, std::size_t count,
                  FilterStats* stats, FilterBatchScratch* scratch) const;

  double threshold() const { return threshold_; }

 private:
  enum class Kind : std::uint8_t {
    kOptimistic,   // no cheap bound: assume 1.0
    kLevenshtein,  // length-difference bound + capped probe
    kJaccard,      // unique-token count bound
    kDice,         // bigram count bound
    kExact,        // evaluated exactly on value ids
  };
  struct Plan {
    Kind kind = Kind::kOptimistic;
    double weight = 1.0;
  };

  const ItemMatcher* matcher_;
  double threshold_;
  std::vector<Plan> plans_;  // positional, parallel to matcher_->rules()
  bool any_levenshtein_ = false;
};

}  // namespace rulelink::linking

#endif  // RULELINK_LINKING_FILTERS_H_
