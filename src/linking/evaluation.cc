#include "linking/evaluation.h"

#include <algorithm>

#include "linking/feature_cache.h"
#include "linking/streaming_linker.h"

namespace rulelink::linking {
namespace {

// Records the pipeline-level outcome common to both drivers: dictionary
// gauges plus — when a gold standard was evaluated — the quality counters
// and derived gauges. Dictionary sizes and quality counts are functions of
// the input alone (never of the chunking), so they belong in the
// deterministic snapshot.
void RecordPipelineMetrics(const LinkagePipelineResult& result, bool has_gold,
                           obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) return;
  metrics->AddCounter("pipeline/candidates", result.num_candidates);
  metrics->AddCounter("pipeline/links", result.links.size());
  metrics->SetGauge("linking/dict/distinct_values",
                    static_cast<double>(result.distinct_values));
  metrics->SetGauge("linking/dict/symbols",
                    static_cast<double>(result.dictionary_symbols));
  metrics->SetGauge("linking/dict/bytes",
                    static_cast<double>(result.dictionary_bytes));
  if (has_gold) {
    metrics->AddCounter("quality/emitted", result.quality.emitted);
    metrics->AddCounter("quality/correct", result.quality.correct);
    metrics->AddCounter("quality/gold", result.quality.gold);
    metrics->SetGauge("quality/precision", result.quality.precision);
    metrics->SetGauge("quality/recall", result.quality.recall);
    metrics->SetGauge("quality/f1", result.quality.f1);
  }
}

}  // namespace

LinkageQuality EvaluateLinks(
    const std::vector<Link>& links,
    const std::vector<blocking::CandidatePair>& gold) {
  LinkageQuality quality;
  // Sorted + deduplicated gold with binary-search probes: one O(g log g)
  // sort instead of a node-based std::set (one allocation per pair), and
  // the probe loop touches contiguous memory.
  std::vector<blocking::CandidatePair> gold_sorted(gold);
  std::sort(gold_sorted.begin(), gold_sorted.end());
  gold_sorted.erase(std::unique(gold_sorted.begin(), gold_sorted.end()),
                    gold_sorted.end());
  quality.gold = gold_sorted.size();
  quality.emitted = links.size();
  for (const Link& link : links) {
    if (std::binary_search(
            gold_sorted.begin(), gold_sorted.end(),
            blocking::CandidatePair{link.external_index, link.local_index})) {
      ++quality.correct;
    }
  }
  // Guarded divisions: every measure is exactly 0.0 — never NaN — when its
  // denominator is empty.
  if (quality.emitted > 0) {
    quality.precision = static_cast<double>(quality.correct) /
                        static_cast<double>(quality.emitted);
  }
  if (quality.gold > 0) {
    quality.recall = static_cast<double>(quality.correct) /
                     static_cast<double>(quality.gold);
  }
  if (quality.precision + quality.recall > 0.0) {
    quality.f1 = 2.0 * quality.precision * quality.recall /
                 (quality.precision + quality.recall);
  }
  return quality;
}

LinkagePipelineResult RunCachedLinkagePipeline(
    const std::vector<core::Item>& external,
    const std::vector<core::Item>& local,
    const blocking::CandidateGenerator& generator, const ItemMatcher& matcher,
    double threshold, Linker::Strategy strategy,
    const std::vector<blocking::CandidatePair>* gold,
    std::size_t num_threads, obs::MetricsRegistry* metrics) {
  const obs::MetricsRegistry::StageScope stage(metrics, "pipeline/cached");
  FeatureDictionary dict;
  const FeatureCache external_features =
      FeatureCache::Build(external, matcher, FeatureCache::Side::kExternal,
                          &dict, num_threads, metrics);
  const FeatureCache local_features =
      FeatureCache::Build(local, matcher, FeatureCache::Side::kLocal, &dict,
                          num_threads, metrics);

  const std::vector<blocking::CandidatePair> candidates =
      blocking::GenerateWithMetrics(generator, external, local, metrics);

  LinkagePipelineResult result;
  result.num_candidates = candidates.size();
  result.distinct_values = dict.num_values();
  result.dictionary_symbols = dict.num_symbols();
  result.dictionary_bytes = dict.memory_bytes();

  const Linker linker(&matcher, threshold, strategy);
  {
    const obs::MetricsRegistry::StageScope run_stage(metrics,
                                                     "linking/run_cached");
    result.links = linker.RunCached(external_features, local_features,
                                    candidates, &result.stats, num_threads,
                                    &result.memo);
    if (metrics != nullptr) {
      metrics->AddCounter("linking/cached/pairs_scored",
                          result.stats.pairs_scored);
      metrics->AddCounter("linking/cached/links_emitted",
                          result.stats.links_emitted);
    }
  }
  if (gold != nullptr) {
    const obs::MetricsRegistry::StageScope eval_stage(metrics,
                                                      "pipeline/evaluate");
    result.quality = EvaluateLinks(result.links, *gold);
  }
  RecordPipelineMetrics(result, gold != nullptr, metrics);
  return result;
}

LinkagePipelineResult RunStreamingLinkagePipeline(
    const std::vector<core::Item>& external,
    const std::vector<core::Item>& local,
    const blocking::CandidateGenerator& generator, const ItemMatcher& matcher,
    double threshold, Linker::Strategy strategy,
    const std::vector<blocking::CandidatePair>* gold,
    std::size_t num_threads, obs::MetricsRegistry* metrics) {
  const obs::MetricsRegistry::StageScope stage(metrics, "pipeline/streaming");
  FeatureDictionary dict;
  const FeatureCache external_features =
      FeatureCache::Build(external, matcher, FeatureCache::Side::kExternal,
                          &dict, num_threads, metrics);
  const FeatureCache local_features =
      FeatureCache::Build(local, matcher, FeatureCache::Side::kLocal, &dict,
                          num_threads, metrics);

  const auto index =
      blocking::BuildIndexWithMetrics(generator, external, local, metrics);

  LinkagePipelineResult result;
  result.distinct_values = dict.num_values();
  result.dictionary_symbols = dict.num_symbols();
  result.dictionary_bytes = dict.memory_bytes();

  const StreamingLinker linker(&matcher, threshold, strategy);
  result.links = linker.Run(*index, external_features, local_features,
                            &result.stats, num_threads, &result.memo, metrics);
  result.num_candidates =
      result.stats.pairs_scored + result.stats.pairs_pruned_by_filter;
  if (gold != nullptr) {
    const obs::MetricsRegistry::StageScope eval_stage(metrics,
                                                      "pipeline/evaluate");
    result.quality = EvaluateLinks(result.links, *gold);
  }
  RecordPipelineMetrics(result, gold != nullptr, metrics);
  return result;
}

}  // namespace rulelink::linking
