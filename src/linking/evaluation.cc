#include "linking/evaluation.h"

#include <set>

namespace rulelink::linking {

LinkageQuality EvaluateLinks(
    const std::vector<Link>& links,
    const std::vector<blocking::CandidatePair>& gold) {
  LinkageQuality quality;
  const std::set<blocking::CandidatePair> gold_set(gold.begin(), gold.end());
  quality.gold = gold_set.size();
  quality.emitted = links.size();
  for (const Link& link : links) {
    if (gold_set.count(
            blocking::CandidatePair{link.external_index, link.local_index}) >
        0) {
      ++quality.correct;
    }
  }
  if (quality.emitted > 0) {
    quality.precision = static_cast<double>(quality.correct) /
                        static_cast<double>(quality.emitted);
  }
  if (quality.gold > 0) {
    quality.recall = static_cast<double>(quality.correct) /
                     static_cast<double>(quality.gold);
  }
  if (quality.precision + quality.recall > 0.0) {
    quality.f1 = 2.0 * quality.precision * quality.recall /
                 (quality.precision + quality.recall);
  }
  return quality;
}

}  // namespace rulelink::linking
