#include "linking/evaluation.h"

#include <set>

#include "linking/feature_cache.h"
#include "linking/streaming_linker.h"

namespace rulelink::linking {

LinkageQuality EvaluateLinks(
    const std::vector<Link>& links,
    const std::vector<blocking::CandidatePair>& gold) {
  LinkageQuality quality;
  const std::set<blocking::CandidatePair> gold_set(gold.begin(), gold.end());
  quality.gold = gold_set.size();
  quality.emitted = links.size();
  for (const Link& link : links) {
    if (gold_set.count(
            blocking::CandidatePair{link.external_index, link.local_index}) >
        0) {
      ++quality.correct;
    }
  }
  if (quality.emitted > 0) {
    quality.precision = static_cast<double>(quality.correct) /
                        static_cast<double>(quality.emitted);
  }
  if (quality.gold > 0) {
    quality.recall = static_cast<double>(quality.correct) /
                     static_cast<double>(quality.gold);
  }
  if (quality.precision + quality.recall > 0.0) {
    quality.f1 = 2.0 * quality.precision * quality.recall /
                 (quality.precision + quality.recall);
  }
  return quality;
}

LinkagePipelineResult RunCachedLinkagePipeline(
    const std::vector<core::Item>& external,
    const std::vector<core::Item>& local,
    const blocking::CandidateGenerator& generator, const ItemMatcher& matcher,
    double threshold, Linker::Strategy strategy,
    const std::vector<blocking::CandidatePair>* gold,
    std::size_t num_threads) {
  FeatureDictionary dict;
  const FeatureCache external_features = FeatureCache::Build(
      external, matcher, FeatureCache::Side::kExternal, &dict, num_threads);
  const FeatureCache local_features = FeatureCache::Build(
      local, matcher, FeatureCache::Side::kLocal, &dict, num_threads);

  const std::vector<blocking::CandidatePair> candidates =
      generator.Generate(external, local);

  LinkagePipelineResult result;
  result.num_candidates = candidates.size();
  result.distinct_values = dict.num_values();
  result.dictionary_symbols = dict.num_symbols();
  result.dictionary_bytes = dict.memory_bytes();

  const Linker linker(&matcher, threshold, strategy);
  result.links = linker.RunCached(external_features, local_features,
                                  candidates, &result.stats, num_threads,
                                  &result.memo);
  if (gold != nullptr) result.quality = EvaluateLinks(result.links, *gold);
  return result;
}

LinkagePipelineResult RunStreamingLinkagePipeline(
    const std::vector<core::Item>& external,
    const std::vector<core::Item>& local,
    const blocking::CandidateGenerator& generator, const ItemMatcher& matcher,
    double threshold, Linker::Strategy strategy,
    const std::vector<blocking::CandidatePair>* gold,
    std::size_t num_threads) {
  FeatureDictionary dict;
  const FeatureCache external_features = FeatureCache::Build(
      external, matcher, FeatureCache::Side::kExternal, &dict, num_threads);
  const FeatureCache local_features = FeatureCache::Build(
      local, matcher, FeatureCache::Side::kLocal, &dict, num_threads);

  const auto index = generator.BuildIndex(external, local);

  LinkagePipelineResult result;
  result.distinct_values = dict.num_values();
  result.dictionary_symbols = dict.num_symbols();
  result.dictionary_bytes = dict.memory_bytes();

  const StreamingLinker linker(&matcher, threshold, strategy);
  result.links = linker.Run(*index, external_features, local_features,
                            &result.stats, num_threads, &result.memo);
  result.num_candidates =
      result.stats.pairs_scored + result.stats.pairs_pruned_by_filter;
  if (gold != nullptr) result.quality = EvaluateLinks(result.links, *gold);
  return result;
}

}  // namespace rulelink::linking
