// End-to-end linkage evaluation against a gold standard of true matches.
#ifndef RULELINK_LINKING_EVALUATION_H_
#define RULELINK_LINKING_EVALUATION_H_

#include <vector>

#include "blocking/blocker.h"
#include "linking/linker.h"

namespace rulelink::linking {

struct LinkageQuality {
  std::size_t emitted = 0;
  std::size_t correct = 0;
  std::size_t gold = 0;
  double precision = 0.0;  // correct / emitted
  double recall = 0.0;     // correct / gold
  double f1 = 0.0;
};

// `gold` lists the true (external, local) matches.
LinkageQuality EvaluateLinks(const std::vector<Link>& links,
                             const std::vector<blocking::CandidatePair>& gold);

}  // namespace rulelink::linking

#endif  // RULELINK_LINKING_EVALUATION_H_
