// End-to-end linkage evaluation against a gold standard of true matches.
#ifndef RULELINK_LINKING_EVALUATION_H_
#define RULELINK_LINKING_EVALUATION_H_

#include <vector>

#include "blocking/blocker.h"
#include "linking/linker.h"
#include "obs/metrics.h"

namespace rulelink::linking {

struct LinkageQuality {
  std::size_t emitted = 0;
  std::size_t correct = 0;
  std::size_t gold = 0;
  double precision = 0.0;  // correct / emitted; exactly 0.0 when emitted == 0
  double recall = 0.0;     // correct / gold; exactly 0.0 when gold == 0
  double f1 = 0.0;         // exactly 0.0 when precision + recall == 0
};

// `gold` lists the true (external, local) matches; duplicates are counted
// once. All three quality measures are exactly 0.0 (never NaN) on empty
// links and/or empty gold.
LinkageQuality EvaluateLinks(const std::vector<Link>& links,
                             const std::vector<blocking::CandidatePair>& gold);

// Everything the fused cached pipeline produces in one pass.
struct LinkagePipelineResult {
  std::vector<Link> links;
  LinkerStats stats;
  ScoreMemoStats memo;      // aggregated over the linker's workers
  LinkageQuality quality;   // zero-initialized unless `gold` was given
  std::size_t num_candidates = 0;
  std::size_t distinct_values = 0;     // dictionary build statistics
  std::size_t dictionary_symbols = 0;  // values + tokens + bigrams
  std::size_t dictionary_bytes = 0;
};

// The fused linking pipeline over any candidate generator (the classic
// blockers or the paper's RuleBlocker): builds one shared
// FeatureDictionary and both per-source FeatureCaches up front (parallel,
// `num_threads` workers), generates candidates, streams them through
// Linker::RunCached, and — when `gold` is non-null — evaluates the links.
// Links, order and LinkerStats are byte-identical to generating the
// candidates and calling Linker::Run with the same strategy/threshold at
// every thread count.
//
// A non-null `metrics` traces the whole run under the "pipeline/cached"
// stage (cache build, blocking, scoring and evaluation sub-stages) and
// records the pipeline counters and gauges (see DESIGN.md §5f). Every
// recorded quantity is thread-invariant, so the deterministic snapshot is
// byte-identical at every `num_threads`.
LinkagePipelineResult RunCachedLinkagePipeline(
    const std::vector<core::Item>& external,
    const std::vector<core::Item>& local,
    const blocking::CandidateGenerator& generator, const ItemMatcher& matcher,
    double threshold,
    Linker::Strategy strategy = Linker::Strategy::kBestPerExternal,
    const std::vector<blocking::CandidatePair>* gold = nullptr,
    std::size_t num_threads = 0, obs::MetricsRegistry* metrics = nullptr);

// Same pipeline through the streaming path: the generator's BuildIndex
// replaces the materialized candidate vector and StreamingLinker fuses the
// filter cascade with cached scoring. Links are byte-identical to
// RunCachedLinkagePipeline; num_candidates is reconstructed as
// pairs_scored + pairs_pruned_by_filter (runs are never materialized).
// `metrics` works as above under the "pipeline/streaming" stage, with the
// streaming linker contributing the per-filter prune counters and the
// candidate-run-length histogram.
LinkagePipelineResult RunStreamingLinkagePipeline(
    const std::vector<core::Item>& external,
    const std::vector<core::Item>& local,
    const blocking::CandidateGenerator& generator, const ItemMatcher& matcher,
    double threshold,
    Linker::Strategy strategy = Linker::Strategy::kBestPerExternal,
    const std::vector<blocking::CandidatePair>* gold = nullptr,
    std::size_t num_threads = 0, obs::MetricsRegistry* metrics = nullptr);

}  // namespace rulelink::linking

#endif  // RULELINK_LINKING_EVALUATION_H_
