// Instance-based schema matching: when the external source's property
// names are unknown (§3's core premise), align them to local properties
// by comparing their VALUE distributions. A provider's "pn" column maps
// to the catalog's partNumber because their token sets overlap, whatever
// the properties are called. The output feeds ItemMatcher attribute rules
// and the key-based blockers.
#ifndef RULELINK_LINKING_SCHEMA_MATCHER_H_
#define RULELINK_LINKING_SCHEMA_MATCHER_H_

#include <string>
#include <vector>

#include "core/item.h"

namespace rulelink::linking {

struct PropertyAlignment {
  std::string external_property;
  std::string local_property;
  // Jaccard overlap of the two properties' value-token sets, in [0, 1].
  double similarity = 0.0;
};

struct SchemaMatcherOptions {
  // Alignments below this similarity are dropped.
  double min_similarity = 0.05;
  // Values are tokenized into segments on non-alphanumerics before
  // comparison when true; compared as whole values otherwise.
  bool tokenize = true;
  // Cap on sampled items per side (schema matching needs a sketch, not
  // the full corpus). 0 = no cap.
  std::size_t sample_limit = 2000;
};

// Computes the best local property for each external property (injective
// on neither side: two external properties may map to the same local
// one). Results are sorted by similarity, best first.
std::vector<PropertyAlignment> MatchSchemas(
    const std::vector<core::Item>& external,
    const std::vector<core::Item>& local,
    const SchemaMatcherOptions& options = SchemaMatcherOptions());

}  // namespace rulelink::linking

#endif  // RULELINK_LINKING_SCHEMA_MATCHER_H_
