// Precomputed per-item features for the linking hot path.
//
// ItemMatcher::Score re-tokenizes and re-bigrams both raw value strings
// for every candidate pair, so an item scored against k candidates pays
// its string-preparation cost k times. The feature cache moves that work
// to a build phase that runs once per item (in parallel via
// util::ParallelFor): for every distinct property value it interns the
// value itself plus its whitespace tokens and character bigrams through a
// shared util::StringInterner, and stores the token/bigram id sequences
// the cached scorer needs. Part catalogs repeat values heavily, so the
// dictionary doubles as a build-time memo: a value seen before costs one
// hash lookup, not a re-tokenization.
//
// Ownership and lifetime (see DESIGN.md §5d):
//   * FeatureDictionary owns the StringInterner and the pooled feature
//     arrays. It is append-only and shared by every cache scored against
//     the same matcher, so value ids are comparable across sources (the
//     kExact measure and the scoring memo key on them).
//   * FeatureCache borrows the dictionary and indexes it per (item, rule)
//     slot. It holds no string data of its own; the backing item vector
//     may be destroyed after Build returns.
//   * Both are immutable once built. They never observe later mutations
//     of the item vectors: edit the items (or the matcher's rules) and
//     the caches must be rebuilt.
//
// Determinism: the parallel build gives worker chunks their own local
// dictionary and merges them into the shared one in chunk order. Id
// *numbering* therefore depends on the thread count, but every score is a
// pure function of the underlying strings (ids are only compared for
// equality or sort-merged, and set/multiset intersection cardinalities are
// invariant under any consistent renumbering), so cached scores — and the
// links built from them — are byte-identical to the string path at every
// thread count.
#ifndef RULELINK_LINKING_FEATURE_CACHE_H_
#define RULELINK_LINKING_FEATURE_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/item.h"
#include "linking/matcher.h"
#include "obs/metrics.h"
#include "text/similarity.h"
#include "util/interner.h"

namespace rulelink::linking {

// Dense id of an interned property value (a util::SymbolId in the
// dictionary's symbol universe, which also contains tokens and bigrams).
using ValueId = util::SymbolId;

class FeatureDictionary {
 public:
  // Read-only view of one distinct value's precomputed features. Pointers
  // alias the dictionary pools and stay valid for its lifetime.
  struct ValueFeatures {
    std::string_view text;                  // the value string itself
    const text::TokenId* ordered_tokens = nullptr;  // occurrence order
    const text::TokenId* sorted_tokens = nullptr;   // sorted by id
    std::uint32_t num_tokens = 0;
    std::uint32_t num_unique_tokens = 0;
    const text::TokenId* sorted_bigrams = nullptr;  // sorted by id
    std::uint32_t num_bigrams = 0;
  };

  FeatureDictionary() = default;
  // Overlay over an immutable `base` (which must outlive this object and
  // never grow while overlaid): AddValue answers from the base chain when
  // any level already built the value, and interns novel strings locally
  // with ids offset past the base's universe — the base is never mutated.
  // Ids from base and overlay never collide and id equality still implies
  // string equality across the union (a locally-interned value exists in
  // the chain at most as an unbuilt token/bigram symbol, which no scorer
  // ever uses as a value id), so every score stays a pure function of the
  // strings. Overlays stack: the serving engine chains one per delta
  // publish (DESIGN.md §5j) and hangs each session's private overlay off
  // the current snapshot's dictionary (§5i). At most one level of a chain
  // ever holds a given string as a *built value*, so the reuse lookup is
  // unambiguous.
  explicit FeatureDictionary(const FeatureDictionary* base);
  FeatureDictionary(const FeatureDictionary&) = delete;
  FeatureDictionary& operator=(const FeatureDictionary&) = delete;
  FeatureDictionary(FeatureDictionary&&) noexcept = default;
  FeatureDictionary& operator=(FeatureDictionary&&) noexcept = default;

  // Interns `value` and builds its features on first sight; a repeated
  // value is a single hash lookup (the build-time memo).
  ValueId AddValue(std::string_view value);

  // Features of a value previously returned by AddValue/Absorb (resolved
  // through the base for overlay dictionaries).
  ValueFeatures Features(ValueId id) const;

  // The value string for `id`.
  std::string_view View(ValueId id) const {
    if (base_ != nullptr && id < base_offset_) return base_->View(id);
    return strings_.View(id - base_offset_);
  }

  // The bottom of the overlay chain (itself for a root dictionary). Two
  // caches are scoreable against each other iff their dictionaries share a
  // root: their ids then live in one consistent universe.
  const FeatureDictionary& root() const {
    return base_ != nullptr ? base_->root() : *this;
  }

  // The immediate base of an overlay (null for a root dictionary).
  const FeatureDictionary* base() const { return base_; }

  // Merges every symbol of `local` into this dictionary and returns the
  // id remap (local id -> id here). Values keep their features (token and
  // bigram ids are remapped and re-sorted); already-known values are
  // reused. Used by FeatureCache::Build to fold per-chunk dictionaries
  // together in chunk order.
  std::vector<ValueId> Absorb(const FeatureDictionary& local);

  // Distinct symbols (values + tokens + bigrams), including the base's
  // for overlay dictionaries.
  std::size_t num_symbols() const { return base_offset_ + strings_.size(); }
  // Distinct values with built features.
  std::size_t num_values() const { return num_values_; }
  // AddValue calls answered by the build-time memo.
  std::size_t values_reused() const { return values_reused_; }
  // Memory held by the interner arena plus the feature pools.
  std::size_t memory_bytes() const;

 private:
  struct Spans {
    std::uint32_t tok_begin = 0;
    std::uint32_t tok_end = 0;
    std::uint32_t tok_unique = 0;
    std::uint32_t big_begin = 0;
    std::uint32_t big_end = 0;
    bool built = false;
  };

  // Grows spans_ to cover local index `local`.
  void EnsureSlot(ValueId local);
  // Tokenizes/bigrams the value at local index `local` and records its
  // spans.
  void BuildFeatures(ValueId local);
  // Resolves `s` to an id in the combined universe: the base's id when it
  // knows the string (any symbol kind), else a locally-interned offset id.
  text::TokenId InternSymbol(std::string_view s);
  // Public id of `s` anywhere in the chain, or util::kInvalidSymbolId.
  // Read-only: never allocates.
  ValueId FindSymbol(std::string_view s) const;
  // Public id of `s` where it is a *built value*, searching the whole
  // chain deepest-first, or util::kInvalidSymbolId. Distinct from
  // FindSymbol: a string can be an unbuilt token at one level and a built
  // value at a shallower one, and value reuse must find the built id.
  ValueId FindBuiltValue(std::string_view s) const;
  // Whether public id `id` resolves to a value with built features.
  bool IsBuiltValue(ValueId id) const;
  // Appends `ids` sorted (and returns the unique count when asked).
  std::uint32_t AppendSorted(const std::vector<text::TokenId>& ids,
                             std::vector<text::TokenId>* pool);

  // Overlay state. For root dictionaries base_ is null and base_offset_ 0,
  // so local indices equal public ids and every path below is unchanged.
  const FeatureDictionary* base_ = nullptr;
  ValueId base_offset_ = 0;  // public id = local index + base_offset_

  util::StringInterner strings_;  // values, tokens and bigrams together
  std::vector<Spans> spans_;      // by local index; built only for values
  std::vector<text::TokenId> ordered_tokens_;  // per value, occurrence order
  std::vector<text::TokenId> sorted_tokens_;   // same spans, sorted by id
  std::vector<text::TokenId> sorted_bigrams_;  // per value, sorted by id
  std::size_t num_values_ = 0;
  std::size_t values_reused_ = 0;
};

// Per-source index: for every (item, attribute-rule) slot, the ids of the
// item's values under that rule's property on this cache's side.
class FeatureCache {
 public:
  enum class Side { kExternal, kLocal };

  // Precomputes features for `items` against `matcher`'s rules, reading
  // rule.external_property or rule.local_property according to `side`.
  // Work is partitioned across `num_threads` workers (0 = hardware,
  // 1 = serial); per-chunk dictionaries are merged into `dict` in chunk
  // order. `dict` must outlive the returned cache; `items` may not.
  // `metrics`, when non-null, gets the "linking/cache_build" stage plus
  // thread-invariant item/slot counters (DESIGN.md §5f).
  static FeatureCache Build(const std::vector<core::Item>& items,
                            const ItemMatcher& matcher, Side side,
                            FeatureDictionary* dict,
                            std::size_t num_threads = 0,
                            obs::MetricsRegistry* metrics = nullptr);

  // Builds a cache over `base`'s items plus `delta_items` appended after
  // them, without re-featurizing the base: the CSR index and SoA lanes are
  // flat-copied and only the delta items' slots are built, interning their
  // values through `dict`. `dict` must be an overlay directly over
  // `base.dict()` (or `&base.dict()` itself, for a root that may still
  // grow) so every copied id stays resolvable and novel delta values
  // intern past the base universe — this is the serving engine's delta
  // publish path (DESIGN.md §5j). Serial over the delta (deltas are small
  // by design); `metrics` gets the "linking/cache_extend" stage.
  static FeatureCache ExtendFrom(const FeatureCache& base,
                                 const std::vector<core::Item>& delta_items,
                                 const ItemMatcher& matcher, Side side,
                                 FeatureDictionary* dict,
                                 obs::MetricsRegistry* metrics = nullptr);

  // Rebuilds this cache in place over exactly one item — the serving
  // engine's per-query external cache. Serial, and allocation-free at
  // steady state: the index and lane vectors reuse their capacity and
  // dict->AddValue of an already-known value is one hash lookup (only a
  // never-seen value string allocates, in the overlay dictionary).
  void AssignSingle(const core::Item& item, const ItemMatcher& matcher,
                    Side side, FeatureDictionary* dict);

  // The value ids of item `item` under rule slot `rule` (positional:
  // slot r corresponds to matcher.rules()[r]). Empty when the property is
  // missing on the item.
  const ValueId* Values(std::size_t item, std::size_t rule,
                        std::size_t* count) const {
    const std::size_t slot = item * num_rules_ + rule;
    const std::uint32_t begin = offsets_[slot];
    *count = offsets_[slot + 1] - begin;
    return value_ids_.data() + begin;
  }

  const FeatureDictionary& dict() const { return *dict_; }
  std::size_t num_items() const { return num_items_; }
  std::size_t num_rules() const { return num_rules_; }

  // --- SoA stage-A lanes (DESIGN.md §5h) --------------------------------
  // Contiguous per-slot arrays of exactly the scalars the filter
  // cascade's stage A consumes — byte length, unique-token count, bigram
  // count and value id — so the batched cascade reads four flat arrays
  // instead of chasing Spans structs and interner offsets per pair. Slots
  // are indexed item * num_rules() + rule, the same addressing as
  // Values(). Lanes carry real data only for items where simple(item) is
  // true (every slot holds at most one value — the overwhelmingly common
  // shape); an empty slot's id lane is util::kInvalidSymbolId and its
  // other lanes are 0, and multi-valued items take the per-pair fallback.
  bool simple(std::size_t item) const { return simple_[item] != 0; }
  const std::uint32_t* lane_byte_lengths() const {
    return lane_lengths_.data();
  }
  const std::uint32_t* lane_unique_tokens() const {
    return lane_unique_tokens_.data();
  }
  const std::uint32_t* lane_bigrams() const { return lane_bigrams_.data(); }
  const ValueId* lane_value_ids() const { return lane_value_ids_.data(); }

  // Memory held by the CSR index plus the SoA lanes (the dictionary
  // reports its own pools separately).
  std::size_t memory_bytes() const;

 private:
  // Fills the SoA lanes and the per-item simple flags from the finished
  // CSR index (pure function of the data: safe to run in parallel, reads
  // the dictionary const-only).
  void BuildLanes(std::size_t num_threads);
  // Fills lanes for items in [begin, end). The lane vectors must already
  // be sized and default-initialized for those items; writes stay inside
  // the range, so disjoint ranges run in parallel (ExtendFrom uses this
  // to fill only the appended delta items' slots).
  void FillLanes(std::size_t begin, std::size_t end);

  const FeatureDictionary* dict_ = nullptr;
  std::size_t num_items_ = 0;
  std::size_t num_rules_ = 0;
  std::vector<std::uint32_t> offsets_;  // num_items * num_rules + 1 edges
  std::vector<ValueId> value_ids_;      // pooled per-slot value ids
  // SoA lanes, one entry per (item, rule) slot; see the accessors above.
  std::vector<std::uint32_t> lane_lengths_;
  std::vector<std::uint32_t> lane_unique_tokens_;
  std::vector<std::uint32_t> lane_bigrams_;
  std::vector<ValueId> lane_value_ids_;
  std::vector<std::uint8_t> simple_;  // per item: all slots have <= 1 value
};

}  // namespace rulelink::linking

#endif  // RULELINK_LINKING_FEATURE_CACHE_H_
