// The linker consumes candidate pairs (from any CandidateGenerator) and
// decides same-as links. Under the Unique Name Assumption of §3 each
// external item links to at most one local item, so the default strategy
// keeps the best-scoring local candidate above the decision threshold.
#ifndef RULELINK_LINKING_LINKER_H_
#define RULELINK_LINKING_LINKER_H_

#include <cstdint>
#include <vector>

#include "blocking/blocker.h"
#include "core/item.h"
#include "linking/matcher.h"

namespace rulelink::linking {

struct Link {
  std::size_t external_index = 0;
  std::size_t local_index = 0;
  double score = 0.0;

  friend bool operator==(const Link& a, const Link& b) {
    return a.external_index == b.external_index &&
           a.local_index == b.local_index;
  }
};

struct LinkerStats {
  // Candidate pairs the scorer evaluated (after dedup, minus any pruned by
  // the streaming filter cascade). Identical at every thread count.
  std::size_t pairs_scored = 0;
  // Similarity kernels actually executed — memo hits are replays, not
  // computations, so they do not count. On the cached paths this depends
  // on how pairs chunked across per-worker memos (a consequence of the
  // memo-hit exclusion; the scores themselves never vary).
  std::uint64_t comparisons = 0;
  std::size_t links_emitted = 0;
  // Streaming-path (StreamingLinker) filter cascade counters; zero for
  // Run/RunCached. A pruned pair increments every filter whose bound was
  // below the optimistic 1.0, so the per-filter counters can sum to more
  // than pairs_pruned_by_filter. All identical at every thread count.
  std::size_t pairs_pruned_by_filter = 0;
  std::size_t pruned_by_length = 0;       // Levenshtein length gap
  std::size_t pruned_by_token_count = 0;  // Jaccard/Dice count bounds
  std::size_t pruned_by_exact = 0;        // kExact id mismatch
  std::size_t pruned_by_distance_cap = 0; // capped Levenshtein probe
  // Longest per-external candidate run the streaming path buffered — the
  // peak working-set size that replaces the materialized candidate vector.
  std::size_t peak_candidate_run = 0;
};

class Linker {
 public:
  enum class Strategy {
    kBestPerExternal,  // UNA: argmax candidate above threshold
    kAllAboveThreshold,
  };

  // `matcher` is borrowed and must outlive the linker.
  Linker(const ItemMatcher* matcher, double threshold,
         Strategy strategy = Strategy::kBestPerExternal);

  // Scores the given candidate pairs and emits links. Candidates may be
  // unsorted and may contain duplicates (scored once).
  //
  // Scoring is partitioned across `num_threads` workers (0 = hardware
  // concurrency, 1 = serial) over the deduplicated, sorted candidate list;
  // per-worker results are merged in chunk order, so the emitted links,
  // their order and the stats are identical at every thread count. Ties in
  // the best-per-external strategy resolve to the earliest pair in
  // candidate order, exactly as in the serial path.
  std::vector<Link> Run(const std::vector<core::Item>& external,
                        const std::vector<core::Item>& local,
                        const std::vector<blocking::CandidatePair>& candidates,
                        LinkerStats* stats = nullptr,
                        std::size_t num_threads = 0) const;

  // Cached-scorer variant of Run: emits the same links in the same order
  // with the same stats at every thread count, but every pair goes through
  // ItemMatcher::ScoreCached over feature caches built up front (both
  // against this linker's matcher, sharing one FeatureDictionary).
  //
  // When `candidates` is already sorted and duplicate-free — the
  // CandidateGenerator contract — the vector is streamed through the
  // workers chunk by chunk with no copy; otherwise it is sorted/deduped
  // first, exactly like Run. Because chunks of the sorted list group by
  // external index, the best-per-external reduction runs over contiguous
  // runs and merges shard boundaries in chunk order: no per-pair hash maps
  // anywhere on the cached path. Each worker keeps a private ScoreMemo;
  // `memo_stats`, when non-null, accumulates their counters (these depend
  // on the chunking, unlike links/stats, so they stay out of LinkerStats).
  std::vector<Link> RunCached(
      const FeatureCache& external_features,
      const FeatureCache& local_features,
      const std::vector<blocking::CandidatePair>& candidates,
      LinkerStats* stats = nullptr, std::size_t num_threads = 0,
      ScoreMemoStats* memo_stats = nullptr) const;

 private:
  const ItemMatcher* matcher_;
  double threshold_;
  Strategy strategy_;
};

}  // namespace rulelink::linking

#endif  // RULELINK_LINKING_LINKER_H_
