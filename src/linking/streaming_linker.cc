#include "linking/streaming_linker.h"

#include <algorithm>
#include <cstdint>

#include "linking/feature_cache.h"
#include "linking/query_scratch.h"
#include "util/logging.h"
#include "util/simd.h"
#include "util/thread_pool.h"

namespace rulelink::linking {

StreamingLinker::StreamingLinker(const ItemMatcher* matcher, double threshold,
                                 Linker::Strategy strategy)
    : matcher_(matcher),
      threshold_(threshold),
      strategy_(strategy),
      cascade_(matcher, threshold) {
  RL_CHECK(matcher_ != nullptr);
  RL_CHECK(threshold_ >= 0.0 && threshold_ <= 1.0);
}

void StreamingLinker::QueryRun(const FeatureCache& external_features,
                               std::size_t external_index,
                               const FeatureCache& local_features,
                               QueryScratch* scratch, FilterStats* filters,
                               std::uint64_t* measures_computed,
                               std::size_t* pairs_scored,
                               std::vector<Link>* links) const {
  const std::vector<std::size_t>& run = scratch->run;
  // Same dispatch rule as Run: the batch cascade unless SIMD is "off"
  // (which keeps the per-pair legacy path reachable as the reference).
  const bool batch_cascade =
      util::ActiveSimdMode() != util::SimdMode::kOff;
  if (batch_cascade && !run.empty()) {
    cascade_.PruneBatch(external_features, external_index, local_features,
                        run.data(), run.size(), filters, &scratch->filter);
  }
  const bool keep_all = strategy_ == Linker::Strategy::kAllAboveThreshold;
  Link best;
  bool best_set = false;
  for (std::size_t idx = 0; idx < run.size(); ++idx) {
    const std::size_t l = run[idx];
    RL_DCHECK(l < local_features.num_items());
    if (batch_cascade
            ? scratch->filter.pruned[idx] != 0
            : cascade_.Prune(external_features, external_index,
                             local_features, l, filters)) {
      continue;
    }
    const double score =
        matcher_->ScoreCached(external_features, external_index,
                              local_features, l, &scratch->memo,
                              measures_computed);
    ++*pairs_scored;
    if (score < threshold_) continue;
    const Link link{external_index, l, score};
    if (keep_all) {
      links->push_back(link);
    } else if (!best_set || score > best.score) {
      // Strict >: ties keep the earliest local in run order, matching
      // Linker's serial tie-break.
      best = link;
      best_set = true;
    }
  }
  if (best_set) links->push_back(best);
}

std::vector<Link> StreamingLinker::Run(const blocking::CandidateIndex& index,
                                       const FeatureCache& external_features,
                                       const FeatureCache& local_features,
                                       LinkerStats* stats,
                                       std::size_t num_threads,
                                       ScoreMemoStats* memo_stats,
                                       obs::MetricsRegistry* metrics) const {
  RL_DCHECK(&external_features.dict().root() == &local_features.dict().root());
  RL_CHECK(index.num_external() == external_features.num_items())
      << "candidate index and external feature cache disagree";
  const obs::MetricsRegistry::StageScope stage(metrics, "linking/stream");
  const bool observe = metrics != nullptr;
  const std::size_t num_external = index.num_external();

  struct StreamShard {
    std::vector<Link> links;
    std::size_t pairs_scored = 0;
    std::uint64_t measures_computed = 0;
    std::size_t peak_run = 0;
    FilterStats filters;
    ScoreMemoStats memo;
    obs::Histogram run_lengths;  // one observation per external item
    std::uint64_t cascade_batched = 0;    // pairs through PruneBatch lanes
    std::uint64_t cascade_remainder = 0;  // per-pair fallback pairs
  };
  // Run lengths are exactly the skew the morsel scheduler exists for: one
  // hot external with a huge candidate run no longer serializes its whole
  // static chunk. Memo + histogram per slot keeps the hint moderate.
  constexpr std::size_t kExternalsPerMorsel = 256;
  const std::size_t num_shards =
      util::ParallelSlots(num_threads, num_external, kExternalsPerMorsel);
  std::vector<StreamShard> shards(std::max<std::size_t>(1, num_shards));
  // Chunks partition external items, not pairs, so every per-external run
  // lives entirely inside one shard: the serial best-per-external logic
  // applies locally and shard outputs concatenate without folding.
  util::ParallelFor(
      num_threads, num_external,
      [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        StreamShard& shard = shards[chunk];
        QueryScratch scratch;  // every buffer reused per external item
        for (std::size_t e = begin; e < end; ++e) {
          index.CandidatesOf(e, &scratch.run);
          shard.peak_run = std::max(shard.peak_run, scratch.run.size());
          if (observe) shard.run_lengths.Observe(scratch.run.size());
          QueryRun(external_features, e, local_features, &scratch,
                   &shard.filters, &shard.measures_computed,
                   &shard.pairs_scored, &shard.links);
        }
        shard.memo = scratch.memo.stats();
        shard.cascade_batched = scratch.filter.batched_pairs;
        shard.cascade_remainder = scratch.filter.remainder_pairs;
      },
      kExternalsPerMorsel);

  std::vector<Link> links;
  LinkerStats total;
  ScoreMemoStats memo_total;
  obs::Histogram run_lengths;  // shards fold in chunk order
  std::uint64_t cascade_batched = 0;
  std::uint64_t cascade_remainder = 0;
  for (const StreamShard& shard : shards) {
    cascade_batched += shard.cascade_batched;
    cascade_remainder += shard.cascade_remainder;
    if (observe) run_lengths.Merge(shard.run_lengths);
    total.pairs_scored += shard.pairs_scored;
    total.comparisons += shard.measures_computed;
    total.pairs_pruned_by_filter += shard.filters.pairs_pruned;
    total.pruned_by_length += shard.filters.by_length;
    total.pruned_by_token_count += shard.filters.by_token_count;
    total.pruned_by_exact += shard.filters.by_exact;
    total.pruned_by_distance_cap += shard.filters.by_distance_cap;
    total.peak_candidate_run =
        std::max(total.peak_candidate_run, shard.peak_run);
    memo_total.Add(shard.memo);
    links.insert(links.end(), shard.links.begin(), shard.links.end());
  }
  total.links_emitted = links.size();
  // One atomic fold per Run into the process-wide SIMD counters (the
  // "simd" section of the full MetricsSnapshot; dispatch-variant, so it
  // stays out of the deterministic snapshot).
  util::AddSimdCascadePairs(cascade_batched, cascade_remainder);
  if (metrics != nullptr) {
    // Only thread-invariant quantities: `comparisons` (kernels run) and
    // the memo counters depend on the chunking, so they stay out of the
    // deterministic snapshot.
    metrics->AddCounter("linking/stream/external_items", num_external);
    metrics->AddCounter("linking/stream/pairs_scored", total.pairs_scored);
    metrics->AddCounter("linking/stream/links_emitted", total.links_emitted);
    metrics->AddCounter("linking/filter/pairs_pruned",
                        total.pairs_pruned_by_filter);
    metrics->AddCounter("linking/filter/by_length", total.pruned_by_length);
    metrics->AddCounter("linking/filter/by_token_count",
                        total.pruned_by_token_count);
    metrics->AddCounter("linking/filter/by_exact", total.pruned_by_exact);
    metrics->AddCounter("linking/filter/by_distance_cap",
                        total.pruned_by_distance_cap);
    metrics->MergeHistogram("linking/stream/run_length", run_lengths);
  }
  if (stats != nullptr) *stats = total;
  if (memo_stats != nullptr) memo_stats->Add(memo_total);
  return links;
}

}  // namespace rulelink::linking
