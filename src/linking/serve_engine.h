// Resident serving engine: lock-free snapshot queries over a live catalog
// (DESIGN.md §5i), with delta-based republish (§5j).
//
// Every pipeline before this one was batch — build caches, stream
// candidates, exit. ServeEngine keeps an immutable ServeSnapshot (owned
// catalog segments + FeatureDictionary chain + FeatureCache +
// ItemCandidateIndex + rule set/matcher + filter cascade) resident behind
// a single atomic pointer, guarded by epoch-based reclamation
// (util::EpochDomain):
//
//   * Readers (Session::Query) pin an epoch, load the snapshot pointer
//     with one acquire-load, answer entirely from that snapshot, and
//     unpin. No lock, no reference count, no write to any shared line
//     except the session's own epoch slot.
//   * A writer (Publish/PublishDelta) installs the next snapshot with one
//     release-exchange and retires the old one into the epoch domain; it
//     is freed only after every pinned reader epoch has advanced past the
//     swap, so an in-flight query keeps dereferencing the snapshot it
//     loaded. Queries racing a swap are answered entirely from exactly
//     one generation — old until the pin that loaded old ends, new after.
//
// Publish rebuilds everything from scratch; PublishDelta builds
// generation N+1 *from* generation N given a CatalogDelta (appended and/or
// retired items) and optionally a new serving policy (threshold, strategy,
// rule set — the hot-swap path). The delta snapshot shares the
// predecessor's item segments, overlays a fresh dictionary level over the
// predecessor's frozen one (novel values intern past it, so every existing
// id — and the score-memo soundness invariant id equality ≡ string
// equality — is preserved), flat-copies + appends the feature cache, and
// layers the candidate index instead of re-inverting the catalog.
// Retirements tombstone items in place: indices stay stable, probes filter
// tombstones out of each candidate run.
//
// The per-query path reuses the streaming machinery end to end —
// ItemCandidateIndex run -> FilterCascade::PruneBatch (SIMD) ->
// ItemMatcher::ScoreCached — with per-session scratch (QueryScratch, an
// overlay FeatureDictionary for novel query values, the single-item query
// FeatureCache, the blocking-key buffer) allocated once and reused, so the
// steady-state query path performs zero heap allocations (asserted by the
// serve differential test). Served answers are byte-identical to batch
// StreamingLinker::Run over the same snapshot, and a snapshot reached via
// K delta publishes answers byte-identically to a from-scratch snapshot of
// the same final catalog + rules (the delta differential test).
#ifndef RULELINK_LINKING_SERVE_ENGINE_H_
#define RULELINK_LINKING_SERVE_ENGINE_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "blocking/blocker.h"
#include "core/item.h"
#include "core/rule.h"
#include "linking/feature_cache.h"
#include "linking/linker.h"
#include "linking/matcher.h"
#include "linking/query_scratch.h"
#include "linking/streaming_linker.h"
#include "obs/metrics.h"
#include "util/epoch.h"

namespace rulelink::linking {

// One incremental catalog edit: items to append after the current
// catalog's indices, and current global indices to retire. Retired items
// are tombstoned, not compacted — indices issued to clients stay stable
// and the slots are simply skipped by every later query.
struct CatalogDelta {
  std::vector<core::Item> appended;
  std::vector<std::size_t> retired;
};

// Serving policy riding a snapshot generation: the linker's threshold and
// strategy plus the materialized classification rule set the serving
// matcher was derived from. PublishDelta swaps all three atomically with
// the generation stamp — the rule hot-swap path. `rules` may be null when
// the matcher was hand-built rather than learned.
struct ServePolicy {
  double threshold = 0.0;
  Linker::Strategy strategy = Linker::Strategy::kBestPerExternal;
  std::shared_ptr<const core::RuleSet> rules;
};

// One immutable serving generation. Construction is the expensive batch
// phase (feature build parallelized like any batch pipeline); BuildDelta
// is the cheap path that extends a predecessor. After Publish the
// snapshot is read-only forever and freed by the engine's epoch domain.
// Not movable: sessions hold interior pointers (dictionary, caches,
// index) for the engine's lifetime.
class ServeSnapshot {
 public:
  // Takes ownership of `catalog` and a copy of the rule set. `blocker`
  // must support BuildItemIndex (key-based and cartesian blockers do).
  // `threshold`/`strategy` have Linker semantics and are part of the
  // snapshot: a republish can change rules and policy atomically.
  // `rules`, when given, is the learned rule set this serving
  // configuration was materialized from (carried for introspection and
  // hot-swap bookkeeping; scoring goes through `matcher`).
  ServeSnapshot(std::vector<core::Item> catalog, ItemMatcher matcher,
                double threshold, Linker::Strategy strategy,
                const blocking::CandidateGenerator& blocker,
                std::size_t num_threads = 0,
                obs::MetricsRegistry* metrics = nullptr,
                std::shared_ptr<const core::RuleSet> rules = nullptr);

  ServeSnapshot(const ServeSnapshot&) = delete;
  ServeSnapshot& operator=(const ServeSnapshot&) = delete;

  // Builds the successor generation from `base` without re-featurizing
  // the predecessor's catalog: shares `base`'s item segments (appending
  // one for `delta.appended`), tombstones `delta.retired`, chains a new
  // dictionary overlay over `base`'s frozen dictionary, flat-copies +
  // appends the feature cache (FeatureCache::ExtendFrom), and extends the
  // candidate index (CandidateGenerator::ExtendItemIndex) instead of
  // re-inverting. `blocker` must be the same generator (same key
  // parameters) that built `base`'s index, and the matcher must not
  // change across delta publishes — a new policy swaps threshold,
  // strategy and rule set only (all snapshot-local; caches depend only on
  // the matcher's properties, which are fixed). `policy` null inherits
  // `base`'s policy wholesale.
  static std::unique_ptr<ServeSnapshot> BuildDelta(
      const ServeSnapshot& base, CatalogDelta delta,
      const blocking::CandidateGenerator& blocker,
      const ServePolicy* policy = nullptr,
      obs::MetricsRegistry* metrics = nullptr);

  // Catalog accessors. Items live in shared segments (one per publish
  // that appended), addressed by a single global index space; item(i) is
  // valid for any i < num_items(), including tombstoned ones.
  std::size_t num_items() const { return num_items_; }
  const core::Item& item(std::size_t index) const {
    const std::size_t seg =
        static_cast<std::size_t>(std::upper_bound(segment_begin_.begin(),
                                                  segment_begin_.end(),
                                                  index) -
                                 segment_begin_.begin()) -
        1;
    return (*segments_[seg])[index - segment_begin_[seg]];
  }
  bool live(std::size_t index) const { return live_[index] != 0; }
  std::size_t num_retired() const { return num_retired_; }

  // Removes tombstoned locals from an ascending candidate run in place
  // (order preserved). No-op when nothing is retired — the common case
  // pays one load and a branch.
  void FilterLiveCandidates(std::vector<std::size_t>* run) const {
    if (num_retired_ == 0) return;
    std::size_t kept = 0;
    for (const std::size_t index : *run) {
      if (live_[index] != 0) (*run)[kept++] = index;
    }
    run->resize(kept);
  }

  const ItemMatcher& matcher() const { return matcher_; }
  const FeatureDictionary& dict() const { return dict_link_->dict; }
  const FeatureCache& local_features() const { return local_features_; }
  const blocking::ItemCandidateIndex& index() const { return *index_; }
  const StreamingLinker& linker() const { return linker_; }
  double threshold() const { return threshold_; }
  Linker::Strategy strategy() const { return strategy_; }
  // The rule set this generation serves under (null when none was
  // attached).
  const std::shared_ptr<const core::RuleSet>& rules() const { return rules_; }
  // Assigned by ServeEngine::Publish; 0 until published. Monotone across
  // publishes, so sessions detect swaps by comparing it.
  std::uint64_t generation() const { return generation_; }

 private:
  friend class ServeEngine;

  // One level of the dictionary chain. Each delta generation overlays the
  // predecessor's dictionary; the shared link keeps every ancestor level
  // alive for as long as any descendant snapshot (or a session overlay
  // over one) can still resolve ids through it — even after the ancestor
  // snapshot itself was reclaimed. Heap-allocated so the dictionary's
  // address is stable for the overlay base pointers.
  struct DictLink {
    std::shared_ptr<const DictLink> base;
    FeatureDictionary dict;
  };

  // Shell: policy + matcher + linker only; catalog state is filled by the
  // public constructor or BuildDelta.
  ServeSnapshot(ItemMatcher matcher, double threshold,
                Linker::Strategy strategy,
                std::shared_ptr<const core::RuleSet> rules);

  // Catalog segments, shared across delta generations. segment_begin_[s]
  // is the global index of segments_[s]'s first item.
  std::vector<std::shared_ptr<const std::vector<core::Item>>> segments_;
  std::vector<std::size_t> segment_begin_;
  std::size_t num_items_ = 0;
  std::vector<std::uint8_t> live_;  // by global index; 0 = tombstoned
  std::size_t num_retired_ = 0;
  ItemMatcher matcher_;
  double threshold_;
  Linker::Strategy strategy_;
  std::shared_ptr<const core::RuleSet> rules_;
  std::shared_ptr<DictLink> dict_link_;  // top of this generation's chain
  FeatureCache local_features_;
  std::shared_ptr<const blocking::ItemCandidateIndex> index_;
  StreamingLinker linker_;  // borrows matcher_; shares the cascade
  std::uint64_t generation_ = 0;
};

class ServeEngine {
 public:
  ServeEngine() = default;
  // Deletes the current snapshot and everything still in limbo. Every
  // Session must already be destroyed.
  ~ServeEngine();

  ServeEngine(const ServeEngine&) = delete;
  ServeEngine& operator=(const ServeEngine&) = delete;

  // Atomically installs `snapshot` as the serving generation (one
  // release-exchange — readers never wait) and retires the previous one
  // into the epoch domain. Thread-safe against concurrent Publish calls
  // and against any number of querying sessions. Returns the generation
  // assigned (1 for the first publish).
  std::uint64_t Publish(std::unique_ptr<ServeSnapshot> snapshot);

  // Builds the successor of the current generation from `delta` (see
  // ServeSnapshot::BuildDelta) and installs it like Publish — the cheap
  // republish path. `policy` non-null additionally hot-swaps threshold,
  // strategy and rule set, atomically with the generation stamp. Requires
  // a prior Publish; thread-safe like Publish.
  std::uint64_t PublishDelta(CatalogDelta delta,
                             const blocking::CandidateGenerator& blocker,
                             const ServePolicy* policy = nullptr,
                             obs::MetricsRegistry* metrics = nullptr);

  // Generation currently being served; 0 before the first Publish.
  std::uint64_t current_generation() const {
    const ServeSnapshot* snapshot =
        current_.load(std::memory_order_acquire);
    return snapshot == nullptr ? 0 : snapshot->generation();
  }

  // The rule set riding the current generation (null before the first
  // Publish or when none was attached). Like current_generation(), the
  // caller must not race a publish that could retire the snapshot
  // mid-call; sessions read the pinned snapshot's rules() instead.
  std::shared_ptr<const core::RuleSet> current_rules() const {
    const ServeSnapshot* snapshot =
        current_.load(std::memory_order_acquire);
    return snapshot == nullptr ? nullptr : snapshot->rules();
  }

  // Frees retired snapshots whose readers have all moved on. Publish and
  // PublishDelta attempt this after every swap (so repeated publishes
  // keep limbo bounded without anyone calling this); benches and tests
  // call it to assert complete drainage.
  std::size_t ReclaimRetired() { return epochs_.TryReclaim(); }

  util::EpochStats epoch_stats() const { return epochs_.Stats(); }

  // One worker's query context: an epoch reader slot plus all per-query
  // scratch, allocated once and reused so steady-state queries are
  // allocation-free. Sessions are single-threaded (one per worker) and
  // must not outlive the engine. Any number of sessions query
  // concurrently with each other and with Publish.
  class Session {
   public:
    explicit Session(ServeEngine* engine);
    ~Session();
    Session(const Session&) = delete;
    Session& operator=(const Session&) = delete;

    // Answers one link query: candidates of `item` from the snapshot's
    // index (tombstoned locals filtered out), filter cascade, cached
    // scoring, the linker's strategy and tie-break. Replaces *links with
    // the answer, each link's external_index stamped with
    // `external_index` (the caller's query ordinal) so answers compare
    // byte-identically against a batch StreamingLinker::Run. Returns the
    // generation that answered — the whole query runs against exactly one
    // snapshot, even mid-swap.
    std::uint64_t Query(const core::Item& item, std::vector<Link>* links,
                        std::size_t external_index = 0);

    // Cumulative counters across this session's queries — they accumulate
    // monotonically across generation swaps too (thread-variant
    // bookkeeping for benches; the links themselves are deterministic).
    std::size_t pairs_scored() const { return pairs_scored_; }
    const FilterStats& filter_stats() const { return filters_; }
    const QueryScratch& scratch() const { return scratch_; }

   private:
    ServeEngine* engine_;
    util::EpochDomain::ReaderSlot* slot_;
    std::uint64_t generation_seen_ = 0;
    // Per-generation state: value ids renumber across snapshots (and a
    // delta generation's dictionary extends a universe this overlay's ids
    // would collide with), so the overlay dictionary and the id-keyed
    // score memo reset on every generation change, full or delta.
    FeatureDictionary overlay_;
    FeatureCache query_features_;  // single-item cache over overlay_
    QueryScratch scratch_;
    std::string key_scratch_;
    std::vector<Link> staged_links_;
    FilterStats filters_;
    std::size_t pairs_scored_ = 0;
    std::uint64_t measures_computed_ = 0;
  };

 private:
  // Stamps, installs and retires under publish_mutex_ (held by caller).
  std::uint64_t InstallLocked(std::unique_ptr<ServeSnapshot> snapshot);

  std::atomic<ServeSnapshot*> current_{nullptr};
  util::EpochDomain epochs_;
  std::mutex publish_mutex_;        // serializes writers only
  std::uint64_t next_generation_ = 0;  // guarded by publish_mutex_
};

}  // namespace rulelink::linking

#endif  // RULELINK_LINKING_SERVE_ENGINE_H_
