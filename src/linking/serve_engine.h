// Resident serving engine: lock-free snapshot queries over a live catalog
// (DESIGN.md §5i).
//
// Every pipeline before this one was batch — build caches, stream
// candidates, exit. ServeEngine keeps an immutable ServeSnapshot (owned
// catalog + FeatureDictionary + FeatureCache + ItemCandidateIndex +
// rule set/matcher + filter cascade) resident behind a single atomic
// pointer, guarded by epoch-based reclamation (util::EpochDomain):
//
//   * Readers (Session::Query) pin an epoch, load the snapshot pointer
//     with one acquire-load, answer entirely from that snapshot, and
//     unpin. No lock, no reference count, no write to any shared line
//     except the session's own epoch slot.
//   * A writer (Publish) installs a rebuilt snapshot with one
//     release-exchange and retires the old one into the epoch domain; it
//     is freed only after every pinned reader epoch has advanced past the
//     swap, so an in-flight query keeps dereferencing the snapshot it
//     loaded. Queries racing a swap are answered entirely from exactly
//     one generation — old until the pin that loaded old ends, new after.
//
// The per-query path reuses the streaming machinery end to end —
// ItemCandidateIndex run -> FilterCascade::PruneBatch (SIMD) ->
// ItemMatcher::ScoreCached — with per-session scratch (QueryScratch, an
// overlay FeatureDictionary for novel query values, the single-item query
// FeatureCache, the blocking-key buffer) allocated once and reused, so the
// steady-state query path performs zero heap allocations (asserted by the
// serve differential test). Served answers are byte-identical to batch
// StreamingLinker::Run over the same snapshot.
#ifndef RULELINK_LINKING_SERVE_ENGINE_H_
#define RULELINK_LINKING_SERVE_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "blocking/blocker.h"
#include "core/item.h"
#include "linking/feature_cache.h"
#include "linking/linker.h"
#include "linking/matcher.h"
#include "linking/query_scratch.h"
#include "linking/streaming_linker.h"
#include "obs/metrics.h"
#include "util/epoch.h"

namespace rulelink::linking {

// One immutable serving generation. Construction is the expensive batch
// phase (feature build parallelized like any batch pipeline); after
// Publish the snapshot is read-only forever and freed by the engine's
// epoch domain. Not movable: sessions hold interior pointers (dictionary,
// caches, index) for the engine's lifetime.
class ServeSnapshot {
 public:
  // Takes ownership of `catalog` and a copy of the rule set. `blocker`
  // must support BuildItemIndex (key-based and cartesian blockers do).
  // `threshold`/`strategy` have Linker semantics and are part of the
  // snapshot: a republish can change rules and policy atomically.
  ServeSnapshot(std::vector<core::Item> catalog, ItemMatcher matcher,
                double threshold, Linker::Strategy strategy,
                const blocking::CandidateGenerator& blocker,
                std::size_t num_threads = 0,
                obs::MetricsRegistry* metrics = nullptr);

  ServeSnapshot(const ServeSnapshot&) = delete;
  ServeSnapshot& operator=(const ServeSnapshot&) = delete;

  const std::vector<core::Item>& items() const { return items_; }
  const ItemMatcher& matcher() const { return matcher_; }
  const FeatureDictionary& dict() const { return dict_; }
  const FeatureCache& local_features() const { return local_features_; }
  const blocking::ItemCandidateIndex& index() const { return *index_; }
  const StreamingLinker& linker() const { return linker_; }
  double threshold() const { return threshold_; }
  Linker::Strategy strategy() const { return strategy_; }
  // Assigned by ServeEngine::Publish; 0 until published. Monotone across
  // publishes, so sessions detect swaps by comparing it.
  std::uint64_t generation() const { return generation_; }

 private:
  friend class ServeEngine;

  std::vector<core::Item> items_;
  ItemMatcher matcher_;
  double threshold_;
  Linker::Strategy strategy_;
  FeatureDictionary dict_;      // root universe; overlays hang off it
  FeatureCache local_features_;
  std::unique_ptr<blocking::ItemCandidateIndex> index_;
  StreamingLinker linker_;      // borrows matcher_; shares the cascade
  std::uint64_t generation_ = 0;
};

class ServeEngine {
 public:
  ServeEngine() = default;
  // Deletes the current snapshot and everything still in limbo. Every
  // Session must already be destroyed.
  ~ServeEngine();

  ServeEngine(const ServeEngine&) = delete;
  ServeEngine& operator=(const ServeEngine&) = delete;

  // Atomically installs `snapshot` as the serving generation (one
  // release-exchange — readers never wait) and retires the previous one
  // into the epoch domain. Thread-safe against concurrent Publish calls
  // and against any number of querying sessions. Returns the generation
  // assigned (1 for the first publish).
  std::uint64_t Publish(std::unique_ptr<ServeSnapshot> snapshot);

  // Generation currently being served; 0 before the first Publish.
  std::uint64_t current_generation() const {
    const ServeSnapshot* snapshot =
        current_.load(std::memory_order_acquire);
    return snapshot == nullptr ? 0 : snapshot->generation();
  }

  // Frees retired snapshots whose readers have all moved on. Publish does
  // this opportunistically; benches call it to assert drainage.
  std::size_t ReclaimRetired() { return epochs_.TryReclaim(); }

  util::EpochStats epoch_stats() const { return epochs_.Stats(); }

  // One worker's query context: an epoch reader slot plus all per-query
  // scratch, allocated once and reused so steady-state queries are
  // allocation-free. Sessions are single-threaded (one per worker) and
  // must not outlive the engine. Any number of sessions query
  // concurrently with each other and with Publish.
  class Session {
   public:
    explicit Session(ServeEngine* engine);
    ~Session();
    Session(const Session&) = delete;
    Session& operator=(const Session&) = delete;

    // Answers one link query: candidates of `item` from the snapshot's
    // index, filter cascade, cached scoring, the linker's strategy and
    // tie-break. Replaces *links with the answer, each link's
    // external_index stamped with `external_index` (the caller's query
    // ordinal) so answers compare byte-identically against a batch
    // StreamingLinker::Run. Returns the generation that answered — the
    // whole query runs against exactly one snapshot, even mid-swap.
    std::uint64_t Query(const core::Item& item, std::vector<Link>* links,
                        std::size_t external_index = 0);

    // Cumulative counters across this session's queries (thread-variant
    // bookkeeping for benches; the links themselves are deterministic).
    std::size_t pairs_scored() const { return pairs_scored_; }
    const FilterStats& filter_stats() const { return filters_; }
    const QueryScratch& scratch() const { return scratch_; }

   private:
    ServeEngine* engine_;
    util::EpochDomain::ReaderSlot* slot_;
    std::uint64_t generation_seen_ = 0;
    // Per-generation state: value ids renumber across snapshots, so the
    // overlay dictionary and the score memo reset on generation change
    // (the swap path may allocate; the steady state never does).
    FeatureDictionary overlay_;
    FeatureCache query_features_;  // single-item cache over overlay_
    QueryScratch scratch_;
    std::string key_scratch_;
    std::vector<Link> staged_links_;
    FilterStats filters_;
    std::size_t pairs_scored_ = 0;
    std::uint64_t measures_computed_ = 0;
  };

 private:
  std::atomic<ServeSnapshot*> current_{nullptr};
  util::EpochDomain epochs_;
  std::mutex publish_mutex_;        // serializes writers only
  std::uint64_t next_generation_ = 0;  // guarded by publish_mutex_
};

}  // namespace rulelink::linking

#endif  // RULELINK_LINKING_SERVE_ENGINE_H_
