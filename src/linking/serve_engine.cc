#include "linking/serve_engine.h"

#include <utility>

#include "util/logging.h"

namespace rulelink::linking {

ServeSnapshot::ServeSnapshot(ItemMatcher matcher, double threshold,
                             Linker::Strategy strategy,
                             std::shared_ptr<const core::RuleSet> rules)
    : matcher_(std::move(matcher)),
      threshold_(threshold),
      strategy_(strategy),
      rules_(std::move(rules)),
      linker_(&matcher_, threshold, strategy) {}

ServeSnapshot::ServeSnapshot(std::vector<core::Item> catalog,
                             ItemMatcher matcher, double threshold,
                             Linker::Strategy strategy,
                             const blocking::CandidateGenerator& blocker,
                             std::size_t num_threads,
                             obs::MetricsRegistry* metrics,
                             std::shared_ptr<const core::RuleSet> rules)
    : ServeSnapshot(std::move(matcher), threshold, strategy,
                    std::move(rules)) {
  auto segment =
      std::make_shared<std::vector<core::Item>>(std::move(catalog));
  num_items_ = segment->size();
  segment_begin_.push_back(0);
  segments_.push_back(std::move(segment));
  live_.assign(num_items_, 1);
  dict_link_ = std::make_shared<DictLink>();
  local_features_ =
      FeatureCache::Build(*segments_[0], matcher_, FeatureCache::Side::kLocal,
                          &dict_link_->dict, num_threads, metrics);
  index_ = blocker.BuildItemIndex(*segments_[0]);
  RL_CHECK(index_ != nullptr)
      << "blocker '" << blocker.name()
      << "' cannot build a probe-by-item index (BuildItemIndex returned "
         "null); serving needs a key-based or cartesian blocker";
}

std::unique_ptr<ServeSnapshot> ServeSnapshot::BuildDelta(
    const ServeSnapshot& base, CatalogDelta delta,
    const blocking::CandidateGenerator& blocker, const ServePolicy* policy,
    obs::MetricsRegistry* metrics) {
  const obs::MetricsRegistry::StageScope stage(metrics, "serve/delta_build");
  std::unique_ptr<ServeSnapshot> next(new ServeSnapshot(
      base.matcher_, policy != nullptr ? policy->threshold : base.threshold_,
      policy != nullptr ? policy->strategy : base.strategy_,
      policy != nullptr ? policy->rules : base.rules_));

  // Share the predecessor's item segments wholesale (shared_ptr copies,
  // no item copies) and extend the bookkeeping that rides them.
  next->segments_ = base.segments_;
  next->segment_begin_ = base.segment_begin_;
  next->num_items_ = base.num_items_;
  next->live_ = base.live_;
  next->num_retired_ = base.num_retired_;

  // Dictionary chain: a fresh overlay level whose base is the
  // predecessor's (now frozen) dictionary. The link holds the whole
  // ancestor chain alive independently of the predecessor snapshot's
  // lifetime.
  next->dict_link_ = std::make_shared<DictLink>();
  next->dict_link_->base = base.dict_link_;
  next->dict_link_->dict = FeatureDictionary(&base.dict_link_->dict);

  const std::vector<core::Item>* appended = nullptr;
  if (!delta.appended.empty()) {
    auto segment =
        std::make_shared<std::vector<core::Item>>(std::move(delta.appended));
    appended = segment.get();
    next->segment_begin_.push_back(next->num_items_);
    next->num_items_ += segment->size();
    next->live_.resize(next->num_items_, 1);
    next->segments_.push_back(std::move(segment));
  }

  // Retirements apply after the appends so a single delta may retire an
  // index out of its own appended range (indices are global and stable,
  // so ordering changes nothing for base-range retirements).
  for (const std::size_t index : delta.retired) {
    RL_CHECK(index < next->num_items_)
        << "retired index " << index << " out of range (catalog has "
        << next->num_items_ << " items)";
    if (next->live_[index] != 0) {
      next->live_[index] = 0;
      ++next->num_retired_;
    }
  }

  const std::vector<core::Item> empty;
  next->local_features_ = FeatureCache::ExtendFrom(
      base.local_features_, appended != nullptr ? *appended : empty,
      next->matcher_, FeatureCache::Side::kLocal, &next->dict_link_->dict,
      metrics);

  if (appended == nullptr) {
    // Nothing appended: the predecessor's inverted index answers the new
    // generation verbatim (tombstones are filtered outside the index).
    next->index_ = base.index_;
  } else {
    next->index_ = blocker.ExtendItemIndex(base.index_, *appended);
    RL_CHECK(next->index_ != nullptr)
        << "blocker '" << blocker.name()
        << "' cannot extend the base snapshot's candidate index "
           "(ExtendItemIndex returned null); delta publishes need the same "
           "generator and key parameters that built the base";
  }
  return next;
}

ServeEngine::~ServeEngine() {
  ServeSnapshot* last = current_.exchange(nullptr, std::memory_order_acq_rel);
  delete last;
  // epochs_ destructor drains whatever is still in limbo.
}

std::uint64_t ServeEngine::InstallLocked(
    std::unique_ptr<ServeSnapshot> snapshot) {
  snapshot->generation_ = ++next_generation_;
  const std::uint64_t generation = snapshot->generation_;
  // The exchange is the linearization point: a reader's acquire-load sees
  // either the old snapshot (fully published earlier) or this one (fully
  // constructed above — release ordering covers its initialization).
  ServeSnapshot* old =
      current_.exchange(snapshot.release(), std::memory_order_acq_rel);
  if (old != nullptr) {
    epochs_.Retire(
        old, +[](void* p) { delete static_cast<ServeSnapshot*>(p); });
  }
  // Opportunistic reclamation, as the contract above promises: Retire
  // sweeps once itself, but a snapshot whose last reader unpinned after
  // that sweep would otherwise linger until the next retire or an
  // explicit ReclaimRetired. Writer-side only — readers never touch the
  // domain mutex.
  epochs_.TryReclaim();
  return generation;
}

std::uint64_t ServeEngine::Publish(std::unique_ptr<ServeSnapshot> snapshot) {
  RL_CHECK(snapshot != nullptr);
  const std::lock_guard<std::mutex> lock(publish_mutex_);
  return InstallLocked(std::move(snapshot));
}

std::uint64_t ServeEngine::PublishDelta(
    CatalogDelta delta, const blocking::CandidateGenerator& blocker,
    const ServePolicy* policy, obs::MetricsRegistry* metrics) {
  const std::lock_guard<std::mutex> lock(publish_mutex_);
  // Safe to read the current snapshot without a pin: only a publisher
  // retires snapshots, publishers serialize on publish_mutex_, and the
  // installed snapshot is never in limbo.
  const ServeSnapshot* base = current_.load(std::memory_order_acquire);
  RL_CHECK(base != nullptr) << "PublishDelta before the first Publish";
  return InstallLocked(
      ServeSnapshot::BuildDelta(*base, std::move(delta), blocker, policy,
                                metrics));
}

ServeEngine::Session::Session(ServeEngine* engine)
    : engine_(engine), slot_(engine->epochs_.RegisterReader()) {}

ServeEngine::Session::~Session() {
  engine_->epochs_.UnregisterReader(slot_);
}

std::uint64_t ServeEngine::Session::Query(const core::Item& item,
                                          std::vector<Link>* links,
                                          std::size_t external_index) {
  // Pin for the whole query: every pointer read below (snapshot, its
  // dictionary, caches, index) stays valid until the guard drops, even if
  // a writer publishes and retires mid-query.
  const util::EpochDomain::Guard guard(&engine_->epochs_, slot_);
  const ServeSnapshot* snapshot =
      engine_->current_.load(std::memory_order_acquire);
  RL_CHECK(snapshot != nullptr) << "Query before the first Publish";

  if (snapshot->generation() != generation_seen_) {
    // New generation: value ids renumber (a delta generation's dictionary
    // interns past the very universe this overlay extended), so the
    // overlay universe and the id-keyed score memo restart. This path may
    // allocate — swaps are rare and the steady state (same generation)
    // never comes here.
    generation_seen_ = snapshot->generation();
    overlay_ = FeatureDictionary(&snapshot->dict());
    scratch_.InvalidateMemo();
  }

  query_features_.AssignSingle(item, snapshot->matcher(),
                               FeatureCache::Side::kExternal, &overlay_);
  snapshot->index().CandidatesOfItem(item, &key_scratch_, &scratch_.run);
  snapshot->FilterLiveCandidates(&scratch_.run);
  staged_links_.clear();
  snapshot->linker().QueryRun(query_features_, 0, snapshot->local_features(),
                              &scratch_, &filters_, &measures_computed_,
                              &pairs_scored_, &staged_links_);
  // QueryRun stamped the single-item cache's index (0); rewrite to the
  // caller's query ordinal so served answers compare byte-identically
  // against a batch run over the full query list.
  links->clear();
  for (Link link : staged_links_) {
    link.external_index = external_index;
    links->push_back(link);
  }
  return generation_seen_;
}

}  // namespace rulelink::linking
