#include "linking/serve_engine.h"

#include <utility>

#include "util/logging.h"

namespace rulelink::linking {

ServeSnapshot::ServeSnapshot(std::vector<core::Item> catalog,
                             ItemMatcher matcher, double threshold,
                             Linker::Strategy strategy,
                             const blocking::CandidateGenerator& blocker,
                             std::size_t num_threads,
                             obs::MetricsRegistry* metrics)
    : items_(std::move(catalog)),
      matcher_(std::move(matcher)),
      threshold_(threshold),
      strategy_(strategy),
      local_features_(FeatureCache::Build(items_, matcher_,
                                          FeatureCache::Side::kLocal, &dict_,
                                          num_threads, metrics)),
      index_(blocker.BuildItemIndex(items_)),
      linker_(&matcher_, threshold, strategy) {
  RL_CHECK(index_ != nullptr)
      << "blocker '" << blocker.name()
      << "' cannot build a probe-by-item index (BuildItemIndex returned "
         "null); serving needs a key-based or cartesian blocker";
}

ServeEngine::~ServeEngine() {
  ServeSnapshot* last = current_.exchange(nullptr, std::memory_order_acq_rel);
  delete last;
  // epochs_ destructor drains whatever is still in limbo.
}

std::uint64_t ServeEngine::Publish(std::unique_ptr<ServeSnapshot> snapshot) {
  RL_CHECK(snapshot != nullptr);
  const std::lock_guard<std::mutex> lock(publish_mutex_);
  snapshot->generation_ = ++next_generation_;
  const std::uint64_t generation = snapshot->generation_;
  // The exchange is the linearization point: a reader's acquire-load sees
  // either the old snapshot (fully published earlier) or this one (fully
  // constructed above — release ordering covers its initialization).
  ServeSnapshot* old =
      current_.exchange(snapshot.release(), std::memory_order_acq_rel);
  if (old != nullptr) {
    epochs_.Retire(
        old, +[](void* p) { delete static_cast<ServeSnapshot*>(p); });
  }
  return generation;
}

ServeEngine::Session::Session(ServeEngine* engine)
    : engine_(engine), slot_(engine->epochs_.RegisterReader()) {}

ServeEngine::Session::~Session() {
  engine_->epochs_.UnregisterReader(slot_);
}

std::uint64_t ServeEngine::Session::Query(const core::Item& item,
                                          std::vector<Link>* links,
                                          std::size_t external_index) {
  // Pin for the whole query: every pointer read below (snapshot, its
  // dictionary, caches, index) stays valid until the guard drops, even if
  // a writer publishes and retires mid-query.
  const util::EpochDomain::Guard guard(&engine_->epochs_, slot_);
  const ServeSnapshot* snapshot =
      engine_->current_.load(std::memory_order_acquire);
  RL_CHECK(snapshot != nullptr) << "Query before the first Publish";

  if (snapshot->generation() != generation_seen_) {
    // New generation: value ids renumber, so the overlay universe and the
    // id-keyed score memo restart. This path may allocate — swaps are rare
    // and the steady state (same generation) never comes here.
    generation_seen_ = snapshot->generation();
    overlay_ = FeatureDictionary(&snapshot->dict());
    scratch_.InvalidateMemo();
  }

  query_features_.AssignSingle(item, snapshot->matcher(),
                               FeatureCache::Side::kExternal, &overlay_);
  snapshot->index().CandidatesOfItem(item, &key_scratch_, &scratch_.run);
  staged_links_.clear();
  snapshot->linker().QueryRun(query_features_, 0, snapshot->local_features(),
                              &scratch_, &filters_, &measures_computed_,
                              &pairs_scored_, &staged_links_);
  // QueryRun stamped the single-item cache's index (0); rewrite to the
  // caller's query ordinal so served answers compare byte-identically
  // against a batch run over the full query list.
  links->clear();
  for (Link link : staged_links_) {
    link.external_index = external_index;
    links->push_back(link);
  }
  return generation_seen_;
}

}  // namespace rulelink::linking
