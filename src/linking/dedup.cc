#include "linking/dedup.h"

#include <set>

#include "util/union_find.h"

namespace rulelink::linking {

DedupResult Deduplicate(const std::vector<core::Item>& items,
                        const blocking::CandidateGenerator& blocker,
                        const ItemMatcher& matcher, double threshold) {
  DedupResult result;
  result.representative.resize(items.size());

  // Run the blocker source-vs-itself and keep each unordered pair once.
  std::set<std::pair<std::size_t, std::size_t>> pairs;
  for (const blocking::CandidatePair& pair :
       blocker.Generate(items, items)) {
    if (pair.external_index == pair.local_index) continue;
    const auto lo = std::min(pair.external_index, pair.local_index);
    const auto hi = std::max(pair.external_index, pair.local_index);
    pairs.emplace(lo, hi);
  }

  util::UnionFind clusters(items.size());
  for (const auto& [a, b] : pairs) {
    ++result.comparisons;
    if (matcher.Score(items[a], items[b]) >= threshold) {
      clusters.Union(a, b);
    }
  }

  // Representative = smallest member of each cluster.
  for (const auto& group : clusters.Groups(/*min_size=*/1)) {
    for (std::size_t member : group) {
      result.representative[member] = group.front();
    }
    if (group.size() >= 2) result.duplicate_clusters.push_back(group);
  }
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (result.representative[i] == i) result.survivors.push_back(i);
  }
  return result;
}

}  // namespace rulelink::linking
