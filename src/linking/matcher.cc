#include "linking/matcher.h"

#include <algorithm>

#include "text/similarity.h"
#include "util/logging.h"

namespace rulelink::linking {

double ComputeSimilarity(SimilarityMeasure measure, std::string_view a,
                         std::string_view b) {
  switch (measure) {
    case SimilarityMeasure::kExact:
      return a == b ? 1.0 : 0.0;
    case SimilarityMeasure::kLevenshtein:
      return text::LevenshteinSimilarity(a, b);
    case SimilarityMeasure::kJaro:
      return text::JaroSimilarity(a, b);
    case SimilarityMeasure::kJaroWinkler:
      return text::JaroWinklerSimilarity(a, b);
    case SimilarityMeasure::kJaccardTokens:
      return text::JaccardTokenSimilarity(a, b);
    case SimilarityMeasure::kDiceBigram:
      return text::DiceBigramSimilarity(a, b);
    case SimilarityMeasure::kMongeElkan:
      // Symmetrized.
      return 0.5 * (text::MongeElkanSimilarity(a, b) +
                    text::MongeElkanSimilarity(b, a));
  }
  return 0.0;
}

const char* SimilarityMeasureName(SimilarityMeasure measure) {
  switch (measure) {
    case SimilarityMeasure::kExact: return "exact";
    case SimilarityMeasure::kLevenshtein: return "levenshtein";
    case SimilarityMeasure::kJaro: return "jaro";
    case SimilarityMeasure::kJaroWinkler: return "jaro-winkler";
    case SimilarityMeasure::kJaccardTokens: return "jaccard-tokens";
    case SimilarityMeasure::kDiceBigram: return "dice-bigram";
    case SimilarityMeasure::kMongeElkan: return "monge-elkan";
  }
  return "?";
}

ItemMatcher::ItemMatcher(std::vector<AttributeRule> rules)
    : rules_(std::move(rules)) {
  RL_CHECK(!rules_.empty()) << "ItemMatcher needs at least one rule";
  for (const AttributeRule& rule : rules_) {
    RL_CHECK(rule.weight > 0.0) << "attribute weights must be positive";
  }
}

double ItemMatcher::Score(const core::Item& external,
                          const core::Item& local) const {
  double weighted_sum = 0.0;
  double weight_total = 0.0;
  for (const AttributeRule& rule : rules_) {
    const auto ext_values = external.ValuesOf(rule.external_property);
    const auto local_values = local.ValuesOf(rule.local_property);
    if (ext_values.empty() || local_values.empty()) continue;
    double best = 0.0;
    for (const std::string& ev : ext_values) {
      for (const std::string& lv : local_values) {
        best = std::max(best, ComputeSimilarity(rule.measure, ev, lv));
      }
    }
    weighted_sum += rule.weight * best;
    weight_total += rule.weight;
  }
  return weight_total > 0.0 ? weighted_sum / weight_total : 0.0;
}

}  // namespace rulelink::linking
