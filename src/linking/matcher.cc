#include "linking/matcher.h"

#include <algorithm>

#include "linking/feature_cache.h"
#include "text/similarity.h"
#include "util/interner.h"
#include "util/logging.h"

namespace rulelink::linking {

double ComputeSimilarity(SimilarityMeasure measure, std::string_view a,
                         std::string_view b) {
  switch (measure) {
    case SimilarityMeasure::kExact:
      return a == b ? 1.0 : 0.0;
    case SimilarityMeasure::kLevenshtein:
      return text::LevenshteinSimilarity(a, b);
    case SimilarityMeasure::kJaro:
      return text::JaroSimilarity(a, b);
    case SimilarityMeasure::kJaroWinkler:
      return text::JaroWinklerSimilarity(a, b);
    case SimilarityMeasure::kJaccardTokens:
      return text::JaccardTokenSimilarity(a, b);
    case SimilarityMeasure::kDiceBigram:
      return text::DiceBigramSimilarity(a, b);
    case SimilarityMeasure::kMongeElkan:
      // Symmetrized.
      return 0.5 * (text::MongeElkanSimilarity(a, b) +
                    text::MongeElkanSimilarity(b, a));
  }
  return 0.0;
}

const char* SimilarityMeasureName(SimilarityMeasure measure) {
  switch (measure) {
    case SimilarityMeasure::kExact: return "exact";
    case SimilarityMeasure::kLevenshtein: return "levenshtein";
    case SimilarityMeasure::kJaro: return "jaro";
    case SimilarityMeasure::kJaroWinkler: return "jaro-winkler";
    case SimilarityMeasure::kJaccardTokens: return "jaccard-tokens";
    case SimilarityMeasure::kDiceBigram: return "dice-bigram";
    case SimilarityMeasure::kMongeElkan: return "monge-elkan";
  }
  return "?";
}

ItemMatcher::ItemMatcher(std::vector<AttributeRule> rules)
    : rules_(std::move(rules)) {
  RL_CHECK(!rules_.empty()) << "ItemMatcher needs at least one rule";
  for (const AttributeRule& rule : rules_) {
    RL_CHECK(rule.weight > 0.0) << "attribute weights must be positive";
  }
}

double ItemMatcher::Score(const core::Item& external, const core::Item& local,
                          std::uint64_t* measures_computed) const {
  double weighted_sum = 0.0;
  double weight_total = 0.0;
  for (const AttributeRule& rule : rules_) {
    const auto ext_values = external.ValuesOf(rule.external_property);
    const auto local_values = local.ValuesOf(rule.local_property);
    if (ext_values.empty() || local_values.empty()) continue;
    double best = 0.0;
    for (const std::string& ev : ext_values) {
      for (const std::string& lv : local_values) {
        best = std::max(best, ComputeSimilarity(rule.measure, ev, lv));
      }
    }
    if (measures_computed != nullptr) {
      *measures_computed += ext_values.size() * local_values.size();
    }
    weighted_sum += rule.weight * best;
    weight_total += rule.weight;
  }
  return weight_total > 0.0 ? weighted_sum / weight_total : 0.0;
}

namespace {

using ValueFeatures = FeatureDictionary::ValueFeatures;

// |unique(a) ∩ unique(b)| over sorted id sequences that may repeat ids.
// Same cardinality JaccardTokenSimilarity derives from sorted-unique
// string views (intersection size is invariant under renumbering).
std::size_t SortedUniqueIdIntersection(const text::TokenId* a, std::size_t na,
                                       const text::TokenId* b,
                                       std::size_t nb) {
  std::size_t inter = 0, i = 0, j = 0;
  while (i < na && j < nb) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++inter;
      const text::TokenId id = a[i];
      while (i < na && a[i] == id) ++i;
      while (j < nb && b[j] == id) ++j;
    }
  }
  return inter;
}

// Multiset overlap sum(min(count_a, count_b)) over sorted id sequences —
// the id-space twin of similarity.cc's SortedMultisetOverlap.
std::size_t SortedMultisetIdOverlap(const text::TokenId* a, std::size_t na,
                                    const text::TokenId* b, std::size_t nb) {
  std::size_t overlap = 0, i = 0, j = 0;
  while (i < na && j < nb) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++overlap;
      ++i;
      ++j;
    }
  }
  return overlap;
}

double CachedJaccard(const ValueFeatures& a, const ValueFeatures& b) {
  if (a.num_tokens == 0 && b.num_tokens == 0) return 1.0;
  const std::size_t inter = SortedUniqueIdIntersection(
      a.sorted_tokens, a.num_tokens, b.sorted_tokens, b.num_tokens);
  return static_cast<double>(inter) /
         static_cast<double>(a.num_unique_tokens + b.num_unique_tokens -
                             inter);
}

double CachedDice(const ValueFeatures& a, const ValueFeatures& b) {
  if (a.num_bigrams == 0 && b.num_bigrams == 0) return 1.0;
  if (a.num_bigrams == 0 || b.num_bigrams == 0) return 0.0;
  const std::size_t overlap = SortedMultisetIdOverlap(
      a.sorted_bigrams, a.num_bigrams, b.sorted_bigrams, b.num_bigrams);
  return 2.0 * static_cast<double>(overlap) /
         static_cast<double>(a.num_bigrams + b.num_bigrams);
}

// One direction of Monge-Elkan over precomputed token ids. Tokens are
// walked in occurrence order so the floating-point sum matches
// text::MongeElkanSimilarity addition for addition.
double CachedMongeElkanOneWay(const FeatureDictionary& dict,
                              const ValueFeatures& a,
                              const ValueFeatures& b) {
  if (a.num_tokens == 0 && b.num_tokens == 0) return 1.0;
  if (a.num_tokens == 0 || b.num_tokens == 0) return 0.0;
  double total = 0.0;
  for (std::uint32_t i = 0; i < a.num_tokens; ++i) {
    const std::string_view x = dict.View(a.ordered_tokens[i]);
    double best = 0.0;
    for (std::uint32_t j = 0; j < b.num_tokens; ++j) {
      best = std::max(
          best, text::JaroWinklerSimilarity(x, dict.View(b.ordered_tokens[j])));
    }
    total += best;
  }
  return total / static_cast<double>(a.num_tokens);
}

// Best similarity over the value-id cross product, memoized per
// (value-id, value-id) under `measure_index`. `pair_similarity` is the
// measure-specific scorer — resolved once per rule, so the value-pair
// loop is free of measure dispatch.
template <typename PairSimilarity>
double BestCachedPair(const ValueId* ext, std::size_t num_ext,
                      const ValueId* loc, std::size_t num_loc,
                      std::size_t measure_index, ScoreMemo* memo,
                      std::uint64_t* measures_computed,
                      const PairSimilarity& pair_similarity) {
  auto* map = memo != nullptr ? &memo->map_for(measure_index) : nullptr;
  double best = 0.0;
  for (std::size_t i = 0; i < num_ext; ++i) {
    for (std::size_t j = 0; j < num_loc; ++j) {
      double similarity;
      if (map != nullptr) {
        ++memo->mutable_stats().lookups;
        const std::uint64_t key = util::PackSymbolPair(ext[i], loc[j]);
        const auto [it, inserted] = map->try_emplace(key, 0.0);
        if (inserted) {
          it->second = pair_similarity(ext[i], loc[j]);
          if (measures_computed != nullptr) ++*measures_computed;
        } else {
          ++memo->mutable_stats().hits;
        }
        similarity = it->second;
      } else {
        similarity = pair_similarity(ext[i], loc[j]);
        if (measures_computed != nullptr) ++*measures_computed;
      }
      best = std::max(best, similarity);
    }
  }
  return best;
}

}  // namespace

double ItemMatcher::ScoreCached(const FeatureCache& external_features,
                                std::size_t external_index,
                                const FeatureCache& local_features,
                                std::size_t local_index, ScoreMemo* memo,
                                std::uint64_t* measures_computed) const {
  RL_DCHECK(&external_features.dict().root() == &local_features.dict().root())
      << "caches must share one FeatureDictionary root";
  RL_DCHECK(external_features.num_rules() == rules_.size());
  RL_DCHECK(local_features.num_rules() == rules_.size());
  const FeatureDictionary& dict = external_features.dict();

  double weighted_sum = 0.0;
  double weight_total = 0.0;
  for (std::size_t r = 0; r < rules_.size(); ++r) {
    const AttributeRule& rule = rules_[r];
    std::size_t num_ext = 0, num_loc = 0;
    const ValueId* ext = external_features.Values(external_index, r, &num_ext);
    const ValueId* loc = local_features.Values(local_index, r, &num_loc);
    if (num_ext == 0 || num_loc == 0) continue;

    const std::size_t mi = static_cast<std::size_t>(rule.measure);
    double best = 0.0;
    switch (rule.measure) {
      case SimilarityMeasure::kExact:
        // Identical strings share one value id; no memo needed.
        for (std::size_t i = 0; i < num_ext && best == 0.0; ++i) {
          for (std::size_t j = 0; j < num_loc; ++j) {
            if (measures_computed != nullptr) ++*measures_computed;
            if (ext[i] == loc[j]) {
              best = 1.0;
              break;
            }
          }
        }
        break;
      case SimilarityMeasure::kLevenshtein:
        best = BestCachedPair(ext, num_ext, loc, num_loc, mi, memo,
                              measures_computed,
                              [&dict](ValueId a, ValueId b) {
                                return text::LevenshteinSimilarity(
                                    dict.View(a), dict.View(b));
                              });
        break;
      case SimilarityMeasure::kJaro:
        best = BestCachedPair(ext, num_ext, loc, num_loc, mi, memo,
                              measures_computed,
                              [&dict](ValueId a, ValueId b) {
                                return text::JaroSimilarity(dict.View(a),
                                                            dict.View(b));
                              });
        break;
      case SimilarityMeasure::kJaroWinkler:
        best = BestCachedPair(ext, num_ext, loc, num_loc, mi, memo,
                              measures_computed,
                              [&dict](ValueId a, ValueId b) {
                                return text::JaroWinklerSimilarity(
                                    dict.View(a), dict.View(b));
                              });
        break;
      case SimilarityMeasure::kJaccardTokens:
        // A sort-merge over precomputed ids is cheaper than a memo
        // lookup-or-insert, so the set measures never memoize (on
        // mostly-distinct values like part numbers the memo is all
        // misses, and every miss grows the table).
        best = BestCachedPair(ext, num_ext, loc, num_loc, mi, nullptr,
                              measures_computed,
                              [&dict](ValueId a, ValueId b) {
                                return CachedJaccard(dict.Features(a),
                                                     dict.Features(b));
                              });
        break;
      case SimilarityMeasure::kDiceBigram:
        best = BestCachedPair(ext, num_ext, loc, num_loc, mi, nullptr,
                              measures_computed,
                              [&dict](ValueId a, ValueId b) {
                                return CachedDice(dict.Features(a),
                                                  dict.Features(b));
                              });
        break;
      case SimilarityMeasure::kMongeElkan:
        best = BestCachedPair(
            ext, num_ext, loc, num_loc, mi, memo, measures_computed,
            [&dict](ValueId a, ValueId b) {
              const ValueFeatures fa = dict.Features(a);
              const ValueFeatures fb = dict.Features(b);
              // Symmetrized exactly like ComputeSimilarity.
              return 0.5 * (CachedMongeElkanOneWay(dict, fa, fb) +
                            CachedMongeElkanOneWay(dict, fb, fa));
            });
        break;
    }
    weighted_sum += rule.weight * best;
    weight_total += rule.weight;
  }
  return weight_total > 0.0 ? weighted_sum / weight_total : 0.0;
}

}  // namespace rulelink::linking
