// Data fusion (§1: "proceed to a data fusion step where one data item is
// built using all the data items that represent the same real world
// object"): merges each linked external/local pair into one consolidated
// item under a configurable conflict-resolution policy.
#ifndef RULELINK_LINKING_FUSION_H_
#define RULELINK_LINKING_FUSION_H_

#include <string>
#include <vector>

#include "core/item.h"
#include "linking/linker.h"

namespace rulelink::linking {

enum class ConflictPolicy {
  kPreferLocal,     // catalog wins on conflicting properties
  kPreferExternal,  // provider wins
  kLongestValue,    // keep the longer value per property
  kUnion,           // keep every distinct value
};

const char* ConflictPolicyName(ConflictPolicy policy);

struct FusedItem {
  // The canonical identifier: the local item's IRI (the catalog is the
  // authority under the UNA of §3).
  std::string iri;
  std::vector<core::PropertyValue> facts;
  // Provenance: the IRIs the item was fused from (local first).
  std::vector<std::string> sources;
};

// Fuses every link. Properties present on only one side are always kept;
// the policy only arbitrates properties present on both with different
// value sets. Duplicate (property, value) facts are emitted once.
std::vector<FusedItem> FuseLinks(const std::vector<core::Item>& external,
                                 const std::vector<core::Item>& local,
                                 const std::vector<Link>& links,
                                 ConflictPolicy policy);

}  // namespace rulelink::linking

#endif  // RULELINK_LINKING_FUSION_H_
