// Fellegi-Sunter probabilistic record linkage — the classical model behind
// the record-linkage literature the paper builds on (Winkler's overview is
// its reference [12]). Each candidate pair is reduced to a binary
// agreement vector over the configured attributes; the model holds, per
// attribute k, the conditional agreement probabilities
//
//   m_k = P(agree_k | pair is a match)
//   u_k = P(agree_k | pair is a non-match)
//
// and scores a pair by the log2 likelihood ratio ("match weight")
//   W = Σ_k  agree_k ? log2(m_k/u_k) : log2((1-m_k)/(1-u_k)).
//
// Two estimators are provided: supervised (m from the gold links, u from
// randomly sampled non-matching pairs — the situation of §3, where TS
// exists) and the classical unsupervised EM over unlabeled candidate
// pairs.
#ifndef RULELINK_LINKING_FELLEGI_SUNTER_H_
#define RULELINK_LINKING_FELLEGI_SUNTER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "blocking/blocker.h"
#include "core/item.h"
#include "linking/matcher.h"
#include "util/status.h"

namespace rulelink::linking {

struct FsAttribute {
  std::string external_property;
  std::string local_property;
  SimilarityMeasure measure = SimilarityMeasure::kJaroWinkler;
  // The pair "agrees" on this attribute when the best value-pair
  // similarity reaches this bar (missing values never agree).
  double agree_threshold = 0.9;
};

struct FsOptions {
  std::vector<FsAttribute> attributes;  // at most 63
  // Supervised training: how many random non-matching pairs to sample per
  // gold match for the u-probabilities.
  std::size_t negatives_per_match = 5;
  std::uint64_t seed = 42;
  // EM training.
  std::size_t em_iterations = 100;
  double em_initial_match_share = 0.1;  // p
  // Probability clamping to keep the log-ratios finite.
  double probability_floor = 1e-4;
};

class FellegiSunterModel {
 public:
  // Supervised estimation from expert links (the external/local item
  // lists plus the gold (external, local) index pairs).
  static util::Result<FellegiSunterModel> TrainSupervised(
      const std::vector<core::Item>& external,
      const std::vector<core::Item>& local,
      const std::vector<blocking::CandidatePair>& gold,
      const FsOptions& options);

  // Unsupervised EM over unlabeled candidate pairs (classical FS): fits
  // m, u and the match share p from the agreement-pattern counts alone.
  static util::Result<FellegiSunterModel> TrainEm(
      const std::vector<core::Item>& external,
      const std::vector<core::Item>& local,
      const std::vector<blocking::CandidatePair>& candidates,
      const FsOptions& options);

  // The binary agreement vector of one pair.
  std::vector<bool> AgreementVector(const core::Item& external,
                                    const core::Item& local) const;

  // log2 likelihood-ratio match weight; positive favors "match".
  double MatchWeight(const core::Item& external,
                     const core::Item& local) const;

  // Posterior match probability of a pair under the fitted prior p.
  double MatchProbability(const core::Item& external,
                          const core::Item& local) const;

  const std::vector<double>& m() const { return m_; }
  const std::vector<double>& u() const { return u_; }
  double match_share() const { return p_; }
  const std::vector<FsAttribute>& attributes() const { return attributes_; }

  // Weight bounds: the maximum/minimum achievable match weight, handy for
  // picking decision thresholds.
  double MaxWeight() const;
  double MinWeight() const;

 private:
  FellegiSunterModel(std::vector<FsAttribute> attributes,
                     std::vector<double> m, std::vector<double> u, double p);

  std::vector<FsAttribute> attributes_;
  std::vector<double> m_;
  std::vector<double> u_;
  double p_ = 0.1;
};

}  // namespace rulelink::linking

#endif  // RULELINK_LINKING_FELLEGI_SUNTER_H_
