#include "linking/fusion.h"

#include <algorithm>
#include <map>
#include <set>

#include "util/logging.h"

namespace rulelink::linking {

const char* ConflictPolicyName(ConflictPolicy policy) {
  switch (policy) {
    case ConflictPolicy::kPreferLocal: return "prefer-local";
    case ConflictPolicy::kPreferExternal: return "prefer-external";
    case ConflictPolicy::kLongestValue: return "longest-value";
    case ConflictPolicy::kUnion: return "union";
  }
  return "?";
}

namespace {

// Property -> ordered distinct values.
std::map<std::string, std::vector<std::string>> FactsByProperty(
    const core::Item& item) {
  std::map<std::string, std::vector<std::string>> by_property;
  for (const core::PropertyValue& pv : item.facts) {
    auto& values = by_property[pv.property];
    if (std::find(values.begin(), values.end(), pv.value) == values.end()) {
      values.push_back(pv.value);
    }
  }
  return by_property;
}

}  // namespace

std::vector<FusedItem> FuseLinks(const std::vector<core::Item>& external,
                                 const std::vector<core::Item>& local,
                                 const std::vector<Link>& links,
                                 ConflictPolicy policy) {
  std::vector<FusedItem> fused;
  fused.reserve(links.size());
  for (const Link& link : links) {
    RL_CHECK(link.external_index < external.size());
    RL_CHECK(link.local_index < local.size());
    const core::Item& ext = external[link.external_index];
    const core::Item& loc = local[link.local_index];

    FusedItem out;
    out.iri = loc.iri;
    out.sources = {loc.iri, ext.iri};

    auto local_facts = FactsByProperty(loc);
    auto external_facts = FactsByProperty(ext);
    std::set<std::string> properties;
    for (const auto& [property, values] : local_facts) {
      properties.insert(property);
    }
    for (const auto& [property, values] : external_facts) {
      properties.insert(property);
    }

    for (const std::string& property : properties) {
      const auto local_it = local_facts.find(property);
      const auto external_it = external_facts.find(property);
      const bool on_local = local_it != local_facts.end();
      const bool on_external = external_it != external_facts.end();

      std::vector<std::string> chosen;
      if (on_local && !on_external) {
        chosen = local_it->second;
      } else if (!on_local && on_external) {
        chosen = external_it->second;
      } else if (local_it->second == external_it->second) {
        chosen = local_it->second;
      } else {
        switch (policy) {
          case ConflictPolicy::kPreferLocal:
            chosen = local_it->second;
            break;
          case ConflictPolicy::kPreferExternal:
            chosen = external_it->second;
            break;
          case ConflictPolicy::kLongestValue: {
            const auto longest = [](const std::vector<std::string>& values) {
              std::size_t n = 0;
              for (const auto& v : values) n = std::max(n, v.size());
              return n;
            };
            chosen = longest(external_it->second) > longest(local_it->second)
                         ? external_it->second
                         : local_it->second;
            break;
          }
          case ConflictPolicy::kUnion: {
            chosen = local_it->second;
            for (const std::string& v : external_it->second) {
              if (std::find(chosen.begin(), chosen.end(), v) ==
                  chosen.end()) {
                chosen.push_back(v);
              }
            }
            break;
          }
        }
      }
      for (std::string& value : chosen) {
        out.facts.push_back(core::PropertyValue{property, std::move(value)});
      }
    }
    fused.push_back(std::move(out));
  }
  return fused;
}

}  // namespace rulelink::linking
