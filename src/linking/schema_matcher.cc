#include "linking/schema_matcher.h"

#include <algorithm>
#include <map>
#include <unordered_set>

#include "util/string_util.h"

namespace rulelink::linking {
namespace {

using TokenSets = std::map<std::string, std::unordered_set<std::string>>;

TokenSets CollectTokens(const std::vector<core::Item>& items,
                        const SchemaMatcherOptions& options) {
  TokenSets sets;
  const std::size_t limit =
      options.sample_limit == 0 ? items.size()
                                : std::min(options.sample_limit, items.size());
  for (std::size_t i = 0; i < limit; ++i) {
    for (const core::PropertyValue& pv : items[i].facts) {
      auto& tokens = sets[pv.property];
      if (options.tokenize) {
        for (std::string_view piece :
             util::SplitAny(pv.value, " \t-._/:;,")) {
          tokens.insert(util::AsciiToLower(piece));
        }
      } else {
        tokens.insert(util::AsciiToLower(pv.value));
      }
    }
  }
  return sets;
}

double Jaccard(const std::unordered_set<std::string>& a,
               const std::unordered_set<std::string>& b) {
  if (a.empty() && b.empty()) return 0.0;
  std::size_t inter = 0;
  const auto& smaller = a.size() <= b.size() ? a : b;
  const auto& larger = a.size() <= b.size() ? b : a;
  for (const std::string& token : smaller) {
    inter += larger.count(token);
  }
  return static_cast<double>(inter) /
         static_cast<double>(a.size() + b.size() - inter);
}

}  // namespace

std::vector<PropertyAlignment> MatchSchemas(
    const std::vector<core::Item>& external,
    const std::vector<core::Item>& local,
    const SchemaMatcherOptions& options) {
  const TokenSets external_tokens = CollectTokens(external, options);
  const TokenSets local_tokens = CollectTokens(local, options);

  std::vector<PropertyAlignment> alignments;
  for (const auto& [ext_property, ext_set] : external_tokens) {
    PropertyAlignment best;
    best.external_property = ext_property;
    for (const auto& [local_property, local_set] : local_tokens) {
      const double similarity = Jaccard(ext_set, local_set);
      if (similarity > best.similarity) {
        best.local_property = local_property;
        best.similarity = similarity;
      }
    }
    if (!best.local_property.empty() &&
        best.similarity >= options.min_similarity) {
      alignments.push_back(std::move(best));
    }
  }
  std::sort(alignments.begin(), alignments.end(),
            [](const PropertyAlignment& a, const PropertyAlignment& b) {
              if (a.similarity != b.similarity) {
                return a.similarity > b.similarity;
              }
              return a.external_property < b.external_property;
            });
  return alignments;
}

}  // namespace rulelink::linking
