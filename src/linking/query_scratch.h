// Reusable per-worker scratch for one streaming query context: the score
// memo, the filter cascade's batch scratch and the candidate-run buffer.
// Before this struct existed, StreamingLinker::Run materialized all three
// per worker chunk on every call — fine for batch runs, but the serving
// engine answers millions of single-item queries, where per-call setup was
// the dominant allocation source. One QueryScratch per worker (streaming
// shard or serve session) makes the steady-state query path allocation-free:
// every member reuses its warm capacity across requests.
#ifndef RULELINK_LINKING_QUERY_SCRATCH_H_
#define RULELINK_LINKING_QUERY_SCRATCH_H_

#include <cstddef>
#include <vector>

#include "linking/filters.h"
#include "linking/matcher.h"

namespace rulelink::linking {

struct QueryScratch {
  ScoreMemo memo;             // (value-id, value-id, measure) score replay
  FilterBatchScratch filter;  // PruneBatch lanes, gathers, probe staging
  std::vector<std::size_t> run;  // current per-external candidate run

  // Drops memoized scores but keeps every buffer's capacity. Required
  // whenever the value-id universe changes under the scratch — the serve
  // engine calls this on snapshot-generation change, where ids renumber
  // and stale memo keys would alias fresh pairs.
  void InvalidateMemo() { memo.Clear(); }
};

}  // namespace rulelink::linking

#endif  // RULELINK_LINKING_QUERY_SCRATCH_H_
