#include "linking/fellegi_sunter.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_map>

#include "util/logging.h"
#include "util/rng.h"

namespace rulelink::linking {
namespace {

double Clamp(double p, double floor) {
  return std::min(1.0 - floor, std::max(floor, p));
}

util::Status ValidateOptions(const FsOptions& options) {
  if (options.attributes.empty()) {
    return util::InvalidArgumentError("FsOptions.attributes is empty");
  }
  if (options.attributes.size() > 63) {
    return util::InvalidArgumentError("at most 63 attributes supported");
  }
  for (const FsAttribute& attribute : options.attributes) {
    if (attribute.agree_threshold <= 0.0 ||
        attribute.agree_threshold > 1.0) {
      return util::InvalidArgumentError(
          "agree_threshold must be in (0, 1]");
    }
  }
  return util::OkStatus();
}

bool Agrees(const FsAttribute& attribute, const core::Item& external,
            const core::Item& local) {
  const auto ext_values = external.ValuesOf(attribute.external_property);
  const auto local_values = local.ValuesOf(attribute.local_property);
  for (const std::string& ev : ext_values) {
    for (const std::string& lv : local_values) {
      if (ComputeSimilarity(attribute.measure, ev, lv) >=
          attribute.agree_threshold) {
        return true;
      }
    }
  }
  return false;
}

std::uint64_t PatternOf(const std::vector<FsAttribute>& attributes,
                        const core::Item& external,
                        const core::Item& local) {
  std::uint64_t pattern = 0;
  for (std::size_t k = 0; k < attributes.size(); ++k) {
    if (Agrees(attributes[k], external, local)) {
      pattern |= std::uint64_t{1} << k;
    }
  }
  return pattern;
}

}  // namespace

FellegiSunterModel::FellegiSunterModel(std::vector<FsAttribute> attributes,
                                       std::vector<double> m,
                                       std::vector<double> u, double p)
    : attributes_(std::move(attributes)),
      m_(std::move(m)),
      u_(std::move(u)),
      p_(p) {}

util::Result<FellegiSunterModel> FellegiSunterModel::TrainSupervised(
    const std::vector<core::Item>& external,
    const std::vector<core::Item>& local,
    const std::vector<blocking::CandidatePair>& gold,
    const FsOptions& options) {
  RL_RETURN_IF_ERROR(ValidateOptions(options));
  if (gold.empty()) {
    return util::InvalidArgumentError("no gold pairs to train on");
  }
  if (external.empty() || local.empty()) {
    return util::InvalidArgumentError("empty item lists");
  }
  const std::size_t k_count = options.attributes.size();

  // m: agreement share among the gold matches.
  std::vector<double> m(k_count, 0.0);
  for (const blocking::CandidatePair& pair : gold) {
    RL_CHECK(pair.external_index < external.size());
    RL_CHECK(pair.local_index < local.size());
    for (std::size_t k = 0; k < k_count; ++k) {
      m[k] += Agrees(options.attributes[k], external[pair.external_index],
                     local[pair.local_index]);
    }
  }
  for (double& value : m) {
    value = Clamp(value / static_cast<double>(gold.size()),
                  options.probability_floor);
  }

  // u: agreement share among sampled non-matching pairs.
  std::set<blocking::CandidatePair> gold_set(gold.begin(), gold.end());
  util::Rng rng(options.seed);
  const std::size_t negatives =
      std::max<std::size_t>(1, options.negatives_per_match * gold.size());
  std::vector<double> u(k_count, 0.0);
  std::size_t drawn = 0;
  std::size_t attempts = 0;
  while (drawn < negatives && attempts < negatives * 20) {
    ++attempts;
    const blocking::CandidatePair pair{
        static_cast<std::size_t>(rng.UniformUint64(external.size())),
        static_cast<std::size_t>(rng.UniformUint64(local.size()))};
    if (gold_set.count(pair) > 0) continue;
    for (std::size_t k = 0; k < k_count; ++k) {
      u[k] += Agrees(options.attributes[k], external[pair.external_index],
                     local[pair.local_index]);
    }
    ++drawn;
  }
  if (drawn == 0) {
    return util::FailedPreconditionError(
        "could not sample any non-matching pair");
  }
  for (double& value : u) {
    value = Clamp(value / static_cast<double>(drawn),
                  options.probability_floor);
  }

  const double p =
      Clamp(static_cast<double>(gold.size()) /
                (static_cast<double>(gold.size()) + static_cast<double>(drawn)),
            options.probability_floor);
  return FellegiSunterModel(options.attributes, std::move(m), std::move(u),
                            p);
}

util::Result<FellegiSunterModel> FellegiSunterModel::TrainEm(
    const std::vector<core::Item>& external,
    const std::vector<core::Item>& local,
    const std::vector<blocking::CandidatePair>& candidates,
    const FsOptions& options) {
  RL_RETURN_IF_ERROR(ValidateOptions(options));
  if (candidates.empty()) {
    return util::InvalidArgumentError("no candidate pairs for EM");
  }
  const std::size_t k_count = options.attributes.size();

  // Collapse candidates into agreement-pattern counts: EM is then linear
  // in the number of DISTINCT patterns (<= 2^k, usually tiny).
  std::unordered_map<std::uint64_t, double> pattern_count;
  for (const blocking::CandidatePair& pair : candidates) {
    RL_CHECK(pair.external_index < external.size());
    RL_CHECK(pair.local_index < local.size());
    pattern_count[PatternOf(options.attributes,
                            external[pair.external_index],
                            local[pair.local_index])] += 1.0;
  }
  const double total = static_cast<double>(candidates.size());

  // Initialization: optimistic m, pessimistic u.
  std::vector<double> m(k_count, 0.9);
  std::vector<double> u(k_count, 0.1);
  double p = Clamp(options.em_initial_match_share,
                   options.probability_floor);

  for (std::size_t iteration = 0; iteration < options.em_iterations;
       ++iteration) {
    // E-step: responsibility of the match class per pattern.
    double match_mass = 0.0;
    std::vector<double> m_numerator(k_count, 0.0);
    std::vector<double> u_numerator(k_count, 0.0);
    double nonmatch_mass = 0.0;
    for (const auto& [pattern, count] : pattern_count) {
      double match_likelihood = p;
      double nonmatch_likelihood = 1.0 - p;
      for (std::size_t k = 0; k < k_count; ++k) {
        const bool agree = (pattern >> k) & 1;
        match_likelihood *= agree ? m[k] : 1.0 - m[k];
        nonmatch_likelihood *= agree ? u[k] : 1.0 - u[k];
      }
      const double denom = match_likelihood + nonmatch_likelihood;
      const double g = denom > 0.0 ? match_likelihood / denom : 0.0;
      match_mass += g * count;
      nonmatch_mass += (1.0 - g) * count;
      for (std::size_t k = 0; k < k_count; ++k) {
        if ((pattern >> k) & 1) {
          m_numerator[k] += g * count;
          u_numerator[k] += (1.0 - g) * count;
        }
      }
    }
    // M-step.
    p = Clamp(match_mass / total, options.probability_floor);
    for (std::size_t k = 0; k < k_count; ++k) {
      m[k] = Clamp(match_mass > 0.0 ? m_numerator[k] / match_mass : 0.5,
                   options.probability_floor);
      u[k] = Clamp(
          nonmatch_mass > 0.0 ? u_numerator[k] / nonmatch_mass : 0.5,
          options.probability_floor);
    }
  }
  // Canonical orientation: the "match" class is the one that agrees more;
  // EM may converge with the labels swapped.
  double m_sum = 0.0, u_sum = 0.0;
  for (std::size_t k = 0; k < k_count; ++k) {
    m_sum += m[k];
    u_sum += u[k];
  }
  if (m_sum < u_sum) {
    std::swap(m, u);
    p = 1.0 - p;
  }
  return FellegiSunterModel(options.attributes, std::move(m), std::move(u),
                            p);
}

std::vector<bool> FellegiSunterModel::AgreementVector(
    const core::Item& external, const core::Item& local) const {
  std::vector<bool> agreement(attributes_.size());
  for (std::size_t k = 0; k < attributes_.size(); ++k) {
    agreement[k] = Agrees(attributes_[k], external, local);
  }
  return agreement;
}

double FellegiSunterModel::MatchWeight(const core::Item& external,
                                       const core::Item& local) const {
  double weight = 0.0;
  for (std::size_t k = 0; k < attributes_.size(); ++k) {
    const bool agree = Agrees(attributes_[k], external, local);
    weight += agree ? std::log2(m_[k] / u_[k])
                    : std::log2((1.0 - m_[k]) / (1.0 - u_[k]));
  }
  return weight;
}

double FellegiSunterModel::MatchProbability(const core::Item& external,
                                            const core::Item& local) const {
  // Posterior from the prior p and the likelihood ratio 2^W.
  const double ratio = std::exp2(MatchWeight(external, local));
  const double odds = ratio * p_ / (1.0 - p_);
  return odds / (1.0 + odds);
}

double FellegiSunterModel::MaxWeight() const {
  double weight = 0.0;
  for (std::size_t k = 0; k < attributes_.size(); ++k) {
    weight += std::max(std::log2(m_[k] / u_[k]),
                       std::log2((1.0 - m_[k]) / (1.0 - u_[k])));
  }
  return weight;
}

double FellegiSunterModel::MinWeight() const {
  double weight = 0.0;
  for (std::size_t k = 0; k < attributes_.size(); ++k) {
    weight += std::min(std::log2(m_[k] / u_[k]),
                       std::log2((1.0 - m_[k]) / (1.0 - u_[k])));
  }
  return weight;
}

}  // namespace rulelink::linking
