#include "linking/filters.h"

#include <algorithm>

#include "text/similarity.h"
#include "util/logging.h"
#include "util/simd.h"

// Stage A's elementwise kernels are compiled once per ISA via per-function
// target attributes; only x86 has the multi-versioned clones.
#if defined(__x86_64__) || defined(__i386__)
#define RULELINK_SIMD_TARGETS 1
#else
#define RULELINK_SIMD_TARGETS 0
#endif

namespace rulelink::linking {
namespace {

// Safety slack for stage B only. The stage-A bound is *exactly* at least
// the score ScoreCached computes (each per-rule bound dominates the best
// value-pair similarity as a double, both sides accumulate in the same
// rule order, and IEEE +,*,/ are monotone per argument), so stage A needs
// no slack. Stage B derives a per-rule similarity floor through a
// subtraction and a division whose rounding is not aligned with the
// scorer's; the slack (1e-9, about five orders above the accumulated
// rounding noise and far below any similarity step 1/maxlen) keeps every
// borderline pair on the "score it" side.
constexpr double kStageBSlack = 1e-9;

// Upper bound on the best Levenshtein similarity over the value-id cross
// product, from lengths alone: the distance is at least |len(a)-len(b)|.
// Shares LevenshteinSimilarityFromDistance with the real measure so the
// bound is the same expression, just with a smaller distance.
double LevenshteinLengthBound(const FeatureDictionary& dict,
                              const ValueId* ext, std::size_t num_ext,
                              const ValueId* loc, std::size_t num_loc) {
  double bound = 0.0;
  for (std::size_t i = 0; i < num_ext; ++i) {
    const std::size_t la = dict.View(ext[i]).size();
    for (std::size_t j = 0; j < num_loc; ++j) {
      const std::size_t lb = dict.View(loc[j]).size();
      const std::size_t longest = std::max(la, lb);
      bound = std::max(bound, text::LevenshteinSimilarityFromDistance(
                                  longest - std::min(la, lb), longest));
    }
  }
  return bound;
}

// Upper bound on the best CachedJaccard: the intersection can be at most
// min(|unique(a)|, |unique(b)|). Same division expression as the measure.
double JaccardCountBound(const FeatureDictionary& dict, const ValueId* ext,
                         std::size_t num_ext, const ValueId* loc,
                         std::size_t num_loc) {
  double bound = 0.0;
  for (std::size_t i = 0; i < num_ext; ++i) {
    const auto fa = dict.Features(ext[i]);
    for (std::size_t j = 0; j < num_loc; ++j) {
      const auto fb = dict.Features(loc[j]);
      if (fa.num_tokens == 0 && fb.num_tokens == 0) return 1.0;
      const std::size_t mn =
          std::min(fa.num_unique_tokens, fb.num_unique_tokens);
      bound = std::max(
          bound, static_cast<double>(mn) /
                     static_cast<double>(fa.num_unique_tokens +
                                         fb.num_unique_tokens - mn));
    }
  }
  return bound;
}

// Upper bound on the best CachedDice: the multiset overlap can be at most
// min(|bigrams(a)|, |bigrams(b)|).
double DiceCountBound(const FeatureDictionary& dict, const ValueId* ext,
                      std::size_t num_ext, const ValueId* loc,
                      std::size_t num_loc) {
  double bound = 0.0;
  for (std::size_t i = 0; i < num_ext; ++i) {
    const auto fa = dict.Features(ext[i]);
    for (std::size_t j = 0; j < num_loc; ++j) {
      const auto fb = dict.Features(loc[j]);
      if (fa.num_bigrams == 0 && fb.num_bigrams == 0) return 1.0;
      const std::size_t mn = std::min(fa.num_bigrams, fb.num_bigrams);
      bound = std::max(bound,
                       2.0 * static_cast<double>(mn) /
                           static_cast<double>(fa.num_bigrams +
                                               fb.num_bigrams));
    }
  }
  return bound;
}

// kExact over value ids is already cheaper than any bound, so the
// "filter" computes the measure itself: 1.0 on any shared id, else 0.0.
double ExactValue(const ValueId* ext, std::size_t num_ext,
                  const ValueId* loc, std::size_t num_loc) {
  for (std::size_t i = 0; i < num_ext; ++i) {
    for (std::size_t j = 0; j < num_loc; ++j) {
      if (ext[i] == loc[j]) return 1.0;
    }
  }
  return 0.0;
}

// --- Batched stage A (DESIGN.md §5h) -----------------------------------
//
// One elementwise pass per rule over the whole candidate run, reading the
// FeatureCache SoA lanes. Every lane evaluates the very expression the
// per-pair helpers above evaluate for a single-valued slot — same integer
// widths in the denominators, same comparison order — so the accumulated
// bound_sum/weight_total are bit-identical to Prune's locals. Inactive
// lanes (missing local property, i.e. an invalid id) contribute +0.0,
// which is an IEEE identity here because the accumulators start at +0.0
// and only ever add non-negative products.

// Participation bits, folded into FilterStats when a pair is pruned.
constexpr std::uint8_t kFlagLength = 1;
constexpr std::uint8_t kFlagToken = 2;
constexpr std::uint8_t kFlagExact = 4;

// Mirrors FilterCascade::Kind (private) for the free-function kernels.
enum StageAKind : int {
  kStageAOptimistic = 0,
  kStageALevenshtein,
  kStageAJaccard,
  kStageADice,
  kStageAExact,
};

struct StageAArgs {
  int kind = kStageAOptimistic;
  double weight = 1.0;
  std::uint32_t ext_scalar = 0;  // length / unique tokens / bigrams
  ValueId ext_id = util::kInvalidSymbolId;
  const std::uint32_t* loc_scalar = nullptr;  // gathered, one per pair
  const ValueId* loc_id = nullptr;            // gathered, one per pair
  std::size_t n = 0;
  double* bound_sum = nullptr;
  double* weight_total = nullptr;
  double* lev_bound = nullptr;  // this rule's row; only for kLevenshtein
  std::uint8_t* flags = nullptr;
};

// The shared elementwise body; always_inline so each target-attributed
// wrapper below compiles its own copy at its own ISA.
__attribute__((always_inline)) inline void StageARuleImpl(
    const StageAArgs& a) {
  switch (a.kind) {
    case kStageAOptimistic:
      for (std::size_t i = 0; i < a.n; ++i) {
        const bool active = a.loc_id[i] != util::kInvalidSymbolId;
        // bound = 1.0, and weight * 1.0 == weight exactly.
        a.bound_sum[i] += active ? a.weight : 0.0;
        a.weight_total[i] += active ? a.weight : 0.0;
      }
      break;
    case kStageALevenshtein:
      for (std::size_t i = 0; i < a.n; ++i) {
        const bool active = a.loc_id[i] != util::kInvalidSymbolId;
        const std::uint32_t la = a.ext_scalar;
        const std::uint32_t lb = a.loc_scalar[i];
        const std::uint32_t longest = std::max(la, lb);
        // LevenshteinSimilarityFromDistance(longest - min, longest).
        const double bound =
            longest == 0 ? 1.0
                         : 1.0 - static_cast<double>(
                                     longest - std::min(la, lb)) /
                                     static_cast<double>(longest);
        if (active && bound < 1.0) a.flags[i] |= kFlagLength;
        a.lev_bound[i] = active ? bound : -1.0;
        a.bound_sum[i] += active ? a.weight * bound : 0.0;
        a.weight_total[i] += active ? a.weight : 0.0;
      }
      break;
    case kStageAJaccard:
      for (std::size_t i = 0; i < a.n; ++i) {
        const bool active = a.loc_id[i] != util::kInvalidSymbolId;
        const std::uint32_t ua = a.ext_scalar;
        const std::uint32_t ub = a.loc_scalar[i];
        double bound = 1.0;  // both token sets empty (== no tokens at all)
        if (ua != 0 || ub != 0) {
          const std::size_t mn = std::min(ua, ub);
          bound = static_cast<double>(mn) /
                  static_cast<double>(ua + ub - mn);
        }
        if (active && bound < 1.0) a.flags[i] |= kFlagToken;
        a.bound_sum[i] += active ? a.weight * bound : 0.0;
        a.weight_total[i] += active ? a.weight : 0.0;
      }
      break;
    case kStageADice:
      for (std::size_t i = 0; i < a.n; ++i) {
        const bool active = a.loc_id[i] != util::kInvalidSymbolId;
        const std::uint32_t ba = a.ext_scalar;
        const std::uint32_t bb = a.loc_scalar[i];
        double bound = 1.0;  // both bigram multisets empty
        if (ba != 0 || bb != 0) {
          const std::size_t mn = std::min(ba, bb);
          bound = 2.0 * static_cast<double>(mn) /
                  static_cast<double>(ba + bb);
        }
        if (active && bound < 1.0) a.flags[i] |= kFlagToken;
        a.bound_sum[i] += active ? a.weight * bound : 0.0;
        a.weight_total[i] += active ? a.weight : 0.0;
      }
      break;
    case kStageAExact:
      for (std::size_t i = 0; i < a.n; ++i) {
        const bool active = a.loc_id[i] != util::kInvalidSymbolId;
        const double bound = a.loc_id[i] == a.ext_id ? 1.0 : 0.0;
        if (active && bound < 1.0) a.flags[i] |= kFlagExact;
        a.bound_sum[i] += active ? a.weight * bound : 0.0;
        a.weight_total[i] += active ? a.weight : 0.0;
      }
      break;
    default:
      break;
  }
}

void StageARuleBaseline(const StageAArgs& a) { StageARuleImpl(a); }

#if RULELINK_SIMD_TARGETS
__attribute__((target("sse4.2"))) void StageARuleSse42(const StageAArgs& a) {
  StageARuleImpl(a);
}

__attribute__((target("avx2"))) void StageARuleAvx2(const StageAArgs& a) {
  StageARuleImpl(a);
}
#endif  // RULELINK_SIMD_TARGETS

using StageAKernel = void (*)(const StageAArgs&);

StageAKernel PickStageAKernel(util::SimdMode mode) {
#if RULELINK_SIMD_TARGETS
  switch (mode) {
    case util::SimdMode::kAVX2:
      return StageARuleAvx2;
    case util::SimdMode::kSSE42:
      return StageARuleSse42;
    default:
      return StageARuleBaseline;
  }
#else
  (void)mode;
  return StageARuleBaseline;
#endif
}

// Prune's `record` lambda, replayed from a pair's participation bits.
void RecordPruned(FilterStats* stats, std::uint8_t flags,
                  bool distance_cap) {
  if (stats == nullptr) return;
  ++stats->pairs_pruned;
  if (flags & kFlagLength) ++stats->by_length;
  if (flags & kFlagToken) ++stats->by_token_count;
  if (flags & kFlagExact) ++stats->by_exact;
  if (distance_cap) ++stats->by_distance_cap;
}

// FilterBatchScratch::state values.
constexpr std::uint8_t kStateUndecided = 0;
constexpr std::uint8_t kStatePruned = 1;
constexpr std::uint8_t kStateKeep = 2;
constexpr std::uint8_t kStateFallback = 3;  // decided by per-pair Prune

}  // namespace

FilterCascade::FilterCascade(const ItemMatcher* matcher, double threshold)
    : matcher_(matcher), threshold_(threshold) {
  RL_CHECK(matcher_ != nullptr);
  RL_CHECK(threshold_ >= 0.0 && threshold_ <= 1.0);
  plans_.reserve(matcher_->rules().size());
  for (const AttributeRule& rule : matcher_->rules()) {
    Plan plan;
    plan.weight = rule.weight;
    switch (rule.measure) {
      case SimilarityMeasure::kLevenshtein:
        plan.kind = Kind::kLevenshtein;
        any_levenshtein_ = true;
        break;
      case SimilarityMeasure::kJaccardTokens:
        plan.kind = Kind::kJaccard;
        break;
      case SimilarityMeasure::kDiceBigram:
        plan.kind = Kind::kDice;
        break;
      case SimilarityMeasure::kExact:
        plan.kind = Kind::kExact;
        break;
      default:
        plan.kind = Kind::kOptimistic;
        break;
    }
    plans_.push_back(plan);
  }
}

bool FilterCascade::Prune(const FeatureCache& external_features,
                          std::size_t external_index,
                          const FeatureCache& local_features,
                          std::size_t local_index,
                          FilterStats* stats) const {
  const FeatureDictionary& dict = external_features.dict();

  // Stage A: accumulate the per-rule bounds exactly the way ScoreCached
  // accumulates the per-rule bests (same order, same skip-and-renormalize
  // treatment of missing properties), so bound_sum >= weighted_sum holds
  // as computed doubles, not just in real arithmetic.
  double bound_sum = 0.0;
  double weight_total = 0.0;
  bool length_participated = false;
  bool token_participated = false;
  bool exact_participated = false;
  bool any_levenshtein_active = false;
  for (std::size_t r = 0; r < plans_.size(); ++r) {
    std::size_t num_ext = 0, num_loc = 0;
    const ValueId* ext = external_features.Values(external_index, r, &num_ext);
    const ValueId* loc = local_features.Values(local_index, r, &num_loc);
    if (num_ext == 0 || num_loc == 0) continue;
    const Plan& plan = plans_[r];
    double bound = 1.0;
    switch (plan.kind) {
      case Kind::kOptimistic:
        break;
      case Kind::kLevenshtein:
        bound = LevenshteinLengthBound(dict, ext, num_ext, loc, num_loc);
        any_levenshtein_active = true;
        if (bound < 1.0) length_participated = true;
        break;
      case Kind::kJaccard:
        bound = JaccardCountBound(dict, ext, num_ext, loc, num_loc);
        if (bound < 1.0) token_participated = true;
        break;
      case Kind::kDice:
        bound = DiceCountBound(dict, ext, num_ext, loc, num_loc);
        if (bound < 1.0) token_participated = true;
        break;
      case Kind::kExact:
        bound = ExactValue(ext, num_ext, loc, num_loc);
        if (bound < 1.0) exact_participated = true;
        break;
    }
    bound_sum += plan.weight * bound;
    weight_total += plan.weight;
  }

  const auto record = [&](bool distance_cap) {
    if (stats == nullptr) return;
    ++stats->pairs_pruned;
    if (length_participated) ++stats->by_length;
    if (token_participated) ++stats->by_token_count;
    if (exact_participated) ++stats->by_exact;
    if (distance_cap) ++stats->by_distance_cap;
  };

  if (weight_total == 0.0) {
    // Every rule inactive: the scorer returns 0.0, below any positive
    // threshold. (With threshold 0 the pair would still be emitted.)
    if (threshold_ <= 0.0) return false;
    record(false);
    return true;
  }
  if (bound_sum / weight_total < threshold_) {
    record(false);
    return true;
  }

  // Stage B: the length bound survived, but a capped bit-parallel probe
  // may still prove every Levenshtein value pair sits below the similarity
  // floor that rule would need for the aggregate to reach the threshold.
  if (!any_levenshtein_active || threshold_ <= 0.0) return false;
  const double threshold_weight = threshold_ * weight_total;
  for (std::size_t r = 0; r < plans_.size(); ++r) {
    if (plans_[r].kind != Kind::kLevenshtein) continue;
    std::size_t num_ext = 0, num_loc = 0;
    const ValueId* ext = external_features.Values(external_index, r, &num_ext);
    const ValueId* loc = local_features.Values(local_index, r, &num_loc);
    if (num_ext == 0 || num_loc == 0) continue;
    // Bound on every other rule's contribution = stage A's sum minus this
    // rule's own term; the subtraction's rounding is what kStageBSlack is
    // for.
    const double own =
        plans_[r].weight *
        LevenshteinLengthBound(dict, ext, num_ext, loc, num_loc);
    const double floor =
        (threshold_weight - (bound_sum - own)) / plans_[r].weight;
    const double floor_cap = floor - kStageBSlack;
    if (floor_cap <= 0.0) continue;  // any similarity could suffice
    double best = -1.0;
    for (std::size_t i = 0; i < num_ext; ++i) {
      const std::string_view va = dict.View(ext[i]);
      for (std::size_t j = 0; j < num_loc; ++j) {
        const std::string_view vb = dict.View(loc[j]);
        const std::size_t longest = std::max(va.size(), vb.size());
        if (longest == 0) {
          best = std::max(best, 1.0);
          continue;
        }
        // Distances above this cap put the pair's similarity strictly
        // below floor_cap (the +1 absorbs the product's rounding).
        double allowed = (1.0 - floor_cap) * static_cast<double>(longest);
        if (allowed < 0.0) allowed = 0.0;
        const std::size_t cap = static_cast<std::size_t>(allowed) + 1;
        const std::size_t d = text::BoundedLevenshteinDistance(va, vb, cap);
        if (d <= cap) {
          best = std::max(
              best, text::LevenshteinSimilarityFromDistance(d, longest));
        }
      }
    }
    if (best < floor_cap) {
      record(true);
      return true;
    }
  }
  return false;
}

void FilterCascade::PruneBatch(const FeatureCache& external_features,
                               std::size_t external_index,
                               const FeatureCache& local_features,
                               const std::size_t* candidates,
                               std::size_t count, FilterStats* stats,
                               FilterBatchScratch* scratch) const {
  RL_DCHECK(scratch != nullptr);
  scratch->pruned.assign(count, 0);
  if (count == 0) return;

  // A multi-valued external item needs the cross-product bounds on every
  // rule: the whole run takes the per-pair path.
  if (!external_features.simple(external_index)) {
    for (std::size_t i = 0; i < count; ++i) {
      scratch->pruned[i] = Prune(external_features, external_index,
                                 local_features, candidates[i], stats)
                               ? 1
                               : 0;
    }
    scratch->remainder_pairs += count;
    return;
  }

  const FeatureDictionary& dict = external_features.dict();
  const std::size_t num_rules = plans_.size();
  std::size_t num_lev = 0;
  for (const Plan& plan : plans_) {
    if (plan.kind == Kind::kLevenshtein) ++num_lev;
  }

  scratch->bound_sum.assign(count, 0.0);
  scratch->weight_total.assign(count, 0.0);
  scratch->flags.assign(count, 0);
  scratch->state.assign(count, kStateUndecided);
  scratch->lev_bound.assign(num_lev * count, -1.0);
  scratch->lane_scalar.resize(count);
  scratch->lane_id.resize(count);

  // Multi-valued locals are decided by per-pair Prune right away; their
  // lanes still flow through the kernels below but every result is
  // ignored (state == kStateFallback).
  std::size_t fallback = 0;
  for (std::size_t i = 0; i < count; ++i) {
    if (local_features.simple(candidates[i])) continue;
    scratch->state[i] = kStateFallback;
    scratch->pruned[i] = Prune(external_features, external_index,
                               local_features, candidates[i], stats)
                             ? 1
                             : 0;
    ++fallback;
  }
  scratch->remainder_pairs += fallback;
  scratch->batched_pairs += count - fallback;
  if (fallback == count) return;

  const ValueId* ext_ids = external_features.lane_value_ids();
  const std::uint32_t* ext_lengths = external_features.lane_byte_lengths();
  const std::uint32_t* ext_tokens = external_features.lane_unique_tokens();
  const std::uint32_t* ext_bigrams = external_features.lane_bigrams();
  const ValueId* loc_ids = local_features.lane_value_ids();
  const std::uint32_t* loc_lengths = local_features.lane_byte_lengths();
  const std::uint32_t* loc_tokens = local_features.lane_unique_tokens();
  const std::uint32_t* loc_bigrams = local_features.lane_bigrams();
  const StageAKernel kernel = PickStageAKernel(util::ActiveSimdMode());

  // Stage A, rule-outer: gather the local lanes this rule's bound reads
  // into contiguous scratch, then one elementwise kernel pass. Rules run
  // in plan order, so each lane's accumulators see the exact addition
  // sequence Prune's scalar locals see.
  std::size_t lev_row = 0;
  for (std::size_t r = 0; r < num_rules; ++r) {
    const Plan& plan = plans_[r];
    const std::size_t row =
        plan.kind == Kind::kLevenshtein ? lev_row++ : 0;
    const std::size_t ext_slot = external_index * num_rules + r;
    const ValueId ext_id = ext_ids[ext_slot];
    if (ext_id == util::kInvalidSymbolId) continue;  // property missing

    StageAArgs args;
    args.weight = plan.weight;
    args.ext_id = ext_id;
    args.n = count;
    args.bound_sum = scratch->bound_sum.data();
    args.weight_total = scratch->weight_total.data();
    args.flags = scratch->flags.data();
    args.loc_scalar = scratch->lane_scalar.data();
    args.loc_id = scratch->lane_id.data();
    const std::uint32_t* gather_from = nullptr;
    switch (plan.kind) {
      case Kind::kOptimistic:
        args.kind = kStageAOptimistic;
        break;
      case Kind::kLevenshtein:
        args.kind = kStageALevenshtein;
        args.ext_scalar = ext_lengths[ext_slot];
        args.lev_bound = scratch->lev_bound.data() + row * count;
        gather_from = loc_lengths;
        break;
      case Kind::kJaccard:
        args.kind = kStageAJaccard;
        args.ext_scalar = ext_tokens[ext_slot];
        gather_from = loc_tokens;
        break;
      case Kind::kDice:
        args.kind = kStageADice;
        args.ext_scalar = ext_bigrams[ext_slot];
        gather_from = loc_bigrams;
        break;
      case Kind::kExact:
        args.kind = kStageAExact;
        break;
    }
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t slot = candidates[i] * num_rules + r;
      scratch->lane_id[i] = loc_ids[slot];
      if (gather_from != nullptr) {
        scratch->lane_scalar[i] = gather_from[slot];
      }
    }
    kernel(args);
  }

  // Stage-A decision, exactly Prune's: all-inactive pairs score 0.0, and
  // a renormalized bound below the threshold proves the pair out.
  for (std::size_t i = 0; i < count; ++i) {
    if (scratch->state[i] != kStateUndecided) continue;
    if (scratch->weight_total[i] == 0.0) {
      if (threshold_ <= 0.0) {
        scratch->state[i] = kStateKeep;
        continue;
      }
      scratch->pruned[i] = 1;
      scratch->state[i] = kStatePruned;
      RecordPruned(stats, scratch->flags[i], false);
      continue;
    }
    if (scratch->bound_sum[i] / scratch->weight_total[i] < threshold_) {
      scratch->pruned[i] = 1;
      scratch->state[i] = kStatePruned;
      RecordPruned(stats, scratch->flags[i], false);
    }
  }

  // Stage B: per Levenshtein rule in plan order, derive each surviving
  // pair's similarity floor (same subtraction/division/slack as Prune)
  // and batch the capped probes through the interleaved kernel. A pair
  // pruned by an earlier rule skips the later ones, like Prune's early
  // return.
  if (!any_levenshtein_ || threshold_ <= 0.0) return;
  lev_row = 0;
  for (std::size_t r = 0; r < num_rules; ++r) {
    if (plans_[r].kind != Kind::kLevenshtein) continue;
    const std::size_t row = lev_row++;
    const ValueId ext_id = ext_ids[external_index * num_rules + r];
    if (ext_id == util::kInvalidSymbolId) continue;
    const std::string_view va = dict.View(ext_id);
    const double weight = plans_[r].weight;
    const double* lev_bounds = scratch->lev_bound.data() + row * count;
    scratch->probe_a.clear();
    scratch->probe_b.clear();
    scratch->probe_cap.clear();
    scratch->probe_pair.clear();
    scratch->probe_longest.clear();
    scratch->probe_floor.clear();
    for (std::size_t i = 0; i < count; ++i) {
      if (scratch->state[i] != kStateUndecided) continue;
      const double own_bound = lev_bounds[i];
      if (own_bound < 0.0) continue;  // rule inactive for this pair
      const double own = weight * own_bound;
      const double floor = (threshold_ * scratch->weight_total[i] -
                            (scratch->bound_sum[i] - own)) /
                           weight;
      const double floor_cap = floor - kStageBSlack;
      if (floor_cap <= 0.0) continue;
      const ValueId loc_id = loc_ids[candidates[i] * num_rules + r];
      const std::string_view vb = dict.View(loc_id);
      const std::size_t longest = std::max(va.size(), vb.size());
      if (longest == 0) {
        // best = 1.0 without a probe; prune only if even that is below
        // the floor (a floor above 1 is unreachable by any value pair).
        if (1.0 < floor_cap) {
          scratch->pruned[i] = 1;
          scratch->state[i] = kStatePruned;
          RecordPruned(stats, scratch->flags[i], true);
        }
        continue;
      }
      double allowed = (1.0 - floor_cap) * static_cast<double>(longest);
      if (allowed < 0.0) allowed = 0.0;
      const std::size_t cap = static_cast<std::size_t>(allowed) + 1;
      scratch->probe_a.push_back(va);
      scratch->probe_b.push_back(vb);
      scratch->probe_cap.push_back(cap);
      scratch->probe_pair.push_back(i);
      scratch->probe_longest.push_back(longest);
      scratch->probe_floor.push_back(floor_cap);
    }
    if (scratch->probe_a.empty()) continue;
    scratch->probe_out.resize(scratch->probe_a.size());
    text::BoundedLevenshteinDistanceBatch(
        scratch->probe_a.data(), scratch->probe_b.data(),
        scratch->probe_cap.data(), scratch->probe_a.size(),
        scratch->probe_out.data());
    for (std::size_t p = 0; p < scratch->probe_a.size(); ++p) {
      const std::size_t i = scratch->probe_pair[p];
      double best = -1.0;
      if (scratch->probe_out[p] <= scratch->probe_cap[p]) {
        best = text::LevenshteinSimilarityFromDistance(
            scratch->probe_out[p], scratch->probe_longest[p]);
      }
      if (best < scratch->probe_floor[p]) {
        scratch->pruned[i] = 1;
        scratch->state[i] = kStatePruned;
        RecordPruned(stats, scratch->flags[i], true);
      }
    }
  }
}

}  // namespace rulelink::linking
