#include "linking/filters.h"

#include <algorithm>

#include "text/similarity.h"
#include "util/logging.h"

namespace rulelink::linking {
namespace {

// Safety slack for stage B only. The stage-A bound is *exactly* at least
// the score ScoreCached computes (each per-rule bound dominates the best
// value-pair similarity as a double, both sides accumulate in the same
// rule order, and IEEE +,*,/ are monotone per argument), so stage A needs
// no slack. Stage B derives a per-rule similarity floor through a
// subtraction and a division whose rounding is not aligned with the
// scorer's; the slack (1e-9, about five orders above the accumulated
// rounding noise and far below any similarity step 1/maxlen) keeps every
// borderline pair on the "score it" side.
constexpr double kStageBSlack = 1e-9;

// Upper bound on the best Levenshtein similarity over the value-id cross
// product, from lengths alone: the distance is at least |len(a)-len(b)|.
// Shares LevenshteinSimilarityFromDistance with the real measure so the
// bound is the same expression, just with a smaller distance.
double LevenshteinLengthBound(const FeatureDictionary& dict,
                              const ValueId* ext, std::size_t num_ext,
                              const ValueId* loc, std::size_t num_loc) {
  double bound = 0.0;
  for (std::size_t i = 0; i < num_ext; ++i) {
    const std::size_t la = dict.View(ext[i]).size();
    for (std::size_t j = 0; j < num_loc; ++j) {
      const std::size_t lb = dict.View(loc[j]).size();
      const std::size_t longest = std::max(la, lb);
      bound = std::max(bound, text::LevenshteinSimilarityFromDistance(
                                  longest - std::min(la, lb), longest));
    }
  }
  return bound;
}

// Upper bound on the best CachedJaccard: the intersection can be at most
// min(|unique(a)|, |unique(b)|). Same division expression as the measure.
double JaccardCountBound(const FeatureDictionary& dict, const ValueId* ext,
                         std::size_t num_ext, const ValueId* loc,
                         std::size_t num_loc) {
  double bound = 0.0;
  for (std::size_t i = 0; i < num_ext; ++i) {
    const auto fa = dict.Features(ext[i]);
    for (std::size_t j = 0; j < num_loc; ++j) {
      const auto fb = dict.Features(loc[j]);
      if (fa.num_tokens == 0 && fb.num_tokens == 0) return 1.0;
      const std::size_t mn =
          std::min(fa.num_unique_tokens, fb.num_unique_tokens);
      bound = std::max(
          bound, static_cast<double>(mn) /
                     static_cast<double>(fa.num_unique_tokens +
                                         fb.num_unique_tokens - mn));
    }
  }
  return bound;
}

// Upper bound on the best CachedDice: the multiset overlap can be at most
// min(|bigrams(a)|, |bigrams(b)|).
double DiceCountBound(const FeatureDictionary& dict, const ValueId* ext,
                      std::size_t num_ext, const ValueId* loc,
                      std::size_t num_loc) {
  double bound = 0.0;
  for (std::size_t i = 0; i < num_ext; ++i) {
    const auto fa = dict.Features(ext[i]);
    for (std::size_t j = 0; j < num_loc; ++j) {
      const auto fb = dict.Features(loc[j]);
      if (fa.num_bigrams == 0 && fb.num_bigrams == 0) return 1.0;
      const std::size_t mn = std::min(fa.num_bigrams, fb.num_bigrams);
      bound = std::max(bound,
                       2.0 * static_cast<double>(mn) /
                           static_cast<double>(fa.num_bigrams +
                                               fb.num_bigrams));
    }
  }
  return bound;
}

// kExact over value ids is already cheaper than any bound, so the
// "filter" computes the measure itself: 1.0 on any shared id, else 0.0.
double ExactValue(const ValueId* ext, std::size_t num_ext,
                  const ValueId* loc, std::size_t num_loc) {
  for (std::size_t i = 0; i < num_ext; ++i) {
    for (std::size_t j = 0; j < num_loc; ++j) {
      if (ext[i] == loc[j]) return 1.0;
    }
  }
  return 0.0;
}

}  // namespace

FilterCascade::FilterCascade(const ItemMatcher* matcher, double threshold)
    : matcher_(matcher), threshold_(threshold) {
  RL_CHECK(matcher_ != nullptr);
  RL_CHECK(threshold_ >= 0.0 && threshold_ <= 1.0);
  plans_.reserve(matcher_->rules().size());
  for (const AttributeRule& rule : matcher_->rules()) {
    Plan plan;
    plan.weight = rule.weight;
    switch (rule.measure) {
      case SimilarityMeasure::kLevenshtein:
        plan.kind = Kind::kLevenshtein;
        any_levenshtein_ = true;
        break;
      case SimilarityMeasure::kJaccardTokens:
        plan.kind = Kind::kJaccard;
        break;
      case SimilarityMeasure::kDiceBigram:
        plan.kind = Kind::kDice;
        break;
      case SimilarityMeasure::kExact:
        plan.kind = Kind::kExact;
        break;
      default:
        plan.kind = Kind::kOptimistic;
        break;
    }
    plans_.push_back(plan);
  }
}

bool FilterCascade::Prune(const FeatureCache& external_features,
                          std::size_t external_index,
                          const FeatureCache& local_features,
                          std::size_t local_index,
                          FilterStats* stats) const {
  const FeatureDictionary& dict = external_features.dict();

  // Stage A: accumulate the per-rule bounds exactly the way ScoreCached
  // accumulates the per-rule bests (same order, same skip-and-renormalize
  // treatment of missing properties), so bound_sum >= weighted_sum holds
  // as computed doubles, not just in real arithmetic.
  double bound_sum = 0.0;
  double weight_total = 0.0;
  bool length_participated = false;
  bool token_participated = false;
  bool exact_participated = false;
  bool any_levenshtein_active = false;
  for (std::size_t r = 0; r < plans_.size(); ++r) {
    std::size_t num_ext = 0, num_loc = 0;
    const ValueId* ext = external_features.Values(external_index, r, &num_ext);
    const ValueId* loc = local_features.Values(local_index, r, &num_loc);
    if (num_ext == 0 || num_loc == 0) continue;
    const Plan& plan = plans_[r];
    double bound = 1.0;
    switch (plan.kind) {
      case Kind::kOptimistic:
        break;
      case Kind::kLevenshtein:
        bound = LevenshteinLengthBound(dict, ext, num_ext, loc, num_loc);
        any_levenshtein_active = true;
        if (bound < 1.0) length_participated = true;
        break;
      case Kind::kJaccard:
        bound = JaccardCountBound(dict, ext, num_ext, loc, num_loc);
        if (bound < 1.0) token_participated = true;
        break;
      case Kind::kDice:
        bound = DiceCountBound(dict, ext, num_ext, loc, num_loc);
        if (bound < 1.0) token_participated = true;
        break;
      case Kind::kExact:
        bound = ExactValue(ext, num_ext, loc, num_loc);
        if (bound < 1.0) exact_participated = true;
        break;
    }
    bound_sum += plan.weight * bound;
    weight_total += plan.weight;
  }

  const auto record = [&](bool distance_cap) {
    if (stats == nullptr) return;
    ++stats->pairs_pruned;
    if (length_participated) ++stats->by_length;
    if (token_participated) ++stats->by_token_count;
    if (exact_participated) ++stats->by_exact;
    if (distance_cap) ++stats->by_distance_cap;
  };

  if (weight_total == 0.0) {
    // Every rule inactive: the scorer returns 0.0, below any positive
    // threshold. (With threshold 0 the pair would still be emitted.)
    if (threshold_ <= 0.0) return false;
    record(false);
    return true;
  }
  if (bound_sum / weight_total < threshold_) {
    record(false);
    return true;
  }

  // Stage B: the length bound survived, but a capped bit-parallel probe
  // may still prove every Levenshtein value pair sits below the similarity
  // floor that rule would need for the aggregate to reach the threshold.
  if (!any_levenshtein_active || threshold_ <= 0.0) return false;
  const double threshold_weight = threshold_ * weight_total;
  for (std::size_t r = 0; r < plans_.size(); ++r) {
    if (plans_[r].kind != Kind::kLevenshtein) continue;
    std::size_t num_ext = 0, num_loc = 0;
    const ValueId* ext = external_features.Values(external_index, r, &num_ext);
    const ValueId* loc = local_features.Values(local_index, r, &num_loc);
    if (num_ext == 0 || num_loc == 0) continue;
    // Bound on every other rule's contribution = stage A's sum minus this
    // rule's own term; the subtraction's rounding is what kStageBSlack is
    // for.
    const double own =
        plans_[r].weight *
        LevenshteinLengthBound(dict, ext, num_ext, loc, num_loc);
    const double floor =
        (threshold_weight - (bound_sum - own)) / plans_[r].weight;
    const double floor_cap = floor - kStageBSlack;
    if (floor_cap <= 0.0) continue;  // any similarity could suffice
    double best = -1.0;
    for (std::size_t i = 0; i < num_ext; ++i) {
      const std::string_view va = dict.View(ext[i]);
      for (std::size_t j = 0; j < num_loc; ++j) {
        const std::string_view vb = dict.View(loc[j]);
        const std::size_t longest = std::max(va.size(), vb.size());
        if (longest == 0) {
          best = std::max(best, 1.0);
          continue;
        }
        // Distances above this cap put the pair's similarity strictly
        // below floor_cap (the +1 absorbs the product's rounding).
        double allowed = (1.0 - floor_cap) * static_cast<double>(longest);
        if (allowed < 0.0) allowed = 0.0;
        const std::size_t cap = static_cast<std::size_t>(allowed) + 1;
        const std::size_t d = text::BoundedLevenshteinDistance(va, vb, cap);
        if (d <= cap) {
          best = std::max(
              best, text::LevenshteinSimilarityFromDistance(d, longest));
        }
      }
    }
    if (best < floor_cap) {
      record(true);
      return true;
    }
  }
  return false;
}

}  // namespace rulelink::linking
