// Within-source deduplication: §3's task statement is to integrate
// external data "by guarantying the Unique Name Assumption — hence we
// have to detect and eliminate redundant new data". Provider files
// routinely list the same product twice (re-deliveries, packaging
// variants); this module clusters near-duplicates inside ONE source and
// picks a representative per cluster before linking starts.
#ifndef RULELINK_LINKING_DEDUP_H_
#define RULELINK_LINKING_DEDUP_H_

#include <vector>

#include "blocking/blocker.h"
#include "core/item.h"
#include "linking/matcher.h"

namespace rulelink::linking {

struct DedupResult {
  // Clusters of item indexes (size >= 2 only), sorted.
  std::vector<std::vector<std::size_t>> duplicate_clusters;
  // One representative per item: representative[i] == i for unique items
  // and cluster representatives (the smallest index of the cluster).
  std::vector<std::size_t> representative;
  // Indexes of the representative items, in order — the deduplicated
  // source.
  std::vector<std::size_t> survivors;
  std::size_t comparisons = 0;
};

// Scores candidate intra-source pairs with `matcher` (via the given
// blocker run source-vs-itself; self-pairs are ignored) and clusters the
// pairs scoring >= threshold with union-find.
DedupResult Deduplicate(const std::vector<core::Item>& items,
                        const blocking::CandidateGenerator& blocker,
                        const ItemMatcher& matcher, double threshold);

}  // namespace rulelink::linking

#endif  // RULELINK_LINKING_DEDUP_H_
