#include "linking/feature_cache.h"

#include <algorithm>
#include <limits>

#include "util/logging.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace rulelink::linking {
namespace {

// The separators JaccardTokenSimilarity and MongeElkanSimilarity split on;
// the cached measures are only byte-identical if tokenization matches.
constexpr char kTokenSeparators[] = " \t\n\r";

}  // namespace

FeatureDictionary::FeatureDictionary(const FeatureDictionary* base)
    : base_(base),
      base_offset_(static_cast<ValueId>(base->num_symbols())) {
  RL_CHECK(base != nullptr);
}

void FeatureDictionary::EnsureSlot(ValueId local) {
  if (local >= spans_.size()) spans_.resize(local + 1);
}

ValueId FeatureDictionary::FindSymbol(std::string_view s) const {
  if (base_ != nullptr) {
    const ValueId found = base_->FindSymbol(s);
    if (found != util::kInvalidSymbolId) return found;
  }
  const ValueId local = strings_.Find(s);
  return local == util::kInvalidSymbolId ? util::kInvalidSymbolId
                                         : local + base_offset_;
}

ValueId FeatureDictionary::FindBuiltValue(std::string_view s) const {
  // Deepest-first: the level closest to the root that built the value is
  // the id every cache over this chain agreed on when it was built (and at
  // most one level holds a given string as a built value, since building
  // at level k implies no level below k had built it).
  if (base_ != nullptr) {
    const ValueId found = base_->FindBuiltValue(s);
    if (found != util::kInvalidSymbolId) return found;
  }
  const ValueId local = strings_.Find(s);
  if (local != util::kInvalidSymbolId && local < spans_.size() &&
      spans_[local].built) {
    return local + base_offset_;
  }
  return util::kInvalidSymbolId;
}

bool FeatureDictionary::IsBuiltValue(ValueId id) const {
  if (base_ != nullptr && id < base_offset_) return base_->IsBuiltValue(id);
  const ValueId local = id - base_offset_;
  return local < spans_.size() && spans_[local].built;
}

text::TokenId FeatureDictionary::InternSymbol(std::string_view s) {
  if (base_ != nullptr) {
    // Any symbol kind will do for tokens/bigrams — only equality and sort
    // order matter downstream, and the base's id is the canonical one for
    // this string in the combined universe.
    const ValueId found = base_->FindSymbol(s);
    if (found != util::kInvalidSymbolId) return found;
  }
  return strings_.Intern(s) + base_offset_;
}

std::uint32_t FeatureDictionary::AppendSorted(
    const std::vector<text::TokenId>& ids, std::vector<text::TokenId>* pool) {
  const std::size_t begin = pool->size();
  pool->insert(pool->end(), ids.begin(), ids.end());
  std::sort(pool->begin() + begin, pool->end());
  std::uint32_t unique = 0;
  for (std::size_t i = begin; i < pool->size(); ++i) {
    if (i == begin || (*pool)[i] != (*pool)[i - 1]) ++unique;
  }
  return unique;
}

void FeatureDictionary::BuildFeatures(ValueId local) {
  const std::string_view value = strings_.View(local);

  std::vector<text::TokenId> token_ids;
  {
    const auto token_views = util::SplitAny(value, kTokenSeparators);
    token_ids.reserve(token_views.size());
    for (std::string_view token : token_views) {
      token_ids.push_back(InternSymbol(token));
    }
  }
  std::vector<text::TokenId> bigram_ids;
  {
    std::vector<std::string_view> gram_views;
    text::CharacterBigramViews(value, &gram_views);
    bigram_ids.reserve(gram_views.size());
    for (std::string_view gram : gram_views) {
      bigram_ids.push_back(InternSymbol(gram));
    }
  }

  RL_CHECK(ordered_tokens_.size() + token_ids.size() <
           std::numeric_limits<std::uint32_t>::max());
  RL_CHECK(sorted_bigrams_.size() + bigram_ids.size() <
           std::numeric_limits<std::uint32_t>::max());

  // Interning the tokens/bigrams may have grown the symbol table past the
  // spans table; re-establish the slot before writing through it.
  EnsureSlot(local);
  Spans& spans = spans_[local];
  spans.tok_begin = static_cast<std::uint32_t>(ordered_tokens_.size());
  ordered_tokens_.insert(ordered_tokens_.end(), token_ids.begin(),
                         token_ids.end());
  spans.tok_end = static_cast<std::uint32_t>(ordered_tokens_.size());
  spans.tok_unique = AppendSorted(token_ids, &sorted_tokens_);
  spans.big_begin = static_cast<std::uint32_t>(sorted_bigrams_.size());
  AppendSorted(bigram_ids, &sorted_bigrams_);
  spans.big_end = static_cast<std::uint32_t>(sorted_bigrams_.size());
  spans.built = true;
  ++num_values_;
}

ValueId FeatureDictionary::AddValue(std::string_view value) {
  if (base_ != nullptr) {
    // Reuse a chain id only where it carries built features; a chain
    // symbol that is merely a token/bigram gets a fresh overlay value id
    // instead (no built value anywhere in the chain shares its string, so
    // id equality still implies string equality across the union). The
    // search must be by built-value, not FindSymbol: with stacked overlays
    // a string can be an unbuilt token at the root and a built value at a
    // middle level, and FindSymbol would surface the root token id.
    const ValueId found = base_->FindBuiltValue(value);
    if (found != util::kInvalidSymbolId) {
      ++values_reused_;
      return found;
    }
  }
  const ValueId local = strings_.Intern(value);
  EnsureSlot(local);
  if (spans_[local].built) {
    ++values_reused_;
    return local + base_offset_;
  }
  BuildFeatures(local);
  return local + base_offset_;
}

FeatureDictionary::ValueFeatures FeatureDictionary::Features(
    ValueId id) const {
  if (base_ != nullptr && id < base_offset_) return base_->Features(id);
  const ValueId local = id - base_offset_;
  RL_DCHECK(local < spans_.size() && spans_[local].built)
      << "Features() of a symbol that is not a built value";
  const Spans& spans = spans_[local];
  ValueFeatures features;
  features.text = strings_.View(local);
  features.ordered_tokens = ordered_tokens_.data() + spans.tok_begin;
  features.sorted_tokens = sorted_tokens_.data() + spans.tok_begin;
  features.num_tokens = spans.tok_end - spans.tok_begin;
  features.num_unique_tokens = spans.tok_unique;
  features.sorted_bigrams = sorted_bigrams_.data() + spans.big_begin;
  features.num_bigrams = spans.big_end - spans.big_begin;
  return features;
}

std::vector<ValueId> FeatureDictionary::Absorb(
    const FeatureDictionary& local) {
  RL_DCHECK(base_ == nullptr && local.base_ == nullptr)
      << "Absorb is a root-dictionary merge; overlays never absorb";
  std::vector<ValueId> remap(local.strings_.size(), util::kInvalidSymbolId);
  for (ValueId id = 0; id < local.strings_.size(); ++id) {
    remap[id] = strings_.Intern(local.strings_.View(id));
  }
  std::vector<text::TokenId> scratch;
  for (ValueId id = 0; id < local.spans_.size(); ++id) {
    const Spans& src = local.spans_[id];
    if (!src.built) continue;
    const ValueId global = remap[id];
    EnsureSlot(global);
    if (spans_[global].built) {
      ++values_reused_;
      continue;
    }
    // Re-state the value's features in this dictionary's id universe. The
    // sorted sequences must be re-sorted because the remap does not
    // preserve id order; cardinalities (all any scorer reads from them)
    // are unaffected.
    Spans& dst = spans_[global];
    dst.tok_begin = static_cast<std::uint32_t>(ordered_tokens_.size());
    scratch.clear();
    for (std::uint32_t i = src.tok_begin; i < src.tok_end; ++i) {
      scratch.push_back(remap[local.ordered_tokens_[i]]);
    }
    ordered_tokens_.insert(ordered_tokens_.end(), scratch.begin(),
                           scratch.end());
    dst.tok_end = static_cast<std::uint32_t>(ordered_tokens_.size());
    dst.tok_unique = AppendSorted(scratch, &sorted_tokens_);
    scratch.clear();
    for (std::uint32_t i = src.big_begin; i < src.big_end; ++i) {
      scratch.push_back(remap[local.sorted_bigrams_[i]]);
    }
    dst.big_begin = static_cast<std::uint32_t>(sorted_bigrams_.size());
    AppendSorted(scratch, &sorted_bigrams_);
    dst.big_end = static_cast<std::uint32_t>(sorted_bigrams_.size());
    dst.built = true;
    ++num_values_;
  }
  return remap;
}

std::size_t FeatureDictionary::memory_bytes() const {
  return strings_.arena_bytes() + spans_.capacity() * sizeof(Spans) +
         (ordered_tokens_.capacity() + sorted_tokens_.capacity() +
          sorted_bigrams_.capacity()) *
             sizeof(text::TokenId);
}

FeatureCache FeatureCache::Build(const std::vector<core::Item>& items,
                                 const ItemMatcher& matcher, Side side,
                                 FeatureDictionary* dict,
                                 std::size_t num_threads,
                                 obs::MetricsRegistry* metrics) {
  RL_CHECK(dict != nullptr);
  const obs::MetricsRegistry::StageScope stage(metrics,
                                               "linking/cache_build");
  if (metrics != nullptr) {
    // `values_reused` and the dictionary's id numbering depend on the
    // chunking, so only thread-invariant quantities are recorded here.
    metrics->AddCounter(side == Side::kExternal
                            ? "linking/cache/external_items"
                            : "linking/cache/local_items",
                        items.size());
  }
  const auto& rules = matcher.rules();
  std::vector<const std::string*> properties;
  properties.reserve(rules.size());
  for (const AttributeRule& rule : rules) {
    properties.push_back(side == Side::kExternal ? &rule.external_property
                                                 : &rule.local_property);
  }

  FeatureCache cache;
  cache.dict_ = dict;
  cache.num_items_ = items.size();
  cache.num_rules_ = rules.size();
  cache.offsets_.reserve(items.size() * rules.size() + 1);
  cache.offsets_.push_back(0);

  // One slot per (item, rule): append the ids of the item's values under
  // that rule's property. `emit` flushes one slot's ids into the cache.
  const auto finish_slot = [&cache] {
    RL_CHECK(cache.value_ids_.size() <
             std::numeric_limits<std::uint32_t>::max());
    cache.offsets_.push_back(
        static_cast<std::uint32_t>(cache.value_ids_.size()));
  };

  // Each slot carries a private FeatureDictionary (interner + arena), so
  // morsels are deliberately coarse: fewer, bigger slots amortize the
  // dictionary cost and keep the Absorb merge short.
  constexpr std::size_t kItemsPerMorsel = 4096;
  const std::size_t chunks =
      util::ParallelSlots(num_threads, items.size(), kItemsPerMorsel);
  if (chunks <= 1) {
    // Serial path: intern straight into the shared dictionary.
    for (const core::Item& item : items) {
      for (const std::string* property : properties) {
        for (const core::PropertyValue& fact : item.facts) {
          if (fact.property != *property) continue;
          cache.value_ids_.push_back(dict->AddValue(fact.value));
        }
        finish_slot();
      }
    }
    cache.BuildLanes(num_threads);
    return cache;
  }

  // Parallel path: each chunk builds into a private dictionary (interning
  // is not thread-safe), then the chunks are folded into the shared one in
  // chunk order — the same merge discipline as the learner's sharded
  // counting (DESIGN.md §5b).
  struct Shard {
    FeatureDictionary dict;
    std::vector<ValueId> ids;           // slot-major, chunk-local ids
    std::vector<std::uint32_t> counts;  // ids per slot
  };
  std::vector<Shard> shards(chunks);
  util::ParallelFor(
      num_threads, items.size(),
      [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        Shard& shard = shards[chunk];
        for (std::size_t i = begin; i < end; ++i) {
          for (const std::string* property : properties) {
            std::uint32_t count = 0;
            for (const core::PropertyValue& fact : items[i].facts) {
              if (fact.property != *property) continue;
              shard.ids.push_back(shard.dict.AddValue(fact.value));
              ++count;
            }
            shard.counts.push_back(count);
          }
        }
      },
      kItemsPerMorsel);
  for (Shard& shard : shards) {
    const std::vector<ValueId> remap = dict->Absorb(shard.dict);
    std::size_t next = 0;
    for (const std::uint32_t count : shard.counts) {
      for (std::uint32_t k = 0; k < count; ++k) {
        cache.value_ids_.push_back(remap[shard.ids[next++]]);
      }
      finish_slot();
    }
  }
  RL_CHECK(cache.offsets_.size() == items.size() * rules.size() + 1);
  cache.BuildLanes(num_threads);
  return cache;
}

FeatureCache FeatureCache::ExtendFrom(const FeatureCache& base,
                                      const std::vector<core::Item>& delta_items,
                                      const ItemMatcher& matcher, Side side,
                                      FeatureDictionary* dict,
                                      obs::MetricsRegistry* metrics) {
  RL_CHECK(dict != nullptr);
  // The new dictionary must extend the base cache's own dictionary (not
  // merely share its root): the copied value ids were issued by
  // base.dict(), and only a direct overlay (or the same still-growing
  // root) keeps every one of them resolvable without collisions.
  RL_CHECK(dict == &base.dict() || dict->base() == &base.dict())
      << "ExtendFrom needs base.dict() itself or a direct overlay over it";
  const obs::MetricsRegistry::StageScope stage(metrics,
                                               "linking/cache_extend");
  if (metrics != nullptr) {
    metrics->AddCounter(side == Side::kExternal
                            ? "linking/cache/external_delta_items"
                            : "linking/cache/local_delta_items",
                        delta_items.size());
  }
  const auto& rules = matcher.rules();
  RL_CHECK(rules.size() == base.num_rules_)
      << "ExtendFrom cannot change the rule slot layout";
  std::vector<const std::string*> properties;
  properties.reserve(rules.size());
  for (const AttributeRule& rule : rules) {
    properties.push_back(side == Side::kExternal ? &rule.external_property
                                                 : &rule.local_property);
  }

  FeatureCache cache;
  cache.dict_ = dict;
  cache.num_items_ = base.num_items_ + delta_items.size();
  cache.num_rules_ = base.num_rules_;
  // Flat copies of the predecessor's CSR index and SoA lanes — O(catalog)
  // memcpy, no re-tokenization, no dictionary traffic.
  cache.offsets_ = base.offsets_;
  cache.value_ids_ = base.value_ids_;
  cache.lane_lengths_ = base.lane_lengths_;
  cache.lane_unique_tokens_ = base.lane_unique_tokens_;
  cache.lane_bigrams_ = base.lane_bigrams_;
  cache.lane_value_ids_ = base.lane_value_ids_;
  cache.simple_ = base.simple_;

  // Append the delta items' slots, interning serially through `dict` (the
  // same discipline as Build's serial path; deltas are small by design).
  for (const core::Item& item : delta_items) {
    for (const std::string* property : properties) {
      for (const core::PropertyValue& fact : item.facts) {
        if (fact.property != *property) continue;
        cache.value_ids_.push_back(dict->AddValue(fact.value));
      }
      RL_CHECK(cache.value_ids_.size() <
               std::numeric_limits<std::uint32_t>::max());
      cache.offsets_.push_back(
          static_cast<std::uint32_t>(cache.value_ids_.size()));
    }
  }
  RL_CHECK(cache.offsets_.size() ==
           cache.num_items_ * cache.num_rules_ + 1);

  const std::size_t slots = cache.num_items_ * cache.num_rules_;
  cache.lane_lengths_.resize(slots, 0);
  cache.lane_unique_tokens_.resize(slots, 0);
  cache.lane_bigrams_.resize(slots, 0);
  cache.lane_value_ids_.resize(slots, util::kInvalidSymbolId);
  cache.simple_.resize(cache.num_items_, 1);
  cache.FillLanes(base.num_items_, cache.num_items_);
  return cache;
}

void FeatureCache::AssignSingle(const core::Item& item,
                                const ItemMatcher& matcher, Side side,
                                FeatureDictionary* dict) {
  RL_CHECK(dict != nullptr);
  const auto& rules = matcher.rules();
  dict_ = dict;
  num_items_ = 1;
  num_rules_ = rules.size();
  offsets_.clear();
  value_ids_.clear();
  offsets_.push_back(0);
  for (const AttributeRule& rule : rules) {
    const std::string& property = side == Side::kExternal
                                      ? rule.external_property
                                      : rule.local_property;
    for (const core::PropertyValue& fact : item.facts) {
      if (fact.property != property) continue;
      value_ids_.push_back(dict->AddValue(fact.value));
    }
    offsets_.push_back(static_cast<std::uint32_t>(value_ids_.size()));
  }
  // Serial lane fill: ParallelFor at one thread runs inline with no pool,
  // no locks and no allocation, so the whole rebuild stays on this thread.
  BuildLanes(1);
}

void FeatureCache::BuildLanes(std::size_t num_threads) {
  const std::size_t slots = num_items_ * num_rules_;
  lane_lengths_.assign(slots, 0);
  lane_unique_tokens_.assign(slots, 0);
  lane_bigrams_.assign(slots, 0);
  lane_value_ids_.assign(slots, util::kInvalidSymbolId);
  simple_.assign(num_items_, 1);
  if (slots == 0) return;
  // Pure replication of already-built per-value features into flat
  // arrays: every write targets this item's own slots, and the dictionary
  // is only read, so items parallelize freely.
  util::ParallelFor(num_threads, num_items_,
                    [&](std::size_t, std::size_t begin, std::size_t end) {
                      FillLanes(begin, end);
                    });
}

void FeatureCache::FillLanes(std::size_t begin, std::size_t end) {
  const FeatureDictionary& dict = *dict_;
  for (std::size_t item = begin; item < end; ++item) {
    for (std::size_t r = 0; r < num_rules_; ++r) {
      const std::size_t slot = item * num_rules_ + r;
      const std::uint32_t lo = offsets_[slot];
      const std::uint32_t hi = offsets_[slot + 1];
      if (hi == lo) continue;  // missing property: lanes stay empty
      if (hi - lo > 1) {
        // Multi-valued slot: the cross-product bounds need the per-pair
        // path, so the whole item opts out of the lanes.
        simple_[item] = 0;
        continue;
      }
      const ValueId id = value_ids_[lo];
      const FeatureDictionary::ValueFeatures features = dict.Features(id);
      lane_lengths_[slot] = static_cast<std::uint32_t>(features.text.size());
      lane_unique_tokens_[slot] = features.num_unique_tokens;
      lane_bigrams_[slot] = features.num_bigrams;
      lane_value_ids_[slot] = id;
    }
  }
}

std::size_t FeatureCache::memory_bytes() const {
  return offsets_.capacity() * sizeof(std::uint32_t) +
         value_ids_.capacity() * sizeof(ValueId) +
         (lane_lengths_.capacity() + lane_unique_tokens_.capacity() +
          lane_bigrams_.capacity()) *
             sizeof(std::uint32_t) +
         lane_value_ids_.capacity() * sizeof(ValueId) +
         simple_.capacity() * sizeof(std::uint8_t);
}

}  // namespace rulelink::linking
