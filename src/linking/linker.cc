#include "linking/linker.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "util/logging.h"
#include "util/thread_pool.h"

namespace rulelink::linking {
namespace {

// Per-worker scoring results over one contiguous chunk of the sorted
// candidate list. Merged on the calling thread in chunk order.
struct ScoreShard {
  std::vector<Link> links;  // kAllAboveThreshold: links in candidate order
  std::unordered_map<std::size_t, Link> best;  // kBestPerExternal
  std::size_t comparisons = 0;
};

}  // namespace

Linker::Linker(const ItemMatcher* matcher, double threshold,
               Strategy strategy)
    : matcher_(matcher), threshold_(threshold), strategy_(strategy) {
  RL_CHECK(matcher_ != nullptr);
  RL_CHECK(threshold_ >= 0.0 && threshold_ <= 1.0);
}

std::vector<Link> Linker::Run(
    const std::vector<core::Item>& external,
    const std::vector<core::Item>& local,
    const std::vector<blocking::CandidatePair>& candidates,
    LinkerStats* stats, std::size_t num_threads) const {
  // Deduplicate into (external, local) order; chunks of this list are then
  // themselves sorted, which the tie-break merge below relies on.
  std::vector<blocking::CandidatePair> unique(candidates.begin(),
                                              candidates.end());
  std::sort(unique.begin(), unique.end());
  unique.erase(std::unique(unique.begin(), unique.end()), unique.end());

  const std::size_t num_shards =
      util::ParallelChunks(num_threads, unique.size());
  std::vector<ScoreShard> shards(std::max<std::size_t>(1, num_shards));
  util::ParallelFor(
      num_threads, unique.size(),
      [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        ScoreShard& shard = shards[chunk];
        for (std::size_t i = begin; i < end; ++i) {
          const blocking::CandidatePair& pair = unique[i];
          RL_DCHECK(pair.external_index < external.size());
          RL_DCHECK(pair.local_index < local.size());
          const double score = matcher_->Score(external[pair.external_index],
                                               local[pair.local_index]);
          ++shard.comparisons;
          if (score < threshold_) continue;
          const Link link{pair.external_index, pair.local_index, score};
          if (strategy_ == Strategy::kAllAboveThreshold) {
            shard.links.push_back(link);
          } else {
            auto [it, inserted] = shard.best.try_emplace(
                pair.external_index, link);
            if (!inserted && score > it->second.score) it->second = link;
          }
        }
      });

  std::size_t comparisons = 0;
  std::vector<Link> links;
  if (strategy_ == Strategy::kAllAboveThreshold) {
    for (const ScoreShard& shard : shards) {
      comparisons += shard.comparisons;
      links.insert(links.end(), shard.links.begin(), shard.links.end());
    }
  } else {
    // Chunk-order merge keeps the serial tie-break: an equal score never
    // displaces the link found earlier in candidate order.
    std::unordered_map<std::size_t, Link> best;
    for (ScoreShard& shard : shards) {
      comparisons += shard.comparisons;
      for (const auto& [external_index, link] : shard.best) {
        auto [it, inserted] = best.try_emplace(external_index, link);
        if (!inserted && link.score > it->second.score) it->second = link;
      }
    }
    links.reserve(best.size());
    for (const auto& [external_index, link] : best) links.push_back(link);
  }

  std::sort(links.begin(), links.end(), [](const Link& a, const Link& b) {
    if (a.external_index != b.external_index) {
      return a.external_index < b.external_index;
    }
    return a.local_index < b.local_index;
  });
  if (stats != nullptr) {
    stats->comparisons = comparisons;
    stats->links_emitted = links.size();
  }
  return links;
}

}  // namespace rulelink::linking
