#include "linking/linker.h"

#include <algorithm>
#include <set>
#include <unordered_map>

#include "util/logging.h"

namespace rulelink::linking {

Linker::Linker(const ItemMatcher* matcher, double threshold,
               Strategy strategy)
    : matcher_(matcher), threshold_(threshold), strategy_(strategy) {
  RL_CHECK(matcher_ != nullptr);
  RL_CHECK(threshold_ >= 0.0 && threshold_ <= 1.0);
}

std::vector<Link> Linker::Run(
    const std::vector<core::Item>& external,
    const std::vector<core::Item>& local,
    const std::vector<blocking::CandidatePair>& candidates,
    LinkerStats* stats) const {
  const std::set<blocking::CandidatePair> unique(candidates.begin(),
                                                 candidates.end());
  std::size_t comparisons = 0;
  std::vector<Link> links;

  if (strategy_ == Strategy::kAllAboveThreshold) {
    for (const auto& pair : unique) {
      RL_DCHECK(pair.external_index < external.size());
      RL_DCHECK(pair.local_index < local.size());
      const double score = matcher_->Score(external[pair.external_index],
                                           local[pair.local_index]);
      ++comparisons;
      if (score >= threshold_) {
        links.push_back(Link{pair.external_index, pair.local_index, score});
      }
    }
  } else {
    std::unordered_map<std::size_t, Link> best;
    for (const auto& pair : unique) {
      RL_DCHECK(pair.external_index < external.size());
      RL_DCHECK(pair.local_index < local.size());
      const double score = matcher_->Score(external[pair.external_index],
                                           local[pair.local_index]);
      ++comparisons;
      if (score < threshold_) continue;
      auto [it, inserted] = best.try_emplace(
          pair.external_index,
          Link{pair.external_index, pair.local_index, score});
      if (!inserted && score > it->second.score) {
        it->second = Link{pair.external_index, pair.local_index, score};
      }
    }
    links.reserve(best.size());
    for (const auto& [external_index, link] : best) links.push_back(link);
  }

  std::sort(links.begin(), links.end(), [](const Link& a, const Link& b) {
    if (a.external_index != b.external_index) {
      return a.external_index < b.external_index;
    }
    return a.local_index < b.local_index;
  });
  if (stats != nullptr) {
    stats->comparisons = comparisons;
    stats->links_emitted = links.size();
  }
  return links;
}

}  // namespace rulelink::linking
