#include "linking/linker.h"

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "linking/feature_cache.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace rulelink::linking {
namespace {

// Per-worker scoring results over one contiguous chunk of the sorted
// candidate list. Merged on the calling thread in chunk order.
struct ScoreShard {
  std::vector<Link> links;  // kAllAboveThreshold: links in candidate order
  std::unordered_map<std::size_t, Link> best;  // kBestPerExternal
  std::size_t pairs_scored = 0;
  std::uint64_t measures_computed = 0;
};

// True when `candidates` is strictly ascending in (external, local) order,
// i.e. sorted with no duplicates — the CandidateGenerator contract.
bool IsSortedUnique(const std::vector<blocking::CandidatePair>& candidates) {
  for (std::size_t i = 1; i < candidates.size(); ++i) {
    if (!(candidates[i - 1] < candidates[i])) return false;
  }
  return true;
}

}  // namespace

Linker::Linker(const ItemMatcher* matcher, double threshold,
               Strategy strategy)
    : matcher_(matcher), threshold_(threshold), strategy_(strategy) {
  RL_CHECK(matcher_ != nullptr);
  RL_CHECK(threshold_ >= 0.0 && threshold_ <= 1.0);
}

std::vector<Link> Linker::Run(
    const std::vector<core::Item>& external,
    const std::vector<core::Item>& local,
    const std::vector<blocking::CandidatePair>& candidates,
    LinkerStats* stats, std::size_t num_threads) const {
  // Deduplicate into (external, local) order; chunks of this list are then
  // themselves sorted, which the tie-break merge below relies on.
  std::vector<blocking::CandidatePair> unique(candidates.begin(),
                                              candidates.end());
  std::sort(unique.begin(), unique.end());
  unique.erase(std::unique(unique.begin(), unique.end()), unique.end());

  // Uncached scoring is expensive per pair but uniform; medium morsels
  // bound the shard count while leaving room for stealing.
  constexpr std::size_t kPairsPerMorsel = 512;
  const std::size_t num_shards =
      util::ParallelSlots(num_threads, unique.size(), kPairsPerMorsel);
  std::vector<ScoreShard> shards(std::max<std::size_t>(1, num_shards));
  util::ParallelFor(
      num_threads, unique.size(),
      [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        ScoreShard& shard = shards[chunk];
        for (std::size_t i = begin; i < end; ++i) {
          const blocking::CandidatePair& pair = unique[i];
          RL_DCHECK(pair.external_index < external.size());
          RL_DCHECK(pair.local_index < local.size());
          const double score =
              matcher_->Score(external[pair.external_index],
                              local[pair.local_index],
                              &shard.measures_computed);
          ++shard.pairs_scored;
          if (score < threshold_) continue;
          const Link link{pair.external_index, pair.local_index, score};
          if (strategy_ == Strategy::kAllAboveThreshold) {
            shard.links.push_back(link);
          } else {
            auto [it, inserted] = shard.best.try_emplace(
                pair.external_index, link);
            if (!inserted && score > it->second.score) it->second = link;
          }
        }
      },
      kPairsPerMorsel);

  std::size_t pairs_scored = 0;
  std::uint64_t measures_computed = 0;
  std::vector<Link> links;
  if (strategy_ == Strategy::kAllAboveThreshold) {
    for (const ScoreShard& shard : shards) {
      pairs_scored += shard.pairs_scored;
      measures_computed += shard.measures_computed;
      links.insert(links.end(), shard.links.begin(), shard.links.end());
    }
  } else {
    // Chunk-order merge keeps the serial tie-break: an equal score never
    // displaces the link found earlier in candidate order.
    std::unordered_map<std::size_t, Link> best;
    for (ScoreShard& shard : shards) {
      pairs_scored += shard.pairs_scored;
      measures_computed += shard.measures_computed;
      for (const auto& [external_index, link] : shard.best) {
        auto [it, inserted] = best.try_emplace(external_index, link);
        if (!inserted && link.score > it->second.score) it->second = link;
      }
    }
    links.reserve(best.size());
    for (const auto& [external_index, link] : best) links.push_back(link);
  }

  std::sort(links.begin(), links.end(), [](const Link& a, const Link& b) {
    if (a.external_index != b.external_index) {
      return a.external_index < b.external_index;
    }
    return a.local_index < b.local_index;
  });
  if (stats != nullptr) {
    stats->pairs_scored = pairs_scored;
    stats->comparisons = measures_computed;
    stats->links_emitted = links.size();
  }
  return links;
}

std::vector<Link> Linker::RunCached(
    const FeatureCache& external_features, const FeatureCache& local_features,
    const std::vector<blocking::CandidatePair>& candidates,
    LinkerStats* stats, std::size_t num_threads,
    ScoreMemoStats* memo_stats) const {
  RL_DCHECK(&external_features.dict() == &local_features.dict());

  // Stream the caller's vector when it already satisfies the generator
  // contract; only an unsorted/duplicated list is materialized again.
  const std::vector<blocking::CandidatePair>* pairs = &candidates;
  std::vector<blocking::CandidatePair> sorted_storage;
  if (!IsSortedUnique(candidates)) {
    sorted_storage.assign(candidates.begin(), candidates.end());
    std::sort(sorted_storage.begin(), sorted_storage.end());
    sorted_storage.erase(
        std::unique(sorted_storage.begin(), sorted_storage.end()),
        sorted_storage.end());
    pairs = &sorted_storage;
  }

  struct CachedShard {
    std::vector<Link> links;  // sorted by (external, local) within a shard
    std::size_t pairs_scored = 0;
    std::uint64_t measures_computed = 0;
    ScoreMemoStats memo;
  };
  // Each slot owns a private ScoreMemo whose hit rate grows with slot
  // size, so morsels are coarse here — few big slots beat many cold memos.
  constexpr std::size_t kPairsPerMorsel = 8192;
  const std::size_t num_shards =
      util::ParallelSlots(num_threads, pairs->size(), kPairsPerMorsel);
  std::vector<CachedShard> shards(std::max<std::size_t>(1, num_shards));
  const bool keep_all = strategy_ == Strategy::kAllAboveThreshold;
  util::ParallelFor(
      num_threads, pairs->size(),
      [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        CachedShard& shard = shards[chunk];
        ScoreMemo memo;
        Link best;
        bool best_set = false;
        std::size_t run_external = 0;
        for (std::size_t i = begin; i < end; ++i) {
          const blocking::CandidatePair& pair = (*pairs)[i];
          RL_DCHECK(pair.external_index < external_features.num_items());
          RL_DCHECK(pair.local_index < local_features.num_items());
          if (!keep_all && best_set && pair.external_index != run_external) {
            shard.links.push_back(best);
            best_set = false;
          }
          run_external = pair.external_index;
          const double score = matcher_->ScoreCached(
              external_features, pair.external_index, local_features,
              pair.local_index, &memo, &shard.measures_computed);
          ++shard.pairs_scored;
          if (score < threshold_) continue;
          const Link link{pair.external_index, pair.local_index, score};
          if (keep_all) {
            shard.links.push_back(link);
          } else if (!best_set || score > best.score) {
            // Strict >: an equal score never displaces the link found
            // earlier in candidate order, matching the serial tie-break.
            best = link;
            best_set = true;
          }
        }
        if (best_set) shard.links.push_back(best);
        shard.memo = memo.stats();
      },
      kPairsPerMorsel);

  // Candidate order is (external, local) order, so shard outputs
  // concatenate into the exact order Run's final sort produces. For
  // best-per-external, an external whose run straddles a chunk boundary
  // appears once per shard; folding adjacent equal-external links in
  // chunk order reproduces the serial argmax and tie-break.
  std::size_t pairs_scored = 0;
  std::uint64_t measures_computed = 0;
  std::vector<Link> links;
  ScoreMemoStats memo_total;
  for (const CachedShard& shard : shards) {
    pairs_scored += shard.pairs_scored;
    measures_computed += shard.measures_computed;
    memo_total.Add(shard.memo);
    for (const Link& link : shard.links) {
      if (!keep_all && !links.empty() &&
          links.back().external_index == link.external_index) {
        if (link.score > links.back().score) links.back() = link;
      } else {
        links.push_back(link);
      }
    }
  }
  if (stats != nullptr) {
    stats->pairs_scored = pairs_scored;
    stats->comparisons = measures_computed;
    stats->links_emitted = links.size();
  }
  if (memo_stats != nullptr) memo_stats->Add(memo_total);
  return links;
}

}  // namespace rulelink::linking
