// Streaming linker: fuses candidate generation and cached scoring. Where
// Linker::RunCached consumes one materialized O(candidates) pair vector,
// StreamingLinker walks a blocking::CandidateIndex external item by
// external item, holds only the current per-external candidate run, and
// pushes each run through a threshold-aware FilterCascade before the
// cached scorer sees it. Links are byte-identical to RunCached over the
// same candidate space at every thread count — the cascade is a set of
// sound bounds, never a heuristic (DESIGN.md §5e).
#ifndef RULELINK_LINKING_STREAMING_LINKER_H_
#define RULELINK_LINKING_STREAMING_LINKER_H_

#include <vector>

#include "blocking/blocker.h"
#include "linking/filters.h"
#include "linking/linker.h"
#include "linking/matcher.h"
#include "linking/query_scratch.h"
#include "obs/metrics.h"

namespace rulelink::linking {

class StreamingLinker {
 public:
  // `matcher` is borrowed and must outlive the linker. Threshold and
  // strategy have Linker semantics.
  StreamingLinker(const ItemMatcher* matcher, double threshold,
                  Linker::Strategy strategy = Linker::Strategy::kBestPerExternal);

  // Streams the index's per-external candidate runs into the filter
  // cascade and the cached scorer. Both caches must have been built
  // against this linker's matcher and share one FeatureDictionary, and
  // the index must cover exactly the cache's external items.
  //
  // External items are partitioned across `num_threads` workers (0 =
  // hardware concurrency, 1 = serial); a per-external run never straddles
  // a chunk boundary, so per-worker links concatenate in chunk order with
  // no boundary folding and the output is identical at every thread
  // count. Each worker keeps a private ScoreMemo; `memo_stats`
  // accumulates their counters (chunking-dependent, like RunCached's).
  // `stats` additionally reports the cascade's prune counters and
  // peak_candidate_run, all thread-count invariant.
  //
  // `metrics`, when non-null, gets the "linking/stream" stage, the
  // thread-invariant pair/prune/link counters (the per-filter cascade
  // counters live here under "linking/filter/*") and a log2 histogram of
  // per-external candidate run lengths. Workers observe into shard-local
  // histograms that merge in chunk order, so the recorded metrics are
  // byte-identical at every thread count; the chunking-dependent memo and
  // kernel counters stay out (DESIGN.md §5f).
  std::vector<Link> Run(const blocking::CandidateIndex& index,
                        const FeatureCache& external_features,
                        const FeatureCache& local_features,
                        LinkerStats* stats = nullptr,
                        std::size_t num_threads = 0,
                        ScoreMemoStats* memo_stats = nullptr,
                        obs::MetricsRegistry* metrics = nullptr) const;

  // The per-external core both Run's workers and the serve engine's
  // sessions execute: pushes the already-fetched candidate run in
  // scratch->run through the cascade (batched when SIMD dispatch is on)
  // and the cached scorer, appending this external's links to *links
  // under the linker's strategy and tie-break. Allocation-free once
  // `scratch` and `links` are warm. Thread-safe across callers with
  // distinct scratches.
  void QueryRun(const FeatureCache& external_features,
                std::size_t external_index,
                const FeatureCache& local_features, QueryScratch* scratch,
                FilterStats* filters, std::uint64_t* measures_computed,
                std::size_t* pairs_scored, std::vector<Link>* links) const;

 private:
  const ItemMatcher* matcher_;
  double threshold_;
  Linker::Strategy strategy_;
  FilterCascade cascade_;
};

}  // namespace rulelink::linking

#endif  // RULELINK_LINKING_STREAMING_LINKER_H_
