#include "eval/tuner.h"

#include <algorithm>

namespace rulelink::eval {

util::Result<std::vector<TunerCandidate>> TuneThresholds(
    const core::TrainingSet& ts, const TunerOptions& options) {
  if (options.segmenter == nullptr) {
    return util::InvalidArgumentError("TunerOptions.segmenter is null");
  }
  if (options.support_thresholds.empty() ||
      options.confidence_floors.empty()) {
    return util::InvalidArgumentError("empty tuning grid");
  }
  const double beta2 = options.beta * options.beta;

  std::vector<TunerCandidate> candidates;
  for (double th : options.support_thresholds) {
    for (double floor : options.confidence_floors) {
      HoldoutOptions holdout;
      holdout.test_fraction = options.test_fraction;
      holdout.seed = options.seed;  // same split for every cell
      holdout.support_threshold = th;
      holdout.min_confidence = floor;
      holdout.segmenter = options.segmenter;
      holdout.properties = options.properties;
      auto result = RunHoldout(ts, holdout);
      if (!result.ok()) return result.status();

      TunerCandidate candidate;
      candidate.support_threshold = th;
      candidate.min_confidence = floor;
      candidate.holdout = *result;
      const double p = result->precision;
      const double r = result->recall;
      candidate.f_beta =
          (p + r > 0.0) ? (1.0 + beta2) * p * r / (beta2 * p + r) : 0.0;
      candidates.push_back(std::move(candidate));
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const TunerCandidate& a, const TunerCandidate& b) {
              if (a.f_beta != b.f_beta) return a.f_beta > b.f_beta;
              if (a.support_threshold != b.support_threshold) {
                return a.support_threshold < b.support_threshold;
              }
              return a.min_confidence < b.min_confidence;
            });
  return candidates;
}

}  // namespace rulelink::eval
