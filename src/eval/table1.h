// Reproduces Table 1 of the paper: rules are grouped into confidence bands
// and, for each band, the evaluator reports the rule count, the number of
// classification decisions made on TS, their precision, the cumulative
// recall, and the average lift of the band's rules.
//
// Decision semantics (the paper's §5 narrative, made precise):
//   * every TS item is classified by its best applicable rule (the §4.4
//     ranking: confidence, then lift);
//   * the item's decision is attributed to the confidence band of that
//     rule: [1.0], [0.8, 1.0), [0.6, 0.8), [0.4, 0.6) for the default
//     bounds {1.0, 0.8, 0.6, 0.4};
//   * a decision is correct when the predicted class is one of the item's
//     true (most-specific) classes;
//   * precision and recall are CUMULATIVE down to the band. This is the
//     only reading under which the published Table 1 is self-consistent:
//     2107 decisions at 100% imply 2107 correct; 96.9% over the cumulative
//     3331 decisions of the first two rows implies ~1121 correct in the
//     [0.8,1) band (91.6% band-precision, inside the band's confidence
//     range), and the recall column then follows with a denominator of
//     ~7266 classifiable items — the TS items whose true class is frequent
//     at threshold th (which is also what our generator yields).
#ifndef RULELINK_EVAL_TABLE1_H_
#define RULELINK_EVAL_TABLE1_H_

#include <string>
#include <vector>

#include "core/classifier.h"
#include "core/rule.h"
#include "core/training_set.h"
#include "obs/metrics.h"
#include "text/segmenter.h"

namespace rulelink::eval {

struct Table1Row {
  double band_lo = 0.0;   // inclusive lower confidence bound
  double band_hi = 0.0;   // exclusive upper bound (> 1 for the top band)
  std::size_t num_rules = 0;
  std::size_t decisions = 0;        // decisions attributed to this band
  std::size_t correct = 0;
  double precision_band = 0.0;       // correct / decisions of this band only
  double precision_cumulative = 0.0; // the paper's "prec." column
  double recall_cumulative = 0.0;    // the paper's "recall" column
  double avg_lift = 0.0;             // mean lift of the band's rules
};

struct Table1Result {
  std::vector<Table1Row> rows;
  std::size_t classifiable_items = 0;  // recall denominator
  std::size_t frequent_classes = 0;
  std::size_t undecided_items = 0;     // no rule >= the lowest bound fired
};

class Table1Evaluator {
 public:
  // `rules` and `segmenter` are borrowed. `support_threshold` must be the
  // th the rules were learnt with; it determines the frequent-class
  // population used as the recall denominator.
  Table1Evaluator(const core::RuleSet* rules,
                  const text::Segmenter* segmenter,
                  double support_threshold);

  // `band_bounds` must be strictly decreasing confidence lower bounds; the
  // default reproduces the paper's rows {1, 0.8, 0.6, 0.4}.
  //
  // The per-item classification sweep behind the per-band columns is
  // partitioned across `num_threads` workers (0 = hardware concurrency,
  // 1 = serial). Workers accumulate per-band counters over disjoint
  // example ranges which are summed in chunk order; since every column is
  // integer-counted before the final division, the result is identical at
  // every thread count.
  //
  // A non-null `metrics` records the sweep under the "eval/table1" stage
  // with the decision counters (eval/decisions, eval/correct,
  // eval/undecided, eval/classifiable, eval/frequent_classes) — all
  // integer-summed in chunk order, so snapshots stay byte-identical at
  // every thread count.
  Table1Result Evaluate(
      const core::TrainingSet& ts,
      const std::vector<double>& band_bounds = {1.0, 0.8, 0.6, 0.4},
      std::size_t num_threads = 0,
      obs::MetricsRegistry* metrics = nullptr) const;

 private:
  const core::RuleSet* rules_;
  const text::Segmenter* segmenter_;
  double support_threshold_;
};

// Renders the result as an aligned text table; when `with_paper_reference`
// is set, the paper's published row is printed next to each measured row.
std::string FormatTable1(const Table1Result& result,
                         bool with_paper_reference);

}  // namespace rulelink::eval

#endif  // RULELINK_EVAL_TABLE1_H_
