// Hyper-parameter tuning on held-out data: sweeps the support threshold
// and the decision-confidence floor, scoring each configuration by
// F-beta of held-out precision and recall. The paper fixes th = 0.002 by
// expert judgment; the tuner recovers a comparable setting from the data
// alone.
#ifndef RULELINK_EVAL_TUNER_H_
#define RULELINK_EVAL_TUNER_H_

#include <vector>

#include "eval/holdout.h"

namespace rulelink::eval {

struct TunerCandidate {
  double support_threshold = 0.0;
  double min_confidence = 0.0;
  HoldoutResult holdout;
  double f_beta = 0.0;
};

struct TunerOptions {
  std::vector<double> support_thresholds = {0.0005, 0.001, 0.002, 0.004,
                                            0.008};
  std::vector<double> confidence_floors = {0.0, 0.4, 0.6, 0.8, 1.0};
  // beta > 1 weights recall; < 1 weights precision.
  double beta = 1.0;
  double test_fraction = 0.2;
  std::uint64_t seed = 42;
  const text::Segmenter* segmenter = nullptr;
  std::vector<std::string> properties;
};

// Evaluates the full grid on one fixed holdout split and returns the
// candidates ranked by F-beta, best first. Fails on learner errors or a
// missing segmenter.
util::Result<std::vector<TunerCandidate>> TuneThresholds(
    const core::TrainingSet& ts, const TunerOptions& options);

}  // namespace rulelink::eval

#endif  // RULELINK_EVAL_TUNER_H_
