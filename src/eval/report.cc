#include "eval/report.h"

#include "util/string_util.h"
#include "util/table.h"

namespace rulelink::eval {

std::string FormatLearnStats(const core::LearnStats& stats,
                             bool with_paper_reference) {
  util::TextTable table(
      with_paper_reference
          ? std::vector<std::string>{"statistic", "measured", "paper"}
          : std::vector<std::string>{"statistic", "measured"});
  const auto add = [&](const std::string& name, std::size_t value,
                       const std::string& paper) {
    std::vector<std::string> row = {name, std::to_string(value)};
    if (with_paper_reference) row.push_back(paper);
    table.AddRow(std::move(row));
  };
  add("training links |TS|", stats.num_examples, "10265");
  add("distinct segments", stats.distinct_segments, "7842");
  add("segment occurrences", stats.segment_occurrences, "26077");
  add("selected segment occurrences", stats.selected_segment_occurrences,
      "7058");
  add("frequent (p,segment) premises", stats.frequent_premises, "-");
  add("frequent classes", stats.frequent_classes, "68");
  add("classification rules", stats.num_rules, "144");
  add("classes with rules", stats.classes_with_rules, "16");
  return table.ToText();
}

std::string FormatLinkingSpace(const core::LinkingSpaceReport& report) {
  util::TextTable table({"metric", "value"});
  table.AddRow({"external items", std::to_string(report.num_external_items)});
  table.AddRow({"local items |S_L|", std::to_string(report.local_size)});
  table.AddRow({"naive pairs", std::to_string(report.naive_pairs)});
  table.AddRow({"reduced pairs", std::to_string(report.reduced_pairs)});
  table.AddRow({"classified items", std::to_string(report.classified_items)});
  table.AddRow(
      {"unclassified items", std::to_string(report.unclassified_items)});
  table.AddRow(
      {"reduction ratio", util::FormatPercent(report.reduction_ratio)});
  table.AddRow({"mean subspace fraction",
                util::FormatPercent(report.mean_subspace_fraction, 2)});
  if (report.mean_subspace_fraction > 0.0) {
    table.AddRow({"mean space division factor",
                  util::FormatDouble(1.0 / report.mean_subspace_fraction, 1) +
                      "x"});
  }
  return table.ToText();
}

std::string FormatBlockingQuality(const std::string& method,
                                  const blocking::BlockingQuality& quality,
                                  double seconds) {
  return method + ": candidates=" + std::to_string(quality.candidate_pairs) +
         " RR=" + util::FormatPercent(quality.reduction_ratio, 2) +
         " PC=" + util::FormatPercent(quality.pairs_completeness) +
         " PQ=" + util::FormatPercent(quality.pairs_quality, 2) +
         " time=" + util::FormatDouble(seconds, 3) + "s";
}

}  // namespace rulelink::eval
