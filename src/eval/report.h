// Shared report formatting for examples and benchmark harnesses: the §5
// corpus statistics next to the paper's published values, and linking-
// space / blocking summaries.
#ifndef RULELINK_EVAL_REPORT_H_
#define RULELINK_EVAL_REPORT_H_

#include <string>

#include "blocking/metrics.h"
#include "core/learner.h"
#include "core/linking_space.h"

namespace rulelink::eval {

// Learner statistics vs the paper's in-text numbers (E2 in DESIGN.md).
std::string FormatLearnStats(const core::LearnStats& stats,
                             bool with_paper_reference);

// Linking-space reduction summary (E3).
std::string FormatLinkingSpace(const core::LinkingSpaceReport& report);

// One blocking-quality line for comparison tables (E4).
std::string FormatBlockingQuality(const std::string& method,
                                  const blocking::BlockingQuality& quality,
                                  double seconds);

}  // namespace rulelink::eval

#endif  // RULELINK_EVAL_REPORT_H_
