// Held-out evaluation: the paper measures precision/recall on the training
// set itself (§5); the obvious methodological extension is to split TS,
// learn on one part and classify the other, measuring true generalization
// to unseen linked items. Used by the ablation benches and available to
// library users for threshold tuning.
#ifndef RULELINK_EVAL_HOLDOUT_H_
#define RULELINK_EVAL_HOLDOUT_H_

#include <vector>

#include "core/learner.h"
#include "core/training_set.h"
#include "text/segmenter.h"
#include "util/status.h"

namespace rulelink::eval {

struct HoldoutOptions {
  double test_fraction = 0.2;   // in (0, 1)
  std::uint64_t seed = 42;      // split shuffling
  double support_threshold = 0.002;
  double min_confidence = 0.0;  // decision floor at classification time
  const text::Segmenter* segmenter = nullptr;
  std::vector<std::string> properties;
};

struct HoldoutResult {
  std::size_t train_size = 0;
  std::size_t test_size = 0;
  std::size_t num_rules = 0;
  std::size_t decided = 0;   // test items with at least one prediction
  std::size_t correct = 0;   // decided items whose top class is true
  double precision = 0.0;    // correct / decided
  double coverage = 0.0;     // decided / test_size
  double recall = 0.0;       // correct / test_size
};

// Splits `ts` (deterministically from the seed), learns rules on the train
// part with the given threshold, and classifies the held-out part. Fails
// on degenerate splits (empty train or test side) or learner errors.
util::Result<HoldoutResult> RunHoldout(const core::TrainingSet& ts,
                                       const HoldoutOptions& options);

// K-fold cross-validation: averages RunHoldout over k disjoint folds.
util::Result<HoldoutResult> RunCrossValidation(const core::TrainingSet& ts,
                                               const HoldoutOptions& options,
                                               std::size_t folds);

}  // namespace rulelink::eval

#endif  // RULELINK_EVAL_HOLDOUT_H_
