#include "eval/table1.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "util/logging.h"
#include "util/string_util.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace rulelink::eval {
namespace {

// The published Table 1 rows (conf, #rules, #dec., prec., recall, lift).
struct PaperRow {
  double conf;
  int rules;
  int decisions;
  double precision;
  double recall;
  int lift;
};
constexpr PaperRow kPaperRows[] = {
    {1.0, 44, 2107, 1.000, 0.290, 27},
    {0.8, 22, 1224, 0.969, 0.457, 24},
    {0.6, 13, 712, 0.920, 0.499, 24},
    {0.4, 17, 1025, 0.838, 0.601, 21},
};

}  // namespace

Table1Evaluator::Table1Evaluator(const core::RuleSet* rules,
                                 const text::Segmenter* segmenter,
                                 double support_threshold)
    : rules_(rules),
      segmenter_(segmenter),
      support_threshold_(support_threshold) {
  RL_CHECK(rules_ != nullptr);
  RL_CHECK(segmenter_ != nullptr);
  RL_CHECK(support_threshold_ > 0.0 && support_threshold_ < 1.0);
}

Table1Result Table1Evaluator::Evaluate(
    const core::TrainingSet& ts,
    const std::vector<double>& band_bounds,
    std::size_t num_threads,
    obs::MetricsRegistry* metrics) const {
  RL_CHECK(!band_bounds.empty());
  RL_CHECK(std::is_sorted(band_bounds.rbegin(), band_bounds.rend()))
      << "band bounds must be strictly decreasing";
  const obs::MetricsRegistry::StageScope stage(metrics, "eval/table1");

  Table1Result result;
  result.rows.resize(band_bounds.size());
  for (std::size_t b = 0; b < band_bounds.size(); ++b) {
    result.rows[b].band_lo = band_bounds[b];
    result.rows[b].band_hi = b == 0 ? 2.0 : band_bounds[b - 1];
  }

  // Rule census per band.
  for (const core::ClassificationRule& rule : rules_->rules()) {
    for (std::size_t b = 0; b < band_bounds.size(); ++b) {
      if (rule.confidence >= result.rows[b].band_lo &&
          rule.confidence < result.rows[b].band_hi) {
        ++result.rows[b].num_rules;
        result.rows[b].avg_lift += rule.lift;
        break;
      }
    }
  }
  for (Table1Row& row : result.rows) {
    if (row.num_rules > 0) {
      row.avg_lift /= static_cast<double>(row.num_rules);
    }
  }

  // Frequent-class population (recall denominator).
  std::unordered_map<ontology::ClassId, std::size_t> class_count;
  for (const core::TrainingExample& example : ts.examples()) {
    for (ontology::ClassId c : example.classes) ++class_count[c];
  }
  std::unordered_set<ontology::ClassId> frequent;
  const double bar = support_threshold_ * static_cast<double>(ts.size());
  for (const auto& [cls, count] : class_count) {
    if (static_cast<double>(count) > bar) frequent.insert(cls);
  }
  result.frequent_classes = frequent.size();

  // Decisions: best applicable rule per item. The sweep over TS is sharded
  // across workers into per-chunk integer counters merged in chunk order
  // (see the header's determinism note). The classifier is shared: it is
  // const and only reads the borrowed rule set and segmenter.
  const core::RuleClassifier classifier(rules_, segmenter_);
  const double lowest_bound = band_bounds.back();
  const auto& examples = ts.examples();
  struct SweepShard {
    std::vector<std::size_t> decisions;  // per band
    std::vector<std::size_t> correct;    // per band
    std::size_t classifiable = 0;
    std::size_t undecided = 0;
  };
  // Per-slot shards are a handful of band counters; heuristic granularity.
  const std::size_t num_shards =
      util::ParallelSlots(num_threads, examples.size());
  std::vector<SweepShard> shards(std::max<std::size_t>(1, num_shards));
  for (SweepShard& shard : shards) {
    shard.decisions.assign(band_bounds.size(), 0);
    shard.correct.assign(band_bounds.size(), 0);
  }
  util::ParallelFor(
      num_threads, examples.size(),
      [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        SweepShard& shard = shards[chunk];
        for (std::size_t i = begin; i < end; ++i) {
          const core::TrainingExample& example = examples[i];
          const bool classifiable = std::any_of(
              example.classes.begin(), example.classes.end(),
              [&](ontology::ClassId c) { return frequent.count(c) > 0; });
          if (classifiable) ++shard.classifiable;

          core::Item item;
          item.iri = example.external_iri;
          for (const auto& [property, value] : example.facts) {
            item.facts.push_back(
                core::PropertyValue{ts.properties().name(property), value});
          }
          const auto predictions = classifier.Classify(item, lowest_bound);
          if (predictions.empty()) {
            ++shard.undecided;
            continue;
          }
          const core::ClassPrediction& best = predictions.front();
          std::size_t band = band_bounds.size();
          for (std::size_t b = 0; b < band_bounds.size(); ++b) {
            if (best.confidence >= result.rows[b].band_lo &&
                best.confidence < result.rows[b].band_hi) {
              band = b;
              break;
            }
          }
          if (band == band_bounds.size()) {
            ++shard.undecided;
            continue;
          }
          ++shard.decisions[band];
          const bool correct =
              std::find(example.classes.begin(), example.classes.end(),
                        best.cls) != example.classes.end();
          if (correct) ++shard.correct[band];
        }
      });
  for (const SweepShard& shard : shards) {
    result.classifiable_items += shard.classifiable;
    result.undecided_items += shard.undecided;
    for (std::size_t b = 0; b < band_bounds.size(); ++b) {
      result.rows[b].decisions += shard.decisions[b];
      result.rows[b].correct += shard.correct[b];
    }
  }

  if (metrics != nullptr) {
    std::size_t decisions = 0;
    std::size_t correct = 0;
    for (const Table1Row& row : result.rows) {
      decisions += row.decisions;
      correct += row.correct;
    }
    metrics->AddCounter("eval/decisions", decisions);
    metrics->AddCounter("eval/correct", correct);
    metrics->AddCounter("eval/undecided", result.undecided_items);
    metrics->AddCounter("eval/classifiable", result.classifiable_items);
    metrics->AddCounter("eval/frequent_classes", result.frequent_classes);
  }

  // Band precision plus the paper's cumulative precision/recall columns.
  std::size_t cumulative_correct = 0;
  std::size_t cumulative_decisions = 0;
  for (Table1Row& row : result.rows) {
    if (row.decisions > 0) {
      row.precision_band = static_cast<double>(row.correct) /
                           static_cast<double>(row.decisions);
    }
    cumulative_correct += row.correct;
    cumulative_decisions += row.decisions;
    if (cumulative_decisions > 0) {
      row.precision_cumulative =
          static_cast<double>(cumulative_correct) /
          static_cast<double>(cumulative_decisions);
    }
    if (result.classifiable_items > 0) {
      row.recall_cumulative =
          static_cast<double>(cumulative_correct) /
          static_cast<double>(result.classifiable_items);
    }
  }
  return result;
}

std::string FormatTable1(const Table1Result& result,
                         bool with_paper_reference) {
  util::TextTable table(with_paper_reference
                            ? std::vector<std::string>{"conf.", "#rules",
                                                       "#dec.", "prec.",
                                                       "recall", "lift",
                                                       "(paper)"}
                            : std::vector<std::string>{"conf.", "#rules",
                                                       "#dec.", "prec.",
                                                       "recall", "lift"});
  for (std::size_t b = 0; b < result.rows.size(); ++b) {
    const Table1Row& row = result.rows[b];
    std::vector<std::string> cells = {
        util::FormatDouble(row.band_lo, row.band_lo == 1.0 ? 0 : 1),
        std::to_string(row.num_rules),
        std::to_string(row.decisions),
        util::FormatPercent(row.precision_cumulative),
        util::FormatPercent(row.recall_cumulative),
        util::FormatDouble(row.avg_lift, 0),
    };
    if (with_paper_reference) {
      if (b < std::size(kPaperRows)) {
        const PaperRow& p = kPaperRows[b];
        cells.push_back(
            std::to_string(p.rules) + " rules, " +
            std::to_string(p.decisions) + " dec, " +
            util::FormatPercent(p.precision) + " prec, " +
            util::FormatPercent(p.recall) + " recall, lift " +
            std::to_string(p.lift));
      } else {
        cells.push_back("-");
      }
    }
    table.AddRow(std::move(cells));
  }
  return table.ToText();
}

}  // namespace rulelink::eval
