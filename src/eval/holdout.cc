#include "eval/holdout.h"

#include <algorithm>

#include "core/classifier.h"
#include "util/rng.h"

namespace rulelink::eval {
namespace {

core::Item ItemFromExample(const core::TrainingExample& example,
                           const core::PropertyCatalog& properties) {
  core::Item item;
  item.iri = example.external_iri;
  for (const auto& [property, value] : example.facts) {
    item.facts.push_back(
        core::PropertyValue{properties.name(property), value});
  }
  return item;
}

// Evaluates rules learnt on the `train` index set against the `test` set.
util::Result<HoldoutResult> EvaluateSplit(
    const core::TrainingSet& ts, const std::vector<std::size_t>& train,
    const std::vector<std::size_t>& test, const HoldoutOptions& options) {
  if (train.empty() || test.empty()) {
    return util::InvalidArgumentError("degenerate holdout split");
  }
  core::TrainingSet train_ts(ts.ontology());
  for (std::size_t i : train) {
    const core::TrainingExample& example = ts.examples()[i];
    train_ts.AddExample(ItemFromExample(example, ts.properties()),
                        example.local_iri, example.classes);
  }

  core::LearnerOptions learner_options;
  learner_options.support_threshold = options.support_threshold;
  learner_options.segmenter = options.segmenter;
  learner_options.properties = options.properties;
  auto rules = core::RuleLearner(learner_options).Learn(train_ts);
  if (!rules.ok()) return rules.status();

  HoldoutResult result;
  result.train_size = train.size();
  result.test_size = test.size();
  result.num_rules = rules->size();

  const core::RuleClassifier classifier(&*rules, options.segmenter);
  for (std::size_t i : test) {
    const core::TrainingExample& example = ts.examples()[i];
    const auto predictions = classifier.Classify(
        ItemFromExample(example, ts.properties()), options.min_confidence);
    if (predictions.empty()) continue;
    ++result.decided;
    const ontology::ClassId top = predictions.front().cls;
    if (std::find(example.classes.begin(), example.classes.end(), top) !=
        example.classes.end()) {
      ++result.correct;
    }
  }
  if (result.decided > 0) {
    result.precision = static_cast<double>(result.correct) /
                       static_cast<double>(result.decided);
  }
  result.coverage = static_cast<double>(result.decided) /
                    static_cast<double>(result.test_size);
  result.recall = static_cast<double>(result.correct) /
                  static_cast<double>(result.test_size);
  return result;
}

}  // namespace

util::Result<HoldoutResult> RunHoldout(const core::TrainingSet& ts,
                                       const HoldoutOptions& options) {
  if (options.segmenter == nullptr) {
    return util::InvalidArgumentError("HoldoutOptions.segmenter is null");
  }
  if (!(options.test_fraction > 0.0) || options.test_fraction >= 1.0) {
    return util::InvalidArgumentError("test_fraction must be in (0, 1)");
  }
  std::vector<std::size_t> order(ts.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  util::Rng rng(options.seed);
  rng.Shuffle(&order);
  const std::size_t test_count = static_cast<std::size_t>(
      options.test_fraction * static_cast<double>(ts.size()));
  const std::vector<std::size_t> test(order.begin(),
                                      order.begin() + test_count);
  const std::vector<std::size_t> train(order.begin() + test_count,
                                       order.end());
  return EvaluateSplit(ts, train, test, options);
}

util::Result<HoldoutResult> RunCrossValidation(
    const core::TrainingSet& ts, const HoldoutOptions& options,
    std::size_t folds) {
  if (options.segmenter == nullptr) {
    return util::InvalidArgumentError("HoldoutOptions.segmenter is null");
  }
  if (folds < 2 || folds > ts.size()) {
    return util::InvalidArgumentError("need 2 <= folds <= |TS|");
  }
  std::vector<std::size_t> order(ts.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  util::Rng rng(options.seed);
  rng.Shuffle(&order);

  HoldoutResult aggregate;
  for (std::size_t fold = 0; fold < folds; ++fold) {
    std::vector<std::size_t> train, test;
    for (std::size_t i = 0; i < order.size(); ++i) {
      (i % folds == fold ? test : train).push_back(order[i]);
    }
    auto result = EvaluateSplit(ts, train, test, options);
    if (!result.ok()) return result.status();
    aggregate.train_size += result->train_size;
    aggregate.test_size += result->test_size;
    aggregate.num_rules += result->num_rules;
    aggregate.decided += result->decided;
    aggregate.correct += result->correct;
  }
  aggregate.num_rules /= folds;  // mean rule count
  if (aggregate.decided > 0) {
    aggregate.precision = static_cast<double>(aggregate.correct) /
                          static_cast<double>(aggregate.decided);
  }
  if (aggregate.test_size > 0) {
    aggregate.coverage = static_cast<double>(aggregate.decided) /
                         static_cast<double>(aggregate.test_size);
    aggregate.recall = static_cast<double>(aggregate.correct) /
                       static_cast<double>(aggregate.test_size);
  }
  return aggregate;
}

}  // namespace rulelink::eval
