#include "util/epoch.h"

#include <limits>

#include "util/logging.h"

namespace rulelink::util {

namespace {
constexpr std::uint64_t kNoPin = std::numeric_limits<std::uint64_t>::max();
}  // namespace

EpochDomain::~EpochDomain() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const Limbo& entry : limbo_) entry.deleter(entry.object);
  reclaimed_ += limbo_.size();
  limbo_.clear();
  for (ReaderSlot* slot : slots_) {
    RL_DCHECK(!slot->in_use.load(std::memory_order_acquire))
        << "EpochDomain destroyed with a registered reader";
    delete slot;
  }
}

EpochDomain::ReaderSlot* EpochDomain::RegisterReader() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (ReaderSlot* slot : slots_) {
    if (!slot->in_use.load(std::memory_order_relaxed)) {
      // Fold the previous owner's counters into the domain before reuse
      // so Stats() stays monotone across reader churn.
      drained_pins_ += slot->pins.load(std::memory_order_relaxed);
      drained_pin_retries_ += slot->pin_retries.load(std::memory_order_relaxed);
      slot->pins.store(0, std::memory_order_relaxed);
      slot->pin_retries.store(0, std::memory_order_relaxed);
      slot->in_use.store(true, std::memory_order_release);
      return slot;
    }
  }
  ReaderSlot* slot = new ReaderSlot();
  slot->in_use.store(true, std::memory_order_release);
  slots_.push_back(slot);
  return slot;
}

void EpochDomain::UnregisterReader(ReaderSlot* slot) {
  RL_DCHECK(slot->pinned_epoch.load(std::memory_order_acquire) == 0)
      << "reader unregistered while pinned";
  slot->in_use.store(false, std::memory_order_release);
}

void EpochDomain::Retire(void* object, void (*deleter)(void*)) {
  // Advance the epoch first (seq_cst RMW): every reader that pinned the
  // pre-advance epoch and could still hold the just-unlinked pointer now
  // shows a pin < r, which keeps the entry in limbo below.
  const std::uint64_t r = epoch_.fetch_add(1, std::memory_order_seq_cst) + 1;
  std::lock_guard<std::mutex> lock(mutex_);
  limbo_.push_back(Limbo{object, deleter, r});
  ++retired_;
  ReclaimLocked(MinActivePin());
}

std::size_t EpochDomain::TryReclaim() {
  std::lock_guard<std::mutex> lock(mutex_);
  return ReclaimLocked(MinActivePin());
}

std::uint64_t EpochDomain::MinActivePin() const {
  std::uint64_t min_pin = kNoPin;
  for (const ReaderSlot* slot : slots_) {
    // Scan every slot, registered or not: an unregistering reader stores
    // quiescent before in_use=false, so a stale in_use read can only make
    // the bound more conservative, never unsafe.
    const std::uint64_t pinned =
        slot->pinned_epoch.load(std::memory_order_seq_cst);
    if (pinned != 0 && pinned < min_pin) min_pin = pinned;
  }
  return min_pin;
}

std::size_t EpochDomain::ReclaimLocked(std::uint64_t min_pin) {
  // An entry retired at epoch r is reachable only by readers pinned at
  // some e < r; free it once no active pin is < r, i.e. min_pin >= r.
  std::size_t freed = 0;
  std::size_t kept = 0;
  for (Limbo& entry : limbo_) {
    if (min_pin >= entry.retire_epoch) {
      entry.deleter(entry.object);
      ++freed;
    } else {
      limbo_[kept++] = entry;
    }
  }
  limbo_.resize(kept);
  reclaimed_ += freed;
  return freed;
}

EpochStats EpochDomain::Stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  EpochStats stats;
  stats.epoch = epoch_.load(std::memory_order_acquire);
  stats.pins = drained_pins_;
  stats.pin_retries = drained_pin_retries_;
  for (const ReaderSlot* slot : slots_) {
    // Owner-written counters; relaxed reads may lag a live reader by a
    // few increments and are exact once readers are unregistered.
    stats.pins += slot->pins.load(std::memory_order_relaxed);
    stats.pin_retries += slot->pin_retries.load(std::memory_order_relaxed);
    if (slot->in_use.load(std::memory_order_acquire)) ++stats.readers;
  }
  stats.reader_blocks = 0;  // no blocking reader path exists
  stats.retired = retired_;
  stats.reclaimed = reclaimed_;
  stats.limbo = limbo_.size();
  return stats;
}

}  // namespace rulelink::util
