// Per-thread hardware performance counters (cycles, instructions,
// last-level-cache misses) via Linux perf_event_open, for the scheduler's
// thread-variant observability section. The counters answer the question
// scaling sweeps keep raising: is a regression memory-bound (LLC misses
// grow with threads) or compute-bound (instructions/cycle stays flat)?
//
// Availability is probed once per process: perf_event_open may be absent
// (non-Linux), compiled out (no <linux/perf_event.h>), or denied
// (perf_event_paranoid, seccomp — common in containers). All callers must
// handle `nullptr` / `valid == false`; every consumer degrades to the
// software counters silently.
#ifndef RULELINK_UTIL_PERF_COUNTERS_H_
#define RULELINK_UTIL_PERF_COUNTERS_H_

#include <cstdint>
#include <memory>

namespace rulelink::util {

// One snapshot of a thread's counter group. Counters are cumulative since
// the group was opened; consumers report deltas.
struct HwCounterSample {
  bool valid = false;
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t llc_misses = 0;

  HwCounterSample Minus(const HwCounterSample& earlier) const {
    HwCounterSample delta;
    delta.valid = valid && earlier.valid;
    if (delta.valid) {
      delta.cycles = cycles - earlier.cycles;
      delta.instructions = instructions - earlier.instructions;
      delta.llc_misses = llc_misses - earlier.llc_misses;
    }
    return delta;
  }
  void Add(const HwCounterSample& other) {
    if (!other.valid) return;
    valid = true;
    cycles += other.cycles;
    instructions += other.instructions;
    llc_misses += other.llc_misses;
  }
};

// A grouped counter set bound to the opening thread (cycles is the group
// leader so all three are scheduled onto the PMU together and stay
// mutually consistent). The fds can be read from any thread — the
// scheduler's stats snapshotter reads every worker's group without
// stopping the workers.
class ThreadPerfCounters {
 public:
  // Opens the group for the calling thread. Returns nullptr when the
  // kernel interface is unavailable or denied (callers fall back to
  // software counters).
  static std::unique_ptr<ThreadPerfCounters> OpenForCurrentThread();

  // True if a probe open on this process succeeded once. Cheap after the
  // first call; used to gate JSON sections so absent hardware counters
  // don't render as zeros.
  static bool Available();

  ~ThreadPerfCounters();
  ThreadPerfCounters(const ThreadPerfCounters&) = delete;
  ThreadPerfCounters& operator=(const ThreadPerfCounters&) = delete;

  // Reads the group (one read(2) on the leader). Thread-safe. Returns an
  // invalid sample if the read fails.
  HwCounterSample Read() const;

 private:
  ThreadPerfCounters() = default;
  int leader_fd_ = -1;       // cycles
  int instructions_fd_ = -1;
  int llc_fd_ = -1;
};

}  // namespace rulelink::util

#endif  // RULELINK_UTIL_PERF_COUNTERS_H_
