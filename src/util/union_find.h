// Disjoint-set forest with path compression and union by size. Used to
// cluster same-as links into entities (deduplication, fusion groups).
#ifndef RULELINK_UTIL_UNION_FIND_H_
#define RULELINK_UTIL_UNION_FIND_H_

#include <cstddef>
#include <numeric>
#include <vector>

namespace rulelink::util {

class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  std::size_t Find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];  // path halving
      x = parent_[x];
    }
    return x;
  }

  // Returns true when x and y were in different sets.
  bool Union(std::size_t x, std::size_t y) {
    std::size_t rx = Find(x);
    std::size_t ry = Find(y);
    if (rx == ry) return false;
    if (size_[rx] < size_[ry]) std::swap(rx, ry);
    parent_[ry] = rx;
    size_[rx] += size_[ry];
    return true;
  }

  bool Connected(std::size_t x, std::size_t y) {
    return Find(x) == Find(y);
  }

  std::size_t SetSize(std::size_t x) { return size_[Find(x)]; }
  std::size_t size() const { return parent_.size(); }

  // Groups of size >= min_size, each sorted, ordered by smallest member.
  std::vector<std::vector<std::size_t>> Groups(std::size_t min_size = 1);

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> size_;
};

}  // namespace rulelink::util

#endif  // RULELINK_UTIL_UNION_FIND_H_
