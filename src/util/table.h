// Small text-table builder used by the evaluation harness and benchmarks to
// print paper-style tables (plain aligned text, Markdown, or CSV).
#ifndef RULELINK_UTIL_TABLE_H_
#define RULELINK_UTIL_TABLE_H_

#include <string>
#include <vector>

namespace rulelink::util {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  // Appends one row; the row is padded or truncated to the header width.
  void AddRow(std::vector<std::string> row);

  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_cols() const { return header_.size(); }

  // Aligned plain-text rendering with a header separator.
  std::string ToText() const;
  // GitHub-flavored Markdown.
  std::string ToMarkdown() const;
  // RFC-4180-ish CSV (quotes fields containing comma/quote/newline).
  std::string ToCsv() const;

 private:
  std::vector<std::size_t> ColumnWidths() const;

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rulelink::util

#endif  // RULELINK_UTIL_TABLE_H_
