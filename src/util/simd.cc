#include "util/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace rulelink::util {
namespace {

// The active ScopedSimdMode override, encoded as -1 (none) or the mode's
// underlying value. Plain int: overrides are installed from one thread
// before parallel regions, like the morsel-size override.
std::int16_t g_override = -1;

SimdMode ClampToCpu(SimdMode requested) {
  const SimdMode cpu = DetectCpuSimdMode();
  if (requested == SimdMode::kOff) return requested;
  return static_cast<std::uint8_t>(requested) <=
                 static_cast<std::uint8_t>(cpu)
             ? requested
             : cpu;
}

SimdMode ParseEnvMode() {
  const char* env = std::getenv("RULELINK_SIMD");
  if (env == nullptr || env[0] == '\0' ||
      std::strcmp(env, "native") == 0) {
    return DetectCpuSimdMode();
  }
  if (std::strcmp(env, "off") == 0) return SimdMode::kOff;
  if (std::strcmp(env, "scalar") == 0) return SimdMode::kScalar;
  if (std::strcmp(env, "sse4.2") == 0 || std::strcmp(env, "sse42") == 0) {
    return ClampToCpu(SimdMode::kSSE42);
  }
  if (std::strcmp(env, "avx2") == 0) return ClampToCpu(SimdMode::kAVX2);
  // Unknown value: fail safe to the portable mode rather than crashing a
  // serving process on a typo.
  return SimdMode::kScalar;
}

struct AtomicSimdTotals {
  std::atomic<std::uint64_t> cascade_batched{0};
  std::atomic<std::uint64_t> cascade_remainder{0};
  std::atomic<std::uint64_t> kernel_batched{0};
  std::atomic<std::uint64_t> kernel_remainder{0};
};

AtomicSimdTotals& Totals() {
  static AtomicSimdTotals totals;
  return totals;
}

}  // namespace

SimdMode DetectCpuSimdMode() {
#if defined(__x86_64__) || defined(__i386__)
  static const SimdMode detected = [] {
    if (__builtin_cpu_supports("avx2")) return SimdMode::kAVX2;
    if (__builtin_cpu_supports("sse4.2")) return SimdMode::kSSE42;
    return SimdMode::kScalar;
  }();
  return detected;
#else
  return SimdMode::kScalar;
#endif
}

SimdMode ActiveSimdMode() {
  if (g_override >= 0) {
    return ClampToCpu(static_cast<SimdMode>(g_override));
  }
  static const SimdMode from_env = ParseEnvMode();
  return from_env;
}

const char* SimdModeName(SimdMode mode) {
  switch (mode) {
    case SimdMode::kOff: return "off";
    case SimdMode::kScalar: return "scalar";
    case SimdMode::kSSE42: return "sse4.2";
    case SimdMode::kAVX2: return "avx2";
  }
  return "scalar";
}

std::size_t SimdBatchWidth(SimdMode mode) {
  switch (mode) {
    case SimdMode::kAVX2: return 8;
    case SimdMode::kSSE42: return 4;
    case SimdMode::kOff:
    case SimdMode::kScalar: return 1;
  }
  return 1;
}

ScopedSimdMode::ScopedSimdMode(SimdMode mode) : previous_(g_override) {
  g_override = static_cast<std::int16_t>(static_cast<std::uint8_t>(mode));
}

ScopedSimdMode::~ScopedSimdMode() { g_override = previous_; }

SimdTotals SimdTotals::Minus(const SimdTotals& earlier) const {
  SimdTotals delta;
  delta.cascade_batched_pairs =
      cascade_batched_pairs - earlier.cascade_batched_pairs;
  delta.cascade_remainder_pairs =
      cascade_remainder_pairs - earlier.cascade_remainder_pairs;
  delta.kernel_batched_pairs =
      kernel_batched_pairs - earlier.kernel_batched_pairs;
  delta.kernel_remainder_pairs =
      kernel_remainder_pairs - earlier.kernel_remainder_pairs;
  return delta;
}

SimdTotals GlobalSimdTotals() {
  const AtomicSimdTotals& t = Totals();
  SimdTotals totals;
  totals.cascade_batched_pairs =
      t.cascade_batched.load(std::memory_order_relaxed);
  totals.cascade_remainder_pairs =
      t.cascade_remainder.load(std::memory_order_relaxed);
  totals.kernel_batched_pairs =
      t.kernel_batched.load(std::memory_order_relaxed);
  totals.kernel_remainder_pairs =
      t.kernel_remainder.load(std::memory_order_relaxed);
  return totals;
}

SimdStats GlobalSimdStats() {
  SimdStats stats;
  stats.mode = ActiveSimdMode();
  stats.dispatch = SimdModeName(stats.mode);
  stats.batch_width = SimdBatchWidth(stats.mode);
  stats.totals = GlobalSimdTotals();
  return stats;
}

void AddSimdCascadePairs(std::uint64_t batched, std::uint64_t remainder) {
  if (batched != 0) {
    Totals().cascade_batched.fetch_add(batched, std::memory_order_relaxed);
  }
  if (remainder != 0) {
    Totals().cascade_remainder.fetch_add(remainder,
                                         std::memory_order_relaxed);
  }
}

void AddSimdKernelPairs(std::uint64_t batched, std::uint64_t remainder) {
  if (batched != 0) {
    Totals().kernel_batched.fetch_add(batched, std::memory_order_relaxed);
  }
  if (remainder != 0) {
    Totals().kernel_remainder.fetch_add(remainder,
                                        std::memory_order_relaxed);
  }
}

}  // namespace rulelink::util
