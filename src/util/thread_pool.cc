#include "util/thread_pool.h"

#include <algorithm>

namespace rulelink::util {

std::size_t ResolveNumThreads(std::size_t requested) {
  const unsigned hw_reported = std::thread::hardware_concurrency();
  const std::size_t hw =
      hw_reported == 0 ? 1 : static_cast<std::size_t>(hw_reported);
  if (requested == 0) return hw;
  // Oversubscribing a CPU-bound static partition only adds contention:
  // with more workers than cores the chunks time-slice instead of running
  // concurrently, and the measured sweeps regress (BENCH_learning.json
  // showed 4 and 8 threads slower than 1 on a 1-core host). Explicit
  // requests therefore cap at the hardware.
  return std::min(requested, hw);
}

ThreadPool::ThreadPool(std::size_t num_workers) {
  const std::size_t n = std::max<std::size_t>(1, num_workers);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  task_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
  if (first_exception_ != nullptr) {
    std::exception_ptr e = first_exception_;
    first_exception_ = nullptr;
    std::rethrow_exception(e);
  }
}

void ThreadPool::ParallelFor(std::size_t n, const ChunkBody& body) {
  if (n == 0) return;
  const std::size_t chunks = std::min(num_workers(), n);
  if (chunks <= 1) {
    body(0, 0, n);
    return;
  }

  struct ForState {
    std::mutex mutex;
    std::condition_variable done;
    std::size_t remaining;
    std::vector<std::exception_ptr> errors;
  };
  ForState state;
  state.remaining = chunks;
  state.errors.resize(chunks);

  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = c * n / chunks;
    const std::size_t end = (c + 1) * n / chunks;
    Submit([&state, &body, c, begin, end] {
      try {
        body(c, begin, end);
      } catch (...) {
        state.errors[c] = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(state.mutex);
      if (--state.remaining == 0) state.done.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(state.mutex);
  state.done.wait(lock, [&state] { return state.remaining == 0; });
  for (const std::exception_ptr& error : state.errors) {
    if (error != nullptr) std::rethrow_exception(error);
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_ready_.wait(lock,
                       [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and fully drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    try {
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (first_exception_ == nullptr) {
        first_exception_ = std::current_exception();
      }
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

std::size_t ParallelChunks(std::size_t num_threads, std::size_t n) {
  if (n == 0) return 0;
  return std::max<std::size_t>(
      1, std::min(ResolveNumThreads(num_threads), n));
}

void ParallelFor(std::size_t num_threads, std::size_t n,
                 const ChunkBody& body) {
  const std::size_t chunks = ParallelChunks(num_threads, n);
  if (chunks == 0) return;
  if (chunks == 1) {
    body(0, 0, n);
    return;
  }
  ThreadPool pool(chunks);
  pool.ParallelFor(n, body);
}

}  // namespace rulelink::util
