#include "util/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <utility>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace rulelink::util {
namespace {

constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);

std::size_t HardwareConcurrency() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::int64_t SteadyMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Process-wide morsel-size override: 0 = none. Initialized once from the
// RULELINK_MORSEL_ITEMS environment variable (CI forces 1-item morsels
// through it to maximize stealing in the differential suites), then
// adjustable by ScopedMorselItems.
std::atomic<std::size_t>& MorselOverride() {
  static std::atomic<std::size_t> value{[] {
    const char* env = std::getenv("RULELINK_MORSEL_ITEMS");
    if (env == nullptr || *env == '\0') return std::size_t{0};
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(env, &end, 10);
    if (end == nullptr || *end != '\0') return std::size_t{0};
    return static_cast<std::size_t>(parsed);
  }()};
  return value;
}

std::atomic<bool>& PinningFlag() {
  static std::atomic<bool> value{false};
  return value;
}

}  // namespace

std::size_t ResolveNumThreads(std::size_t requested) {
  // 0 = hardware. Explicit requests pass through: morsel scheduling keeps
  // oversubscribed contexts productive (small self-balancing work units
  // time-slice gracefully), unlike the static partition this replaced,
  // which clamped here and silently changed what "--threads 8" meant.
  const std::size_t resolved = requested == 0 ? HardwareConcurrency()
                                              : requested;
  return std::min(resolved, kMaxParallelWorkers);
}

SchedulerTotals SchedulerTotals::Minus(const SchedulerTotals& earlier) const {
  SchedulerTotals delta;
  delta.loops = loops - earlier.loops;
  delta.morsels = morsels - earlier.morsels;
  delta.steals = steals - earlier.steals;
  delta.steal_failures = steal_failures - earlier.steal_failures;
  delta.busy_micros = busy_micros - earlier.busy_micros;
  delta.hw = hw.Minus(earlier.hw);
  return delta;
}

SchedulerTotals SchedulerStats::Totals() const {
  SchedulerTotals totals;
  totals.loops = loops;
  const auto add = [&totals](const SchedulerWorkerStats& w) {
    totals.morsels += w.morsels;
    totals.steals += w.steals;
    totals.steal_failures += w.steal_failures;
    totals.busy_micros += w.busy_micros;
    totals.hw.Add(w.hw);
  };
  add(external);
  for (const SchedulerWorkerStats& w : per_worker) add(w);
  return totals;
}

double SchedulerStats::Utilization() const {
  if (workers == 0 || uptime_micros == 0) return 0.0;
  std::uint64_t busy = external.busy_micros;
  for (const SchedulerWorkerStats& w : per_worker) busy += w.busy_micros;
  return static_cast<double>(busy) /
         (static_cast<double>(workers) * static_cast<double>(uptime_micros));
}

void SetThreadPinning(bool enabled) {
  PinningFlag().store(enabled, std::memory_order_relaxed);
}

bool ThreadPinningEnabled() {
  return PinningFlag().load(std::memory_order_relaxed);
}

std::size_t MorselItemsFor(std::size_t participants, std::size_t n,
                           std::size_t items_per_morsel_hint) {
  if (n == 0) return 1;
  const std::size_t forced =
      MorselOverride().load(std::memory_order_relaxed);
  if (forced != 0) return forced;
  if (items_per_morsel_hint != 0) return items_per_morsel_hint;
  if (participants <= 1) return n;
  // ~16 morsels per participant keeps the steal frequency low while
  // leaving enough units for the tail to balance; the slot cap bounds the
  // per-slot accumulator memory of callers on huge loops.
  constexpr std::size_t kMorselsPerParticipant = 16;
  constexpr std::size_t kMaxHeuristicSlots = 4096;
  const std::size_t target = participants * kMorselsPerParticipant;
  std::size_t items = (n + target - 1) / target;
  const std::size_t floor_items =
      (n + kMaxHeuristicSlots - 1) / kMaxHeuristicSlots;
  items = std::max(items, floor_items);
  return std::max<std::size_t>(1, items);
}

ScopedMorselItems::ScopedMorselItems(std::size_t items_per_morsel)
    : previous_(MorselOverride().exchange(items_per_morsel,
                                          std::memory_order_relaxed)) {}

ScopedMorselItems::~ScopedMorselItems() {
  MorselOverride().store(previous_, std::memory_order_relaxed);
}

// --- Pool ---------------------------------------------------------------

namespace {
// Points at the executing pool worker's stats row so loop participation is
// attributed per worker; null on threads that are not pool workers (their
// participation lands in the pool's `external` row).
thread_local ThreadPool::AtomicWorkerStatsRow* tls_worker_stats = nullptr;
}  // namespace

// The per-participant state of one in-flight ParallelFor. Held by
// shared_ptr so a helper task that only gets scheduled after the loop
// completed still finds valid (empty) deques and returns without touching
// the caller's stack.
struct ThreadPool::LoopState {
  explicit LoopState(std::size_t participants) : deques(participants) {}

  const ChunkBody* body = nullptr;
  std::size_t n = 0;
  std::size_t morsel = 1;
  std::size_t num_slots = 0;

  // Range deque: [next, end) are the unclaimed slots this participant
  // owns. The owner pops from the front (locality: its range is a
  // contiguous run of items); thieves split off the back half. One tiny
  // critical section per morsel or steal — never two deque locks at once.
  struct alignas(64) Deque {
    std::mutex mu;
    std::size_t next = 0;
    std::size_t end = 0;
  };
  std::vector<Deque> deques;

  std::atomic<std::size_t> next_helper{1};  // deque ids for helper tasks
  std::atomic<std::size_t> executed{0};
  std::mutex done_mu;
  std::condition_variable done_cv;
  std::mutex err_mu;
  std::vector<std::pair<std::size_t, std::exception_ptr>> errors;
};

ThreadPool::ThreadPool(std::size_t num_workers)
    : ThreadPool(num_workers, ThreadPinningEnabled()) {}

ThreadPool::ThreadPool(std::size_t num_workers, bool pin_threads)
    : capacity_(std::max<std::size_t>(1, num_workers)),
      pin_(pin_threads),
      dynamic_pin_(false),
      worker_stats_(new AtomicWorkerStatsRow[capacity_]),
      hw_counters_(new std::atomic<ThreadPerfCounters*>[capacity_]()) {
  std::lock_guard<std::mutex> lock(mutex_);
  while (workers_.size() < capacity_) SpawnWorkerLocked();
}

ThreadPool::ThreadPool(GlobalTag)
    : capacity_(kMaxParallelWorkers - 1),  // plus the participating caller
      pin_(false),
      dynamic_pin_(true),  // honour SetThreadPinning at spawn time
      worker_stats_(new AtomicWorkerStatsRow[capacity_]),
      hw_counters_(new std::atomic<ThreadPerfCounters*>[capacity_]()) {}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  for (std::size_t i = 0; i < capacity_; ++i) {
    delete hw_counters_[i].load(std::memory_order_acquire);
  }
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool{GlobalTag{}};
  return pool;
}

std::size_t ThreadPool::num_workers() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return workers_.size();
}

void ThreadPool::EnsureWorkers(std::size_t count) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t want = std::min(count, capacity_);
  while (workers_.size() < want) SpawnWorkerLocked();
}

void ThreadPool::SpawnWorkerLocked() {
  const std::size_t index = workers_.size();
  if (first_spawn_micros_.load(std::memory_order_relaxed) < 0) {
    first_spawn_micros_.store(SteadyMicros(), std::memory_order_relaxed);
  }
  workers_.emplace_back([this, index] { WorkerLoop(index); });
  const bool pin =
      pin_ || (dynamic_pin_ && ThreadPinningEnabled());
  if (pin) {
#if defined(__linux__)
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(static_cast<int>(index % HardwareConcurrency()), &set);
    if (pthread_setaffinity_np(workers_.back().native_handle(), sizeof(set),
                               &set) == 0) {
      pinned_any_ = true;
    }
#endif
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  task_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
  if (first_exception_ != nullptr) {
    std::exception_ptr e = first_exception_;
    first_exception_ = nullptr;
    std::rethrow_exception(e);
  }
}

void ThreadPool::Participate(const std::shared_ptr<LoopState>& state,
                             std::size_t home,
                             AtomicWorkerStatsRow* row) {
  LoopState& loop = *state;
  const std::size_t participants = loop.deques.size();
  for (;;) {
    std::size_t slot = kNoSlot;
    {
      LoopState::Deque& mine = loop.deques[home];
      std::lock_guard<std::mutex> lock(mine.mu);
      if (mine.next < mine.end) slot = mine.next++;
    }
    if (slot == kNoSlot) {
      // Own range drained: steal the back half of the fullest-looking
      // victim we encounter (first non-empty in round-robin order). The
      // victim keeps its front, preserving its locality run.
      bool stole = false;
      for (std::size_t k = 1; k < participants && !stole; ++k) {
        const std::size_t v = (home + k) % participants;
        std::size_t lo = 0;
        std::size_t hi = 0;
        {
          LoopState::Deque& victim = loop.deques[v];
          std::lock_guard<std::mutex> lock(victim.mu);
          const std::size_t avail = victim.end - victim.next;
          if (avail == 0) continue;
          const std::size_t take = (avail + 1) / 2;
          hi = victim.end;
          lo = hi - take;
          victim.end = lo;
        }
        LoopState::Deque& mine = loop.deques[home];
        std::lock_guard<std::mutex> lock(mine.mu);
        mine.next = lo;
        mine.end = hi;
        stole = true;
        row->steals.fetch_add(1, std::memory_order_relaxed);
      }
      if (stole) continue;
      // Nothing claimable anywhere. Ranges a concurrent thief holds "in
      // limbo" are its responsibility; this participant is done.
      row->steal_failures.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    const std::size_t begin = slot * loop.morsel;
    const std::size_t end = std::min(loop.n, begin + loop.morsel);
    const std::int64_t t0 = SteadyMicros();
    try {
      (*loop.body)(slot, begin, end);
    } catch (...) {
      std::lock_guard<std::mutex> lock(loop.err_mu);
      loop.errors.emplace_back(slot, std::current_exception());
    }
    // Published before the executed increment below: its release makes
    // this morsel's counters visible to whoever observes loop completion,
    // so a stats snapshot right after ParallelFor is exact.
    row->busy_micros.fetch_add(
        static_cast<std::uint64_t>(SteadyMicros() - t0),
        std::memory_order_relaxed);
    row->morsels.fetch_add(1, std::memory_order_relaxed);
    if (loop.executed.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        loop.num_slots) {
      {
        std::lock_guard<std::mutex> lock(loop.done_mu);
      }
      loop.done_cv.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(std::size_t n, const ChunkBody& body,
                             std::size_t items_per_morsel,
                             std::size_t parallelism) {
  if (n == 0) return;
  std::size_t participants =
      parallelism != 0 ? parallelism : num_workers() + 1;
  participants = std::min(participants, capacity_ + 1);
  const std::size_t morsel =
      MorselItemsFor(std::max<std::size_t>(1, participants), n,
                     items_per_morsel);
  const std::size_t num_slots = (n + morsel - 1) / morsel;
  if (participants <= 1 || num_slots <= 1) {
    // Serial resolution: inline on the caller, zero scheduler state.
    body(0, 0, n);
    return;
  }
  participants = std::min(participants, num_slots);

  auto state = std::make_shared<LoopState>(participants);
  state->body = &body;
  state->n = n;
  state->morsel = morsel;
  state->num_slots = num_slots;
  for (std::size_t d = 0; d < participants; ++d) {
    state->deques[d].next = d * num_slots / participants;
    state->deques[d].end = (d + 1) * num_slots / participants;
  }
  loops_.fetch_add(1, std::memory_order_relaxed);
  EnsureWorkers(participants - 1);
  for (std::size_t h = 1; h < participants; ++h) {
    Submit([state] {
      const std::size_t d =
          state->next_helper.fetch_add(1, std::memory_order_relaxed);
      if (d >= state->deques.size()) return;
      // Helper tasks only ever run on this pool's workers, whose rows the
      // worker loop installed.
      Participate(state, d, tls_worker_stats);
    });
  }

  // The caller is participant 0 — it owns the front of the range and
  // executes morsels like any worker, so `num_threads` contexts means
  // `num_threads - 1` pool threads.
  Participate(state, 0,
              tls_worker_stats != nullptr ? tls_worker_stats
                                          : &external_stats_);

  // Morsels another participant claimed may still be running; their
  // executed counts are the completion signal.
  if (state->executed.load(std::memory_order_acquire) != num_slots) {
    std::unique_lock<std::mutex> lock(state->done_mu);
    state->done_cv.wait(lock, [&] {
      return state->executed.load(std::memory_order_acquire) >= num_slots;
    });
  }

  std::lock_guard<std::mutex> err_lock(state->err_mu);
  if (!state->errors.empty()) {
    auto first = state->errors.begin();
    for (auto it = state->errors.begin(); it != state->errors.end(); ++it) {
      if (it->first < first->first) first = it;
    }
    std::rethrow_exception(first->second);
  }
}

SchedulerStats ThreadPool::Stats() const {
  SchedulerStats stats;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats.workers = workers_.size();
    stats.pinned = pinned_any_;
  }
  stats.loops = loops_.load(std::memory_order_relaxed);
  const std::int64_t spawn =
      first_spawn_micros_.load(std::memory_order_relaxed);
  if (spawn >= 0) {
    stats.uptime_micros =
        static_cast<std::uint64_t>(SteadyMicros() - spawn);
  }
  const auto read = [](const AtomicWorkerStatsRow& row) {
    SchedulerWorkerStats w;
    w.morsels = row.morsels.load(std::memory_order_relaxed);
    w.steals = row.steals.load(std::memory_order_relaxed);
    w.steal_failures = row.steal_failures.load(std::memory_order_relaxed);
    w.busy_micros = row.busy_micros.load(std::memory_order_relaxed);
    return w;
  };
  stats.external = read(external_stats_);
  stats.per_worker.reserve(stats.workers);
  for (std::size_t i = 0; i < stats.workers; ++i) {
    SchedulerWorkerStats w = read(worker_stats_[i]);
    // perf_event fds can be read from any thread; the group is bound to
    // the worker, so this samples its live counters without stopping it.
    const ThreadPerfCounters* counters =
        hw_counters_[i].load(std::memory_order_acquire);
    if (counters != nullptr) w.hw = counters->Read();
    stats.per_worker.push_back(w);
  }
  return stats;
}

void ThreadPool::WorkerLoop(std::size_t worker_index) {
  tls_worker_stats = &worker_stats_[worker_index];
  // Open this worker's hardware counter group on its own thread (the
  // events are thread-bound). Null when unavailable (gated by
  // perf_event_paranoid / seccomp); freed by the pool destructor after
  // the join so Stats() never races a teardown.
  hw_counters_[worker_index].store(
      ThreadPerfCounters::OpenForCurrentThread().release(),
      std::memory_order_release);
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_ready_.wait(lock,
                       [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and fully drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    try {
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (first_exception_ == nullptr) {
        first_exception_ = std::current_exception();
      }
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

SchedulerStats GlobalSchedulerStats() { return ThreadPool::Global().Stats(); }

SchedulerTotals GlobalSchedulerTotals() {
  return GlobalSchedulerStats().Totals();
}

std::size_t ParallelSlots(std::size_t num_threads, std::size_t n,
                          std::size_t items_per_morsel) {
  if (n == 0) return 0;
  const std::size_t resolved = ResolveNumThreads(num_threads);
  if (resolved <= 1) return 1;
  const std::size_t morsel = MorselItemsFor(resolved, n, items_per_morsel);
  return (n + morsel - 1) / morsel;
}

void ParallelFor(std::size_t num_threads, std::size_t n,
                 const ChunkBody& body, std::size_t items_per_morsel) {
  if (n == 0) return;
  const std::size_t resolved = ResolveNumThreads(num_threads);
  if (resolved <= 1) {
    // The serial path: inline on the caller with no pool, no locks and no
    // allocation — the reference every differential test compares against.
    body(0, 0, n);
    return;
  }
  ThreadPool::Global().ParallelFor(n, body, items_per_morsel, resolved);
}

}  // namespace rulelink::util
