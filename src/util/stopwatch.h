// Wall-clock stopwatch for coarse timing in examples and the eval harness
// (micro-benchmarks use google-benchmark instead).
#ifndef RULELINK_UTIL_STOPWATCH_H_
#define RULELINK_UTIL_STOPWATCH_H_

#include <chrono>

namespace rulelink::util {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace rulelink::util

#endif  // RULELINK_UTIL_STOPWATCH_H_
