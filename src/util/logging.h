// Minimal logging and check macros. RL_CHECK aborts on violated invariants
// in all build modes; RL_DCHECK only in debug builds.
#ifndef RULELINK_UTIL_LOGGING_H_
#define RULELINK_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace rulelink::util {

enum class LogSeverity { kInfo = 0, kWarning = 1, kError = 2, kFatal = 3 };

// Returns/sets the minimum severity that is emitted to stderr. Defaults to
// kWarning so library internals stay quiet in benchmarks.
LogSeverity MinLogSeverity();
void SetMinLogSeverity(LogSeverity severity);

// Internal: accumulates one log line and emits it on destruction.
class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogSeverity severity_;
  std::ostringstream stream_;
};

// Swallows the ostream produced by RL_LOG so RL_CHECK can be used as a
// statement with optional trailing '<<' message.
class LogMessageVoidify {
 public:
  void operator&(std::ostream&) {}
};

}  // namespace rulelink::util

#define RL_LOG(severity)                                        \
  ::rulelink::util::LogMessage(                                 \
      ::rulelink::util::LogSeverity::k##severity, __FILE__, __LINE__) \
      .stream()

#define RL_CHECK(cond)                                          \
  (cond) ? (void)0                                              \
         : ::rulelink::util::LogMessageVoidify() &              \
               RL_LOG(Fatal) << "Check failed: " #cond " "

#define RL_CHECK_OK(expr)                                        \
  do {                                                           \
    const ::rulelink::util::Status rl_check_status__ = (expr);   \
    RL_CHECK(rl_check_status__.ok()) << rl_check_status__;       \
  } while (false)

#ifndef NDEBUG
#define RL_DCHECK(cond) RL_CHECK(cond)
#else
#define RL_DCHECK(cond) \
  while (false) RL_CHECK(cond)
#endif

#endif  // RULELINK_UTIL_LOGGING_H_
