// Epoch-based memory reclamation for read-mostly shared structures
// (DESIGN.md §5i). The serving engine publishes immutable snapshots with
// one release-store; readers pin the current epoch, load the snapshot
// pointer with one acquire-load, and never take a lock or touch a
// reference count. A retired snapshot is freed only once every pinned
// reader epoch has advanced past its retirement epoch, so a reader can
// keep dereferencing the snapshot it loaded for as long as its pin lasts.
//
// Protocol:
//   * The domain keeps a monotonically increasing global epoch E (>= 1; 0
//     is the quiescent sentinel).
//   * Reader pin: store E into the reader's slot, then re-read E and retry
//     if it moved (the store is seq_cst, so once the re-read confirms the
//     value, every later writer observes the pin before advancing past
//     it). Unpin: store the quiescent sentinel with release.
//   * Writer retire: after unlinking an object (e.g. swapping the snapshot
//     pointer), advance E to r and tag the object with r. Any reader still
//     holding the unlinked object pinned some epoch e < r before loading
//     the pointer — its load preceded the swap, the swap preceded the
//     advance — so the object stays in the limbo list while any active pin
//     is < r.
//   * Reclaim: free every limbo entry whose tag is <= the minimum over the
//     active pins (quiescent slots do not constrain). Runs on the writer
//     side only (Retire/TryReclaim/destructor); readers never block and
//     never free.
//
// Readers are wait-free apart from the bounded pin-confirm loop, which
// retries only when a writer advanced the epoch in the handful of
// instructions between the two loads; `EpochStats::pin_retries` counts
// those, and `reader_blocks` — waits on any writer-held resource — is
// structurally zero (there is no code path that could increment it; the
// counter exists so the serving bench can assert the property per run).
#ifndef RULELINK_UTIL_EPOCH_H_
#define RULELINK_UTIL_EPOCH_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace rulelink::util {

// Observability snapshot of one domain; thread-variant (depends on
// scheduling), reported by the serving engine's stats only.
struct EpochStats {
  std::uint64_t epoch = 0;           // current global epoch
  std::uint64_t pins = 0;            // critical sections entered
  std::uint64_t pin_retries = 0;     // pin-confirm loops that re-read E
  std::uint64_t reader_blocks = 0;   // reader waits; structurally zero
  std::uint64_t retired = 0;         // objects handed to Retire()
  std::uint64_t reclaimed = 0;       // objects actually freed
  std::size_t limbo = 0;             // retired, not yet reclaimable
  std::size_t readers = 0;           // registered reader slots
};

class EpochDomain {
 public:
  EpochDomain() = default;
  // Frees everything still in limbo. No reader may be registered or
  // pinned; the owner tears readers down first.
  ~EpochDomain();

  EpochDomain(const EpochDomain&) = delete;
  EpochDomain& operator=(const EpochDomain&) = delete;

  // One reader's pin slot, cache-line sized so concurrent readers never
  // share a line. Obtained via RegisterReader; returned via
  // UnregisterReader when the reader retires.
  struct alignas(64) ReaderSlot {
    std::atomic<std::uint64_t> pinned_epoch{0};  // 0 = quiescent
    std::atomic<bool> in_use{false};
    // Owner-written with relaxed increments; Stats() may read them while
    // the owner is live, so they must be atomic (counts, not ordering).
    std::atomic<std::uint64_t> pins{0};
    std::atomic<std::uint64_t> pin_retries{0};
  };

  // Registers the calling reader, reusing a retired slot when one exists.
  // Takes the domain mutex — do this once per worker, not per operation.
  ReaderSlot* RegisterReader();
  void UnregisterReader(ReaderSlot* slot);

  // RAII pinned critical section. While alive, any object retired after
  // the pin stays allocated; objects loaded inside the section stay valid
  // until destruction.
  class Guard {
   public:
    Guard(EpochDomain* domain, ReaderSlot* slot) : slot_(slot) {
      std::uint64_t e = domain->epoch_.load(std::memory_order_acquire);
      for (;;) {
        // seq_cst store: totally ordered against the writer's seq_cst
        // epoch advance, so a writer that advances to e+1 after this
        // store must observe the pin when it scans the slots.
        slot_->pinned_epoch.store(e, std::memory_order_seq_cst);
        const std::uint64_t confirm =
            domain->epoch_.load(std::memory_order_seq_cst);
        if (confirm == e) break;
        e = confirm;
        slot_->pin_retries.fetch_add(1, std::memory_order_relaxed);
      }
      slot_->pins.fetch_add(1, std::memory_order_relaxed);
    }
    ~Guard() {
      slot_->pinned_epoch.store(0, std::memory_order_release);
    }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    ReaderSlot* slot_;
  };

  // Writer side: advances the epoch and parks `object` in the limbo list;
  // `deleter(object)` runs once no reader pin can precede the advance.
  // Also opportunistically reclaims whatever became safe. Serialized
  // internally (writers are rare; readers never enter here).
  void Retire(void* object, void (*deleter)(void*));

  // Frees every limbo entry whose retirement epoch all active pins have
  // passed. Returns the number reclaimed.
  std::size_t TryReclaim();

  EpochStats Stats() const;

 private:
  // Minimum epoch pinned by any registered reader; ~0 when all quiescent.
  std::uint64_t MinActivePin() const;
  std::size_t ReclaimLocked(std::uint64_t min_pin);

  std::atomic<std::uint64_t> epoch_{1};

  mutable std::mutex mutex_;  // guards slots_/limbo_ and the counters below
  // Slot storage: pointers are stable (nodes heap-allocated once, reused
  // via in_use) so readers touch their slot without the mutex.
  std::vector<ReaderSlot*> slots_;
  struct Limbo {
    void* object;
    void (*deleter)(void*);
    std::uint64_t retire_epoch;
  };
  std::vector<Limbo> limbo_;
  std::uint64_t retired_ = 0;
  std::uint64_t reclaimed_ = 0;
  std::uint64_t drained_pins_ = 0;         // from unregistered slots
  std::uint64_t drained_pin_retries_ = 0;  // "
};

}  // namespace rulelink::util

#endif  // RULELINK_UTIL_EPOCH_H_
