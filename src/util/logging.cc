#include "util/logging.h"

namespace rulelink::util {
namespace {

const char* SeverityName(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kInfo:
      return "I";
    case LogSeverity::kWarning:
      return "W";
    case LogSeverity::kError:
      return "E";
    case LogSeverity::kFatal:
      return "F";
  }
  return "?";
}

LogSeverity& MinSeverityRef() {
  static LogSeverity min_severity = LogSeverity::kWarning;
  return min_severity;
}

}  // namespace

LogSeverity MinLogSeverity() { return MinSeverityRef(); }
void SetMinLogSeverity(LogSeverity severity) { MinSeverityRef() = severity; }

LogMessage::LogMessage(LogSeverity severity, const char* file, int line)
    : severity_(severity) {
  stream_ << "[" << SeverityName(severity) << " " << file << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  if (severity_ >= MinLogSeverity() || severity_ == LogSeverity::kFatal) {
    std::cerr << stream_.str() << std::endl;
  }
  if (severity_ == LogSeverity::kFatal) {
    std::abort();
  }
}

}  // namespace rulelink::util
