// Lightweight error-handling primitives (no exceptions), modeled on
// absl::Status / absl::StatusOr. Library code returns Status for fallible
// operations and Result<T> when a value is produced.
#ifndef RULELINK_UTIL_STATUS_H_
#define RULELINK_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace rulelink::util {

// Canonical error space, a compact subset of the gRPC/absl codes that the
// library actually needs.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kUnimplemented = 6,
  kInternal = 7,
  kDataLoss = 8,
};

// Returns the canonical spelling of `code`, e.g. "INVALID_ARGUMENT".
const char* StatusCodeToString(StatusCode code);

// A Status is either OK or carries an error code plus a human-readable
// message. Copyable and cheap for the OK case.
class Status {
 public:
  // OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CODE>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

// Factory helpers, mirroring absl naming.
inline Status OkStatus() { return Status(); }
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status OutOfRangeError(std::string message);
Status FailedPreconditionError(std::string message);
Status UnimplementedError(std::string message);
Status InternalError(std::string message);
Status DataLossError(std::string message);

// Result<T> is a value-or-error union. Access to the value when holding an
// error aborts in debug builds (assert), so callers must check ok() first.
template <typename T>
class Result {
 public:
  // Intentionally implicit so functions can `return value;` / `return status;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
    if (status_.ok()) {
      status_ = InternalError("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  // Returns the contained value or `fallback` when holding an error.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;  // OK iff value_ holds a value.
  std::optional<T> value_;
};

}  // namespace rulelink::util

// Propagates a non-OK status out of the enclosing function.
#define RL_RETURN_IF_ERROR(expr)                    \
  do {                                              \
    ::rulelink::util::Status rl_status__ = (expr);  \
    if (!rl_status__.ok()) return rl_status__;      \
  } while (false)

// Evaluates a Result<T> expression, propagating the error or binding the
// value: RL_ASSIGN_OR_RETURN(auto x, ComputeX());
#define RL_ASSIGN_OR_RETURN(lhs, expr)              \
  RL_ASSIGN_OR_RETURN_IMPL_(                        \
      RL_STATUS_CONCAT_(rl_result__, __LINE__), lhs, expr)

#define RL_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr)   \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

#define RL_STATUS_CONCAT_(a, b) RL_STATUS_CONCAT_IMPL_(a, b)
#define RL_STATUS_CONCAT_IMPL_(a, b) a##b

#endif  // RULELINK_UTIL_STATUS_H_
