// Hashing helpers: 64-bit FNV-1a for strings and a boost-style combiner for
// composite keys used by the frequency tables in the rule learner.
#ifndef RULELINK_UTIL_HASH_H_
#define RULELINK_UTIL_HASH_H_

#include <cstdint>
#include <functional>
#include <string_view>
#include <utility>

namespace rulelink::util {

inline std::uint64_t Fnv1a64(std::string_view data) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

// SplitMix64 finalizer: a bijective mixer that spreads low-entropy inputs
// (std::hash<int> is the identity on most standard libraries) across the
// whole 64-bit range.
inline std::uint64_t Mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

inline std::size_t HashCombine(std::size_t seed, std::size_t value) {
  // boost::hash_combine shape, with the value mixed first so integer keys
  // (identity-hashed) do not collide on grids.
  return seed ^ (Mix64(value) + 0x9E3779B97F4A7C15ULL + (seed << 6) +
                 (seed >> 2));
}

// Hash functor for std::pair keys in unordered containers.
struct PairHash {
  template <typename A, typename B>
  std::size_t operator()(const std::pair<A, B>& p) const {
    return HashCombine(std::hash<A>()(p.first), std::hash<B>()(p.second));
  }
};

}  // namespace rulelink::util

#endif  // RULELINK_UTIL_HASH_H_
