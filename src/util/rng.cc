#include "util/rng.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace rulelink::util {
namespace {

std::uint64_t SplitMix64(std::uint64_t* state) {
  std::uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

Rng Rng::ForStream(std::uint64_t seed, std::uint64_t stream) {
  // Mix the stream index through SplitMix64 before folding it into the
  // seed, so consecutive streams share no low-bit structure; stream + 1
  // keeps stream 0 distinct from the plain Rng(seed).
  std::uint64_t sm = stream + 1;
  return Rng(seed ^ SplitMix64(&sm));
}

std::uint64_t Rng::NextUint64() {
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::UniformUint64(std::uint64_t bound) {
  RL_DCHECK(bound > 0);
  // Rejection sampling: draw until the value falls below the largest
  // multiple of `bound` representable in 64 bits.
  const std::uint64_t threshold = (~bound + 1) % bound;  // 2^64 mod bound
  for (;;) {
    const std::uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::UniformInt(std::int64_t lo, std::int64_t hi) {
  RL_DCHECK(lo <= hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(NextUint64());  // full range
  return lo + static_cast<std::int64_t>(UniformUint64(span));
}

double Rng::UniformDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

double Rng::Gaussian() {
  // Box-Muller; discard the second variate for simplicity.
  double u1 = UniformDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = UniformDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

std::size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  RL_DCHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    RL_DCHECK(w >= 0.0);
    total += w;
  }
  RL_CHECK(total > 0.0) << "WeightedIndex requires a positive weight sum";
  double x = UniformDouble() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0.0) return i;
  }
  return weights.size() - 1;  // numeric fallback
}

std::string Rng::AlnumString(std::size_t length) {
  static constexpr char kAlphabet[] = "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
  std::string out;
  out.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    out.push_back(kAlphabet[UniformUint64(sizeof(kAlphabet) - 1)]);
  }
  return out;
}

ZipfSampler::ZipfSampler(std::size_t n, double s) {
  RL_CHECK(n > 0);
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = total;
  }
  for (double& c : cdf_) c /= total;
}

std::size_t ZipfSampler::Sample(Rng* rng) const {
  const double x = rng->UniformDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), x);
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfSampler::Probability(std::size_t rank) const {
  RL_DCHECK(rank < cdf_.size());
  return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

}  // namespace rulelink::util
