// Deterministic pseudo-random number generation. Every data generator and
// benchmark in the project takes an explicit seed so published numbers are
// reproducible bit-for-bit across runs and platforms.
#ifndef RULELINK_UTIL_RNG_H_
#define RULELINK_UTIL_RNG_H_

#include <cstdint>
#include <string>
#include <vector>

namespace rulelink::util {

// xoshiro256** seeded via SplitMix64. Small, fast, and statistically solid
// for workload generation (not for cryptography).
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  // Counter-based stream derivation: the generator for draw `stream` of a
  // logical sequence seeded with `seed`. Depends only on (seed, stream),
  // so parallel producers that give item i the generator ForStream(seed, i)
  // emit bit-identical output at every thread count and any work
  // partition — the discipline the workload generators are built on.
  static Rng ForStream(std::uint64_t seed, std::uint64_t stream);

  // Uniform over the full 64-bit range.
  std::uint64_t NextUint64();

  // Uniform in [0, bound). bound must be > 0. Uses rejection sampling to
  // avoid modulo bias.
  std::uint64_t UniformUint64(std::uint64_t bound);

  // Uniform in [lo, hi] inclusive; requires lo <= hi.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);

  // Uniform in [0, 1).
  double UniformDouble();

  // True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  // Standard normal via Box-Muller.
  double Gaussian();

  // Samples an index in [0, weights.size()) proportionally to weights.
  // Weights must be non-negative with a positive sum.
  std::size_t WeightedIndex(const std::vector<double>& weights);

  // Uniform random pick from a non-empty vector.
  template <typename T>
  const T& Pick(const std::vector<T>& items) {
    return items[UniformUint64(items.size())];
  }

  // Random uppercase alphanumeric string of the given length.
  std::string AlnumString(std::size_t length);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    for (std::size_t i = items->size(); i > 1; --i) {
      std::swap((*items)[i - 1], (*items)[UniformUint64(i)]);
    }
  }

 private:
  std::uint64_t state_[4];
};

// Zipf-distributed sampler over {0, ..., n-1} with exponent s, using the
// cumulative inverse method with a precomputed table. Rank 0 is the most
// frequent item, matching the head-heavy class popularity of real catalogs.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s);

  std::size_t Sample(Rng* rng) const;
  std::size_t size() const { return cdf_.size(); }

  // Probability of drawing `rank`.
  double Probability(std::size_t rank) const;

 private:
  std::vector<double> cdf_;
};

}  // namespace rulelink::util

#endif  // RULELINK_UTIL_RNG_H_
