#include "util/interner.h"

#include <algorithm>
#include <cstring>

namespace rulelink::util {
namespace {

// First block size; blocks double up to the cap so huge symbol tables do
// not pay one allocation per few strings.
constexpr std::size_t kMinBlockBytes = std::size_t{1} << 12;   // 4 KiB
constexpr std::size_t kMaxBlockBytes = std::size_t{1} << 20;   // 1 MiB

}  // namespace

StringInterner::StringInterner(const StringInterner& other) {
  Reserve(other.size());
  for (std::string_view view : other.views_) {
    const std::string_view stored = StoreInArena(view);
    views_.push_back(stored);
    index_.emplace(stored, static_cast<SymbolId>(views_.size() - 1));
  }
}

StringInterner& StringInterner::operator=(const StringInterner& other) {
  if (this != &other) {
    StringInterner copy(other);
    *this = std::move(copy);
  }
  return *this;
}

std::string_view StringInterner::StoreInArena(std::string_view s) {
  if (blocks_.empty() || blocks_.back().capacity - blocks_.back().used <
                             s.size()) {
    std::size_t capacity =
        blocks_.empty() ? kMinBlockBytes
                        : std::min(blocks_.back().capacity * 2,
                                   kMaxBlockBytes);
    capacity = std::max(capacity, s.size());
    Block block;
    block.data = std::make_unique<char[]>(capacity);
    block.capacity = capacity;
    blocks_.push_back(std::move(block));
  }
  Block& block = blocks_.back();
  char* dest = block.data.get() + block.used;
  if (!s.empty()) std::memcpy(dest, s.data(), s.size());
  block.used += s.size();
  return std::string_view(dest, s.size());
}

SymbolId StringInterner::Intern(std::string_view s) {
  auto it = index_.find(s);
  if (it != index_.end()) return it->second;
  const std::string_view stored = StoreInArena(s);
  const SymbolId id = static_cast<SymbolId>(views_.size());
  views_.push_back(stored);
  index_.emplace(stored, id);
  return id;
}

SymbolId StringInterner::Find(std::string_view s) const {
  auto it = index_.find(s);
  return it == index_.end() ? kInvalidSymbolId : it->second;
}

std::size_t StringInterner::arena_bytes() const {
  std::size_t total = 0;
  for (const Block& block : blocks_) total += block.capacity;
  return total;
}

void StringInterner::Reserve(std::size_t expected_symbols) {
  views_.reserve(expected_symbols);
  index_.reserve(expected_symbols);
}

}  // namespace rulelink::util
