// Interned symbol table: maps strings to stable dense uint32 ids.
//
// The learning core's hot loops count (property, segment, class) triples;
// hashing and comparing full std::string keys in those loops caps
// throughput (see DESIGN.md §"Interned data model"). StringInterner turns
// every distinct string into a dense SymbolId exactly once, after which
// the counting passes operate on flat integer arrays.
//
// Design:
//   * arena-backed storage: string bytes live in chunked char blocks that
//     are never reallocated, so the string_views handed out stay valid for
//     the interner's lifetime (including across moves);
//   * dense ids: the i-th distinct string interned gets id i, so callers
//     can replace hash maps keyed by string with vectors indexed by id;
//   * string_view lookup: Intern/Find take string_views and never allocate
//     unless a new symbol is actually added;
//   * ordering: ids follow first-occurrence order, NOT lexical order.
//     Callers that need lexical ordering (RuleSet's tie-break, report
//     emission) resolve ids back to views and compare those — see the
//     "ordering contract" in DESIGN.md;
//   * snapshots: Snapshot() copies the id->view table (16 bytes/symbol;
//     the underlying bytes are shared with the arena). A snapshot is safe
//     to read from any number of threads while the owning interner keeps
//     interning on another thread, because readers never touch the
//     interner's growing containers.
//
// Not thread-safe for concurrent Intern(); the deterministic pattern used
// throughout this codebase is: intern serially (or merge per-shard tables
// in chunk order), then hand read-only snapshots to parallel phases.
#ifndef RULELINK_UTIL_INTERNER_H_
#define RULELINK_UTIL_INTERNER_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace rulelink::util {

// Dense id of an interned string. Layers alias this (text::SegmentId,
// text::TokenId) to document which symbol universe an id belongs to.
using SymbolId = std::uint32_t;
inline constexpr SymbolId kInvalidSymbolId = 0xFFFFFFFFu;

class StringInterner {
 public:
  StringInterner() = default;

  // Deep copy: the copy owns its own arena and yields identical ids.
  StringInterner(const StringInterner& other);
  StringInterner& operator=(const StringInterner& other);

  // Moves keep all handed-out views valid (the arena blocks move along).
  StringInterner(StringInterner&&) noexcept = default;
  StringInterner& operator=(StringInterner&&) noexcept = default;

  // Returns the id of `s`, interning it on first sight. Ids are dense and
  // assigned in first-occurrence order.
  SymbolId Intern(std::string_view s);

  // Returns the id of `s` or kInvalidSymbolId when it was never interned.
  // Never allocates; safe on a const interner that nobody is mutating.
  SymbolId Find(std::string_view s) const;

  // The string for `id`. Valid for the interner's lifetime.
  std::string_view View(SymbolId id) const { return views_[id]; }

  std::size_t size() const { return views_.size(); }
  bool empty() const { return views_.empty(); }

  // Bytes held by the arena blocks (capacity, not just used), for memory
  // accounting in benchmarks and stats.
  std::size_t arena_bytes() const;

  // Pre-sizes the id table and lookup index for `expected_symbols`.
  void Reserve(std::size_t expected_symbols);

  // Read-only view of the id->string table, decoupled from the interner's
  // growing containers: concurrent readers of a Snapshot race with nothing
  // even while the source interner keeps interning new symbols.
  class Snapshot {
   public:
    Snapshot() = default;
    std::string_view View(SymbolId id) const { return views_[id]; }
    std::size_t size() const { return views_.size(); }

   private:
    friend class StringInterner;
    explicit Snapshot(std::vector<std::string_view> views)
        : views_(std::move(views)) {}
    std::vector<std::string_view> views_;
  };
  Snapshot MakeSnapshot() const { return Snapshot(views_); }

 private:
  struct Block {
    std::unique_ptr<char[]> data;
    std::size_t used = 0;
    std::size_t capacity = 0;
  };

  // Copies `s` into the arena and returns a stable view of the copy.
  std::string_view StoreInArena(std::string_view s);

  std::vector<Block> blocks_;
  std::vector<std::string_view> views_;  // id -> arena-backed view
  // Keys are arena-backed views, so the index never owns string bytes.
  std::unordered_map<std::string_view, SymbolId> index_;
};

// Packs two 32-bit ids into the 64-bit composite keys the counting layers
// use for (property, segment) premises and similar pairs.
inline std::uint64_t PackSymbolPair(std::uint32_t hi, std::uint32_t lo) {
  return (static_cast<std::uint64_t>(hi) << 32) | lo;
}
inline std::uint32_t PackedHi(std::uint64_t packed) {
  return static_cast<std::uint32_t>(packed >> 32);
}
inline std::uint32_t PackedLo(std::uint64_t packed) {
  return static_cast<std::uint32_t>(packed & 0xFFFFFFFFu);
}

}  // namespace rulelink::util

#endif  // RULELINK_UTIL_INTERNER_H_
