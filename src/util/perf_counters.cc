#include "util/perf_counters.h"

#if defined(__linux__) && __has_include(<linux/perf_event.h>)
#define RULELINK_HAVE_PERF_EVENT 1
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cstring>
#else
#define RULELINK_HAVE_PERF_EVENT 0
#endif

#include <atomic>

namespace rulelink::util {

#if RULELINK_HAVE_PERF_EVENT

namespace {

long PerfEventOpen(perf_event_attr* attr, pid_t pid, int cpu, int group_fd,
                   unsigned long flags) {
  return syscall(SYS_perf_event_open, attr, pid, cpu, group_fd, flags);
}

int OpenCounter(std::uint32_t type, std::uint64_t config, int group_fd) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.type = type;
  attr.size = sizeof(attr);
  attr.config = config;
  attr.disabled = group_fd == -1 ? 1 : 0;  // leader starts disabled
  attr.exclude_kernel = 1;                 // lowest paranoid requirement
  attr.exclude_hv = 1;
  attr.read_format = PERF_FORMAT_GROUP;
  attr.inherit = 0;  // this thread only — per-worker attribution
  return static_cast<int>(
      PerfEventOpen(&attr, /*pid=*/0, /*cpu=*/-1, group_fd, 0));
}

}  // namespace

std::unique_ptr<ThreadPerfCounters> ThreadPerfCounters::OpenForCurrentThread() {
  const int leader =
      OpenCounter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES, -1);
  if (leader < 0) return nullptr;
  const int instructions =
      OpenCounter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS, leader);
  const int llc =
      OpenCounter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES, leader);
  if (instructions < 0 || llc < 0) {
    // All-or-nothing: a partial group would skew derived ratios (IPC,
    // misses/instruction) without signalling why.
    if (instructions >= 0) close(instructions);
    if (llc >= 0) close(llc);
    close(leader);
    return nullptr;
  }
  ioctl(leader, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
  ioctl(leader, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
  auto counters = std::unique_ptr<ThreadPerfCounters>(new ThreadPerfCounters());
  counters->leader_fd_ = leader;
  counters->instructions_fd_ = instructions;
  counters->llc_fd_ = llc;
  return counters;
}

ThreadPerfCounters::~ThreadPerfCounters() {
  if (leader_fd_ >= 0) {
    ioctl(leader_fd_, PERF_EVENT_IOC_DISABLE, PERF_IOC_FLAG_GROUP);
    close(llc_fd_);
    close(instructions_fd_);
    close(leader_fd_);
  }
}

HwCounterSample ThreadPerfCounters::Read() const {
  HwCounterSample sample;
  if (leader_fd_ < 0) return sample;
  // PERF_FORMAT_GROUP layout: { nr, values[nr] } in creation order.
  struct {
    std::uint64_t nr;
    std::uint64_t values[3];
  } data;
  const ssize_t got = read(leader_fd_, &data, sizeof(data));
  if (got < static_cast<ssize_t>(sizeof(std::uint64_t) * 4) || data.nr != 3) {
    return sample;
  }
  sample.valid = true;
  sample.cycles = data.values[0];
  sample.instructions = data.values[1];
  sample.llc_misses = data.values[2];
  return sample;
}

bool ThreadPerfCounters::Available() {
  // Probe once: open (and immediately drop) a group on the calling thread.
  static const bool available = [] {
    auto probe = OpenForCurrentThread();
    return probe != nullptr;
  }();
  return available;
}

#else  // !RULELINK_HAVE_PERF_EVENT

std::unique_ptr<ThreadPerfCounters> ThreadPerfCounters::OpenForCurrentThread() {
  return nullptr;
}

ThreadPerfCounters::~ThreadPerfCounters() = default;

HwCounterSample ThreadPerfCounters::Read() const { return HwCounterSample{}; }

bool ThreadPerfCounters::Available() { return false; }

#endif  // RULELINK_HAVE_PERF_EVENT

}  // namespace rulelink::util
