// Runtime SIMD dispatch for the batched linking hot path (DESIGN.md §5h).
//
// The batch kernels (FilterCascade::PruneBatch's stage-A lanes and the
// interleaved Myers Levenshtein in text/similarity.cc) are compiled three
// times — baseline ISA, SSE4.2 and AVX2 via per-function target
// attributes — and one of them is picked at runtime from CPUID. The mode
// only selects *which compiled copy of the same elementwise arithmetic*
// runs; every copy performs the identical IEEE operations per pair, so
// links and FilterStats are byte-identical across modes (the contract
// tests/filter_batch_differential_test.cc enforces).
//
// Override order: ScopedSimdMode (tests/benches, in-process) beats the
// RULELINK_SIMD environment variable ("off", "scalar", "sse4.2", "avx2",
// "native"; unset = "native") beats CPU detection. A requested ISA the
// CPU lacks is clamped down to what it supports. "off" disables the batch
// entry points entirely — callers fall back to the per-pair code, which
// is how the legacy path stays reachable for differential testing and
// the speedup baseline.
//
// The process-wide counters here mirror the scheduler's observability
// discipline: hot paths accumulate into shard-local plain integers and
// fold them in with one atomic add per run, and the totals are
// timing/dispatch-variant, so they render only in the full
// MetricsSnapshot ("simd" section), never in DeterministicJson.
#ifndef RULELINK_UTIL_SIMD_H_
#define RULELINK_UTIL_SIMD_H_

#include <cstddef>
#include <cstdint>

namespace rulelink::util {

enum class SimdMode : std::uint8_t {
  kOff,     // batch entry points disabled; per-pair legacy paths run
  kScalar,  // batch layout and loops, compiled at the baseline ISA
  kSSE42,   // 128-bit lanes
  kAVX2,    // 256-bit lanes
};

// The best mode this CPU supports (never kOff).
SimdMode DetectCpuSimdMode();

// The mode the batch entry points should use right now:
// ScopedSimdMode override > RULELINK_SIMD env > DetectCpuSimdMode(),
// clamped to the CPU's capability. Cheap (one relaxed load after the
// first call).
SimdMode ActiveSimdMode();

// "off", "scalar", "sse4.2" or "avx2".
const char* SimdModeName(SimdMode mode);

// 32-bit lanes per stage-A tile: 8 (AVX2), 4 (SSE4.2), 1 (scalar/off).
std::size_t SimdBatchWidth(SimdMode mode);

// Forces every ActiveSimdMode() in scope to `mode` (clamped to the CPU),
// restoring the previous override on destruction. Like ScopedMorselItems:
// not itself thread-safe — install before spawning the loops under test.
class ScopedSimdMode {
 public:
  explicit ScopedSimdMode(SimdMode mode);
  ~ScopedSimdMode();
  ScopedSimdMode(const ScopedSimdMode&) = delete;
  ScopedSimdMode& operator=(const ScopedSimdMode&) = delete;

 private:
  std::int16_t previous_;  // -1 = no override was installed
};

// --- Observability ------------------------------------------------------

// Cumulative process-wide batch/remainder pair counts, subtractable so
// benches can report per-measurement deltas (like SchedulerTotals).
// "cascade" counts candidate pairs through FilterCascade: batched = the
// SoA lane path, remainder = per-pair fallbacks (multi-valued slots or
// batching off). "kernel" counts bounded-Levenshtein probes: batched =
// lanes of the interleaved Myers kernel, remainder = single-pair calls.
struct SimdTotals {
  std::uint64_t cascade_batched_pairs = 0;
  std::uint64_t cascade_remainder_pairs = 0;
  std::uint64_t kernel_batched_pairs = 0;
  std::uint64_t kernel_remainder_pairs = 0;

  SimdTotals Minus(const SimdTotals& earlier) const;
};

// Snapshot for the MetricsSnapshot "simd" section: the active dispatch
// target plus the lifetime counters.
struct SimdStats {
  SimdMode mode = SimdMode::kScalar;
  const char* dispatch = "scalar";
  std::size_t batch_width = 1;
  SimdTotals totals;
};

SimdTotals GlobalSimdTotals();
SimdStats GlobalSimdStats();

// Fold shard-local counts into the process totals (one atomic add each;
// call once per run/batch, never per pair).
void AddSimdCascadePairs(std::uint64_t batched, std::uint64_t remainder);
void AddSimdKernelPairs(std::uint64_t batched, std::uint64_t remainder);

}  // namespace rulelink::util

#endif  // RULELINK_UTIL_SIMD_H_
