#include "util/table.h"

#include <algorithm>

namespace rulelink::util {
namespace {

std::string CsvEscape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out.push_back('"');
  return out;
}

void AppendPadded(std::string* out, const std::string& s, std::size_t width) {
  out->append(s);
  for (std::size_t i = s.size(); i < width; ++i) out->push_back(' ');
}

}  // namespace

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::vector<std::size_t> TextTable::ColumnWidths() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  return widths;
}

std::string TextTable::ToText() const {
  const auto widths = ColumnWidths();
  std::string out;
  for (std::size_t c = 0; c < header_.size(); ++c) {
    AppendPadded(&out, header_[c], widths[c]);
    if (c + 1 < header_.size()) out.append("  ");
  }
  out.push_back('\n');
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out.append(total, '-');
  out.push_back('\n');
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      AppendPadded(&out, row[c], widths[c]);
      if (c + 1 < row.size()) out.append("  ");
    }
    out.push_back('\n');
  }
  return out;
}

std::string TextTable::ToMarkdown() const {
  std::string out = "|";
  for (const auto& h : header_) out += " " + h + " |";
  out += "\n|";
  for (std::size_t c = 0; c < header_.size(); ++c) out += "---|";
  out.push_back('\n');
  for (const auto& row : rows_) {
    out += "|";
    for (const auto& field : row) out += " " + field + " |";
    out.push_back('\n');
  }
  return out;
}

std::string TextTable::ToCsv() const {
  std::string out;
  for (std::size_t c = 0; c < header_.size(); ++c) {
    if (c) out.push_back(',');
    out += CsvEscape(header_[c]);
  }
  out.push_back('\n');
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out.push_back(',');
      out += CsvEscape(row[c]);
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace rulelink::util
