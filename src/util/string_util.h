// String helpers shared across the library. All functions are pure and
// allocation-conscious: splitting returns string_views into the input.
#ifndef RULELINK_UTIL_STRING_UTIL_H_
#define RULELINK_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace rulelink::util {

// Splits `input` on any character in `separators`; empty pieces are dropped.
// The returned views alias `input`.
std::vector<std::string_view> SplitAny(std::string_view input,
                                       std::string_view separators);

// Splits `input` on the single character `sep`, keeping empty pieces.
std::vector<std::string_view> Split(std::string_view input, char sep);

// Joins `pieces` with `sep`.
std::string Join(const std::vector<std::string>& pieces, std::string_view sep);
std::string Join(const std::vector<std::string_view>& pieces,
                 std::string_view sep);

// Removes leading/trailing ASCII whitespace.
std::string_view StripAsciiWhitespace(std::string_view input);

// ASCII case conversion (locale-independent).
std::string AsciiToLower(std::string_view input);
std::string AsciiToUpper(std::string_view input);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

// True when `c` is an ASCII letter or digit. The paper's segmentation splits
// part-numbers on every character that is neither.
bool IsAsciiAlnum(char c);
bool IsAsciiDigit(char c);
bool IsAsciiAlpha(char c);

// Replaces every occurrence of `from` (non-empty) with `to`.
std::string ReplaceAll(std::string_view input, std::string_view from,
                       std::string_view to);

// Formats a double with `digits` digits after the decimal point.
std::string FormatDouble(double value, int digits);

// Formats a double as the shortest decimal string that parses back to
// exactly the same value (std::to_chars round-trip semantics). Locale
// independent; non-finite values render as "inf"/"-inf"/"nan".
std::string FormatDoubleRoundTrip(double value);

// Parses a base-10 floating-point literal (the full string, no trailing
// junk); returns false on malformed input. Round-trips the output of
// FormatDoubleRoundTrip bit-exactly.
bool ParseDouble(std::string_view s, double* out);

// Formats a ratio as a percentage string, e.g. 0.969 -> "96.9%".
std::string FormatPercent(double ratio, int digits = 1);

// Parses a non-negative base-10 integer; returns false on any non-digit or
// overflow.
bool ParseUint64(std::string_view s, unsigned long long* out);

}  // namespace rulelink::util

#endif  // RULELINK_UTIL_STRING_UTIL_H_
