#include "util/union_find.h"

#include <algorithm>
#include <map>

namespace rulelink::util {

std::vector<std::vector<std::size_t>> UnionFind::Groups(
    std::size_t min_size) {
  std::map<std::size_t, std::vector<std::size_t>> by_root;
  for (std::size_t i = 0; i < parent_.size(); ++i) {
    by_root[Find(i)].push_back(i);
  }
  std::vector<std::vector<std::size_t>> groups;
  for (auto& [root, members] : by_root) {
    if (members.size() >= min_size) {
      std::sort(members.begin(), members.end());
      groups.push_back(std::move(members));
    }
  }
  std::sort(groups.begin(), groups.end(),
            [](const auto& a, const auto& b) { return a[0] < b[0]; });
  return groups;
}

}  // namespace rulelink::util
