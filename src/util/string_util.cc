#include "util/string_util.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <system_error>

namespace rulelink::util {

std::vector<std::string_view> SplitAny(std::string_view input,
                                       std::string_view separators) {
  std::vector<std::string_view> pieces;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= input.size(); ++i) {
    const bool at_sep =
        i == input.size() || separators.find(input[i]) != std::string_view::npos;
    if (at_sep) {
      if (i > start) pieces.push_back(input.substr(start, i - start));
      start = i + 1;
    }
  }
  return pieces;
}

std::vector<std::string_view> Split(std::string_view input, char sep) {
  std::vector<std::string_view> pieces;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= input.size(); ++i) {
    if (i == input.size() || input[i] == sep) {
      pieces.push_back(input.substr(start, i - start));
      start = i + 1;
    }
  }
  return pieces;
}

namespace {
template <typename Container>
std::string JoinImpl(const Container& pieces, std::string_view sep) {
  std::string out;
  bool first = true;
  for (const auto& piece : pieces) {
    if (!first) out.append(sep);
    out.append(piece);
    first = false;
  }
  return out;
}
}  // namespace

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  return JoinImpl(pieces, sep);
}
std::string Join(const std::vector<std::string_view>& pieces,
                 std::string_view sep) {
  return JoinImpl(pieces, sep);
}

std::string_view StripAsciiWhitespace(std::string_view input) {
  std::size_t begin = 0;
  std::size_t end = input.size();
  while (begin < end && (input[begin] == ' ' || input[begin] == '\t' ||
                         input[begin] == '\n' || input[begin] == '\r')) {
    ++begin;
  }
  while (end > begin && (input[end - 1] == ' ' || input[end - 1] == '\t' ||
                         input[end - 1] == '\n' || input[end - 1] == '\r')) {
    --end;
  }
  return input.substr(begin, end - begin);
}

std::string AsciiToLower(std::string_view input) {
  std::string out(input);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

std::string AsciiToUpper(std::string_view input) {
  std::string out(input);
  for (char& c : out) {
    if (c >= 'a' && c <= 'z') c = static_cast<char>(c - 'a' + 'A');
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool IsAsciiAlnum(char c) {
  return IsAsciiAlpha(c) || IsAsciiDigit(c);
}
bool IsAsciiDigit(char c) { return c >= '0' && c <= '9'; }
bool IsAsciiAlpha(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
}

std::string ReplaceAll(std::string_view input, std::string_view from,
                       std::string_view to) {
  if (from.empty()) return std::string(input);
  std::string out;
  std::size_t pos = 0;
  while (pos < input.size()) {
    const std::size_t hit = input.find(from, pos);
    if (hit == std::string_view::npos) {
      out.append(input.substr(pos));
      break;
    }
    out.append(input.substr(pos, hit - pos));
    out.append(to);
    pos = hit + from.size();
  }
  return out;
}

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string FormatDoubleRoundTrip(double value) {
  if (std::isnan(value)) return "nan";
  if (std::isinf(value)) return value < 0 ? "-inf" : "inf";
  char buf[64];
  const auto result = std::to_chars(buf, buf + sizeof(buf), value);
  return std::string(buf, result.ptr);
}

bool ParseDouble(std::string_view s, double* out) {
  if (s.empty()) return false;
  double value = 0.0;
  const auto result = std::from_chars(s.data(), s.data() + s.size(), value);
  if (result.ec != std::errc() || result.ptr != s.data() + s.size()) {
    return false;
  }
  *out = value;
  return true;
}

std::string FormatPercent(double ratio, int digits) {
  return FormatDouble(ratio * 100.0, digits) + "%";
}

bool ParseUint64(std::string_view s, unsigned long long* out) {
  if (s.empty()) return false;
  unsigned long long value = 0;
  for (char c : s) {
    if (!IsAsciiDigit(c)) return false;
    const unsigned long long digit = static_cast<unsigned long long>(c - '0');
    if (value > (~0ULL - digit) / 10ULL) return false;  // overflow
    value = value * 10ULL + digit;
  }
  *out = value;
  return true;
}

}  // namespace rulelink::util
