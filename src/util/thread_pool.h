// A small fixed-size worker pool plus a deterministic ParallelFor used by
// the learner, classifier, linker and evaluator hot paths.
//
// Design constraints (see DESIGN.md §"Parallel execution model"):
//   * static chunking: [0, n) is split into min(workers, n) contiguous
//     chunks, so the work distribution is a pure function of (n, workers)
//     and never of scheduling order;
//   * callers shard into per-chunk accumulators and merge them in chunk
//     order, which keeps every parallel entry point byte-identical to the
//     serial path;
//   * num_threads <= 1 (after resolution) runs the body inline on the
//     calling thread with no pool, no locks and no extra allocation — that
//     is the legacy serial code path, kept reachable so differential tests
//     can compare it against the sharded one;
//   * exceptions thrown by chunk bodies are captured and rethrown on the
//     calling thread, lowest chunk index first, so failure behaviour is
//     deterministic too.
#ifndef RULELINK_UTIL_THREAD_POOL_H_
#define RULELINK_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rulelink::util {

// Resolves a user-facing thread-count option: 0 means "use the hardware",
// i.e. std::thread::hardware_concurrency() (at least 1); an explicit
// request is clamped to that same hardware concurrency — oversubscribed
// static chunking is never faster, only noisier. Every ParallelFor-based
// entry point resolves through here; constructing a ThreadPool directly
// spawns exactly what was asked (tests use that to force contention).
std::size_t ResolveNumThreads(std::size_t requested);

// Chunk body: half-open index range [begin, end) plus the chunk ordinal,
// which callers use to index per-chunk accumulators.
using ChunkBody =
    std::function<void(std::size_t chunk, std::size_t begin, std::size_t end)>;

class ThreadPool {
 public:
  // Spawns max(1, num_workers) worker threads.
  explicit ThreadPool(std::size_t num_workers);

  // Drains the queue (pending tasks still run), then joins the workers.
  // Exceptions captured from tasks but never collected via Wait() are
  // dropped.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_workers() const { return workers_.size(); }

  // Enqueues a task. Safe to call from inside a running task (nested
  // submission): the nested task is queued like any other and Wait()
  // keeps waiting until it has run too.
  void Submit(std::function<void()> task);

  // Blocks until the queue is empty and no task is running, then rethrows
  // the first exception captured from a submitted task, if any.
  void Wait();

  // Splits [0, n) into min(num_workers(), n) contiguous chunks, runs
  // body(chunk, begin, end) for each on the pool and blocks until all
  // complete. Chunk exceptions are rethrown lowest-chunk-first. Must not
  // be called from inside a pool task (the caller blocks on the pool).
  void ParallelFor(std::size_t n, const ChunkBody& body);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable task_ready_;  // signalled when work is queued
  std::condition_variable idle_;        // signalled when the pool drains
  std::size_t active_ = 0;              // tasks currently running
  bool stopping_ = false;
  std::exception_ptr first_exception_;  // from Submit()ed tasks
};

// One-shot helper for code with a num_threads option: resolves the option
// (0 = hardware concurrency), clamps to n, and either runs the single
// chunk body(0, 0, n) inline — the exact serial path — or stands up a
// transient pool for the call. The pool setup cost (~tens of µs) is noise
// for the corpus-sized loops this library parallelizes.
void ParallelFor(std::size_t num_threads, std::size_t n,
                 const ChunkBody& body);

// The number of chunks ParallelFor(num_threads, n, ...) will use; callers
// size their per-chunk accumulator vectors with this.
std::size_t ParallelChunks(std::size_t num_threads, std::size_t n);

}  // namespace rulelink::util

#endif  // RULELINK_UTIL_THREAD_POOL_H_
