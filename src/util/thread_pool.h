// Morsel-driven parallel execution: a persistent work-stealing pool plus a
// deterministic ParallelFor used by the learner, classifier, linker,
// evaluator and workload-generator hot paths.
//
// Design (see DESIGN.md §5g; §5b documents the static-chunking ancestor):
//   * morsels: [0, n) is split into fixed-size contiguous morsels of
//     `items_per_morsel` items. Morsel s — the "slot" — always covers
//     [s*m, min(n, (s+1)*m)), a pure function of (n, m) and never of
//     scheduling order. Workers claim morsels dynamically (work stealing),
//     so skewed per-item costs self-balance instead of serializing on the
//     slowest static chunk.
//   * determinism contract (non-negotiable): the slot index passed to the
//     body is the morsel's position in index order, so callers shard into
//     per-slot accumulators — sized with ParallelSlots — and merge them in
//     slot order. Slot s always precedes slot s+1's item range, hence the
//     slot-order merge replays the exact serial order and every entry
//     point stays byte-identical to the serial path at any thread count,
//     any morsel size and any steal interleaving.
//   * persistent pool: the process keeps one lazily-initialized pool
//     (ThreadPool::Global()) that grows on demand and is reused by every
//     ParallelFor call — no thread spawn per invocation. The calling
//     thread participates as a worker, so `num_threads` means "execution
//     contexts", not "extra threads".
//   * num_threads <= 1 (after resolution) runs the body inline on the
//     calling thread as one slot covering [0, n) — no pool, no locks, no
//     allocation; the legacy serial code path, kept reachable so
//     differential tests can compare the sharded paths against it.
//   * nested ParallelFor from inside a pool task is safe: the nested
//     caller drives its own loop to completion (claiming morsels itself),
//     pool workers join only if free, and loop-completion waits follow
//     strict nesting, so no cycle of waits can form.
//   * exceptions thrown by morsel bodies are captured and rethrown on the
//     calling thread, lowest slot index first, so failure behaviour is
//     deterministic too. Every claimable morsel still runs.
//   * oversubscription is graceful, not clamped: an explicit request above
//     hardware_concurrency stands up that many contexts. Morsels are small
//     enough that extra contexts time-slice instead of stretching a static
//     partition, so the old silent clamp in ResolveNumThreads is gone.
#ifndef RULELINK_UTIL_THREAD_POOL_H_
#define RULELINK_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "util/perf_counters.h"

namespace rulelink::util {

// Hard ceiling on execution contexts; far above any sane request, it only
// bounds what a pathological --threads value can spawn.
inline constexpr std::size_t kMaxParallelWorkers = 256;

// Resolves a user-facing thread-count option: 0 means "use the hardware",
// i.e. std::thread::hardware_concurrency() (at least 1); an explicit
// request passes through (capped only at kMaxParallelWorkers). Requests
// beyond the hardware are honoured — morsel scheduling degrades gracefully
// under oversubscription, and tests rely on forcing contention.
std::size_t ResolveNumThreads(std::size_t requested);

// Morsel body: half-open item range [begin, end) plus the slot ordinal
// (the morsel's index-order position), which callers use to index
// per-slot accumulators.
using ChunkBody =
    std::function<void(std::size_t slot, std::size_t begin, std::size_t end)>;

// --- Scheduler observability -------------------------------------------

// Per-worker scheduler counters. Thread-variant by nature: they depend on
// timing and steal order, so they belong in the full MetricsSnapshot but
// never in its deterministic section.
struct SchedulerWorkerStats {
  std::uint64_t morsels = 0;         // morsels executed
  std::uint64_t steals = 0;          // successful steals
  std::uint64_t steal_failures = 0;  // full victim scans that found nothing
  std::uint64_t busy_micros = 0;     // wall time spent inside morsel bodies
  // Hardware counters for the worker's thread (cycles, instructions, LLC
  // misses), read live from its perf_event group; invalid when
  // perf_event_open is unavailable or the row is the external
  // (non-pool-thread) aggregate.
  HwCounterSample hw;
};

// Aggregate totals, subtractable so benches can report per-measurement
// deltas of the cumulative process-wide counters.
struct SchedulerTotals {
  std::uint64_t loops = 0;  // pool-scheduled ParallelFor invocations
  std::uint64_t morsels = 0;
  std::uint64_t steals = 0;
  std::uint64_t steal_failures = 0;
  std::uint64_t busy_micros = 0;
  HwCounterSample hw;  // summed over workers with live counter groups

  SchedulerTotals Minus(const SchedulerTotals& earlier) const;
};

// Snapshot of the global pool's lifetime counters.
struct SchedulerStats {
  std::size_t workers = 0;           // pool threads spawned so far
  bool pinned = false;               // workers were pinned at spawn time
  std::uint64_t loops = 0;           // pool-scheduled ParallelFor calls
  std::uint64_t uptime_micros = 0;   // since the first worker spawned
  SchedulerWorkerStats external;     // caller-thread participation
  std::vector<SchedulerWorkerStats> per_worker;

  SchedulerTotals Totals() const;
  // busy time / (workers * uptime); 0 when unknown (no workers yet).
  double Utilization() const;
};

// Snapshot / totals of ThreadPool::Global(). Cheap (relaxed atomic reads);
// safe to call while loops are running.
SchedulerStats GlobalSchedulerStats();
SchedulerTotals GlobalSchedulerTotals();

// --- Pinning ------------------------------------------------------------

// Requests that pool workers be pinned to cores (worker i -> core
// i % hardware_concurrency, Linux only; a no-op elsewhere). Applies to
// workers spawned after the call, so set it before the first parallel
// region — the CLI's --pin-threads and the benches'
// RULELINK_PIN_THREADS=1 both do. Already-spawned workers stay put.
void SetThreadPinning(bool enabled);
bool ThreadPinningEnabled();

// --- Morsel granularity -------------------------------------------------

// The items-per-morsel ParallelFor will use for a loop of n items at the
// given participant count. Resolution order: the process-wide test
// override (ScopedMorselItems / RULELINK_MORSEL_ITEMS env) if set, else a
// non-zero per-call hint, else a heuristic targeting ~16 morsels per
// participant (capped so a huge n cannot explode the slot count and the
// per-slot accumulator memory of callers).
std::size_t MorselItemsFor(std::size_t participants, std::size_t n,
                           std::size_t items_per_morsel_hint);

// Forces every ParallelFor in scope to the given morsel size (tests use 1
// to maximize stealing). Restores the previous override on destruction.
// Not itself thread-safe: install before spawning the loops under test.
class ScopedMorselItems {
 public:
  explicit ScopedMorselItems(std::size_t items_per_morsel);
  ~ScopedMorselItems();
  ScopedMorselItems(const ScopedMorselItems&) = delete;
  ScopedMorselItems& operator=(const ScopedMorselItems&) = delete;

 private:
  std::size_t previous_;
};

// --- The pool -----------------------------------------------------------

class ThreadPool {
 public:
  // Spawns max(1, num_workers) worker threads immediately (direct pools —
  // tests force worker counts and contention this way). `pin_threads`
  // overrides the global pinning flag for this pool.
  explicit ThreadPool(std::size_t num_workers);
  ThreadPool(std::size_t num_workers, bool pin_threads);

  // Drains the queue (pending tasks still run), then joins the workers.
  // Exceptions captured from tasks but never collected via Wait() are
  // dropped.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // The persistent process pool behind the free ParallelFor. Starts with
  // zero workers and grows lazily to the largest parallelism ever
  // requested (minus the participating caller), up to
  // kMaxParallelWorkers - 1.
  static ThreadPool& Global();

  std::size_t num_workers() const;

  // Spawns workers until at least `count` exist (capped at the pool's
  // capacity). Idempotent and thread-safe.
  void EnsureWorkers(std::size_t count);

  // Enqueues a task. Safe to call from inside a running task (nested
  // submission): the nested task is queued like any other and Wait()
  // keeps waiting until it has run too.
  void Submit(std::function<void()> task);

  // Blocks until the queue is empty and no task is running, then rethrows
  // the first exception captured from a submitted task, if any.
  void Wait();

  // Morsel-driven loop over [0, n): splits it into ceil(n / m) slots with
  // m = MorselItemsFor(...), distributes the slots over per-participant
  // deques (the caller is participant 0 and executes morsels too), lets
  // idle participants steal half a victim's remaining range, and blocks
  // until every slot has run. Slot exceptions are rethrown
  // lowest-slot-first. Safe to call from inside a pool task.
  // `parallelism` caps the participant count (0 = workers + caller).
  void ParallelFor(std::size_t n, const ChunkBody& body,
                   std::size_t items_per_morsel = 0,
                   std::size_t parallelism = 0);

  // Lifetime scheduler counters for this pool (the Global() pool's are
  // exposed via GlobalSchedulerStats()).
  SchedulerStats Stats() const;

  // One worker's live counter row. Written by that worker only (relaxed
  // atomics) so Stats() can read concurrently; public only so the
  // implementation's thread-local attribution pointer can name it.
  struct AtomicWorkerStatsRow {
    std::atomic<std::uint64_t> morsels{0};
    std::atomic<std::uint64_t> steals{0};
    std::atomic<std::uint64_t> steal_failures{0};
    std::atomic<std::uint64_t> busy_micros{0};
  };

 private:
  struct LoopState;
  struct GlobalTag {};
  explicit ThreadPool(GlobalTag);  // zero workers, dynamic pinning flag

  void WorkerLoop(std::size_t worker_index);
  void SpawnWorkerLocked();
  // Claims and executes morsels of `state` using deque `home` until no
  // claimable work remains. Counters go straight into `row` (relaxed),
  // each morsel's before its `executed` increment, so the release there
  // publishes them to the caller observing loop completion — a snapshot
  // taken right after ParallelFor returns sees every executed morsel.
  static void Participate(const std::shared_ptr<LoopState>& state,
                          std::size_t home, AtomicWorkerStatsRow* row);

  const std::size_t capacity_;  // stats slots; workers_ never exceeds it
  const bool pin_;
  const bool dynamic_pin_;  // Global(): honour SetThreadPinning at spawn
  mutable std::mutex mutex_;
  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::condition_variable task_ready_;  // signalled when work is queued
  std::condition_variable idle_;        // signalled when the pool drains
  std::size_t active_ = 0;              // tasks currently running
  bool stopping_ = false;
  bool pinned_any_ = false;             // some worker got pinned at spawn
  std::exception_ptr first_exception_;  // from Submit()ed tasks

  // Observability. Fixed-capacity so worker rows never move.
  // external_stats_ aggregates participation by non-pool caller threads.
  // hw_counters_[i] is published by worker i at startup (null when
  // perf_event_open is unavailable) and freed by the destructor after the
  // joins, so Stats() can read a live worker's group at any time.
  std::unique_ptr<AtomicWorkerStatsRow[]> worker_stats_;
  std::unique_ptr<std::atomic<ThreadPerfCounters*>[]> hw_counters_;
  AtomicWorkerStatsRow external_stats_;
  std::atomic<std::uint64_t> loops_{0};
  std::atomic<std::int64_t> first_spawn_micros_{-1};  // steady-clock stamp
};

// One-shot helper for code with a num_threads option: resolves the option
// (0 = hardware concurrency), and either runs the single slot body(0, 0, n)
// inline — the exact serial path, zero allocation — or schedules morsels
// on the persistent Global() pool with the caller participating.
// `items_per_morsel` is the per-call granularity hint (0 = heuristic);
// callers with expensive per-slot accumulators pass a coarse value, cheap
// accumulators afford fine morsels. The same hint must be passed to
// ParallelSlots when sizing accumulators.
void ParallelFor(std::size_t num_threads, std::size_t n,
                 const ChunkBody& body, std::size_t items_per_morsel = 0);

// The number of slots ParallelFor(num_threads, n, body, items_per_morsel)
// will invoke the body with; callers size their per-slot accumulator
// vectors with this. 1 whenever the resolved thread count is serial.
std::size_t ParallelSlots(std::size_t num_threads, std::size_t n,
                          std::size_t items_per_morsel = 0);

}  // namespace rulelink::util

#endif  // RULELINK_UTIL_THREAD_POOL_H_
