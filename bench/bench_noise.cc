// Experiment E8 (ablation): robustness to provider noise. The paper's
// part numbers pass through provider formatting (different separators)
// and keying errors; this bench sweeps the typo rate and measures what
// survives — the learnt rules' held-out precision/coverage, and the
// pairs completeness of segment-exact rule blocking vs key-based
// standard blocking. Rules only need ONE clean segment to fire, so they
// degrade gracefully where whole-key blocking collapses.
#include <iostream>

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "blocking/metrics.h"
#include "blocking/rule_blocker.h"
#include "blocking/standard_blocking.h"
#include "core/classifier.h"
#include "eval/holdout.h"
#include "util/string_util.h"
#include "util/table.h"

namespace rulelink::bench {
namespace {

void PrintNoiseSweep() {
  std::cout << "=== E8: robustness to provider typos ===\n";
  util::TextTable table({"typo prob", "#rules", "holdout prec.",
                         "holdout coverage", "rule-block PC",
                         "standard-block PC"});
  for (double typo : {0.0, 0.05, 0.1, 0.2, 0.4}) {
    datagen::DatasetConfig config = ScaledConfig(2000, 1234);
    config.provider_typo_prob = typo;
    auto dataset = datagen::DatasetGenerator(config).Generate();
    RL_CHECK(dataset.ok());
    const core::TrainingSet ts = datagen::BuildTrainingSet(*dataset);

    // Held-out rule quality.
    eval::HoldoutOptions holdout;
    holdout.segmenter = &PaperSegmenter();
    holdout.support_threshold = 0.002;
    holdout.properties = {datagen::props::kPartNumber};
    auto generalization = eval::RunHoldout(ts, holdout);
    RL_CHECK(generalization.ok());

    // Blocking completeness.
    auto options = PaperLearnerOptions();
    auto rules = core::RuleLearner(options).Learn(ts);
    RL_CHECK(rules.ok());
    const core::RuleClassifier classifier(&*rules, &PaperSegmenter());
    const blocking::RuleBlocker rule_blocker(
        &classifier, &dataset->ontology(), &dataset->catalog_classes, 0.4,
        /*compare_all_when_unclassified=*/true);
    const blocking::StandardBlocker standard_blocker(
        datagen::props::kPartNumber, 5);
    std::vector<blocking::CandidatePair> gold;
    for (const auto& link : dataset->links) {
      gold.push_back({link.external_index, link.catalog_index});
    }
    const auto rule_quality = blocking::EvaluateBlocking(
        rule_blocker.Generate(dataset->external_items,
                              dataset->catalog_items),
        gold, dataset->external_items.size(),
        dataset->catalog_items.size());
    const auto standard_quality = blocking::EvaluateBlocking(
        standard_blocker.Generate(dataset->external_items,
                                  dataset->catalog_items),
        gold, dataset->external_items.size(),
        dataset->catalog_items.size());

    table.AddRow({util::FormatDouble(typo, 2),
                  std::to_string(rules->size()),
                  util::FormatPercent(generalization->precision),
                  util::FormatPercent(generalization->coverage),
                  util::FormatPercent(rule_quality.pairs_completeness),
                  util::FormatPercent(standard_quality.pairs_completeness)});
  }
  std::cout << table.ToText()
            << "(rule blocking falls back to compare-all for unclassified "
               "items, so its PC floor is the typo-free share; standard "
               "blocking loses every pair whose 5-char key prefix was "
               "touched)\n\n";
}

void BM_GenerateCorpus(benchmark::State& state) {
  datagen::DatasetConfig config = ScaledConfig(
      static_cast<std::size_t>(state.range(0)), 7);
  for (auto _ : state) {
    auto dataset = datagen::DatasetGenerator(config).Generate();
    benchmark::DoNotOptimize(dataset);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_GenerateCorpus)
    ->Arg(1000)
    ->Arg(5000)
    ->Arg(10265)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rulelink::bench

int main(int argc, char** argv) {
  rulelink::bench::PrintNoiseSweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
