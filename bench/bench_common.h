// Shared fixtures for the benchmark binaries: a lazily-generated default
// corpus (the paper-scale configuration) and smaller sweep configurations.
// Benchmarks print the paper-style tables on first use and then time the
// hot paths with google-benchmark.
#ifndef RULELINK_BENCH_BENCH_COMMON_H_
#define RULELINK_BENCH_BENCH_COMMON_H_

#include <cstddef>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/learner.h"
#include "core/training_set.h"
#include "datagen/generator.h"
#include "text/segmenter.h"
#include "util/logging.h"
#include "util/simd.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace rulelink::bench {

// Honours RULELINK_PIN_THREADS=1: pins pool workers to cores for the rest
// of the process (same semantics as the CLI's --pin-threads). Call before
// the first parallel region.
inline void ApplyPinningFromEnv() {
  const char* env = std::getenv("RULELINK_PIN_THREADS");
  if (env != nullptr && env[0] == '1' && env[1] == '\0') {
    util::SetThreadPinning(true);
  }
}

// One measured point of a thread-count sweep, with the scheduler-counter
// delta (morsels, steals, busy time) and the SIMD batch-counter delta
// (cascade/kernel pairs taken batched vs per-pair) observed during the
// best-of run.
struct ThreadSweepPoint {
  std::size_t num_threads = 0;
  double millis = 0.0;
  util::SchedulerTotals scheduler;
  util::SimdTotals simd;
};

// Records a thread-count speedup trajectory as BENCH_<name>.json in the
// working directory (git-ignored), so successive runs on different
// hardware can be compared: {"bench": ..., "hardware_concurrency": ...,
// "points": [{"threads": t, "ms": m, "speedup_vs_1": s,
// "scheduler": {...}, "simd": {...}}, ...]}. Points whose thread count
// exceeds the hardware get "oversubscribed": true so downstream tooling
// can drop them from scaling fits; the per-point "scheduler" object
// (loop/morsel/steal counts from the global pool) and "simd" object
// (batched vs per-pair cascade/kernel counts) make scaling regressions
// diagnosable from the artifact alone.
// `extra_sections`, when non-empty, is spliced verbatim as additional
// top-level JSON members (e.g. "\"interning\": {...},\n").
inline void WriteThreadSweepJson(const std::string& bench_name,
                                 const std::string& workload,
                                 const std::vector<ThreadSweepPoint>& points,
                                 const std::string& extra_sections = "") {
  const std::string path = "BENCH_" + bench_name + ".json";
  std::ofstream out(path);
  if (!out) return;
  double serial_ms = 0.0;
  for (const ThreadSweepPoint& p : points) {
    if (p.num_threads == 1) serial_ms = p.millis;
  }
  out << "{\n  \"bench\": \"" << bench_name << "\",\n  \"workload\": \""
      << workload << "\",\n  \"hardware_concurrency\": "
      << std::thread::hardware_concurrency() << ",\n  \"pinned\": "
      << (util::GlobalSchedulerStats().pinned ? "true" : "false") << ",\n"
      << extra_sections << "  \"points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const ThreadSweepPoint& p = points[i];
    out << "    {\"threads\": " << p.num_threads << ", \"ms\": "
        << util::FormatDouble(p.millis, 3);
    if (serial_ms > 0.0 && p.millis > 0.0) {
      out << ", \"speedup_vs_1\": "
          << util::FormatDouble(serial_ms / p.millis, 3);
    }
    if (p.num_threads > std::thread::hardware_concurrency()) {
      out << ", \"oversubscribed\": true";
    }
    out << ", \"scheduler\": {\"loops\": " << p.scheduler.loops
        << ", \"morsels\": " << p.scheduler.morsels
        << ", \"steals\": " << p.scheduler.steals
        << ", \"steal_failures\": " << p.scheduler.steal_failures
        << ", \"busy_micros\": " << p.scheduler.busy_micros;
    if (p.scheduler.hw.valid) {
      // Per-point hardware-counter delta (pool workers with live
      // perf_event groups): tells memory-bound scaling regressions (LLC
      // misses growing with threads) from compute-bound ones.
      out << ", \"hw\": {\"cycles\": " << p.scheduler.hw.cycles
          << ", \"instructions\": " << p.scheduler.hw.instructions
          << ", \"llc_misses\": " << p.scheduler.hw.llc_misses << "}";
    }
    out << "}";
    out << ", \"simd\": {\"cascade_batched_pairs\": "
        << p.simd.cascade_batched_pairs << ", \"cascade_remainder_pairs\": "
        << p.simd.cascade_remainder_pairs << ", \"kernel_batched_pairs\": "
        << p.simd.kernel_batched_pairs << ", \"kernel_remainder_pairs\": "
        << p.simd.kernel_remainder_pairs << "}";
    out << "}" << (i + 1 < points.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

// The paper-scale corpus (30k catalog, 10 265 links, 566/226 ontology),
// generated once per process.
inline const datagen::Dataset& PaperDataset() {
  static const datagen::Dataset* dataset = [] {
    datagen::DatasetConfig config;
    auto result = datagen::DatasetGenerator(config).Generate();
    RL_CHECK(result.ok()) << result.status();
    return new datagen::Dataset(std::move(result).value());
  }();
  return *dataset;
}

inline const core::TrainingSet& PaperTrainingSet() {
  static const core::TrainingSet* ts =
      new core::TrainingSet(datagen::BuildTrainingSet(PaperDataset()));
  return *ts;
}

inline const text::SeparatorSegmenter& PaperSegmenter() {
  static const text::SeparatorSegmenter* segmenter =
      new text::SeparatorSegmenter();
  return *segmenter;
}

inline core::LearnerOptions PaperLearnerOptions() {
  core::LearnerOptions options;
  options.support_threshold = 0.002;
  options.segmenter = &PaperSegmenter();
  options.properties = {datagen::props::kPartNumber};
  return options;
}

// A scaled-down configuration for sweeps (size = number of links).
inline datagen::DatasetConfig ScaledConfig(std::size_t num_links,
                                           std::uint64_t seed = 42) {
  datagen::DatasetConfig config;
  config.seed = seed;
  config.num_links = num_links;
  config.catalog_size = num_links * 3;
  // Scale tier sizes proportionally to keep the same class structure.
  const double ratio =
      static_cast<double>(num_links) / 10265.0;
  config.signal_class_min_links = std::max(25.0, 200.0 * ratio);
  config.signal_class_max_links = std::max(50.0, 520.0 * ratio);
  config.frequent_class_min_links = std::max(4.0, 24.0 * ratio);
  config.frequent_class_max_links = std::max(8.0, 34.0 * ratio);
  config.tail_class_cap_links = std::max(2.0, 14.0 * ratio);
  return config;
}

}  // namespace rulelink::bench

#endif  // RULELINK_BENCH_BENCH_COMMON_H_
