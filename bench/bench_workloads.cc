// Experiment E9: request-replay over the million-scale workload suite.
// The workload generator (src/datagen/workload.h) synthesizes a catalog
// and a skewed provider query stream from any KeyChooser distribution;
// this driver replays the stream request by request through the streaming
// linking path (candidate index probe -> filter cascade -> cached scorer
// -> best-per-external decision) and reports per-request latency
// percentiles from the log2 obs::Histogram — the serving-side view the
// batch benches cannot give. Each sweep point (catalog size x skew x
// dirtiness) is cross-checked against StreamingLinker::Run over the same
// index and caches: the replayed links must be byte-identical. Results
// land in BENCH_workloads.json.
//
// Sweep selection: RULELINK_WORKLOAD_SWEEP = "smoke" (one tiny point, for
// Debug smoke runs), unset or "ci" (<= 100k catalogs), "full" (adds the
// million-item point).
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "blocking/standard_blocking.h"
#include "datagen/key_chooser.h"
#include "datagen/workload.h"
#include "linking/feature_cache.h"
#include "linking/filters.h"
#include "linking/linker.h"
#include "linking/matcher.h"
#include "linking/streaming_linker.h"
#include "obs/metrics.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table.h"

namespace rulelink::bench {
namespace {

constexpr double kThreshold = 0.6;

// Same shape as bench_linking's streaming matcher: a Levenshtein rule the
// cascade can bound, token/bigram/exact rules on the part number, and a
// Monge-Elkan manufacturer rule with no cheap bound.
linking::ItemMatcher ReplayMatcher() {
  return linking::ItemMatcher({
      {datagen::props::kPartNumber, datagen::props::kPartNumber,
       linking::SimilarityMeasure::kLevenshtein, 3.0},
      {datagen::props::kPartNumber, datagen::props::kPartNumber,
       linking::SimilarityMeasure::kDiceBigram, 1.5},
      {datagen::props::kPartNumber, datagen::props::kPartNumber,
       linking::SimilarityMeasure::kExact, 1.0},
      {datagen::props::kPartNumber, datagen::props::kPartNumber,
       linking::SimilarityMeasure::kJaccardTokens, 0.5},
      {datagen::props::kManufacturer, datagen::props::kManufacturer,
       linking::SimilarityMeasure::kMongeElkan, 0.5},
  });
}

struct SweepPoint {
  std::size_t catalog_size = 0;
  datagen::Distribution skew = datagen::Distribution::kZipfian;
  bool dirty = false;
};

// Query volume scales with the catalog but stays bounded so the full
// sweep finishes in CI time.
std::size_t QueriesFor(std::size_t catalog_size) {
  const std::size_t q = catalog_size / 5;
  if (q < 2000) return 2000;
  if (q > 20000) return 20000;
  return q;
}

std::vector<SweepPoint> SweepFor(const std::string& mode) {
  std::vector<SweepPoint> points;
  if (mode == "smoke") {
    points.push_back({5000, datagen::Distribution::kZipfian, true});
    return points;
  }
  for (const std::size_t size : {std::size_t{25000}, std::size_t{100000}}) {
    for (const datagen::Distribution skew :
         {datagen::Distribution::kUniform, datagen::Distribution::kZipfian,
          datagen::Distribution::kHotset, datagen::Distribution::kLatest}) {
      points.push_back({size, skew, false});
      points.push_back({size, skew, true});
    }
  }
  if (mode == "full") {
    points.push_back({1000000, datagen::Distribution::kZipfian, true});
    points.push_back({1000000, datagen::Distribution::kLatest, true});
  }
  return points;
}

struct ReplayResult {
  std::size_t queries = 0;
  std::size_t links = 0;
  linking::LinkerStats stats;
  obs::Histogram latency_ns;  // one observation per request
  double replay_seconds = 0.0;
  double generate_ms = 0.0;  // catalog + query stream
  double build_ms = 0.0;     // dictionary, caches, candidate index
};

// Replays the stream one request at a time through exactly the streaming
// linker's inner loop: index probe, cascade prune, cached score,
// strict-> best-per-external. Returns the per-request latency histogram
// and the replayed links for the differential check.
ReplayResult ReplayPoint(const SweepPoint& point,
                         std::vector<linking::Link>* replayed_links) {
  using ClockNs = std::chrono::steady_clock;
  ReplayResult result;

  util::Stopwatch generate_timer;
  datagen::WorkloadConfig catalog_config;
  catalog_config.catalog_size = point.catalog_size;
  auto catalog_result = datagen::GenerateWorkloadCatalog(catalog_config);
  RL_CHECK(catalog_result.ok()) << catalog_result.status();
  const datagen::WorkloadCatalog catalog = std::move(catalog_result).value();

  datagen::QueryStreamConfig query_config;
  query_config.num_queries = QueriesFor(point.catalog_size);
  query_config.chooser.distribution = point.skew;
  if (point.dirty) {
    query_config.typo_prob = 0.08;
    query_config.truncate_prob = 0.05;
  } else {
    query_config.typo_prob = 0.0;
    query_config.truncate_prob = 0.0;
  }
  auto stream_result = datagen::GenerateQueryStream(catalog, query_config);
  RL_CHECK(stream_result.ok()) << stream_result.status();
  const datagen::QueryStream stream = std::move(stream_result).value();
  result.generate_ms = generate_timer.ElapsedMillis();
  result.queries = stream.queries.size();

  const linking::ItemMatcher matcher = ReplayMatcher();
  util::Stopwatch build_timer;
  linking::FeatureDictionary dict;
  const auto external = linking::FeatureCache::Build(
      stream.queries, matcher, linking::FeatureCache::Side::kExternal, &dict);
  const auto local = linking::FeatureCache::Build(
      catalog.items, matcher, linking::FeatureCache::Side::kLocal, &dict);
  const blocking::StandardBlocker blocker(datagen::props::kPartNumber,
                                          /*prefix_length=*/4);
  const auto index = blocker.BuildIndex(stream.queries, catalog.items);
  result.build_ms = build_timer.ElapsedMillis();

  const linking::FilterCascade cascade(&matcher, kThreshold);
  linking::FilterStats filter_stats;
  linking::ScoreMemo memo;
  std::vector<std::size_t> run;
  replayed_links->clear();
  util::Stopwatch replay_timer;
  for (std::size_t e = 0; e < stream.queries.size(); ++e) {
    const ClockNs::time_point start = ClockNs::now();
    index->CandidatesOf(e, &run);
    result.stats.peak_candidate_run =
        std::max(result.stats.peak_candidate_run, run.size());
    linking::Link best;
    bool best_set = false;
    for (const std::size_t l : run) {
      if (cascade.Prune(external, e, local, l, &filter_stats)) continue;
      const double score = matcher.ScoreCached(external, e, local, l, &memo,
                                               &result.stats.comparisons);
      ++result.stats.pairs_scored;
      if (score < kThreshold) continue;
      if (!best_set || score > best.score) {
        best = linking::Link{e, l, score};
        best_set = true;
      }
    }
    if (best_set) replayed_links->push_back(best);
    const auto nanos = std::chrono::duration_cast<std::chrono::nanoseconds>(
                           ClockNs::now() - start)
                           .count();
    result.latency_ns.Observe(static_cast<std::uint64_t>(nanos));
  }
  result.replay_seconds = replay_timer.ElapsedSeconds();
  result.stats.pairs_pruned_by_filter = filter_stats.pairs_pruned;
  result.stats.pruned_by_length = filter_stats.by_length;
  result.stats.pruned_by_token_count = filter_stats.by_token_count;
  result.stats.pruned_by_exact = filter_stats.by_exact;
  result.stats.pruned_by_distance_cap = filter_stats.by_distance_cap;
  result.links = replayed_links->size();
  result.stats.links_emitted = replayed_links->size();

  // Differential anchor: the replayed links must be byte-identical to the
  // batch streaming path over the same index and caches.
  const linking::StreamingLinker streaming(&matcher, kThreshold);
  linking::LinkerStats streaming_stats;
  const auto reference = streaming.Run(*index, external, local,
                                       &streaming_stats, /*num_threads=*/0);
  RL_CHECK(reference.size() == replayed_links->size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    RL_CHECK(reference[i].external_index ==
                 (*replayed_links)[i].external_index &&
             reference[i].local_index == (*replayed_links)[i].local_index &&
             reference[i].score == (*replayed_links)[i].score);
  }
  RL_CHECK(streaming_stats.pairs_scored == result.stats.pairs_scored);
  RL_CHECK(streaming_stats.pairs_pruned_by_filter ==
           result.stats.pairs_pruned_by_filter);
  return result;
}

double QuantileUs(const obs::Histogram& h, double q) {
  return h.ValueAtQuantile(q) / 1000.0;
}

std::string PointJson(const SweepPoint& point, const ReplayResult& r) {
  const double qps =
      r.replay_seconds > 0.0
          ? static_cast<double>(r.queries) / r.replay_seconds
          : 0.0;
  std::string json = "    {\"catalog_size\": " +
                     std::to_string(point.catalog_size) + ",\n";
  json += "     \"skew\": \"" + std::string(DistributionName(point.skew)) +
          "\",\n";
  json += "     \"dirtiness\": \"" +
          std::string(point.dirty ? "dirty" : "clean") + "\",\n";
  json += "     \"queries\": " + std::to_string(r.queries) + ",\n";
  json += "     \"links\": " + std::to_string(r.links) + ",\n";
  json += "     \"pairs_scored\": " + std::to_string(r.stats.pairs_scored) +
          ",\n";
  json += "     \"pairs_pruned_by_filter\": " +
          std::to_string(r.stats.pairs_pruned_by_filter) + ",\n";
  json += "     \"peak_candidate_run\": " +
          std::to_string(r.stats.peak_candidate_run) + ",\n";
  json += "     \"generate_ms\": " + util::FormatDouble(r.generate_ms, 3) +
          ",\n";
  json += "     \"build_ms\": " + util::FormatDouble(r.build_ms, 3) + ",\n";
  json += "     \"p50_us\": " +
          util::FormatDouble(QuantileUs(r.latency_ns, 0.5), 3) + ",\n";
  json += "     \"p95_us\": " +
          util::FormatDouble(QuantileUs(r.latency_ns, 0.95), 3) + ",\n";
  json += "     \"p99_us\": " +
          util::FormatDouble(QuantileUs(r.latency_ns, 0.99), 3) + ",\n";
  json += "     \"p999_us\": " +
          util::FormatDouble(QuantileUs(r.latency_ns, 0.999), 3) + ",\n";
  json += "     \"max_us\": " +
          util::FormatDouble(static_cast<double>(r.latency_ns.max()) / 1000.0,
                             3) +
          ",\n";
  json += "     \"qps\": " + util::FormatDouble(qps, 1) + "}";
  return json;
}

void RunSweep() {
  const char* env = std::getenv("RULELINK_WORKLOAD_SWEEP");
  const std::string mode = env != nullptr ? env : "ci";
  const std::vector<SweepPoint> sweep = SweepFor(mode);
  std::cout << "=== E9: request-replay workload sweep (" << sweep.size()
            << " points, mode=" << mode << ") ===\n";
  util::TextTable table({"catalog", "skew", "dirt", "queries", "links",
                         "p50 (us)", "p95 (us)", "p99 (us)", "p999 (us)",
                         "qps"});
  std::string points_json;
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const SweepPoint& point = sweep[i];
    std::vector<linking::Link> links;
    const ReplayResult r = ReplayPoint(point, &links);
    table.AddRow({std::to_string(point.catalog_size),
                  DistributionName(point.skew),
                  point.dirty ? "dirty" : "clean",
                  std::to_string(r.queries), std::to_string(r.links),
                  util::FormatDouble(QuantileUs(r.latency_ns, 0.5), 1),
                  util::FormatDouble(QuantileUs(r.latency_ns, 0.95), 1),
                  util::FormatDouble(QuantileUs(r.latency_ns, 0.99), 1),
                  util::FormatDouble(QuantileUs(r.latency_ns, 0.999), 1),
                  util::FormatDouble(
                      r.replay_seconds > 0.0
                          ? static_cast<double>(r.queries) / r.replay_seconds
                          : 0.0,
                      0)});
    points_json += PointJson(point, r);
    points_json += i + 1 < sweep.size() ? ",\n" : "\n";
  }
  std::cout << table.ToText()
            << "(replayed links byte-identical to StreamingLinker::Run at "
               "every point; written to BENCH_workloads.json)\n\n";

  std::ofstream out("BENCH_workloads.json");
  if (!out) return;
  out << "{\n  \"bench\": \"workloads\",\n  \"sweep_mode\": \"" << mode
      << "\",\n  \"hardware_concurrency\": "
      << std::thread::hardware_concurrency() << ",\n  \"threshold\": "
      << util::FormatDouble(kThreshold, 2) << ",\n  \"points\": [\n"
      << points_json << "  ]\n}\n";
}

// --- Micro benchmarks: sampler draw cost per distribution. ---

const datagen::KeyChooser& ChooserFor(datagen::Distribution distribution) {
  static std::vector<std::unique_ptr<datagen::KeyChooser>>* choosers = [] {
    auto* built = new std::vector<std::unique_ptr<datagen::KeyChooser>>();
    for (int d = 0; d <= static_cast<int>(datagen::Distribution::kHistogram);
         ++d) {
      datagen::KeyChooserConfig config;
      config.distribution = static_cast<datagen::Distribution>(d);
      config.num_keys = 1000000;
      config.histogram_weights = {8.0, 4.0, 2.0, 1.0};
      auto result = datagen::MakeKeyChooser(config);
      RL_CHECK(result.ok()) << result.status();
      built->push_back(std::move(result).value());
    }
    return built;
  }();
  return *(*choosers)[static_cast<std::size_t>(distribution)];
}

void BM_KeyChooserNext(benchmark::State& state) {
  const auto distribution =
      static_cast<datagen::Distribution>(state.range(0));
  const datagen::KeyChooser& chooser = ChooserFor(distribution);
  state.SetLabel(chooser.name());
  util::Rng rng(12345);
  for (auto _ : state) {
    benchmark::DoNotOptimize(chooser.Next(&rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KeyChooserNext)
    ->DenseRange(0, static_cast<int>(datagen::Distribution::kHistogram), 1);

void BM_GenerateKeyStream(benchmark::State& state) {
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  const datagen::KeyChooser& chooser =
      ChooserFor(datagen::Distribution::kScrambledZipfian);
  constexpr std::size_t kCount = 100000;
  for (auto _ : state) {
    const auto keys = datagen::GenerateKeyStream(chooser, 42, kCount, threads);
    benchmark::DoNotOptimize(keys.data());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(kCount));
}
BENCHMARK(BM_GenerateKeyStream)->Arg(1)->Arg(2)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_GenerateWorkloadCatalog(benchmark::State& state) {
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  datagen::WorkloadConfig config;
  config.catalog_size = 50000;
  for (auto _ : state) {
    auto result = datagen::GenerateWorkloadCatalog(config, threads);
    RL_CHECK(result.ok()) << result.status();
    benchmark::DoNotOptimize(result.value().items.size());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(config.catalog_size));
}
BENCHMARK(BM_GenerateWorkloadCatalog)->Arg(1)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rulelink::bench

int main(int argc, char** argv) {
  rulelink::bench::ApplyPinningFromEnv();
  rulelink::bench::RunSweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
