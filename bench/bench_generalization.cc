// Experiment E6 (the paper's §6 future work): rule generalization over the
// subsumption hierarchy. Family-level unit segments ("ohm", "63V") are too
// ambiguous for any single leaf class but pin their family perfectly; the
// generalizer recovers them. We compare leaf-only rules with generalized
// rules on rule census, decision coverage, and subspace growth.
#include <iostream>
#include <memory>

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/classifier.h"
#include "core/generalizer.h"
#include "util/string_util.h"
#include "util/table.h"

namespace rulelink::bench {
namespace {

core::GeneralizerOptions MakeOptions(double min_confidence,
                                     std::size_t levels) {
  core::GeneralizerOptions options;
  options.support_threshold = 0.002;
  options.min_confidence = min_confidence;
  options.max_levels_up = levels;
  options.segmenter = &PaperSegmenter();
  return options;
}

// Fraction of TS items that receive at least one prediction.
double Coverage(const core::RuleSet& rules) {
  const core::RuleClassifier classifier(&rules, &PaperSegmenter());
  const auto& ts = PaperTrainingSet();
  std::size_t covered = 0;
  for (const auto& example : ts.examples()) {
    core::Item item;
    item.iri = example.external_iri;
    for (const auto& [property, value] : example.facts) {
      item.facts.push_back(
          core::PropertyValue{ts.properties().name(property), value});
    }
    covered += !classifier.Classify(item).empty();
  }
  return static_cast<double>(covered) / static_cast<double>(ts.size());
}

// Fraction of rule conclusions that are leaf classes.
double LeafShare(const core::RuleSet& rules) {
  if (rules.empty()) return 0.0;
  std::size_t leaves = 0;
  for (const auto& rule : rules.rules()) {
    leaves += PaperDataset().ontology().IsLeaf(rule.cls);
  }
  return static_cast<double>(leaves) / static_cast<double>(rules.size());
}

void PrintGeneralizationReport() {
  std::cout << "=== E6: rule generalization over the class hierarchy ===\n";
  util::TextTable table({"configuration", "#rules", "leaf conclusions",
                         "TS coverage"});

  // Baseline: the plain leaf-level learner.
  auto base =
      core::RuleLearner(PaperLearnerOptions()).Learn(PaperTrainingSet());
  RL_CHECK(base.ok());
  table.AddRow({"leaf learner (th=0.002)", std::to_string(base->size()),
                util::FormatPercent(LeafShare(*base), 0),
                util::FormatPercent(Coverage(*base))});

  for (const auto& [label, min_conf, levels] :
       {std::tuple<const char*, double, std::size_t>{"generalizer conf>=0.9, 0 levels", 0.9, 0},
        std::tuple<const char*, double, std::size_t>{"generalizer conf>=0.9, 2 levels", 0.9, 2},
        std::tuple<const char*, double, std::size_t>{"generalizer conf>=0.9, 6 levels", 0.9, 6},
        std::tuple<const char*, double, std::size_t>{"generalizer conf>=0.7, 6 levels", 0.7, 6}}) {
    auto generalized = core::LearnGeneralizedRules(
        PaperTrainingSet(), MakeOptions(min_conf, levels));
    RL_CHECK(generalized.ok());
    table.AddRow({label, std::to_string(generalized->size()),
                  util::FormatPercent(LeafShare(*generalized), 0),
                  util::FormatPercent(Coverage(*generalized))});
  }
  std::cout << table.ToText()
            << "(generalized rules trade subspace size for coverage: "
               "non-leaf conclusions cover items whose leaf signal is too "
               "ambiguous)\n\n";
}

void BM_Generalize(benchmark::State& state) {
  const auto options =
      MakeOptions(0.9, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto rules =
        core::LearnGeneralizedRules(PaperTrainingSet(), options);
    benchmark::DoNotOptimize(rules);
  }
}
BENCHMARK(BM_Generalize)->Arg(0)->Arg(1)->Arg(3)->Unit(
    benchmark::kMillisecond);

}  // namespace
}  // namespace rulelink::bench

int main(int argc, char** argv) {
  rulelink::bench::PrintGeneralizationReport();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
